//! # greedy-stm
//!
//! An obstruction-free, object-based software transactional memory with
//! pluggable contention management, centred on the **greedy contention
//! manager** of Guerraoui, Herlihy and Pochon (*"Toward a Theory of
//! Transactional Contention Managers"*, PODC 2005) — the first contention
//! manager that combines non-trivial provable properties (bounded commit
//! delay for every transaction; makespan within `s(s+1)+2` of an optimal
//! off-line list schedule) with competitive practical performance.
//!
//! This crate is the facade over the workspace:
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`core`](stm_core) | the STM runtime: [`Stm`], [`TVar`], [`Txn`], the [`ContentionManager`] interface |
//! | [`cm`](stm_cm) | the greedy manager plus twelve managers from the literature |
//! | [`structures`](stm_structures) | transactional list, skiplist, red-black tree, forest, sharded set, counter, queue |
//! | [`sched`](stm_sched) | Garey–Graham task systems, list/optimal schedulers, execution simulator |
//! | [`kv`](stm_kv) | the networked transactional key-value service: server, wire protocol, client |
//! | [`log`](stm_log) | durability: write-ahead commit log, group commit, snapshots, crash recovery |
//!
//! ## Quickstart
//!
//! ```
//! use greedy_stm::prelude::*;
//!
//! // An STM whose threads arbitrate conflicts with the greedy manager.
//! let stm = Stm::builder().manager(GreedyManager::factory()).build();
//!
//! let checking = TVar::new(90i64);
//! let savings = TVar::new(10i64);
//!
//! let mut ctx = stm.thread();
//! ctx.atomically(|tx| {
//!     let amount = 25;
//!     tx.modify(&checking, |b| b - amount)?;
//!     tx.modify(&savings, |b| b + amount)?;
//!     Ok(())
//! })
//! .unwrap();
//!
//! assert_eq!(stm.read_atomic(&checking) + stm.read_atomic(&savings), 100);
//! ```
//!
//! ## Picking a contention manager
//!
//! Every thread owns a contention-manager instance created from the factory
//! installed on the [`Stm`]. The [`stm_cm::ManagerKind`] registry lists all
//! thirteen by name:
//!
//! ```
//! use greedy_stm::prelude::*;
//! use greedy_stm::cm::ManagerKind;
//!
//! for kind in ManagerKind::ALL {
//!     let stm = Stm::builder().manager(kind.factory()).build();
//!     let cell = TVar::new(0u32);
//!     let mut ctx = stm.thread();
//!     ctx.atomically(|tx| tx.modify(&cell, |v| v + 1)).unwrap();
//!     assert_eq!(stm.read_atomic(&cell), 1, "manager {kind} must make progress");
//! }
//! ```
//!
//! ## Reproducing the paper
//!
//! * `cargo run --release -p stm-bench --bin figures -- all` regenerates the
//!   throughput figures (Figures 1–4), the adversarial-chain and Theorem 9
//!   experiments, and the starvation check.
//! * `cargo run --release -p stm-bench --bin figures -- --sweep machine`
//!   runs the workload matrix — update-only, read-mostly and range-heavy
//!   `OpMix` mixes over every structure and figure-set manager, with the
//!   thread axis sized to the host — emitting one JSON record per cell.
//! * `cargo bench --workspace` runs the Criterion benches (one per figure
//!   plus the theory and substrate micro-benches).
//! * `EXPERIMENTS.md` at the repository root records paper-versus-measured
//!   outcomes, including the workload matrix's shapes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// The STM runtime (re-export of `stm-core`).
pub use stm_core as core;

/// Contention managers (re-export of `stm-cm`).
pub use stm_cm as cm;

/// Transactional data structures (re-export of `stm-structures`).
pub use stm_structures as structures;

/// Scheduling theory and the execution simulator (re-export of `stm-sched`).
pub use stm_sched as sched;

/// The networked transactional key-value service (re-export of `stm-kv`).
pub use stm_kv as kv;

/// Durable commit log and crash recovery (re-export of `stm-log`).
pub use stm_log as log;

pub use stm_cm::{GreedyManager, GreedyTimeoutManager};
pub use stm_core::{
    AbortCause, ConflictKind, ContentionManager, ReadVisibility, Resolution, Stm, StmBuilder,
    StmError, TVar, ThreadCtx, TxResult, TxView, Txn, WaitSpec,
};

/// The most common imports in one place.
pub mod prelude {
    pub use crate::cm::{
        AggressiveManager, BackoffManager, EruptionManager, GreedyManager, GreedyTimeoutManager,
        KarmaManager, ManagerKind, PoliteManager, PolkaManager, TimestampManager,
    };
    pub use crate::kv::{KvClient, KvServer, KvStore, ServerConfig};
    pub use crate::structures::{
        ShardedTxSet, TxCounter, TxList, TxQueue, TxRbForest, TxRbTree, TxSet, TxSkipList,
    };
    pub use stm_core::{
        AbortCause, ContentionManager, ReadVisibility, Resolution, Stm, StmError, TVar, TxResult,
        Txn,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let stm = Stm::builder().manager(GreedyManager::factory()).build();
        let list = TxList::new();
        let mut ctx = stm.thread();
        ctx.atomically(|tx| {
            list.insert(tx, 1)?;
            list.insert(tx, 2)?;
            Ok(())
        })
        .unwrap();
        assert_eq!(ctx.atomically(|tx| list.len(tx)).unwrap(), 2);
    }
}
