//! The headline bounded model-check suite (satellite of the loomlite work).
//!
//! Runs only with `--features model-check`, which swaps the lock-free hot
//! paths onto loomlite's modeled primitives via each crate's sync facade.
//! Each test drives one shipped protocol through its model and asserts the
//! checker actually explored a meaningful schedule space (> 100 distinct
//! schedules) — a model that silently degenerates to two or three
//! interleavings would be false confidence.
//!
//! The per-crate suites (`stm-core`, `arcswap`, `stm-log`) additionally
//! assert the *negative* side: deliberately weakened memory orderings are
//! caught with a printed failing trace. Here we keep one end-to-end
//! negative test so the workspace gate exercises the detection path too.

#![cfg(feature = "model-check")]

/// Epoch-based reclamation: a pinned reader never dereferences freed
/// memory, and retirement reclaims exactly once.
#[test]
fn epoch_gc_reclamation_is_safe() {
    let report = stm_core::models::epoch_reclamation_no_uaf();
    eprintln!("epoch no-UAF: {report}");
    assert!(report.schedules() > 100, "{report}");
}

/// The pin/advance store-buffering handshake is safe at `SeqCst` and fully
/// explored.
#[test]
fn epoch_pin_handshake_is_safe() {
    let report =
        stm_core::models::epoch_pin_requires_seqcst(false).expect("SeqCst handshake must be safe");
    eprintln!("epoch pin handshake: {report}");
    assert!(report.complete, "{report}");
    assert!(report.schedules() > 100, "{report}");
}

/// Locator CAS publication vs guard reads: no torn value, no early free,
/// no stranded spill entry.
#[test]
fn arcswap_cas_vs_guard_is_safe() {
    let report = arcswap::models::cas_vs_guard_reclamation();
    eprintln!("arcswap cas-vs-guard: {report}");
    assert!(report.schedules() > 100, "{report}");
}

/// WAL slot ring: consumption is strictly in order and never stalls (any
/// timeout rescue — a lost wakeup — fails the model).
#[test]
fn wal_slot_ring_is_safe() {
    let report = stm_log::models::ring_consumes_in_order_without_stalling();
    eprintln!("ring in-order: {report}");
    assert!(report.schedules() > 100, "{report}");
    assert_eq!(report.timeout_rescues, 0, "{report}");
}

/// Sharded visible-reader registry: a registered running reader is never
/// lost to a concurrent scan's pruning.
#[test]
fn reader_registry_is_safe() {
    let report = stm_core::models::reader_registry_never_loses_a_visible_reader();
    eprintln!("reader registry: {report}");
    assert!(report.schedules() > 100, "{report}");
}

/// The detection path end-to-end: a deliberately weakened pin handshake is
/// caught as a use-after-free with a non-empty failing trace.
#[test]
fn weakened_orderings_are_caught() {
    let failure = stm_core::models::epoch_pin_requires_seqcst(true)
        .expect_err("Release/Acquire pin handshake must be caught");
    eprintln!("caught as expected:\n{failure}");
    assert!(failure.message.contains("UAF"), "{failure}");
    assert!(!failure.trace.is_empty(), "{failure}");
}
