//! Property-based tests: every transactional set implementation must behave
//! exactly like a reference `BTreeSet` for arbitrary operation sequences, and
//! the red-black tree must maintain its structural invariants throughout.
//! Operation sequences are drawn from a seeded PRNG so failures reproduce
//! deterministically.

use std::collections::BTreeSet;

use greedy_stm::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A single randomly drawn set operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(i64),
    Remove(i64),
    Contains(i64),
}

fn random_op(rng: &mut SmallRng, key_range: i64) -> Op {
    let key = rng.gen_range(0..key_range);
    match rng.gen_range(0u32..3) {
        0 => Op::Insert(key),
        1 => Op::Remove(key),
        _ => Op::Contains(key),
    }
}

fn random_ops(rng: &mut SmallRng, key_range: i64, max_len: usize) -> Vec<Op> {
    (0..rng.gen_range(0..max_len))
        .map(|_| random_op(rng, key_range))
        .collect()
}

fn check_against_model<S: TxSet>(set: &S, ops: &[Op]) {
    let stm = Stm::builder().manager(GreedyManager::factory()).build();
    let mut ctx = stm.thread();
    let mut model = BTreeSet::new();
    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Insert(k) => {
                let expected = model.insert(k);
                let actual = ctx.atomically(|tx| set.insert(tx, k)).unwrap();
                assert_eq!(expected, actual, "insert({k}) diverged at step {step}");
            }
            Op::Remove(k) => {
                let expected = model.remove(&k);
                let actual = ctx.atomically(|tx| set.remove(tx, k)).unwrap();
                assert_eq!(expected, actual, "remove({k}) diverged at step {step}");
            }
            Op::Contains(k) => {
                let expected = model.contains(&k);
                let actual = ctx.atomically(|tx| set.contains(tx, k)).unwrap();
                assert_eq!(expected, actual, "contains({k}) diverged at step {step}");
            }
        }
    }
    let contents = ctx.atomically(|tx| set.to_vec(tx)).unwrap();
    assert_eq!(contents, model.iter().copied().collect::<Vec<_>>());
    assert_eq!(
        ctx.atomically(|tx| set.len(tx)).unwrap(),
        model.len(),
        "length diverged"
    );
}

#[test]
fn list_matches_btreeset() {
    let mut rng = SmallRng::seed_from_u64(0x11_57);
    for _case in 0..48 {
        check_against_model(&TxList::new(), &random_ops(&mut rng, 48, 200));
    }
}

#[test]
fn skiplist_matches_btreeset() {
    let mut rng = SmallRng::seed_from_u64(0x5_c1b);
    for _case in 0..48 {
        check_against_model(&TxSkipList::new(), &random_ops(&mut rng, 64, 200));
    }
}

#[test]
fn rbtree_matches_btreeset() {
    let mut rng = SmallRng::seed_from_u64(0x4b_74e3);
    for _case in 0..48 {
        check_against_model(&TxRbTree::new(), &random_ops(&mut rng, 96, 250));
    }
}

#[test]
fn sharded_set_matches_btreeset_across_shard_counts() {
    let mut rng = SmallRng::seed_from_u64(0x5a4d_1234);
    for shards in [1usize, 2, 7, 16] {
        for _case in 0..12 {
            check_against_model(
                &ShardedTxSet::rbtree(shards),
                &random_ops(&mut rng, 96, 250),
            );
        }
    }
}

#[test]
fn rbtree_invariants_hold_throughout() {
    let mut rng = SmallRng::seed_from_u64(0x4b_114a);
    for _case in 0..48 {
        let ops = random_ops(&mut rng, 32, 120);
        let stm = Stm::builder().manager(GreedyManager::factory()).build();
        let tree = TxRbTree::new();
        let mut ctx = stm.thread();
        let mut model = BTreeSet::new();
        for op in &ops {
            match *op {
                Op::Insert(k) => {
                    model.insert(k);
                    ctx.atomically(|tx| tree.insert(tx, k)).unwrap();
                }
                Op::Remove(k) => {
                    model.remove(&k);
                    ctx.atomically(|tx| tree.remove(tx, k)).unwrap();
                }
                Op::Contains(k) => {
                    ctx.atomically(|tx| tree.contains(tx, k)).unwrap();
                }
            }
            // The red-black invariants (BST order, no red-red edge, equal
            // black heights, black root) must hold after every operation.
            let count = ctx.atomically(|tx| tree.check_invariants(tx)).unwrap();
            assert_eq!(count, model.len());
        }
    }
}

/// Seeded property test for `TxSet::range` / `TxList::snapshot`: under a
/// stream of interleaved insert/remove transactions, every range query must
/// return exactly the model `BTreeSet`'s interval — sorted and
/// duplicate-free by construction of the model comparison, and asserted
/// explicitly as well.
fn check_range_against_model<S: TxSet>(make: impl Fn() -> S, seed: u64, key_range: i64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    for _case in 0..16 {
        let stm = Stm::builder().manager(GreedyManager::factory()).build();
        let set = make();
        let mut ctx = stm.thread();
        let mut model = BTreeSet::new();
        for _round in 0..24 {
            // A batch of interleaved insert/remove transactions.
            for _ in 0..10 {
                let key = rng.gen_range(0..key_range);
                if rng.gen_bool(0.5) {
                    model.insert(key);
                    ctx.atomically(|tx| set.insert(tx, key)).unwrap();
                } else {
                    model.remove(&key);
                    ctx.atomically(|tx| set.remove(tx, key)).unwrap();
                }
            }
            // A range query over a random interval (occasionally inverted).
            let a = rng.gen_range(0..key_range);
            let b = rng.gen_range(0..key_range);
            let (lo, hi) = if rng.gen_bool(0.9) {
                (a.min(b), a.max(b))
            } else {
                (a.max(b), a.min(b)) // inverted: must come back empty
            };
            let got = ctx.atomically(|tx| set.range(tx, lo, hi)).unwrap();
            let want: Vec<i64> = model.range(lo.min(hi)..=hi.max(lo)).copied().collect();
            if lo <= hi {
                assert_eq!(got, want, "range({lo}, {hi}) diverged from the model");
            } else {
                assert!(got.is_empty(), "inverted range({lo}, {hi}) must be empty");
            }
            assert!(
                got.windows(2).all(|w| w[0] < w[1]),
                "range({lo}, {hi}) not sorted / contains duplicates: {got:?}"
            );
            // A mutation and a range inside one transaction observe each
            // other (ranges see the transaction's own writes).
            let probe = rng.gen_range(0..key_range);
            let model_after = {
                let mut m = model.clone();
                m.insert(probe);
                m.range(0..=key_range).copied().collect::<Vec<_>>()
            };
            let got_in_tx = ctx
                .atomically(|tx| {
                    set.insert(tx, probe)?;
                    set.range(tx, 0, key_range)
                })
                .unwrap();
            assert_eq!(got_in_tx, model_after, "in-transaction range missed its own insert");
            model.insert(probe);
        }
    }
}

#[test]
fn skiplist_range_matches_btreeset() {
    check_range_against_model(TxSkipList::new, 0x3a9e_0001, 96);
}

#[test]
fn rbtree_range_matches_btreeset() {
    check_range_against_model(TxRbTree::new, 0x3a9e_0002, 96);
}

#[test]
fn sharded_range_merges_shards_in_order() {
    // Cross-shard ranges must interleave the per-shard runs correctly.
    check_range_against_model(|| ShardedTxSet::rbtree(5), 0x3a9e_0004, 96);
}

#[test]
fn list_range_and_snapshot_match_btreeset() {
    check_range_against_model(TxList::new, 0x3a9e_0003, 48);
    // `snapshot` is the list's full-structure read; it must equal `to_vec`.
    let stm = Stm::builder().manager(GreedyManager::factory()).build();
    let list = TxList::new();
    let mut ctx = stm.thread();
    let mut rng = SmallRng::seed_from_u64(0x3a9e_0004);
    for _ in 0..200 {
        let key = rng.gen_range(0i64..64);
        if rng.gen_bool(0.6) {
            ctx.atomically(|tx| list.insert(tx, key)).unwrap();
        } else {
            ctx.atomically(|tx| list.remove(tx, key)).unwrap();
        }
        let (snap, vec) = ctx
            .atomically(|tx| Ok((list.snapshot(tx)?, list.to_vec(tx)?)))
            .unwrap();
        assert_eq!(snap, vec);
    }
}

/// Concurrent snapshot consistency: writers insert and remove keys strictly
/// in `(2k, 2k + 1)` pairs, each pair inside one transaction, while readers
/// run range queries over the whole key space. Because pair updates are
/// atomic, any range covering both keys must observe both or neither — a
/// torn pair means the range walk read across a commit.
fn check_concurrent_range_snapshots<S: TxSet + Clone + 'static>(set: S, seed: u64) {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::thread;

    const PAIRS: i64 = 24;
    let stm = Arc::new(Stm::builder().manager(GreedyManager::factory()).build());
    let stop = Arc::new(AtomicBool::new(false));
    thread::scope(|scope| {
        for w in 0..2u64 {
            let stm = Arc::clone(&stm);
            let stop = Arc::clone(&stop);
            let set = set.clone();
            scope.spawn(move || {
                let mut ctx = stm.thread();
                let mut rng = SmallRng::seed_from_u64(seed ^ (w + 1));
                while !stop.load(Ordering::Relaxed) {
                    let pair = rng.gen_range(0..PAIRS);
                    let (lo_key, hi_key) = (2 * pair, 2 * pair + 1);
                    if rng.gen_bool(0.5) {
                        ctx.atomically(|tx| {
                            set.insert(tx, lo_key)?;
                            set.insert(tx, hi_key)?;
                            Ok(())
                        })
                        .unwrap();
                    } else {
                        ctx.atomically(|tx| {
                            set.remove(tx, lo_key)?;
                            set.remove(tx, hi_key)?;
                            Ok(())
                        })
                        .unwrap();
                    }
                }
            });
        }
        let stm_reader = Arc::clone(&stm);
        let stop_reader = Arc::clone(&stop);
        let set_reader = set.clone();
        scope.spawn(move || {
            // Release the writers even if an assertion below panics —
            // otherwise they spin on `stop` forever and the failure becomes
            // a hang instead of a test failure.
            struct StopOnExit(Arc<AtomicBool>);
            impl Drop for StopOnExit {
                fn drop(&mut self) {
                    self.0.store(true, Ordering::Relaxed);
                }
            }
            let _guard = StopOnExit(Arc::clone(&stop_reader));
            let mut ctx = stm_reader.thread();
            for _ in 0..150 {
                let snapshot = ctx
                    .atomically(|tx| set_reader.range(tx, 0, 2 * PAIRS - 1))
                    .unwrap();
                assert!(
                    snapshot.windows(2).all(|w| w[0] < w[1]),
                    "range result not sorted / has duplicates: {snapshot:?}"
                );
                let present: BTreeSet<i64> = snapshot.iter().copied().collect();
                for pair in 0..PAIRS {
                    let lo_in = present.contains(&(2 * pair));
                    let hi_in = present.contains(&(2 * pair + 1));
                    assert_eq!(
                        lo_in, hi_in,
                        "torn pair {pair}: range observed a half-committed update"
                    );
                }
            }
        });
    });
}

#[test]
fn skiplist_concurrent_ranges_see_consistent_snapshots() {
    check_concurrent_range_snapshots(TxSkipList::new(), 0x51ab_0001);
}

#[test]
fn rbtree_concurrent_ranges_see_consistent_snapshots() {
    check_concurrent_range_snapshots(TxRbTree::new(), 0x51ab_0002);
}

#[test]
fn queue_behaves_like_vecdeque() {
    let mut rng = SmallRng::seed_from_u64(0x40e0e);
    for _case in 0..48 {
        // `Some(v)` enqueues, `None` dequeues.
        let ops: Vec<Option<i64>> = (0..rng.gen_range(0usize..200))
            .map(|_| {
                if rng.gen_bool(0.5) {
                    Some(rng.gen_range(0i64..1000))
                } else {
                    None
                }
            })
            .collect();
        let stm = Stm::builder().manager(GreedyManager::factory()).build();
        let queue = TxQueue::new();
        let mut ctx = stm.thread();
        let mut model = std::collections::VecDeque::new();
        for op in ops {
            match op {
                Some(v) => {
                    model.push_back(v);
                    ctx.atomically(|tx| queue.enqueue(tx, v)).unwrap();
                }
                None => {
                    let expected = model.pop_front();
                    let actual = ctx.atomically(|tx| queue.dequeue(tx)).unwrap();
                    assert_eq!(expected, actual);
                }
            }
            let len = ctx.atomically(|tx| queue.len(tx)).unwrap();
            assert_eq!(len, model.len());
        }
    }
}

#[test]
fn composed_transactions_keep_two_sets_identical() {
    let mut rng = SmallRng::seed_from_u64(0xc046_05ed);
    for _case in 0..48 {
        let ops = random_ops(&mut rng, 32, 100);
        // Applying each operation to a list and a tree inside one transaction
        // must keep them permanently identical — even though their internal
        // read/write sets are completely different.
        let stm = Stm::builder().manager(GreedyManager::factory()).build();
        let list = TxList::new();
        let tree = TxRbTree::new();
        let mut ctx = stm.thread();
        for op in &ops {
            ctx.atomically(|tx| {
                match *op {
                    Op::Insert(k) => {
                        list.insert(tx, k)?;
                        tree.insert(tx, k)?;
                    }
                    Op::Remove(k) => {
                        list.remove(tx, k)?;
                        tree.remove(tx, k)?;
                    }
                    Op::Contains(k) => {
                        let a = list.contains(tx, k)?;
                        let b = tree.contains(tx, k)?;
                        assert_eq!(a, b);
                    }
                }
                Ok(())
            })
            .unwrap();
        }
        let (a, b) = ctx
            .atomically(|tx| Ok((list.to_vec(tx)?, tree.to_vec(tx)?)))
            .unwrap();
        assert_eq!(a, b);
    }
}
