//! Property-based tests: every transactional set implementation must behave
//! exactly like a reference `BTreeSet` for arbitrary operation sequences, and
//! the red-black tree must maintain its structural invariants throughout.

use std::collections::BTreeSet;

use greedy_stm::prelude::*;
use proptest::prelude::*;

/// A single set operation drawn by proptest.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(i64),
    Remove(i64),
    Contains(i64),
}

fn op_strategy(key_range: i64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..key_range).prop_map(Op::Insert),
        (0..key_range).prop_map(Op::Remove),
        (0..key_range).prop_map(Op::Contains),
    ]
}

fn check_against_model<S: TxSet>(set: &S, ops: &[Op]) {
    let stm = Stm::builder().manager(GreedyManager::factory()).build();
    let mut ctx = stm.thread();
    let mut model = BTreeSet::new();
    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Insert(k) => {
                let expected = model.insert(k);
                let actual = ctx.atomically(|tx| set.insert(tx, k)).unwrap();
                assert_eq!(expected, actual, "insert({k}) diverged at step {step}");
            }
            Op::Remove(k) => {
                let expected = model.remove(&k);
                let actual = ctx.atomically(|tx| set.remove(tx, k)).unwrap();
                assert_eq!(expected, actual, "remove({k}) diverged at step {step}");
            }
            Op::Contains(k) => {
                let expected = model.contains(&k);
                let actual = ctx.atomically(|tx| set.contains(tx, k)).unwrap();
                assert_eq!(expected, actual, "contains({k}) diverged at step {step}");
            }
        }
    }
    let contents = ctx.atomically(|tx| set.to_vec(tx)).unwrap();
    assert_eq!(contents, model.iter().copied().collect::<Vec<_>>());
    assert_eq!(
        ctx.atomically(|tx| set.len(tx)).unwrap(),
        model.len(),
        "length diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn list_matches_btreeset(ops in proptest::collection::vec(op_strategy(48), 0..200)) {
        check_against_model(&TxList::new(), &ops);
    }

    #[test]
    fn skiplist_matches_btreeset(ops in proptest::collection::vec(op_strategy(64), 0..200)) {
        check_against_model(&TxSkipList::new(), &ops);
    }

    #[test]
    fn rbtree_matches_btreeset(ops in proptest::collection::vec(op_strategy(96), 0..250)) {
        check_against_model(&TxRbTree::new(), &ops);
    }

    #[test]
    fn rbtree_invariants_hold_throughout(ops in proptest::collection::vec(op_strategy(32), 0..120)) {
        let stm = Stm::builder().manager(GreedyManager::factory()).build();
        let tree = TxRbTree::new();
        let mut ctx = stm.thread();
        let mut model = BTreeSet::new();
        for op in &ops {
            match *op {
                Op::Insert(k) => {
                    model.insert(k);
                    ctx.atomically(|tx| tree.insert(tx, k)).unwrap();
                }
                Op::Remove(k) => {
                    model.remove(&k);
                    ctx.atomically(|tx| tree.remove(tx, k)).unwrap();
                }
                Op::Contains(k) => {
                    ctx.atomically(|tx| tree.contains(tx, k)).unwrap();
                }
            }
            // The red-black invariants (BST order, no red-red edge, equal
            // black heights, black root) must hold after every operation.
            let count = ctx.atomically(|tx| tree.check_invariants(tx)).unwrap();
            prop_assert_eq!(count, model.len());
        }
    }

    #[test]
    fn queue_behaves_like_vecdeque(ops in proptest::collection::vec(
        prop_oneof![
            (0i64..1000).prop_map(Some),   // enqueue
            Just(None),                     // dequeue
        ],
        0..200,
    )) {
        let stm = Stm::builder().manager(GreedyManager::factory()).build();
        let queue = TxQueue::new();
        let mut ctx = stm.thread();
        let mut model = std::collections::VecDeque::new();
        for op in ops {
            match op {
                Some(v) => {
                    model.push_back(v);
                    ctx.atomically(|tx| queue.enqueue(tx, v)).unwrap();
                }
                None => {
                    let expected = model.pop_front();
                    let actual = ctx.atomically(|tx| queue.dequeue(tx)).unwrap();
                    prop_assert_eq!(expected, actual);
                }
            }
            let len = ctx.atomically(|tx| queue.len(tx)).unwrap();
            prop_assert_eq!(len, model.len());
        }
    }

    #[test]
    fn composed_transactions_keep_two_sets_identical(
        ops in proptest::collection::vec(op_strategy(32), 0..100)
    ) {
        // Applying each operation to a list and a tree inside one transaction
        // must keep them permanently identical — even though their internal
        // read/write sets are completely different.
        let stm = Stm::builder().manager(GreedyManager::factory()).build();
        let list = TxList::new();
        let tree = TxRbTree::new();
        let mut ctx = stm.thread();
        for op in &ops {
            ctx.atomically(|tx| {
                match *op {
                    Op::Insert(k) => {
                        list.insert(tx, k)?;
                        tree.insert(tx, k)?;
                    }
                    Op::Remove(k) => {
                        list.remove(tx, k)?;
                        tree.remove(tx, k)?;
                    }
                    Op::Contains(k) => {
                        let a = list.contains(tx, k)?;
                        let b = tree.contains(tx, k)?;
                        assert_eq!(a, b);
                    }
                }
                Ok(())
            }).unwrap();
        }
        let (a, b) = ctx.atomically(|tx| Ok((list.to_vec(tx)?, tree.to_vec(tx)?))).unwrap();
        prop_assert_eq!(a, b);
    }
}
