//! Property-based tests: every transactional set implementation must behave
//! exactly like a reference `BTreeSet` for arbitrary operation sequences, and
//! the red-black tree must maintain its structural invariants throughout.
//! Operation sequences are drawn from a seeded PRNG so failures reproduce
//! deterministically.

use std::collections::BTreeSet;

use greedy_stm::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A single randomly drawn set operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(i64),
    Remove(i64),
    Contains(i64),
}

fn random_op(rng: &mut SmallRng, key_range: i64) -> Op {
    let key = rng.gen_range(0..key_range);
    match rng.gen_range(0u32..3) {
        0 => Op::Insert(key),
        1 => Op::Remove(key),
        _ => Op::Contains(key),
    }
}

fn random_ops(rng: &mut SmallRng, key_range: i64, max_len: usize) -> Vec<Op> {
    (0..rng.gen_range(0..max_len))
        .map(|_| random_op(rng, key_range))
        .collect()
}

fn check_against_model<S: TxSet>(set: &S, ops: &[Op]) {
    let stm = Stm::builder().manager(GreedyManager::factory()).build();
    let mut ctx = stm.thread();
    let mut model = BTreeSet::new();
    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Insert(k) => {
                let expected = model.insert(k);
                let actual = ctx.atomically(|tx| set.insert(tx, k)).unwrap();
                assert_eq!(expected, actual, "insert({k}) diverged at step {step}");
            }
            Op::Remove(k) => {
                let expected = model.remove(&k);
                let actual = ctx.atomically(|tx| set.remove(tx, k)).unwrap();
                assert_eq!(expected, actual, "remove({k}) diverged at step {step}");
            }
            Op::Contains(k) => {
                let expected = model.contains(&k);
                let actual = ctx.atomically(|tx| set.contains(tx, k)).unwrap();
                assert_eq!(expected, actual, "contains({k}) diverged at step {step}");
            }
        }
    }
    let contents = ctx.atomically(|tx| set.to_vec(tx)).unwrap();
    assert_eq!(contents, model.iter().copied().collect::<Vec<_>>());
    assert_eq!(
        ctx.atomically(|tx| set.len(tx)).unwrap(),
        model.len(),
        "length diverged"
    );
}

#[test]
fn list_matches_btreeset() {
    let mut rng = SmallRng::seed_from_u64(0x11_57);
    for _case in 0..48 {
        check_against_model(&TxList::new(), &random_ops(&mut rng, 48, 200));
    }
}

#[test]
fn skiplist_matches_btreeset() {
    let mut rng = SmallRng::seed_from_u64(0x5_c1b);
    for _case in 0..48 {
        check_against_model(&TxSkipList::new(), &random_ops(&mut rng, 64, 200));
    }
}

#[test]
fn rbtree_matches_btreeset() {
    let mut rng = SmallRng::seed_from_u64(0x4b_74e3);
    for _case in 0..48 {
        check_against_model(&TxRbTree::new(), &random_ops(&mut rng, 96, 250));
    }
}

#[test]
fn rbtree_invariants_hold_throughout() {
    let mut rng = SmallRng::seed_from_u64(0x4b_114a);
    for _case in 0..48 {
        let ops = random_ops(&mut rng, 32, 120);
        let stm = Stm::builder().manager(GreedyManager::factory()).build();
        let tree = TxRbTree::new();
        let mut ctx = stm.thread();
        let mut model = BTreeSet::new();
        for op in &ops {
            match *op {
                Op::Insert(k) => {
                    model.insert(k);
                    ctx.atomically(|tx| tree.insert(tx, k)).unwrap();
                }
                Op::Remove(k) => {
                    model.remove(&k);
                    ctx.atomically(|tx| tree.remove(tx, k)).unwrap();
                }
                Op::Contains(k) => {
                    ctx.atomically(|tx| tree.contains(tx, k)).unwrap();
                }
            }
            // The red-black invariants (BST order, no red-red edge, equal
            // black heights, black root) must hold after every operation.
            let count = ctx.atomically(|tx| tree.check_invariants(tx)).unwrap();
            assert_eq!(count, model.len());
        }
    }
}

#[test]
fn queue_behaves_like_vecdeque() {
    let mut rng = SmallRng::seed_from_u64(0x40e0e);
    for _case in 0..48 {
        // `Some(v)` enqueues, `None` dequeues.
        let ops: Vec<Option<i64>> = (0..rng.gen_range(0usize..200))
            .map(|_| {
                if rng.gen_bool(0.5) {
                    Some(rng.gen_range(0i64..1000))
                } else {
                    None
                }
            })
            .collect();
        let stm = Stm::builder().manager(GreedyManager::factory()).build();
        let queue = TxQueue::new();
        let mut ctx = stm.thread();
        let mut model = std::collections::VecDeque::new();
        for op in ops {
            match op {
                Some(v) => {
                    model.push_back(v);
                    ctx.atomically(|tx| queue.enqueue(tx, v)).unwrap();
                }
                None => {
                    let expected = model.pop_front();
                    let actual = ctx.atomically(|tx| queue.dequeue(tx)).unwrap();
                    assert_eq!(expected, actual);
                }
            }
            let len = ctx.atomically(|tx| queue.len(tx)).unwrap();
            assert_eq!(len, model.len());
        }
    }
}

#[test]
fn composed_transactions_keep_two_sets_identical() {
    let mut rng = SmallRng::seed_from_u64(0xc046_05ed);
    for _case in 0..48 {
        let ops = random_ops(&mut rng, 32, 100);
        // Applying each operation to a list and a tree inside one transaction
        // must keep them permanently identical — even though their internal
        // read/write sets are completely different.
        let stm = Stm::builder().manager(GreedyManager::factory()).build();
        let list = TxList::new();
        let tree = TxRbTree::new();
        let mut ctx = stm.thread();
        for op in &ops {
            ctx.atomically(|tx| {
                match *op {
                    Op::Insert(k) => {
                        list.insert(tx, k)?;
                        tree.insert(tx, k)?;
                    }
                    Op::Remove(k) => {
                        list.remove(tx, k)?;
                        tree.remove(tx, k)?;
                    }
                    Op::Contains(k) => {
                        let a = list.contains(tx, k)?;
                        let b = tree.contains(tx, k)?;
                        assert_eq!(a, b);
                    }
                }
                Ok(())
            })
            .unwrap();
        }
        let (a, b) = ctx
            .atomically(|tx| Ok((list.to_vec(tx)?, tree.to_vec(tx)?)))
            .unwrap();
        assert_eq!(a, b);
    }
}
