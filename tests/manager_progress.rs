//! Every contention manager in the registry must drive contended workloads
//! to completion (this is a liveness smoke test, not a performance claim —
//! the theory chapter is precise about which managers have *provable*
//! progress guarantees).

use greedy_stm::cm::ManagerKind;
use greedy_stm::prelude::*;
use std::sync::Arc;
use std::thread;
use std::time::Duration;
use stm_bench::{run_workload, StructureKind, WorkloadConfig};

#[test]
fn all_managers_complete_a_contended_list_workload() {
    for kind in ManagerKind::ALL {
        let cfg = WorkloadConfig {
            threads: 4,
            key_range: 24, // small key range to force conflicts
            duration: Duration::from_millis(60),
            local_work: 0,
            seed: 0xc0ffee,
            ..WorkloadConfig::default()
        };
        let result = run_workload(kind, &StructureKind::List, &cfg);
        assert!(
            result.commits > 0,
            "manager {kind} committed nothing on the list workload"
        );
    }
}

#[test]
fn all_managers_complete_a_contended_rbtree_workload() {
    for kind in ManagerKind::ALL {
        let cfg = WorkloadConfig {
            threads: 3,
            key_range: 32,
            duration: Duration::from_millis(50),
            local_work: 0,
            seed: 0xabcd,
            ..WorkloadConfig::default()
        };
        let result = run_workload(kind, &StructureKind::RbTree, &cfg);
        assert!(
            result.commits > 0,
            "manager {kind} committed nothing on the red-black tree workload"
        );
    }
}

#[test]
fn greedy_and_greedy_timeout_complete_long_vs_short_mix() {
    for kind in [ManagerKind::Greedy, ManagerKind::GreedyTimeout] {
        let stm = Arc::new(Stm::builder().manager(kind.factory()).build());
        let counters: Arc<Vec<TxCounter>> = Arc::new((0..8).map(|_| TxCounter::new()).collect());
        thread::scope(|scope| {
            // Long transactions over all counters.
            {
                let stm = Arc::clone(&stm);
                let counters = Arc::clone(&counters);
                scope.spawn(move || {
                    let mut ctx = stm.thread();
                    for _ in 0..50 {
                        ctx.atomically(|tx| {
                            for counter in counters.iter() {
                                counter.increment(tx)?;
                            }
                            Ok(())
                        })
                        .unwrap();
                    }
                });
            }
            // Short transactions on single counters.
            for t in 0..3usize {
                let stm = Arc::clone(&stm);
                let counters = Arc::clone(&counters);
                scope.spawn(move || {
                    let mut ctx = stm.thread();
                    for i in 0..600usize {
                        let idx = (t + i) % counters.len();
                        ctx.atomically(|tx| counters[idx].increment(tx)).unwrap();
                    }
                });
            }
        });
        // Long thread added 50 to every counter; short threads added 1800 in
        // total across counters.
        let total: i64 = counters.iter().map(|c| c.load(&stm)).sum();
        assert_eq!(total, 8 * 50 + 3 * 600, "updates lost under {kind}");
    }
}

#[test]
fn per_thread_manager_override_is_respected() {
    let stm = Stm::builder().manager(ManagerKind::Aggressive.factory()).build();
    assert_eq!(stm.thread().manager_name(), "aggressive");
    let ctx = stm.thread_with(Box::new(GreedyManager::new()));
    assert_eq!(ctx.manager_name(), "greedy");
    // Mixed-manager threads still cooperate correctly.
    let stm = Arc::new(stm);
    let counter = TxCounter::new();
    thread::scope(|scope| {
        for i in 0..4usize {
            let stm = Arc::clone(&stm);
            let counter = counter.clone();
            scope.spawn(move || {
                let mut ctx = if i % 2 == 0 {
                    stm.thread_with(Box::new(GreedyManager::new()))
                } else {
                    stm.thread()
                };
                for _ in 0..200 {
                    ctx.atomically(|tx| counter.increment(tx)).unwrap();
                }
            });
        }
    });
    assert_eq!(counter.load(&stm), 800);
}

#[test]
fn retry_limit_surfaces_instead_of_spinning_forever() {
    // With a retry limit of 1 and a body that always reports a validation
    // failure, the runtime must give up rather than loop.
    let stm = Stm::builder()
        .manager(ManagerKind::Greedy.factory())
        .max_retries(Some(2))
        .build();
    let mut ctx = stm.thread();
    let err = ctx
        .atomically(|_tx| -> TxResult<()> {
            Err(StmError::Aborted(AbortCause::ValidationFailed))
        })
        .unwrap_err();
    assert!(matches!(err, StmError::RetryLimitExceeded { attempts: 2 }));
}
