//! End-to-end tests of the event-driven serving layer (`--serve-mode
//! events`): the readiness event loop must be byte-for-byte compatible
//! with the thread-per-connection pool under every framing torture the
//! kernel can inflict.
//!
//! - **Fragmented reads**: v2 frames delivered one byte at a time, and in
//!   seeded random splits, through a pipelined burst — the per-connection
//!   state machine must reassemble exactly the replies the pool would
//!   produce.
//! - **Cross-mode conservation**: the serializability witness (closed
//!   transfers over a fixed total) must hold under **every** contention
//!   manager in both serve modes.
//! - **Graceful drain**: a shutdown racing a pipelined in-flight burst
//!   must lose no replies in either mode.
//! - **Serving counters**: `conns_open` / `conns_accepted` /
//!   `conns_reaped_idle` / `partial_writes` must be visible through
//!   `KvClient::stats` and move when connections are opened, reaped by
//!   the idle wheel, or parked on a full socket.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

use greedy_stm::cm::ManagerKind;
use greedy_stm::kv::proto::{decode_frame, parse_reply_v2, render_request_v2, FrameError};
use greedy_stm::kv::{KvClient, KvServer, Reply, Request, ServeMode, ServerConfig, Value};

const KEYS: i64 = 16;
const SEED_BALANCE: i64 = 100;
const TOTAL: i64 = KEYS * SEED_BALANCE;

fn start_server(manager: ManagerKind, serve_mode: ServeMode, workers: usize) -> KvServer {
    KvServer::start(ServerConfig {
        manager,
        capacity: 64,
        shards: 4,
        workers,
        serve_mode,
        event_shards: 2,
        ..ServerConfig::default()
    })
    .expect("server must start")
}

/// A deterministic little generator so the tests need no RNG plumbing.
fn scramble(x: u64) -> u64 {
    let mut x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    x ^= x >> 31;
    x.wrapping_mul(0xbf58_476d_1ce4_e5b9)
}

/// Opens a raw v2 connection: performs the `HELLO 2` handshake over the
/// v1 line protocol and returns the stream positioned at frame boundary.
fn raw_v2(addr: std::net::SocketAddr) -> TcpStream {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    stream.write_all(b"HELLO 2\n").unwrap();
    let mut hello = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        assert_eq!(stream.read(&mut byte).unwrap(), 1, "EOF during HELLO");
        if byte[0] == b'\n' {
            break;
        }
        hello.push(byte[0]);
    }
    assert!(
        hello.starts_with(b"HELLO 2"),
        "unexpected handshake reply: {:?}",
        String::from_utf8_lossy(&hello)
    );
    stream
}

/// Reads frames off `stream` until `count` replies have been decoded.
fn read_replies(stream: &mut TcpStream, count: usize) -> Vec<Reply> {
    let mut buf = Vec::new();
    let mut replies = Vec::new();
    let mut chunk = [0u8; 4096];
    let deadline = Instant::now() + Duration::from_secs(20);
    while replies.len() < count {
        assert!(Instant::now() < deadline, "timed out waiting for replies");
        loop {
            match decode_frame(&buf) {
                Ok((frame, used)) => {
                    buf.drain(..used);
                    replies.push(parse_reply_v2(frame).expect("well-formed reply"));
                    if replies.len() == count {
                        break;
                    }
                }
                Err(FrameError::Incomplete) => break,
                Err(FrameError::Malformed(err)) => panic!("malformed reply frame: {err}"),
            }
        }
        if replies.len() == count {
            break;
        }
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "EOF after {} of {count} replies", replies.len());
        buf.extend_from_slice(&chunk[..n]);
    }
    replies
}

/// Builds one pipelined burst: `puts` PUTs, a closed transfer batch, a GET
/// and a SUM audit. Returns the bytes and the expected reply count.
fn pipelined_burst(puts: i64) -> (Vec<u8>, usize) {
    let mut bytes = Vec::new();
    let mut replies = 0usize;
    for key in 0..puts {
        bytes.extend_from_slice(&render_request_v2(&Request::Put(key, Value::Int(SEED_BALANCE))));
        replies += 1;
    }
    for req in [
        Request::Begin,
        Request::Add(0, -7),
        Request::Add(1, 7),
        Request::Exec,
        Request::Get(0),
        Request::Sum(0, puts - 1),
    ] {
        bytes.extend_from_slice(&render_request_v2(&req));
        replies += 1;
    }
    (bytes, replies)
}

fn assert_burst_replies(replies: &[Reply], puts: i64) {
    let n = replies.len();
    // PUTs then BEGIN/ADD/ADD all acknowledge.
    for reply in &replies[..n - 3] {
        assert!(
            matches!(reply, Reply::Ok | Reply::Queued),
            "unexpected ack: {reply:?}"
        );
    }
    assert!(
        matches!(&replies[n - 3], Reply::Exec(inner) if inner.len() == 2),
        "EXEC reply: {:?}",
        replies[n - 3]
    );
    assert!(
        matches!(&replies[n - 2], Reply::Value(Value::Int(v)) if *v == SEED_BALANCE - 7),
        "GET after transfer: {:?}",
        replies[n - 2]
    );
    assert!(
        matches!(replies[n - 1], Reply::Sum(total, count)
            if total == puts * SEED_BALANCE && count == puts as usize),
        "SUM audit: {:?}",
        replies[n - 1]
    );
}

#[test]
fn one_byte_fragments_reassemble_through_the_event_loop() {
    let mut server = start_server(ManagerKind::Greedy, ServeMode::Events, 2);
    let mut stream = raw_v2(server.addr());
    let (bytes, expected) = pipelined_burst(8);
    // Worst-case framing torture: every byte in its own TCP segment
    // (nodelay), with periodic pauses so the event loop actually wakes up
    // mid-frame instead of coalescing the whole burst in one read.
    for (i, byte) in bytes.iter().enumerate() {
        stream.write_all(std::slice::from_ref(byte)).unwrap();
        if i % 23 == 0 {
            thread::sleep(Duration::from_millis(1));
        }
    }
    let replies = read_replies(&mut stream, expected);
    assert_burst_replies(&replies, 8);
    drop(stream);
    server.shutdown();
}

#[test]
fn seeded_random_fragments_reassemble_through_the_event_loop() {
    let mut server = start_server(ManagerKind::Greedy, ServeMode::Events, 2);
    for seed in [3u64, 17, 451] {
        let mut stream = raw_v2(server.addr());
        let (bytes, expected) = pipelined_burst(8);
        let mut sent = 0usize;
        let mut roll = seed;
        while sent < bytes.len() {
            roll = scramble(roll);
            let chunk = 1 + (roll % 13) as usize;
            let end = (sent + chunk).min(bytes.len());
            stream.write_all(&bytes[sent..end]).unwrap();
            sent = end;
            if roll % 3 == 0 {
                thread::sleep(Duration::from_millis(1));
            }
        }
        let replies = read_replies(&mut stream, expected);
        assert_burst_replies(&replies, 8);
    }
    server.shutdown();
}

#[test]
fn both_serve_modes_conserve_balance_under_every_manager() {
    for serve_mode in [ServeMode::Threads, ServeMode::Events] {
        for manager in ManagerKind::ALL {
            let clients = 2usize;
            let batches_per_client = 15usize;
            let mut server = start_server(manager, serve_mode, clients + 1);
            let addr = server.addr();
            let mut setup = KvClient::connect(addr).unwrap();
            for key in 0..KEYS {
                setup.put(key, SEED_BALANCE).unwrap();
            }
            thread::scope(|scope| {
                for c in 0..clients {
                    scope.spawn(move || {
                        let mut client = KvClient::connect(addr).unwrap();
                        for i in 0..batches_per_client {
                            let roll = scramble((c * batches_per_client + i) as u64);
                            let from = (roll % KEYS as u64) as i64;
                            let to = ((roll >> 8) % KEYS as u64) as i64;
                            let amount = ((roll >> 16) % 40) as i64 + 1;
                            client.transfer(from, to, amount).unwrap_or_else(|e| {
                                panic!("{manager}/{serve_mode:?}: transfer failed: {e}")
                            });
                            if i % 5 == 0 {
                                let (sum, _) = client.sum(0, KEYS - 1).unwrap();
                                assert_eq!(
                                    sum, TOTAL,
                                    "{manager}/{serve_mode:?}: torn mid-run audit"
                                );
                            }
                        }
                        client.quit().unwrap();
                    });
                }
            });
            let (sum, count) = setup.sum(0, KEYS - 1).unwrap();
            assert_eq!(sum, TOTAL, "{manager}/{serve_mode:?}: final total drifted");
            assert_eq!(count, KEYS as usize);
            setup.quit().unwrap();
            server.shutdown();
            assert_eq!(
                server.conns_open(),
                0,
                "{manager}/{serve_mode:?}: conns_open leaked after shutdown"
            );
        }
    }
}

#[test]
fn shutdown_drains_pipelined_inflight_replies_in_both_modes() {
    for serve_mode in [ServeMode::Threads, ServeMode::Events] {
        let mut server = start_server(ManagerKind::Greedy, serve_mode, 2);
        let mut stream = raw_v2(server.addr());
        let (bytes, expected) = pipelined_burst(12);
        stream.write_all(&bytes).unwrap();
        // Shut down while the burst is (potentially) still being parsed,
        // executed, or flushed. The drain path must deliver every reply
        // before the connection closes.
        server.shutdown();
        let replies = read_replies(&mut stream, expected);
        assert_burst_replies(&replies, 12);
        // After the drained replies the server closes cleanly: EOF, not a
        // reset or a stray extra frame.
        let mut rest = Vec::new();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        match stream.read_to_end(&mut rest) {
            Ok(_) => assert!(
                rest.is_empty(),
                "{serve_mode:?}: unexpected trailing bytes: {rest:?}"
            ),
            Err(err) => panic!("{serve_mode:?}: expected clean EOF, got {err}"),
        }
        // The drain really closed (and un-counted) everything: once
        // shutdown has returned and every serving thread is joined, the
        // open-connections gauge must be back to zero in both modes.
        assert_eq!(
            server.conns_open(),
            0,
            "{serve_mode:?}: conns_open leaked across a graceful drain"
        );
    }
}

#[test]
fn idle_connections_are_reaped_and_counted() {
    let mut server = KvServer::start(ServerConfig {
        manager: ManagerKind::Greedy,
        capacity: 64,
        shards: 4,
        workers: 2,
        serve_mode: ServeMode::Events,
        event_shards: 2,
        idle_timeout: Duration::from_millis(150),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let mut control = KvClient::connect(addr).unwrap();
    let base = control.stats().unwrap();
    // Three connections that go silent; the control connection keeps
    // touching its own activity clock via STATS polls, so it survives.
    let idle: Vec<KvClient> = (0..3).map(|_| KvClient::connect(addr).unwrap()).collect();
    let open_now = control.stats().unwrap();
    assert!(
        open_now.conns_open >= base.conns_open + 3,
        "idle connections must register as open: {} -> {}",
        base.conns_open,
        open_now.conns_open
    );
    assert!(open_now.conns_accepted >= base.conns_accepted + 3);
    let deadline = Instant::now() + Duration::from_secs(10);
    let reaped = loop {
        let stats = control.stats().unwrap();
        if stats.conns_reaped_idle >= base.conns_reaped_idle + 3 {
            break stats.conns_reaped_idle;
        }
        assert!(
            Instant::now() < deadline,
            "idle wheel never reaped the silent connections: {stats:?}"
        );
        thread::sleep(Duration::from_millis(25));
    };
    assert!(reaped >= 3);
    // The reaped connections are really gone, not just counted.
    let after = control.stats().unwrap();
    assert!(
        after.conns_open <= open_now.conns_open - 3,
        "reaped connections still open: {} -> {}",
        open_now.conns_open,
        after.conns_open
    );
    drop(idle);
    control.quit().unwrap();
    server.shutdown();
}

#[test]
fn slow_reader_parks_writes_and_counts_partial_flushes() {
    let mut server = start_server(ManagerKind::Greedy, ServeMode::Events, 2);
    let addr = server.addr();
    let mut control = KvClient::connect(addr).unwrap();
    // A value big enough that a pipelined burst of GETs overflows any
    // socket buffer pair: the shard must park the flush on write
    // readiness instead of blocking its whole event loop.
    let payload = "x".repeat(256 * 1024);
    control.put(-1, payload.clone()).unwrap();

    let mut stream = raw_v2(addr);
    let gets = 40usize;
    let mut bytes = Vec::new();
    for _ in 0..gets {
        bytes.extend_from_slice(&render_request_v2(&Request::Get(-1)));
    }
    stream.write_all(&bytes).unwrap();
    // Do not read yet: let the server hit WouldBlock on the ~10 MB of
    // replies it now owes this connection.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = control.stats().unwrap();
        if stats.partial_writes > 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no partial write registered while the reader stalled: {stats:?}"
        );
        thread::sleep(Duration::from_millis(10));
    }
    // Now drain: every reply must arrive intact once write readiness
    // resumes the flush.
    let replies = read_replies(&mut stream, gets);
    for reply in &replies {
        assert!(
            matches!(reply, Reply::Value(Value::Str(s)) if s.len() == payload.len()),
            "corrupt large reply: {reply:?}"
        );
    }
    drop(stream);
    control.quit().unwrap();
    server.shutdown();
}
