//! Additional integration tests of runtime-level semantics that the paper's
//! protocol relies on: timestamps retained across retries, statistics
//! accounting, explicit aborts, the greedy-timeout extension in the real
//! runtime, and non-transactional committed reads.

use greedy_stm::cm::ManagerKind;
use greedy_stm::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

#[test]
fn timestamp_is_retained_across_retries() {
    // Force retries by returning a validation-failure abort a few times; the
    // timestamp observed by the closure must be identical on every attempt.
    let stm = Stm::builder().manager(GreedyManager::factory()).build();
    let mut ctx = stm.thread();
    let observed = AtomicU64::new(u64::MAX);
    let attempts = AtomicU64::new(0);
    ctx.atomically(|tx| {
        let previous = observed.swap(tx.timestamp(), Ordering::Relaxed);
        if previous != u64::MAX {
            assert_eq!(previous, tx.timestamp(), "timestamp changed across retries");
        }
        if attempts.fetch_add(1, Ordering::Relaxed) < 3 {
            Err(StmError::Aborted(AbortCause::ValidationFailed))
        } else {
            Ok(())
        }
    })
    .unwrap();
    assert_eq!(attempts.load(Ordering::Relaxed), 4);
    // A later transaction gets a strictly larger timestamp.
    let later = ctx.atomically(|tx| Ok(tx.timestamp())).unwrap();
    assert!(later > observed.load(Ordering::Relaxed));
}

#[test]
fn attempt_counter_increases_and_stats_record_retries() {
    let stm = Stm::builder().manager(GreedyManager::factory()).build();
    let mut ctx = stm.thread();
    let seen_attempts = std::cell::RefCell::new(Vec::new());
    ctx.atomically(|tx| {
        seen_attempts.borrow_mut().push(tx.attempt());
        if seen_attempts.borrow().len() < 3 {
            Err(StmError::Aborted(AbortCause::ValidationFailed))
        } else {
            Ok(())
        }
    })
    .unwrap();
    assert_eq!(*seen_attempts.borrow(), vec![1, 2, 3]);
    let snap = stm.stats().snapshot();
    assert_eq!(snap.transactions, 1);
    assert_eq!(snap.attempts, 3);
    assert_eq!(snap.commits, 1);
    assert_eq!(snap.aborts, 2);
    assert!(snap.attempts_per_commit() >= 3.0 - 1e-9);
}

#[test]
fn explicit_abort_discards_every_structure_effect() {
    let stm = Stm::builder().manager(ManagerKind::Polka.factory()).build();
    let list = TxList::new();
    let tree = TxRbTree::new();
    let queue = TxQueue::new();
    let counter = TxCounter::new();
    let mut ctx = stm.thread();
    let err = ctx
        .atomically(|tx| {
            list.insert(tx, 1)?;
            tree.insert(tx, 2)?;
            queue.enqueue(tx, 3)?;
            counter.add(tx, 10)?;
            tx.abort::<()>()
        })
        .unwrap_err();
    assert_eq!(err.abort_cause(), Some(AbortCause::Explicit));
    assert!(ctx.atomically(|tx| list.is_empty(tx)).unwrap());
    assert!(ctx.atomically(|tx| tree.is_empty(tx)).unwrap());
    assert!(ctx.atomically(|tx| queue.is_empty(tx)).unwrap());
    assert_eq!(counter.load(&stm), 0);
}

#[test]
fn load_committed_sees_only_committed_state() {
    let stm = Arc::new(Stm::builder().manager(GreedyManager::factory()).build());
    let cell = TVar::new(0i64);
    // A writer thread commits increasing values; a reader thread using the
    // non-transactional committed read must only ever observe committed
    // (monotonically increasing) values, never a torn or in-flight one.
    let writer = {
        let stm = Arc::clone(&stm);
        let cell = cell.clone();
        thread::spawn(move || {
            let mut ctx = stm.thread();
            for i in 1..=2_000i64 {
                ctx.atomically(|tx| tx.write(&cell, i)).unwrap();
            }
        })
    };
    let reader = {
        let cell = cell.clone();
        thread::spawn(move || {
            let mut last = 0i64;
            for _ in 0..20_000 {
                let v = cell.load_committed();
                assert!(v >= last, "committed value went backwards: {v} < {last}");
                assert!((0..=2_000).contains(&v));
                last = v;
            }
        })
    };
    writer.join().unwrap();
    reader.join().unwrap();
    assert_eq!(stm.read_atomic(&cell), 2_000);
}

#[test]
fn greedy_timeout_manager_works_in_the_real_runtime() {
    // The Section 6 extension must behave like greedy for ordinary workloads:
    // contended counters stay exact and long transactions finish.
    let stm = Arc::new(Stm::builder().manager(GreedyTimeoutManager::factory()).build());
    let counters: Vec<TxCounter> = (0..4).map(|_| TxCounter::new()).collect();
    thread::scope(|scope| {
        for t in 0..4usize {
            let stm = Arc::clone(&stm);
            let counters = counters.clone();
            scope.spawn(move || {
                let mut ctx = stm.thread();
                for i in 0..400usize {
                    let idx = (t + i) % counters.len();
                    ctx.atomically(|tx| {
                        counters[idx].increment(tx)?;
                        counters[(idx + 1) % counters.len()].increment(tx)?;
                        Ok(())
                    })
                    .unwrap();
                }
            });
        }
    });
    let total: i64 = counters.iter().map(|c| c.load(&stm)).sum();
    assert_eq!(total, 4 * 400 * 2);
}

#[test]
fn read_for_update_prevents_later_write_conflicts_in_the_same_txn() {
    let stm = Stm::default();
    let cell = TVar::new(5i64);
    let mut ctx = stm.thread();
    let doubled = ctx
        .atomically(|tx| {
            let current = tx.read_for_update(&cell)?;
            tx.write(&cell, current * 2)?;
            tx.read(&cell)
        })
        .unwrap();
    assert_eq!(doubled, 10);
    assert_eq!(stm.read_atomic(&cell), 10);
}

#[test]
fn stats_snapshot_is_consistent_after_a_contended_run() {
    let stm = Arc::new(Stm::builder().manager(ManagerKind::Karma.factory()).build());
    let counter = TxCounter::new();
    thread::scope(|scope| {
        for _ in 0..4 {
            let stm = Arc::clone(&stm);
            let counter = counter.clone();
            scope.spawn(move || {
                let mut ctx = stm.thread();
                for _ in 0..250 {
                    ctx.atomically(|tx| counter.increment(tx)).unwrap();
                }
            });
        }
    });
    let snap = stm.stats().snapshot();
    assert_eq!(snap.commits, 1000);
    assert_eq!(snap.transactions, 1000);
    assert_eq!(snap.attempts, snap.commits + snap.aborts);
    assert!(snap.writes >= snap.commits);
    assert!(snap.abort_ratio() < 1.0);
    assert_eq!(counter.load(&stm), 1000);
}

#[test]
fn managers_can_be_mixed_across_threads_without_breaking_safety() {
    // Half the threads use greedy, half use aggressive; safety (exact counts)
    // must hold regardless of which managers meet each other.
    let stm = Arc::new(Stm::builder().manager(ManagerKind::Greedy.factory()).build());
    let counter = TxCounter::new();
    thread::scope(|scope| {
        for i in 0..6usize {
            let stm = Arc::clone(&stm);
            let counter = counter.clone();
            scope.spawn(move || {
                let mut ctx = if i % 2 == 0 {
                    stm.thread_with(ManagerKind::Aggressive.factory()())
                } else {
                    stm.thread_with(ManagerKind::Greedy.factory()())
                };
                for _ in 0..200 {
                    ctx.atomically(|tx| counter.increment(tx)).unwrap();
                }
            });
        }
    });
    assert_eq!(counter.load(&stm), 1200);
}
