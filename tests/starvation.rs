//! Theorem 1 in practice: under the greedy manager a long transaction that
//! conflicts with a storm of short transactions still commits within a
//! bounded number of attempts (its timestamp only gets older, so eventually
//! it outranks every newcomer).

use greedy_stm::cm::ManagerKind;
use std::time::Duration;
use stm_bench::starvation_experiment;

#[test]
fn greedy_never_starves_the_long_transaction() {
    let result = starvation_experiment(ManagerKind::Greedy, 4, 24, Duration::from_millis(250));
    assert!(result.no_starvation, "greedy starved the long transaction: {result:?}");
    assert!(result.long_commits > 0);
    assert!(result.short_commits > 0);
}

#[test]
fn greedy_timeout_extension_also_avoids_starvation() {
    let result =
        starvation_experiment(ManagerKind::GreedyTimeout, 4, 24, Duration::from_millis(250));
    assert!(
        result.no_starvation,
        "greedy-timeout starved the long transaction: {result:?}"
    );
    assert!(result.long_commits > 0);
}

#[test]
fn timestamp_manager_also_completes_long_transactions() {
    // Scherer & Scott's timestamp manager is the other manager the paper
    // credits with progress if transactions can halt; it should also finish
    // long transactions here (no assertion on how many).
    let result = starvation_experiment(ManagerKind::Timestamp, 3, 16, Duration::from_millis(200));
    assert!(result.long_commits > 0, "timestamp never committed a long transaction");
}

#[test]
fn starvation_experiment_reports_consistent_counters() {
    let result = starvation_experiment(ManagerKind::Karma, 2, 8, Duration::from_millis(120));
    assert_eq!(result.manager, "karma");
    assert_eq!(result.short_threads, 2);
    assert!(result.worst_attempts == 0 || result.long_commits > 0);
    assert!(result.worst_latency >= Duration::ZERO);
}
