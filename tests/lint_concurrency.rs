//! Concurrency lint for the whole source tree (std-only, no regex, no
//! process spawning — it reads the files the same way a reviewer would).
//!
//! Three rules, each a separate test so a violation names its rule:
//!
//! 1. **`unsafe` stays quarantined.** The workspace's safety story is that
//!    every first-party crate is `#![forbid(unsafe_code)]` and the unsafe
//!    pointer games live in three audited vendored places:
//!    `vendor/minipoll/src/sys.rs` (FFI to poll(2)), `vendor/arcswap/`
//!    (the locator-publication protocol) and `vendor/loomlite/` (the model
//!    checker's own primitives). An `unsafe` token anywhere else fails.
//!
//! 2. **No `std::sync` locks in first-party code.** The rule of the repo
//!    is `parking_lot` (via each crate's `sync` facade where one exists):
//!    no poisoning boilerplate, and the facade is what lets the
//!    model-check feature swap in loomlite. `std::sync::Mutex` / `Condvar`
//!    / `RwLock` in non-test code of `crates/*/src` or `src/` fails
//!    (`std::sync::Arc` and `std::sync::atomic` remain fine).
//!
//! 3. **Non-`Relaxed` atomic orderings must justify themselves.** Every
//!    `SeqCst` / `Acquire` / `Release` / `AcqRel` in the hot-path scope
//!    (`crates/*/src`, `src/`, `vendor/arcswap/src`) needs a `// ordering:`
//!    comment on the same line or within the three lines above, stating
//!    what pairs with what — several of them point at the bounded model
//!    that proves the pairing load-bearing. `models.rs` files are exempt
//!    (they parameterize orderings on purpose), and scanning stops at
//!    `#[cfg(test)]`.

use std::fs;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Recursively collects `.rs` files under `dir` (which may not exist).
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// One source line split into its code part and its comment part.
struct SplitLine {
    code: String,
    comment: String,
}

/// Splits a file into per-line (code, comment) halves, tracking block
/// comments, string/char literals and raw strings across lines, so the
/// rules below never match inside a comment or a string — and so the
/// `// ordering:` markers (which *are* comments) can be found reliably.
fn split_lines(source: &str) -> Vec<SplitLine> {
    let mut lines = Vec::new();
    // Carries across lines: >0 = inside that many nested block comments;
    // a raw-string terminator like `"###` when inside a raw string; or a
    // plain `"` when inside a normal (multi-line) string literal.
    let mut block_depth = 0usize;
    let mut in_string: Option<String> = None;

    for raw in source.lines() {
        let mut code = String::new();
        let mut comment = String::new();
        let bytes: Vec<char> = raw.chars().collect();
        let mut i = 0;
        while i < bytes.len() {
            if block_depth > 0 {
                if bytes[i] == '/' && i + 1 < bytes.len() && bytes[i + 1] == '*' {
                    block_depth += 1;
                    comment.push_str("/*");
                    i += 2;
                } else if bytes[i] == '*' && i + 1 < bytes.len() && bytes[i + 1] == '/' {
                    block_depth -= 1;
                    comment.push_str("*/");
                    i += 2;
                } else {
                    comment.push(bytes[i]);
                    i += 1;
                }
                continue;
            }
            if let Some(term) = &in_string {
                // Inside a (possibly raw) string literal: eat until its
                // terminator; the contents count as neither code nor comment.
                let rest: String = bytes[i..].iter().collect();
                if term == "\"" && bytes[i] == '\\' {
                    i += 2; // skip the escaped character
                } else if rest.starts_with(term.as_str()) {
                    i += term.chars().count();
                    code.push('"'); // keep a placeholder so tokens split
                    in_string = None;
                } else {
                    i += 1;
                }
                continue;
            }
            match bytes[i] {
                '/' if i + 1 < bytes.len() && bytes[i + 1] == '/' => {
                    // Line comment: the rest of the line is comment.
                    comment.push_str(&bytes[i..].iter().collect::<String>());
                    i = bytes.len();
                }
                '/' if i + 1 < bytes.len() && bytes[i + 1] == '*' => {
                    block_depth += 1;
                    comment.push_str("/*");
                    i += 2;
                }
                '"' => {
                    code.push('"');
                    in_string = Some("\"".to_string());
                    i += 1;
                }
                'r' if i + 1 < bytes.len() && (bytes[i + 1] == '"' || bytes[i + 1] == '#') => {
                    // Possible raw string r"..." / r#"..."#.
                    let mut j = i + 1;
                    let mut hashes = 0;
                    while j < bytes.len() && bytes[j] == '#' {
                        hashes += 1;
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j] == '"' {
                        code.push('"');
                        in_string = Some(format!("\"{}", "#".repeat(hashes)));
                        i = j + 1;
                    } else {
                        code.push('r');
                        i += 1;
                    }
                }
                '\'' => {
                    // Char literal or lifetime. A char literal closes within
                    // a few characters; a lifetime has no closing quote.
                    if i + 2 < bytes.len() && bytes[i + 1] == '\\' {
                        let mut j = i + 2;
                        while j < bytes.len() && bytes[j] != '\'' {
                            j += 1;
                        }
                        code.push_str("' '");
                        i = j + 1;
                    } else if i + 2 < bytes.len() && bytes[i + 2] == '\'' {
                        code.push_str("' '");
                        i += 3;
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                }
                c => {
                    code.push(c);
                    i += 1;
                }
            }
        }
        lines.push(SplitLine { code, comment });
    }
    lines
}

/// Whether `code` contains `needle` as a standalone word (no identifier
/// character on either side).
fn has_token(code: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = after >= code.len()
            || !code[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root).unwrap_or(path).display().to_string()
}

/// Rule 1: `unsafe` appears only in the audited allowlist.
#[test]
fn unsafe_stays_in_the_audited_vendor_allowlist() {
    let root = repo_root();
    let allow = [
        "vendor/minipoll/src/sys.rs",
        "vendor/arcswap/",
        "vendor/loomlite/",
    ];
    let mut files = Vec::new();
    for dir in ["crates", "src", "tests", "vendor", "benches", "examples"] {
        rust_files(&root.join(dir), &mut files);
    }
    let mut violations = Vec::new();
    for path in files {
        let name = rel(&root, &path);
        if allow.iter().any(|a| name.starts_with(a)) {
            continue;
        }
        let source = fs::read_to_string(&path).unwrap();
        for (lineno, line) in split_lines(&source).iter().enumerate() {
            // `unsafe_code` (the forbid attribute) is a different token.
            if has_token(&line.code, "unsafe") {
                violations.push(format!("{name}:{}: {}", lineno + 1, line.code.trim()));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "`unsafe` outside the audited allowlist ({allow:?}):\n{}",
        violations.join("\n")
    );
}

/// Rule 2: first-party non-test code takes locks through `parking_lot`
/// (directly or via a `sync` facade), never `std::sync`.
#[test]
fn no_std_sync_locks_in_first_party_code() {
    let root = repo_root();
    let mut files = Vec::new();
    for dir in ["crates", "src"] {
        rust_files(&root.join(dir), &mut files);
    }
    let banned = ["Mutex", "Condvar", "RwLock"];
    let mut violations = Vec::new();
    for path in files {
        let name = rel(&root, &path);
        let source = fs::read_to_string(&path).unwrap();
        for (lineno, line) in split_lines(&source).iter().enumerate() {
            if line.code.contains("#[cfg(test)]") {
                break; // test modules may use whatever they like
            }
            if line.code.contains("std::sync::")
                && banned.iter().any(|b| has_token(&line.code, b))
            {
                violations.push(format!("{name}:{}: {}", lineno + 1, line.code.trim()));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "std::sync locks in first-party code (use parking_lot / the crate's sync facade):\n{}",
        violations.join("\n")
    );
}

/// Whether the strong-ordering use at `lineno` is covered by an
/// `// ordering:` comment: on the same line, or in the comment block /
/// multi-line statement directly above. One comment block justifies a
/// contiguous run of strong-ordering statements (the handshakes come in
/// pairs — publish + re-check — and share one explanation), but the search
/// stops at the first unrelated completed statement or blank line.
fn ordering_justified(lines: &[SplitLine], lineno: usize, strong: &[&str]) -> bool {
    if lines[lineno].comment.contains("ordering:") {
        return true;
    }
    let mut n = lineno;
    while n > 0 {
        n -= 1;
        let line = &lines[n];
        if line.comment.contains("ordering:") {
            return true;
        }
        let code = line.code.trim();
        if code.is_empty() {
            if line.comment.is_empty() {
                return false; // blank line: the run (if any) ended above it
            }
            continue; // comment-only line: keep scanning the block
        }
        let ends_statement = code.ends_with(';') || code.ends_with('{') || code.ends_with('}');
        let also_strong = strong
            .iter()
            .any(|o| line.code.contains(&format!("Ordering::{o}")));
        if ends_statement && !also_strong {
            return false; // crossed into an unrelated previous statement
        }
    }
    false
}

/// Rule 3: every non-`Relaxed` ordering in the hot-path scope carries a
/// `// ordering:` justification on the same line or in the comment block
/// directly above its statement (or run of paired statements).
#[test]
fn non_relaxed_orderings_are_justified() {
    let root = repo_root();
    let mut files = Vec::new();
    for dir in ["crates", "src", "vendor/arcswap/src"] {
        rust_files(&root.join(dir), &mut files);
    }
    let strong = ["SeqCst", "Acquire", "Release", "AcqRel"];
    let mut violations = Vec::new();
    for path in files {
        let name = rel(&root, &path);
        // Model modules parameterize orderings on purpose — weakening them
        // is their whole job.
        if path.file_name().is_some_and(|n| n == "models.rs") {
            continue;
        }
        let source = fs::read_to_string(&path).unwrap();
        let lines = split_lines(&source);
        for (lineno, line) in lines.iter().enumerate() {
            if line.code.contains("#[cfg(test)]") {
                break; // tests may hammer atomics without the ceremony
            }
            if line.code.trim_start().starts_with("use ") {
                continue; // imports of `Ordering::*` are not uses
            }
            let uses_strong = strong
                .iter()
                .any(|o| line.code.contains(&format!("Ordering::{o}")));
            if !uses_strong {
                continue;
            }
            if !ordering_justified(&lines, lineno, &strong) {
                violations.push(format!("{name}:{}: {}", lineno + 1, line.code.trim()));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "non-Relaxed atomic ordering without a `// ordering:` justification \
         (same line or within 3 lines above):\n{}",
        violations.join("\n")
    );
}

/// Negative self-tests: the machinery must actually *catch* violations,
/// not just pass on today's clean tree.
#[test]
fn the_lint_machinery_catches_violations() {
    // Token matching: attribute `unsafe_code` is not the keyword.
    assert!(has_token("unsafe fn foo()", "unsafe"));
    assert!(has_token("let x = unsafe { *p };", "unsafe"));
    assert!(!has_token("#![forbid(unsafe_code)]", "unsafe"));
    assert!(!has_token("my_unsafe_helper()", "unsafe"));

    // Comments and strings never trip the rules.
    let split = split_lines("let s = \"unsafe\"; // unsafe in prose\n/* unsafe */ let x = 1;");
    assert!(!has_token(&split[0].code, "unsafe"));
    assert!(split[0].comment.contains("unsafe"));
    assert!(!has_token(&split[1].code, "unsafe"));

    // An unjustified strong ordering is flagged...
    let strong = ["SeqCst", "Acquire", "Release", "AcqRel"];
    let bad = split_lines("fn f() {\n    x.store(1, Ordering::SeqCst);\n}");
    assert!(!ordering_justified(&bad, 1, &strong));

    // ...a justified one is not, including one block covering a paired run,
    // and the justification does not leak across a blank line.
    let good = split_lines(
        "fn f() {\n    // ordering: pairs with the reader's re-check.\n    x.store(1, Ordering::SeqCst);\n    y.load(Ordering::SeqCst);\n\n    z.store(2, Ordering::Release);\n}",
    );
    assert!(ordering_justified(&good, 2, &strong));
    assert!(ordering_justified(&good, 3, &strong));
    assert!(!ordering_justified(&good, 5, &strong));

    // Raw strings and char literals don't desynchronize the splitter.
    let tricky = split_lines("let r = r#\"unsafe \" quote\"#;\nlet c = '\"';\nunsafe {}");
    assert!(!has_token(&tricky[0].code, "unsafe"));
    assert!(!has_token(&tricky[1].code, "unsafe"));
    assert!(has_token(&tricky[2].code, "unsafe"));
}
