//! Observability surface tests: the `METRICS` exposition must expose a
//! stable, golden set of series names and labels, and both protocol
//! framings must be able to scrape it (and `SLOWLOG`) concurrently while
//! the server is under contended load.
//!
//! The golden-set test is the compatibility contract for dashboards: it
//! drives every op kind once, scrapes, and asserts each promised series
//! is present (and non-zero where the load guarantees mass). A second
//! scrape must yield byte-identical series *keys* — new samples may
//! accumulate, new series must not appear, so recording rules written
//! against one scrape keep working against the next.
//!
//! The concurrent test is the thread-safety witness: v1 and v2 clients
//! loop `METRICS`/`SLOWLOG` against an Events-mode server while transfer
//! threads keep the contention managers busy, and every scrape must
//! parse, histogram counts must be monotone, and the keyspace balance
//! must still conserve at the end.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use greedy_stm::cm::ManagerKind;
use greedy_stm::kv::{KvClient, KvServer, MetricsSnapshot, ServeMode, ServerConfig};

const OPS: [&str; 7] = ["GET", "PUT", "DEL", "ADD", "RANGE", "SUM", "EXEC"];

/// Every STM-runtime counter series the exposition promises.
const STM_COUNTERS: [&str; 7] = [
    "stm_transactions_total",
    "stm_attempts_total",
    "stm_commits_total",
    "stm_conflicts_total",
    "stm_waits_total",
    "stm_enemy_aborts_total",
    "stm_validation_failures_total",
];

const ABORT_CAUSES: [&str; 5] = [
    "killed_by_enemy",
    "manager_self_abort",
    "validation_failed",
    "commit_failed",
    "explicit",
];

const MANAGER_DECISIONS: [&str; 3] = ["wait", "abort_other", "abort_self"];

/// Every serving-layer counter the exposition promises.
const KV_COUNTERS: [&str; 7] = [
    "stm_kv_connections_total",
    "stm_kv_requests_total",
    "stm_kv_batches_total",
    "stm_kv_retries_total",
    "stm_kv_errors_total",
    "stm_kv_conns_reaped_idle_total",
    "stm_kv_partial_writes_total",
];

const KV_GAUGES: [&str; 4] = [
    "stm_kv_conns_open",
    "stm_kv_cells_allocated",
    "stm_kv_cells_freed",
    "stm_kv_cells_limbo",
];

/// Registry histograms that exist regardless of load (count may be 0 in
/// Threads mode for the event-loop ones — the series still render).
const KV_HISTOGRAMS: [&str; 5] = [
    "stm_kv_txn_attempts",
    "stm_kv_txn_latency_us",
    "stm_kv_poll_wait_us",
    "stm_kv_ready_batch",
    "stm_kv_drain_us",
];

fn temp_wal_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "stm-observability-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Drives every op kind at least once so each latency histogram has mass.
fn drive_all_ops(addr: std::net::SocketAddr) {
    let mut client = KvClient::connect(addr).unwrap();
    for key in 0..16 {
        client.put(key, 100).unwrap();
    }
    assert_eq!(client.get_int(3).unwrap(), Some(100));
    client.add(4, 7).unwrap();
    assert!(client.del(15).unwrap());
    assert_eq!(client.range(0, 3).unwrap().len(), 4);
    let (_, counted) = client.sum(0, 14).unwrap();
    assert_eq!(counted, 15);
    // One atomic batch so the EXEC histogram records too.
    client.transfer(0, 1, 25).unwrap();
    client.quit().unwrap();
}

/// The stable identity of a sample: its series key with the `le` bucket
/// label removed. Empty buckets are elided from the exposition, so
/// individual `_bucket` lines legitimately appear as latency mass lands
/// in new buckets — the *family + label set* is what must never drift.
fn stable_key(series: &str) -> String {
    if let Some(idx) = series.find(",le=\"") {
        format!("{}}}", &series[..idx])
    } else if let Some(idx) = series.find("{le=\"") {
        series[..idx].to_string()
    } else {
        series.to_string()
    }
}

fn series_keys(snapshot: &MetricsSnapshot) -> BTreeSet<String> {
    snapshot
        .samples()
        .map(|(series, _)| stable_key(series))
        .collect()
}

/// Asserts every series the exposition contract promises, returning the
/// scrape so callers can layer mode-specific checks on top.
fn assert_golden_set(snapshot: &MetricsSnapshot, driven: bool) {
    for name in STM_COUNTERS {
        assert!(
            snapshot.value(name).is_some(),
            "missing STM counter series {name}"
        );
    }
    for cause in ABORT_CAUSES {
        let series = format!("stm_aborts_total{{cause=\"{cause}\"}}");
        assert!(snapshot.value(&series).is_some(), "missing {series}");
    }
    for decision in MANAGER_DECISIONS {
        let series = format!("stm_manager_decisions_total{{decision=\"{decision}\"}}");
        assert!(snapshot.value(&series).is_some(), "missing {series}");
    }
    for name in KV_COUNTERS {
        assert!(
            snapshot.value(name).is_some(),
            "missing serving counter series {name}"
        );
    }
    for name in KV_GAUGES {
        assert!(
            snapshot.value(name).is_some(),
            "missing serving gauge series {name}"
        );
    }
    for name in KV_HISTOGRAMS {
        assert!(
            snapshot.histogram(name).is_some(),
            "missing histogram series {name}"
        );
    }
    // The per-op latency histogram registers all seven op labels up
    // front; each must be selectable on its own and fold together.
    let mut folded_count = 0u64;
    for op in OPS {
        let series = format!("stm_kv_op_latency_us{{op=\"{op}\"}}");
        let hist = snapshot
            .histogram(&series)
            .unwrap_or_else(|| panic!("missing {series}"));
        if driven {
            assert!(hist.count > 0, "{series} recorded nothing despite load");
        }
        folded_count += hist.count;
    }
    let folded = snapshot.histogram("stm_kv_op_latency_us").unwrap();
    assert_eq!(
        folded.count, folded_count,
        "unlabelled stm_kv_op_latency_us must fold all op label sets"
    );

    if driven {
        assert!(snapshot.value("stm_commits_total").unwrap() > 0);
        assert!(snapshot.value("stm_transactions_total").unwrap() > 0);
        assert!(snapshot.counter("stm_kv_requests_total") > 0);
        let attempts = snapshot.histogram("stm_kv_txn_attempts").unwrap();
        assert!(attempts.count > 0, "txn attempt histogram never fed");
        let txn_latency = snapshot.histogram("stm_kv_txn_latency_us").unwrap();
        assert_eq!(
            txn_latency.count, attempts.count,
            "attempt and latency histograms are fed from the same fold point"
        );
    }
}

#[test]
fn metrics_exposition_exposes_the_golden_series_set_in_both_modes() {
    for serve_mode in [ServeMode::Threads, ServeMode::Events] {
        let mut server = KvServer::start(ServerConfig {
            manager: ManagerKind::Greedy,
            capacity: 64,
            shards: 2,
            workers: 2,
            serve_mode,
            ..ServerConfig::default()
        })
        .expect("server must start");
        drive_all_ops(server.addr());

        let mut client = KvClient::connect(server.addr()).unwrap();
        let first = client.metrics().unwrap();
        assert_golden_set(&first, true);

        // Event-loop shard gauges exist exactly when the event backend
        // runs; a Threads-mode scrape must not invent them.
        let shard_gauges = first
            .samples()
            .filter(|(series, _)| series.starts_with("stm_kv_shard_conns{"))
            .count();
        match serve_mode {
            ServeMode::Events => assert!(
                shard_gauges > 0,
                "Events mode must export per-shard connection gauges"
            ),
            ServeMode::Threads => assert_eq!(
                shard_gauges, 0,
                "Threads mode must not export event-shard gauges"
            ),
        }
        // Exposition text sanity: typed families and a +Inf bucket.
        assert!(first.text.contains("# TYPE stm_kv_op_latency_us histogram"));
        assert!(first.text.contains("# TYPE stm_commits_total counter"));
        assert!(first.text.contains("# TYPE stm_kv_conns_open gauge"));
        assert!(first.text.contains("le=\"+Inf\""));

        // Stability: more traffic may grow counts, never the series set.
        drive_all_ops(server.addr());
        let second = client.metrics().unwrap();
        assert_eq!(
            series_keys(&first),
            series_keys(&second),
            "{serve_mode:?}: series key set drifted between scrapes"
        );
        assert_golden_set(&second, true);
        client.quit().unwrap();
        server.shutdown();
    }
}

#[test]
fn durable_server_exposes_wal_series() {
    let dir = temp_wal_dir("wal-series");
    let mut server = KvServer::start(ServerConfig {
        manager: ManagerKind::Greedy,
        capacity: 64,
        shards: 2,
        workers: 2,
        wal_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .expect("durable server must start");
    drive_all_ops(server.addr());

    let mut client = KvClient::connect(server.addr()).unwrap();
    let snapshot = client.metrics().unwrap();
    assert_golden_set(&snapshot, true);

    for name in ["stm_wal_batch_records", "stm_wal_fsync_us", "stm_wal_ring_occupancy"] {
        let hist = snapshot
            .histogram(name)
            .unwrap_or_else(|| panic!("missing WAL histogram {name}"));
        assert!(hist.count > 0, "{name} recorded nothing under EveryCommit");
    }
    for name in [
        "stm_wal_records_total",
        "stm_wal_bytes_total",
        "stm_wal_fsyncs_total",
        "stm_wal_snapshots_total",
        "stm_wal_next_seq",
        "stm_wal_durable_seq",
        "stm_wal_segments",
    ] {
        assert!(snapshot.value(name).is_some(), "missing WAL series {name}");
    }
    assert!(snapshot.value("stm_wal_records_total").unwrap() > 0);
    assert!(snapshot.value("stm_wal_fsyncs_total").unwrap() > 0);

    client.quit().unwrap();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mixed_v1_v2_clients_scrape_concurrently_under_load() {
    const KEYS: i64 = 16;
    const SEED_BALANCE: i64 = 100;
    const TOTAL: i64 = KEYS * SEED_BALANCE;
    const TRANSFER_THREADS: usize = 4;
    const TRANSFERS_EACH: usize = 150;

    let mut server = KvServer::start(ServerConfig {
        manager: ManagerKind::Greedy,
        capacity: KEYS,
        shards: 4,
        workers: 4,
        serve_mode: ServeMode::Events,
        ..ServerConfig::default()
    })
    .expect("server must start");
    let addr = server.addr();

    {
        let mut seeder = KvClient::connect(addr).unwrap();
        for key in 0..KEYS {
            seeder.put(key, SEED_BALANCE).unwrap();
        }
        seeder.quit().unwrap();
    }

    let stop = Arc::new(AtomicBool::new(false));
    thread::scope(|scope| {
        let mut load = Vec::new();
        for t in 0..TRANSFER_THREADS {
            load.push(scope.spawn(move || {
                let mut client = KvClient::connect(addr).unwrap();
                let mut x = 0x9e37_79b9_u64.wrapping_mul(t as u64 + 1);
                for _ in 0..TRANSFERS_EACH {
                    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9).wrapping_add(1);
                    let from = (x % KEYS as u64) as i64;
                    let to = ((x >> 17) % KEYS as u64) as i64;
                    if from != to {
                        client.transfer(from, to, 1).unwrap();
                    }
                }
                client.quit().unwrap();
            }));
        }

        // One scraper per protocol framing, hammering METRICS + SLOWLOG
        // while the transfers run. Both must parse every scrape and see
        // monotone histogram mass.
        let mut scrapers = Vec::new();
        for v1 in [false, true] {
            let stop = Arc::clone(&stop);
            scrapers.push(scope.spawn(move || {
                let mut client = if v1 {
                    KvClient::connect_v1(addr).unwrap()
                } else {
                    KvClient::connect(addr).unwrap()
                };
                let mut last_requests = 0u64;
                let mut last_op_count = 0u64;
                let mut scrapes = 0u32;
                while !stop.load(Ordering::Relaxed) || scrapes == 0 {
                    let snapshot = client.metrics().unwrap();
                    assert_golden_set(&snapshot, false);
                    let requests = snapshot.counter("stm_kv_requests_total");
                    let op_count = snapshot.histogram("stm_kv_op_latency_us").unwrap().count;
                    assert!(requests >= last_requests, "requests_total went backwards");
                    assert!(op_count >= last_op_count, "op histogram mass went backwards");
                    last_requests = requests;
                    last_op_count = op_count;

                    for entry in client.slowlog(5).unwrap() {
                        for field in [
                            "op=", "keys=", "attempts=", "aborts=", "causes=", "conflicts=",
                            "waits=", "enemy_aborts=", "wall_us=", "txn_us=",
                        ] {
                            assert!(
                                entry.contains(field),
                                "slowlog entry missing `{field}`: {entry}"
                            );
                        }
                    }
                    assert!(client.slowlog(0).unwrap().is_empty());
                    scrapes += 1;
                    thread::sleep(Duration::from_millis(2));
                }
                scrapes
            }));
        }

        for handle in load {
            handle.join().expect("transfer thread must not panic");
        }
        stop.store(true, Ordering::Relaxed);
        for handle in scrapers {
            let scrapes = handle.join().expect("scraper thread must not panic");
            assert!(scrapes > 0, "scraper never completed a scrape");
        }
    });

    // Serializability audit: closed transfers conserve the seeded total.
    let mut auditor = KvClient::connect(addr).unwrap();
    assert_eq!(auditor.sum(0, KEYS - 1).unwrap(), (TOTAL, KEYS as usize));

    let final_scrape = auditor.metrics().unwrap();
    // Not every op kind ran here (no GET/DEL/ADD/RANGE load), so only the
    // presence contract applies; mass checks follow for what did run.
    assert_golden_set(&final_scrape, false);
    assert!(final_scrape.value("stm_commits_total").unwrap() > 0);
    let folded = final_scrape.histogram("stm_kv_op_latency_us").unwrap();
    // Every transfer is one EXEC; seeds, audits and scrapes add more.
    assert!(
        folded.count >= (TRANSFER_THREADS * TRANSFERS_EACH) as u64 / 2,
        "op latency histogram undercounts the applied load"
    );
    auditor.quit().unwrap();
    server.shutdown();
}

/// The stats snapshot's directional identities must hold *while* commits
/// and aborts are racing the observer — `StmStats::snapshot` loads derived
/// counters before their bases (acquire, pairing with the release
/// increments), so a scrape can never report more finished attempts than
/// started ones, more cause-attributed aborts than aborts, or more
/// validation failures than aborts. Before that ordering, this test's
/// snapshot loop could observe `commits + aborts > attempts` and
/// `abort_ratio` went nonsensical.
#[test]
fn stats_snapshot_is_never_torn_under_concurrent_load() {
    use greedy_stm::prelude::*;

    let stm = Stm::builder().build();
    let stop = Arc::new(AtomicBool::new(false));
    let cell = TVar::new(0i64);

    thread::scope(|scope| {
        // Contended increments on one shared cell: plenty of commits,
        // aborts and validation failures from all four threads.
        for _ in 0..4 {
            let stm = &stm;
            let cell = &cell;
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut ctx = stm.thread();
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..64 {
                        ctx.atomically(|tx| tx.modify(cell, |v| v + 1)).unwrap();
                    }
                }
            });
        }

        let mut snapshots = 0u64;
        let deadline = std::time::Instant::now() + Duration::from_millis(400);
        while std::time::Instant::now() < deadline {
            let snap = stm.stats().snapshot();
            assert!(
                snap.commits + snap.aborts <= snap.attempts,
                "torn snapshot: {} commits + {} aborts > {} attempts",
                snap.commits,
                snap.aborts,
                snap.attempts
            );
            assert!(
                snap.aborts_by_cause.iter().sum::<u64>() <= snap.aborts,
                "torn snapshot: cause array sums past aborts: {snap:?}"
            );
            assert!(
                snap.validation_failures <= snap.aborts,
                "torn snapshot: validation failures exceed aborts: {snap:?}"
            );
            assert!(snap.abort_ratio() <= 1.0, "ratio out of range: {snap:?}");
            snapshots += 1;
        }
        stop.store(true, Ordering::Relaxed);
        assert!(snapshots > 100, "observer barely ran ({snapshots} snapshots)");
    });

    let settled = stm.stats().snapshot();
    assert_eq!(
        settled.commits + settled.aborts,
        settled.attempts,
        "at rest every attempt has exactly one outcome: {settled:?}"
    );
    assert_eq!(
        settled.aborts_by_cause.iter().sum::<u64>(),
        settled.aborts,
        "at rest the cause array accounts for every abort: {settled:?}"
    );
}
