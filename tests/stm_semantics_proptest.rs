//! Property-based tests of the STM runtime semantics themselves: sequences
//! of committed and explicitly-aborted transactions over a small heap of
//! `TVar`s must behave exactly like the same sequence applied to a plain
//! `Vec` model (aborted transactions contributing nothing), in both
//! read-visibility modes. Cases are drawn from a seeded PRNG so failures
//! reproduce deterministically.

use greedy_stm::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One primitive action inside a generated transaction.
#[derive(Debug, Clone, Copy)]
enum Action {
    /// Write `value` to the variable at `slot`.
    Write { slot: usize, value: i64 },
    /// Add the value at `from` to the variable at `to`.
    AddFrom { from: usize, to: usize },
    /// Multiply the variable at `slot` by two.
    Double { slot: usize },
}

/// A generated transaction: a list of actions plus whether it aborts at the
/// end instead of committing.
#[derive(Debug, Clone)]
struct GenTxn {
    actions: Vec<Action>,
    abort: bool,
}

const SLOTS: usize = 6;

fn random_action(rng: &mut SmallRng) -> Action {
    match rng.gen_range(0u32..3) {
        0 => Action::Write {
            slot: rng.gen_range(0..SLOTS),
            value: rng.gen_range(-100i64..100),
        },
        1 => Action::AddFrom {
            from: rng.gen_range(0..SLOTS),
            to: rng.gen_range(0..SLOTS),
        },
        _ => Action::Double {
            slot: rng.gen_range(0..SLOTS),
        },
    }
}

fn random_txn(rng: &mut SmallRng) -> GenTxn {
    let actions = (0..rng.gen_range(0usize..12))
        .map(|_| random_action(rng))
        .collect();
    GenTxn {
        actions,
        abort: rng.gen_bool(0.2),
    }
}

fn apply_model(model: &mut [i64], txn: &GenTxn) {
    if txn.abort {
        return;
    }
    for action in &txn.actions {
        match *action {
            Action::Write { slot, value } => model[slot] = value,
            Action::AddFrom { from, to } => model[to] = model[to].wrapping_add(model[from]),
            Action::Double { slot } => model[slot] = model[slot].wrapping_mul(2),
        }
    }
}

fn run_scenario(visibility: ReadVisibility, txns: &[GenTxn]) {
    let stm = Stm::builder()
        .manager(GreedyManager::factory())
        .read_visibility(visibility)
        .build();
    let vars: Vec<TVar<i64>> = (0..SLOTS).map(|i| TVar::new(i as i64)).collect();
    let mut model: Vec<i64> = (0..SLOTS as i64).collect();
    let mut ctx = stm.thread();
    for txn in txns {
        let outcome = ctx.atomically(|tx| {
            for action in &txn.actions {
                match *action {
                    Action::Write { slot, value } => tx.write(&vars[slot], value)?,
                    Action::AddFrom { from, to } => {
                        let add = tx.read(&vars[from])?;
                        tx.modify(&vars[to], |v| v.wrapping_add(add))?;
                    }
                    Action::Double { slot } => tx.modify(&vars[slot], |v| v.wrapping_mul(2))?,
                }
            }
            if txn.abort {
                tx.abort::<()>()
            } else {
                Ok(())
            }
        });
        if txn.abort {
            assert_eq!(
                outcome.unwrap_err().abort_cause(),
                Some(AbortCause::Explicit)
            );
        } else {
            outcome.unwrap();
        }
        apply_model(&mut model, txn);
        // After every transaction the committed state matches the model.
        let state: Vec<i64> = vars.iter().map(|v| stm.read_atomic(v)).collect();
        assert_eq!(state, model, "state diverged (visibility {visibility:?})");
    }
}

#[test]
fn sequential_transactions_match_the_model_visible() {
    let mut rng = SmallRng::seed_from_u64(0x5eed_000a);
    for _case in 0..64 {
        let txns: Vec<GenTxn> = (0..rng.gen_range(0usize..40))
            .map(|_| random_txn(&mut rng))
            .collect();
        run_scenario(ReadVisibility::Visible, &txns);
    }
}

#[test]
fn sequential_transactions_match_the_model_invisible() {
    let mut rng = SmallRng::seed_from_u64(0x1b_5eed);
    for _case in 0..64 {
        let txns: Vec<GenTxn> = (0..rng.gen_range(0usize..40))
            .map(|_| random_txn(&mut rng))
            .collect();
        run_scenario(ReadVisibility::Invisible, &txns);
    }
}

#[test]
fn read_your_own_writes_holds_for_arbitrary_action_sequences() {
    let mut rng = SmallRng::seed_from_u64(0x0444_5eed);
    for _case in 0..64 {
        let actions: Vec<Action> = (0..rng.gen_range(1usize..20))
            .map(|_| random_action(&mut rng))
            .collect();
        // Inside one transaction, reads must always observe the effect of the
        // transaction's own earlier writes, for arbitrary interleavings of
        // writes and read-modify-writes.
        let stm = Stm::builder().manager(GreedyManager::factory()).build();
        let vars: Vec<TVar<i64>> = (0..SLOTS).map(|_| TVar::new(0)).collect();
        let mut ctx = stm.thread();
        ctx.atomically(|tx| {
            let mut shadow = vec![0i64; SLOTS];
            for action in &actions {
                match *action {
                    Action::Write { slot, value } => {
                        tx.write(&vars[slot], value)?;
                        shadow[slot] = value;
                    }
                    Action::AddFrom { from, to } => {
                        let add = tx.read(&vars[from])?;
                        assert_eq!(add, shadow[from]);
                        tx.modify(&vars[to], |v| v.wrapping_add(add))?;
                        shadow[to] = shadow[to].wrapping_add(add);
                    }
                    Action::Double { slot } => {
                        tx.modify(&vars[slot], |v| v.wrapping_mul(2))?;
                        shadow[slot] = shadow[slot].wrapping_mul(2);
                    }
                }
            }
            for (var, expected) in vars.iter().zip(&shadow) {
                assert_eq!(tx.read(var)?, *expected);
            }
            Ok(())
        })
        .unwrap();
    }
}
