//! End-to-end tests of the `stm-kv` server: concurrent clients drive
//! multi-key `BEGIN`/`EXEC` batches through a live TCP server and the
//! executions must be serializable under **every** contention manager.
//!
//! The serializability witness is balance conservation: the keyspace is
//! seeded with a fixed total, every batch is a closed transfer (two `ADD`s
//! summing to zero), and every `SUM` audit — issued concurrently with the
//! transfers — must observe exactly the seeded total. A torn or
//! non-serializable execution shows up as a drifted sum either mid-run or
//! at the end.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use greedy_stm::cm::ManagerKind;
use greedy_stm::kv::{KvClient, KvServer, ServerConfig};

const KEYS: i64 = 16;
const SEED_BALANCE: i64 = 100;
const TOTAL: i64 = KEYS * SEED_BALANCE;

fn start_server(manager: ManagerKind, workers: usize) -> KvServer {
    KvServer::start(ServerConfig {
        manager,
        capacity: KEYS,
        shards: 4,
        workers,
        ..ServerConfig::default()
    })
    .expect("server must start")
}

fn seed_balances(addr: std::net::SocketAddr) {
    let mut client = KvClient::connect(addr).unwrap();
    for key in 0..KEYS {
        client.put(key, SEED_BALANCE).unwrap();
    }
    assert_eq!(client.sum(0, KEYS - 1).unwrap(), (TOTAL, KEYS as usize));
    client.quit().unwrap();
}

/// A deterministic little generator so the test needs no RNG plumbing.
fn scramble(x: u64) -> u64 {
    let mut x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    x ^= x >> 31;
    x.wrapping_mul(0xbf58_476d_1ce4_e5b9)
}

#[test]
fn concurrent_batches_are_serializable_under_every_manager() {
    for manager in ManagerKind::ALL {
        let clients = 4usize;
        let batches_per_client = 30usize;
        let mut server = start_server(manager, clients + 1);
        let addr = server.addr();
        seed_balances(addr);

        let audits_ok = Arc::new(AtomicU64::new(0));
        thread::scope(|scope| {
            for c in 0..clients {
                let audits_ok = Arc::clone(&audits_ok);
                scope.spawn(move || {
                    let mut client = KvClient::connect(addr).unwrap();
                    for i in 0..batches_per_client {
                        let roll = scramble((c * batches_per_client + i) as u64);
                        let from = (roll % KEYS as u64) as i64;
                        let to = ((roll >> 8) % KEYS as u64) as i64;
                        let amount = ((roll >> 16) % 40) as i64 + 1;
                        client
                            .transfer(from, to, amount)
                            .unwrap_or_else(|e| panic!("{manager}: transfer failed: {e}"));
                        // Interleave atomic audits with the transfers: each
                        // must observe the conserved total even while other
                        // clients' batches are in flight.
                        if i % 5 == 0 {
                            let (sum, count) = client
                                .sum(0, KEYS - 1)
                                .unwrap_or_else(|e| panic!("{manager}: SUM failed: {e}"));
                            assert_eq!(
                                sum, TOTAL,
                                "{manager}: mid-run audit observed a torn total"
                            );
                            assert_eq!(count, KEYS as usize);
                            audits_ok.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    client.quit().unwrap();
                });
            }
        });
        assert!(
            audits_ok.load(Ordering::Relaxed) >= (clients * batches_per_client / 5) as u64,
            "{manager}: audits did not run"
        );

        // Final audit over a fresh connection, then an in-process audit
        // through the server's own store handle — both must agree.
        let mut auditor = KvClient::connect(addr).unwrap();
        assert_eq!(
            auditor.sum(0, KEYS - 1).unwrap(),
            (TOTAL, KEYS as usize),
            "{manager}: wire-level final total drifted"
        );
        let stats = auditor.stats().unwrap();
        assert!(
            stats.batches >= (clients * batches_per_client) as u64,
            "{manager}: server executed {} batches, expected at least {}",
            stats.batches,
            clients * batches_per_client
        );
        auditor.quit().unwrap();
        let in_process = {
            let stm = Arc::clone(server.stm());
            let store = Arc::clone(server.store());
            let mut ctx = stm.thread();
            ctx.atomically(|tx| store.sum(tx, 0, KEYS - 1)).unwrap()
        };
        assert_eq!(
            in_process,
            (TOTAL, KEYS as usize),
            "{manager}: in-process final total drifted"
        );

        // Clean shutdown: joins the acceptor and every worker.
        server.shutdown();
    }
}

#[test]
fn server_survives_client_errors_and_disconnects() {
    let mut server = start_server(ManagerKind::GreedyTimeout, 3);
    let addr = server.addr();

    // A client that vanishes mid-batch must not wedge a worker.
    {
        let mut rude = KvClient::connect(addr).unwrap();
        rude.put(0, 1).unwrap();
        drop(rude); // no QUIT
    }
    // Dynamic keyspace: far-out keys are legal, and the connection survives
    // a durability request the volatile server must refuse.
    let mut client = KvClient::connect(addr).unwrap();
    assert_eq!(client.get(KEYS * 10).unwrap(), None);
    assert!(client.snapshot().unwrap_err().to_string().contains("durability disabled"));
    client.ping().unwrap();
    assert_eq!(client.get(0).unwrap(), Some(1));
    client.quit().unwrap();
    server.shutdown();
}

fn temp_wal_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "stm-kv-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_durable_server(
    manager: ManagerKind,
    workers: usize,
    dir: &std::path::Path,
    snapshot_every: u64,
) -> KvServer {
    KvServer::start(ServerConfig {
        manager,
        capacity: KEYS,
        shards: 4,
        workers,
        wal_dir: Some(dir.to_path_buf()),
        snapshot_every,
        ..ServerConfig::default()
    })
    .expect("durable server must start")
}

/// The restart-preserves-conservation test: concurrent wire transfers hit a
/// durable server; the server is shut down mid-history and restarted on the
/// same log directory; the recovered keyspace must hold exactly the
/// conserved total — every acknowledged transfer either fully applied or
/// fully absent, never torn.
#[test]
fn restart_preserves_balance_conservation() {
    for manager in [ManagerKind::Greedy, ManagerKind::Karma] {
        let dir = temp_wal_dir("conserve");
        let clients = 4usize;
        let batches_per_client = 25usize;
        {
            let mut server = start_durable_server(manager, clients + 1, &dir, 40);
            let addr = server.addr();
            seed_balances(addr);
            thread::scope(|scope| {
                for c in 0..clients {
                    scope.spawn(move || {
                        let mut client = KvClient::connect(addr).unwrap();
                        for i in 0..batches_per_client {
                            let roll = scramble((c * batches_per_client + i) as u64 ^ 0xD00D);
                            let from = (roll % KEYS as u64) as i64;
                            let to = ((roll >> 8) % KEYS as u64) as i64;
                            let amount = ((roll >> 16) % 40) as i64 + 1;
                            client
                                .transfer(from, to, amount)
                                .unwrap_or_else(|e| panic!("{manager}: transfer failed: {e}"));
                        }
                        client.quit().unwrap();
                    });
                }
            });
            server.shutdown();
        }
        // Restart on the same directory: snapshot + tail replay must
        // reconstruct a state some serial execution produced.
        let mut server = start_durable_server(manager, 2, &dir, 0);
        let mut auditor = KvClient::connect(server.addr()).unwrap();
        assert_eq!(
            auditor.sum(0, KEYS - 1).unwrap(),
            (TOTAL, KEYS as usize),
            "{manager}: recovered keyspace lost or tore a committed transfer"
        );
        // `next_seq` survives restarts: every seeding PUT and every transfer
        // batch was one log record, so the sequence space must cover them.
        let walstats = auditor.walstats().unwrap();
        assert!(
            walstats.next_seq > (clients * batches_per_client + KEYS as usize) as u64,
            "{manager}: expected every batch logged, next_seq={}",
            walstats.next_seq
        );
        auditor.quit().unwrap();
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Kill-and-restart with a torn tail: after a graceful close, mangle the
/// final bytes of the newest segment (what a crash mid-write leaves
/// behind); recovery must truncate the torn record and come back with a
/// conserved total over the surviving committed prefix.
#[test]
fn restart_truncates_a_torn_tail_and_stays_conserved() {
    let dir = temp_wal_dir("torn");
    {
        let mut server = start_durable_server(ManagerKind::Greedy, 3, &dir, 0);
        let addr = server.addr();
        seed_balances(addr);
        let mut client = KvClient::connect(addr).unwrap();
        for i in 0..30i64 {
            let from = i % KEYS;
            let to = (i * 7 + 1) % KEYS;
            if from != to {
                client.transfer(from, to, 5).unwrap();
            }
        }
        client.quit().unwrap();
        server.shutdown();
    }
    // Tear the newest segment: chop a few bytes off its final record.
    let mut segments: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let path = e.unwrap().path();
            (path.extension().is_some_and(|x| x == "log")).then_some(path)
        })
        .collect();
    segments.sort();
    let last = segments.last().expect("a segment must exist");
    let len = std::fs::metadata(last).unwrap().len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(last)
        .unwrap()
        .set_len(len - 7)
        .unwrap();

    let mut server = start_durable_server(ManagerKind::Greedy, 2, &dir, 0);
    let mut auditor = KvClient::connect(server.addr()).unwrap();
    // A transfer is one record (both ADDs in one transaction), so cutting
    // the final record drops a whole transfer — conservation still holds.
    assert_eq!(
        auditor.sum(0, KEYS - 1).unwrap(),
        (TOTAL, KEYS as usize),
        "torn tail must truncate to a committed prefix, not a torn transfer"
    );
    auditor.quit().unwrap();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bench_client_emits_throughput_latency_json_per_manager() {
    // The acceptance criterion: the closed-loop bench client drives a live
    // server per manager and emits the same JSON cells as the in-process
    // sweeps, with throughput and per-op latency populated.
    let mut cells = Vec::new();
    for manager in [ManagerKind::Greedy, ManagerKind::Karma] {
        let mut server = start_server(manager, 3);
        let cfg = stm_bench::NetLoadConfig {
            connections: 2,
            key_range: KEYS,
            duration: Duration::from_millis(60),
            mix: stm_bench::OpMix::read_mostly(),
            range_span: 4,
            batch_fraction: 0.25,
            ..stm_bench::NetLoadConfig::default()
        };
        let cell = stm_bench::run_netload(server.addr(), manager.name(), &cfg).unwrap();
        assert_eq!(cell.manager, manager.name());
        assert_eq!(cell.structure, "stm-kv");
        assert!(cell.commits > 0, "{manager}: no completed requests");
        assert!(cell.throughput > 0.0);
        assert!(!cell.per_op.is_empty(), "{manager}: no latency breakdown");
        cells.push(cell);
        server.shutdown();
    }
    let json = stm_bench::render_rows(&cells);
    for manager in ["greedy", "karma"] {
        assert!(
            json.contains(&format!("\"manager\": \"{manager}\"")),
            "JSON missing {manager} cell"
        );
    }
    assert!(json.contains("\"throughput\""));
    assert!(json.contains("\"p99_us\""));
}
