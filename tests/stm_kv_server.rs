//! End-to-end tests of the `stm-kv` server: concurrent clients drive
//! multi-key `BEGIN`/`EXEC` batches through a live TCP server and the
//! executions must be serializable under **every** contention manager.
//!
//! The serializability witness is balance conservation: the keyspace is
//! seeded with a fixed total, every batch is a closed transfer (two `ADD`s
//! summing to zero), and every `SUM` audit — issued concurrently with the
//! transfers — must observe exactly the seeded total. A torn or
//! non-serializable execution shows up as a drifted sum either mid-run or
//! at the end.
//!
//! Protocol v2 is the default client framing here (typed values, coded
//! errors); dedicated tests drive a v1 text client and a v2 framed client
//! **concurrently** against one server, and prove that a WAL written in
//! the v1-era integer-only format recovers losslessly into the typed
//! store.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use greedy_stm::cm::ManagerKind;
use greedy_stm::kv::{KvClient, KvError, KvServer, ServerConfig, Value};

const KEYS: i64 = 16;
const SEED_BALANCE: i64 = 100;
const TOTAL: i64 = KEYS * SEED_BALANCE;

fn start_server(manager: ManagerKind, workers: usize) -> KvServer {
    KvServer::start(ServerConfig {
        manager,
        capacity: KEYS,
        shards: 4,
        workers,
        ..ServerConfig::default()
    })
    .expect("server must start")
}

fn seed_balances(addr: std::net::SocketAddr) {
    let mut client = KvClient::connect(addr).unwrap();
    for key in 0..KEYS {
        client.put(key, SEED_BALANCE).unwrap();
    }
    assert_eq!(client.sum(0, KEYS - 1).unwrap(), (TOTAL, KEYS as usize));
    client.quit().unwrap();
}

/// A deterministic little generator so the test needs no RNG plumbing.
fn scramble(x: u64) -> u64 {
    let mut x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    x ^= x >> 31;
    x.wrapping_mul(0xbf58_476d_1ce4_e5b9)
}

#[test]
fn concurrent_batches_are_serializable_under_every_manager() {
    for manager in ManagerKind::ALL {
        let clients = 4usize;
        let batches_per_client = 30usize;
        let mut server = start_server(manager, clients + 1);
        let addr = server.addr();
        seed_balances(addr);

        let audits_ok = Arc::new(AtomicU64::new(0));
        thread::scope(|scope| {
            for c in 0..clients {
                let audits_ok = Arc::clone(&audits_ok);
                scope.spawn(move || {
                    let mut client = KvClient::connect(addr).unwrap();
                    assert_eq!(client.protocol_version(), 2);
                    for i in 0..batches_per_client {
                        let roll = scramble((c * batches_per_client + i) as u64);
                        let from = (roll % KEYS as u64) as i64;
                        let to = ((roll >> 8) % KEYS as u64) as i64;
                        let amount = ((roll >> 16) % 40) as i64 + 1;
                        client
                            .transfer(from, to, amount)
                            .unwrap_or_else(|e| panic!("{manager}: transfer failed: {e}"));
                        // Interleave atomic audits with the transfers: each
                        // must observe the conserved total even while other
                        // clients' batches are in flight.
                        if i % 5 == 0 {
                            let (sum, count) = client
                                .sum(0, KEYS - 1)
                                .unwrap_or_else(|e| panic!("{manager}: SUM failed: {e}"));
                            assert_eq!(
                                sum, TOTAL,
                                "{manager}: mid-run audit observed a torn total"
                            );
                            assert_eq!(count, KEYS as usize);
                            audits_ok.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    client.quit().unwrap();
                });
            }
        });
        assert!(
            audits_ok.load(Ordering::Relaxed) >= (clients * batches_per_client / 5) as u64,
            "{manager}: audits did not run"
        );

        // Final audit over a fresh connection, then an in-process audit
        // through the server's own store handle — both must agree.
        let mut auditor = KvClient::connect(addr).unwrap();
        assert_eq!(
            auditor.sum(0, KEYS - 1).unwrap(),
            (TOTAL, KEYS as usize),
            "{manager}: wire-level final total drifted"
        );
        let stats = auditor.stats().unwrap();
        assert!(
            stats.batches >= (clients * batches_per_client) as u64,
            "{manager}: server executed {} batches, expected at least {}",
            stats.batches,
            clients * batches_per_client
        );
        assert!(
            stats.cells_allocated >= KEYS as u64,
            "{manager}: STATS must report keyspace growth, got {stats:?}"
        );
        auditor.quit().unwrap();
        let in_process = {
            let stm = Arc::clone(server.stm());
            let store = Arc::clone(server.store());
            let mut ctx = stm.thread();
            ctx.atomically(|tx| store.sum(tx, 0, KEYS - 1)).unwrap().unwrap()
        };
        assert_eq!(
            in_process,
            (TOTAL, KEYS as usize),
            "{manager}: in-process final total drifted"
        );

        // Clean shutdown: joins the acceptor and every worker.
        server.shutdown();
    }
}

/// The mixed-version acceptance criterion: a v1 text client and a v2 framed
/// client run concurrent conserving transfers against one live server, with
/// typed string traffic in flight on a disjoint key range; every audit from
/// both protocol generations observes the conserved total.
#[test]
fn v1_and_v2_clients_transfer_concurrently_and_conserve() {
    let mut server = start_server(ManagerKind::Greedy, 4);
    let addr = server.addr();
    seed_balances(addr);

    thread::scope(|scope| {
        // The v1 text client: integer transfers + audits.
        scope.spawn(move || {
            let mut client = KvClient::connect_v1(addr).unwrap();
            assert_eq!(client.protocol_version(), 1);
            for i in 0..40usize {
                let roll = scramble(i as u64 ^ 0x11);
                let from = (roll % KEYS as u64) as i64;
                let to = ((roll >> 8) % KEYS as u64) as i64;
                client.transfer(from, to, ((roll >> 16) % 20) as i64 + 1).unwrap();
                if i % 5 == 0 {
                    assert_eq!(
                        client.sum(0, KEYS - 1).unwrap().0,
                        TOTAL,
                        "v1 audit observed a torn total"
                    );
                }
            }
            client.quit().unwrap();
        });
        // The v2 framed client: integer transfers + typed string writes on
        // the negative keys (outside the audit window).
        scope.spawn(move || {
            let mut client = KvClient::connect(addr).unwrap();
            assert_eq!(client.protocol_version(), 2);
            for i in 0..40usize {
                let roll = scramble(i as u64 ^ 0x22);
                let from = (roll % KEYS as u64) as i64;
                let to = ((roll >> 8) % KEYS as u64) as i64;
                client.transfer(from, to, ((roll >> 16) % 20) as i64 + 1).unwrap();
                client
                    .put(-(i as i64) - 1, format!("payload {i}\nwith\nnewlines"))
                    .unwrap();
                if i % 5 == 0 {
                    assert_eq!(
                        client.sum(0, KEYS - 1).unwrap().0,
                        TOTAL,
                        "v2 audit observed a torn total"
                    );
                }
            }
            client.quit().unwrap();
        });
    });

    // Both generations agree on the final state.
    let mut v1 = KvClient::connect_v1(addr).unwrap();
    let mut v2 = KvClient::connect(addr).unwrap();
    assert_eq!(v1.sum(0, KEYS - 1).unwrap(), (TOTAL, KEYS as usize));
    assert_eq!(v2.sum(0, KEYS - 1).unwrap(), (TOTAL, KEYS as usize));
    assert_eq!(
        v2.get_str(-1).unwrap().as_deref(),
        Some("payload 0\nwith\nnewlines")
    );
    v1.quit().unwrap();
    v2.quit().unwrap();
    server.shutdown();
}

#[test]
fn server_survives_client_errors_and_disconnects() {
    let mut server = start_server(ManagerKind::GreedyTimeout, 3);
    let addr = server.addr();

    // A client that vanishes mid-batch must not wedge a worker.
    {
        let mut rude = KvClient::connect(addr).unwrap();
        rude.put(0, 1).unwrap();
        drop(rude); // no QUIT
    }
    // Dynamic keyspace: far-out keys are legal, and the connection survives
    // a durability request the volatile server must refuse — with a coded
    // error, not an opaque string.
    let mut client = KvClient::connect(addr).unwrap();
    assert_eq!(client.get(KEYS * 10).unwrap(), None);
    match client.snapshot().unwrap_err() {
        KvError::Server { code, message } => {
            assert_eq!(code, greedy_stm::kv::ErrorCode::Wal, "{message}");
            assert!(message.contains("durability disabled"), "{message}");
        }
        other => panic!("expected coded server error, got {other}"),
    }
    client.ping().unwrap();
    assert_eq!(client.get(0).unwrap(), Some(Value::Int(1)));
    client.quit().unwrap();
    server.shutdown();
}

fn temp_wal_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "stm-kv-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_durable_server(
    manager: ManagerKind,
    workers: usize,
    dir: &std::path::Path,
    snapshot_every: u64,
) -> KvServer {
    KvServer::start(ServerConfig {
        manager,
        capacity: KEYS,
        shards: 4,
        workers,
        wal_dir: Some(dir.to_path_buf()),
        snapshot_every,
        ..ServerConfig::default()
    })
    .expect("durable server must start")
}

/// The restart-preserves-conservation test: concurrent wire transfers hit a
/// durable server; the server is shut down mid-history and restarted on the
/// same log directory; the recovered keyspace must hold exactly the
/// conserved total — every acknowledged transfer either fully applied or
/// fully absent, never torn.
#[test]
fn restart_preserves_balance_conservation() {
    for manager in [ManagerKind::Greedy, ManagerKind::Karma] {
        let dir = temp_wal_dir("conserve");
        let clients = 4usize;
        let batches_per_client = 25usize;
        {
            let mut server = start_durable_server(manager, clients + 1, &dir, 40);
            let addr = server.addr();
            seed_balances(addr);
            thread::scope(|scope| {
                for c in 0..clients {
                    scope.spawn(move || {
                        let mut client = KvClient::connect(addr).unwrap();
                        for i in 0..batches_per_client {
                            let roll = scramble((c * batches_per_client + i) as u64 ^ 0xD00D);
                            let from = (roll % KEYS as u64) as i64;
                            let to = ((roll >> 8) % KEYS as u64) as i64;
                            let amount = ((roll >> 16) % 40) as i64 + 1;
                            client
                                .transfer(from, to, amount)
                                .unwrap_or_else(|e| panic!("{manager}: transfer failed: {e}"));
                        }
                        client.quit().unwrap();
                    });
                }
            });
            server.shutdown();
        }
        // Restart on the same directory: snapshot + tail replay must
        // reconstruct a state some serial execution produced.
        let mut server = start_durable_server(manager, 2, &dir, 0);
        let mut auditor = KvClient::connect(server.addr()).unwrap();
        assert_eq!(
            auditor.sum(0, KEYS - 1).unwrap(),
            (TOTAL, KEYS as usize),
            "{manager}: recovered keyspace lost or tore a committed transfer"
        );
        // `next_seq` survives restarts: every seeding PUT and every transfer
        // batch was one log record, so the sequence space must cover them.
        let walstats = auditor.walstats().unwrap();
        assert!(
            walstats.next_seq > (clients * batches_per_client + KEYS as usize) as u64,
            "{manager}: expected every batch logged, next_seq={}",
            walstats.next_seq
        );
        auditor.quit().unwrap();
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Typed values survive the full durability loop: strings and blobs written
/// over v2 (newlines, NULs, multi-byte UTF-8), snapshot taken mid-history,
/// more typed writes, restart — everything must come back byte-exact.
#[test]
fn restart_recovers_typed_values_through_snapshot_and_tail() {
    let dir = temp_wal_dir("typed");
    let text_snap = "snapshotted\nstring \0 with — ✓ 🦀";
    let text_tail = "tail\u{0}string\nafter the cut";
    let blob: Vec<u8> = vec![0, 255, 10, 13, 0, 42];
    {
        let mut server = start_durable_server(ManagerKind::Greedy, 3, &dir, 0);
        let mut client = KvClient::connect(server.addr()).unwrap();
        client.put(1, text_snap).unwrap();
        client.put(2, blob.clone()).unwrap();
        client.put(3, 300).unwrap();
        let (seq, keys) = client.snapshot().unwrap();
        assert!(seq > 0);
        assert_eq!(keys, 3);
        // Post-snapshot tail: an overwrite and a fresh typed key.
        client.put(1, text_tail).unwrap();
        client.put(-7, "negative key survives too").unwrap();
        client.del(3).unwrap();
        client.quit().unwrap();
        server.shutdown();
    }
    let mut server = start_durable_server(ManagerKind::Greedy, 2, &dir, 0);
    let mut client = KvClient::connect(server.addr()).unwrap();
    assert_eq!(client.get_str(1).unwrap().as_deref(), Some(text_tail));
    assert_eq!(client.get_bytes(2).unwrap(), Some(blob));
    assert_eq!(client.get(3).unwrap(), None, "deleted key must stay deleted");
    assert_eq!(
        client.get_str(-7).unwrap().as_deref(),
        Some("negative key survives too")
    );
    client.quit().unwrap();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// PUT+DEL churn over a rolling window of overflow keys, then restart:
/// recovery folds the log to its final live keyspace, so a key whose last
/// logged op is a `DEL` must not materialise a value cell in the rebuilt
/// store — the restarted server's `cells=` gauge counts only the
/// pre-allocated range plus the keys actually alive at shutdown.
#[test]
fn restart_after_churn_does_not_resurrect_tombstoned_cells() {
    let dir = temp_wal_dir("churn");
    let base = 1_000_000i64;
    let churned = 200i64;
    let window = 10i64;
    {
        let mut server = start_durable_server(ManagerKind::Greedy, 2, &dir, 0);
        let mut client = KvClient::connect(server.addr()).unwrap();
        for i in 0..churned {
            client.put(base + i, i).unwrap();
            if i >= window {
                assert!(client.del(base + i - window).unwrap());
            }
        }
        client.quit().unwrap();
        server.shutdown();
    }
    let mut server = start_durable_server(ManagerKind::Greedy, 2, &dir, 0);
    let mut client = KvClient::connect(server.addr()).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(
        stats.cells_allocated,
        (KEYS + window) as u64,
        "replay must allocate cells only for keys alive at shutdown: {stats:?}"
    );
    assert_eq!(
        stats.cells_freed + stats.limbo,
        0,
        "a live-pairs replay never retires anything: {stats:?}"
    );
    // Everything outside the final window stayed deleted; the window survived.
    assert_eq!(client.get(base).unwrap(), None, "tombstoned key came back");
    assert_eq!(client.get(base + churned - window - 1).unwrap(), None);
    for i in (churned - window)..churned {
        assert_eq!(client.get_int(base + i).unwrap(), Some(i), "live key lost");
    }
    client.quit().unwrap();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The v1-compatibility acceptance criterion, property-tested: a WAL
/// directory written entirely in the **v1 format** (magic-less segments of
/// integer-only records plus an optional v1 snapshot — exactly what a
/// server predating this protocol left behind) must recover losslessly
/// into the typed v2 server, for seeded random histories.
#[test]
fn v1_format_wal_replays_losslessly_into_the_v2_server() {
    use greedy_stm::log::{record, snapshot};
    use std::collections::BTreeMap;
    use std::io::Write;
    use stm_core::{CommitOp, CommitValue};

    for seed in 0..5u64 {
        let dir = temp_wal_dir(&format!("v1wal-{seed}"));
        std::fs::create_dir_all(&dir).unwrap();

        // A seeded integer-only history, as a v1 server would have logged
        // it (deterministic scramble; no RNG plumbing).
        let transactions = 30 + (scramble(seed) % 50) as usize;
        let mut model: BTreeMap<i64, i64> = BTreeMap::new();
        let mut golden: Vec<Vec<CommitOp>> = Vec::new();
        for t in 0..transactions {
            let roll = scramble(seed * 1000 + t as u64);
            let key = (roll % 24) as i64;
            let op = if roll.is_multiple_of(5) {
                model.remove(&key);
                CommitOp::del(key)
            } else {
                let value = ((roll >> 16) % 2000) as i64 - 1000;
                model.insert(key, value);
                CommitOp::put(key, value)
            };
            golden.push(vec![op]);
        }
        // Split into two magic-less v1 segments.
        let split = 1 + (scramble(seed ^ 0xF00) % transactions as u64) as usize;
        let mut seg = Vec::new();
        for (i, ops) in golden[..split].iter().enumerate() {
            record::encode_v1_into(&mut seg, (i + 1) as u64, ops);
        }
        std::fs::File::create(dir.join(format!("wal-{:020}.log", 1)))
            .unwrap()
            .write_all(&seg)
            .unwrap();
        if split < transactions {
            let mut seg = Vec::new();
            for (i, ops) in golden[split..].iter().enumerate() {
                record::encode_v1_into(&mut seg, (split + i + 1) as u64, ops);
            }
            std::fs::File::create(dir.join(format!("wal-{:020}.log", split + 1)))
                .unwrap()
                .write_all(&seg)
                .unwrap();
        }
        // Half the seeds also get a v1 snapshot covering a prefix.
        if seed % 2 == 0 {
            let snap_at = 1 + (scramble(seed ^ 0xBEEF) % split as u64);
            let mut at_cut: BTreeMap<i64, i64> = BTreeMap::new();
            for ops in &golden[..snap_at as usize] {
                for op in ops {
                    match op {
                        CommitOp::Put { id, value } => {
                            at_cut.insert(*id, value.as_int().unwrap());
                        }
                        CommitOp::Del { id } => {
                            at_cut.remove(id);
                        }
                    }
                }
            }
            let pairs: Vec<(i64, CommitValue)> = at_cut
                .into_iter()
                .map(|(k, v)| (k, CommitValue::Int(v)))
                .collect();
            let bytes = snapshot::encode_v1(snap_at, &pairs);
            std::fs::File::create(dir.join(snapshot::snapshot_file_name(snap_at)))
                .unwrap()
                .write_all(&bytes)
                .unwrap();
        }

        // Start the v2 server on the v1-era directory: the typed store must
        // hold exactly the model state.
        let mut server = start_durable_server(ManagerKind::Greedy, 2, &dir, 0);
        let mut client = KvClient::connect(server.addr()).unwrap();
        for key in 0..24i64 {
            assert_eq!(
                client.get_int(key).unwrap(),
                model.get(&key).copied(),
                "seed {seed}: key {key} diverged after v1 replay"
            );
        }
        let expected_total: i64 = model.values().sum();
        assert_eq!(
            client.sum(0, 23).unwrap(),
            (expected_total, model.len()),
            "seed {seed}: v1 WAL replay lost or invented state"
        );
        // The upgraded server continues the same log with typed values...
        client.put(100, "typed value after upgrade").unwrap();
        client.quit().unwrap();
        server.shutdown();
        // ...and both generations survive the next restart.
        let mut server = start_durable_server(ManagerKind::Greedy, 2, &dir, 0);
        let mut client = KvClient::connect(server.addr()).unwrap();
        assert_eq!(client.sum(0, 23).unwrap(), (expected_total, model.len()));
        assert_eq!(
            client.get_str(100).unwrap().as_deref(),
            Some("typed value after upgrade"),
            "seed {seed}: typed tail lost on the second restart"
        );
        client.quit().unwrap();
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Kill-and-restart with a torn tail: after a graceful close, mangle the
/// final bytes of the newest segment (what a crash mid-write leaves
/// behind); recovery must truncate the torn record and come back with a
/// conserved total over the surviving committed prefix.
#[test]
fn restart_truncates_a_torn_tail_and_stays_conserved() {
    let dir = temp_wal_dir("torn");
    {
        let mut server = start_durable_server(ManagerKind::Greedy, 3, &dir, 0);
        let addr = server.addr();
        seed_balances(addr);
        let mut client = KvClient::connect(addr).unwrap();
        for i in 0..30i64 {
            let from = i % KEYS;
            let to = (i * 7 + 1) % KEYS;
            if from != to {
                client.transfer(from, to, 5).unwrap();
            }
        }
        client.quit().unwrap();
        server.shutdown();
    }
    // Tear the newest segment: chop a few bytes off its final record.
    let mut segments: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let path = e.unwrap().path();
            (path.extension().is_some_and(|x| x == "log")).then_some(path)
        })
        .collect();
    segments.sort();
    let last = segments.last().expect("a segment must exist");
    let len = std::fs::metadata(last).unwrap().len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(last)
        .unwrap()
        .set_len(len - 7)
        .unwrap();

    let mut server = start_durable_server(ManagerKind::Greedy, 2, &dir, 0);
    let mut auditor = KvClient::connect(server.addr()).unwrap();
    // A transfer is one record (both ADDs in one transaction), so cutting
    // the final record drops a whole transfer — conservation still holds.
    assert_eq!(
        auditor.sum(0, KEYS - 1).unwrap(),
        (TOTAL, KEYS as usize),
        "torn tail must truncate to a committed prefix, not a torn transfer"
    );
    auditor.quit().unwrap();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bench_client_emits_throughput_latency_json_per_manager() {
    // The acceptance criterion: the closed-loop bench client drives a live
    // server per manager and emits the same JSON cells as the in-process
    // sweeps, with throughput and per-op latency populated.
    let mut cells = Vec::new();
    for manager in [ManagerKind::Greedy, ManagerKind::Karma] {
        let mut server = start_server(manager, 3);
        let cfg = stm_bench::NetLoadConfig {
            connections: 2,
            key_range: KEYS,
            duration: Duration::from_millis(60),
            mix: stm_bench::OpMix::read_mostly(),
            range_span: 4,
            batch_fraction: 0.25,
            ..stm_bench::NetLoadConfig::default()
        };
        let cell = stm_bench::run_netload(server.addr(), manager.name(), &cfg).unwrap();
        assert_eq!(cell.manager, manager.name());
        assert_eq!(cell.structure, "stm-kv");
        assert!(cell.commits > 0, "{manager}: no completed requests");
        assert!(cell.throughput > 0.0);
        assert!(!cell.per_op.is_empty(), "{manager}: no latency breakdown");
        cells.push(cell);
        server.shutdown();
    }
    let json = stm_bench::render_rows(&cells);
    for manager in ["greedy", "karma"] {
        assert!(
            json.contains(&format!("\"manager\": \"{manager}\"")),
            "JSON missing {manager} cell"
        );
    }
    assert!(json.contains("\"throughput\""));
    assert!(json.contains("\"p99_us\""));
}
