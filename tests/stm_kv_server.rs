//! End-to-end tests of the `stm-kv` server: concurrent clients drive
//! multi-key `BEGIN`/`EXEC` batches through a live TCP server and the
//! executions must be serializable under **every** contention manager.
//!
//! The serializability witness is balance conservation: the keyspace is
//! seeded with a fixed total, every batch is a closed transfer (two `ADD`s
//! summing to zero), and every `SUM` audit — issued concurrently with the
//! transfers — must observe exactly the seeded total. A torn or
//! non-serializable execution shows up as a drifted sum either mid-run or
//! at the end.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use greedy_stm::cm::ManagerKind;
use greedy_stm::kv::{KvClient, KvServer, ServerConfig};

const KEYS: i64 = 16;
const SEED_BALANCE: i64 = 100;
const TOTAL: i64 = KEYS * SEED_BALANCE;

fn start_server(manager: ManagerKind, workers: usize) -> KvServer {
    KvServer::start(ServerConfig {
        manager,
        capacity: KEYS,
        shards: 4,
        workers,
        ..ServerConfig::default()
    })
    .expect("server must start")
}

fn seed_balances(addr: std::net::SocketAddr) {
    let mut client = KvClient::connect(addr).unwrap();
    for key in 0..KEYS {
        client.put(key, SEED_BALANCE).unwrap();
    }
    assert_eq!(client.sum(0, KEYS - 1).unwrap(), (TOTAL, KEYS as usize));
    client.quit().unwrap();
}

/// A deterministic little generator so the test needs no RNG plumbing.
fn scramble(x: u64) -> u64 {
    let mut x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    x ^= x >> 31;
    x.wrapping_mul(0xbf58_476d_1ce4_e5b9)
}

#[test]
fn concurrent_batches_are_serializable_under_every_manager() {
    for manager in ManagerKind::ALL {
        let clients = 4usize;
        let batches_per_client = 30usize;
        let mut server = start_server(manager, clients + 1);
        let addr = server.addr();
        seed_balances(addr);

        let audits_ok = Arc::new(AtomicU64::new(0));
        thread::scope(|scope| {
            for c in 0..clients {
                let audits_ok = Arc::clone(&audits_ok);
                scope.spawn(move || {
                    let mut client = KvClient::connect(addr).unwrap();
                    for i in 0..batches_per_client {
                        let roll = scramble((c * batches_per_client + i) as u64);
                        let from = (roll % KEYS as u64) as i64;
                        let to = ((roll >> 8) % KEYS as u64) as i64;
                        let amount = ((roll >> 16) % 40) as i64 + 1;
                        client
                            .transfer(from, to, amount)
                            .unwrap_or_else(|e| panic!("{manager}: transfer failed: {e}"));
                        // Interleave atomic audits with the transfers: each
                        // must observe the conserved total even while other
                        // clients' batches are in flight.
                        if i % 5 == 0 {
                            let (sum, count) = client
                                .sum(0, KEYS - 1)
                                .unwrap_or_else(|e| panic!("{manager}: SUM failed: {e}"));
                            assert_eq!(
                                sum, TOTAL,
                                "{manager}: mid-run audit observed a torn total"
                            );
                            assert_eq!(count, KEYS as usize);
                            audits_ok.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    client.quit().unwrap();
                });
            }
        });
        assert!(
            audits_ok.load(Ordering::Relaxed) >= (clients * batches_per_client / 5) as u64,
            "{manager}: audits did not run"
        );

        // Final audit over a fresh connection, then an in-process audit
        // through the server's own store handle — both must agree.
        let mut auditor = KvClient::connect(addr).unwrap();
        assert_eq!(
            auditor.sum(0, KEYS - 1).unwrap(),
            (TOTAL, KEYS as usize),
            "{manager}: wire-level final total drifted"
        );
        let stats = auditor.stats().unwrap();
        assert!(
            stats.batches >= (clients * batches_per_client) as u64,
            "{manager}: server executed {} batches, expected at least {}",
            stats.batches,
            clients * batches_per_client
        );
        auditor.quit().unwrap();
        let in_process = {
            let stm = Arc::clone(server.stm());
            let store = Arc::clone(server.store());
            let mut ctx = stm.thread();
            ctx.atomically(|tx| store.sum(tx, 0, KEYS - 1)).unwrap()
        };
        assert_eq!(
            in_process,
            (TOTAL, KEYS as usize),
            "{manager}: in-process final total drifted"
        );

        // Clean shutdown: joins the acceptor and every worker.
        server.shutdown();
    }
}

#[test]
fn server_survives_client_errors_and_disconnects() {
    let mut server = start_server(ManagerKind::GreedyTimeout, 3);
    let addr = server.addr();

    // A client that vanishes mid-batch must not wedge a worker.
    {
        let mut rude = KvClient::connect(addr).unwrap();
        rude.put(0, 1).unwrap();
        drop(rude); // no QUIT
    }
    // A client that sends garbage keeps its connection and the server alive.
    let mut client = KvClient::connect(addr).unwrap();
    assert!(client.get(KEYS * 10).is_err(), "out-of-range key must ERR");
    client.ping().unwrap();
    assert_eq!(client.get(0).unwrap(), Some(1));
    client.quit().unwrap();
    server.shutdown();
}

#[test]
fn bench_client_emits_throughput_latency_json_per_manager() {
    // The acceptance criterion: the closed-loop bench client drives a live
    // server per manager and emits the same JSON cells as the in-process
    // sweeps, with throughput and per-op latency populated.
    let mut cells = Vec::new();
    for manager in [ManagerKind::Greedy, ManagerKind::Karma] {
        let mut server = start_server(manager, 3);
        let cfg = stm_bench::NetLoadConfig {
            connections: 2,
            key_range: KEYS,
            duration: Duration::from_millis(60),
            mix: stm_bench::OpMix::read_mostly(),
            range_span: 4,
            batch_fraction: 0.25,
            ..stm_bench::NetLoadConfig::default()
        };
        let cell = stm_bench::run_netload(server.addr(), manager.name(), &cfg).unwrap();
        assert_eq!(cell.manager, manager.name());
        assert_eq!(cell.structure, "stm-kv");
        assert!(cell.commits > 0, "{manager}: no completed requests");
        assert!(cell.throughput > 0.0);
        assert!(!cell.per_op.is_empty(), "{manager}: no latency breakdown");
        cells.push(cell);
        server.shutdown();
    }
    let json = stm_bench::render_rows(&cells);
    for manager in ["greedy", "karma"] {
        assert!(
            json.contains(&format!("\"manager\": \"{manager}\"")),
            "JSON missing {manager} cell"
        );
    }
    assert!(json.contains("\"throughput\""));
    assert!(json.contains("\"p99_us\""));
}
