//! Cross-crate integration tests: atomicity and serializability of the STM
//! under concurrent workloads, for both read-visibility modes and several
//! contention managers.

use greedy_stm::cm::ManagerKind;
use greedy_stm::prelude::*;
use std::sync::Arc;
use std::thread;

fn stm_with(kind: ManagerKind, visibility: ReadVisibility) -> Stm {
    Stm::builder()
        .manager(kind.factory())
        .read_visibility(visibility)
        .build()
}

#[test]
fn counter_is_exact_for_every_manager() {
    for kind in ManagerKind::ALL {
        let stm = Arc::new(stm_with(kind, ReadVisibility::Visible));
        let counter = TxCounter::new();
        let threads = 4;
        let per_thread = 300;
        thread::scope(|scope| {
            for _ in 0..threads {
                let stm = Arc::clone(&stm);
                let counter = counter.clone();
                scope.spawn(move || {
                    let mut ctx = stm.thread();
                    for _ in 0..per_thread {
                        ctx.atomically(|tx| counter.increment(tx)).unwrap();
                    }
                });
            }
        });
        assert_eq!(
            counter.load(&stm),
            threads * per_thread,
            "lost updates under manager {kind}"
        );
    }
}

#[test]
fn bank_conservation_under_greedy_and_karma_both_visibilities() {
    for kind in [ManagerKind::Greedy, ManagerKind::Karma] {
        for visibility in [ReadVisibility::Visible, ReadVisibility::Invisible] {
            let stm = Arc::new(stm_with(kind, visibility));
            let accounts: Vec<TVar<i64>> = (0..16).map(|_| TVar::new(500)).collect();
            let expected: i64 = 16 * 500;
            thread::scope(|scope| {
                for t in 0..4usize {
                    let stm = Arc::clone(&stm);
                    let accounts = accounts.clone();
                    scope.spawn(move || {
                        let mut ctx = stm.thread();
                        let mut seed = (t as u64) * 77 + 1;
                        for _ in 0..500 {
                            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                            let from = (seed >> 33) as usize % accounts.len();
                            let to = (seed >> 13) as usize % accounts.len();
                            if from == to {
                                continue;
                            }
                            ctx.atomically(|tx| {
                                let a = tx.read(&accounts[from])?;
                                let b = tx.read(&accounts[to])?;
                                tx.write(&accounts[from], a - 7)?;
                                tx.write(&accounts[to], b + 7)?;
                                Ok(())
                            })
                            .unwrap();
                        }
                    });
                }
            });
            let total: i64 = accounts.iter().map(|a| stm.read_atomic(a)).sum();
            assert_eq!(total, expected, "conservation violated ({kind}, {visibility:?})");
        }
    }
}

#[test]
fn write_skew_is_prevented_with_visible_reads() {
    // Classic write-skew shape: invariant x + y >= 0; each transaction reads
    // both variables and decrements one of them only if the sum allows it.
    // With visible reads (the default) the runtime forces the two
    // transactions to arbitrate, so the invariant must hold.
    let stm = Arc::new(stm_with(ManagerKind::Greedy, ReadVisibility::Visible));
    let x = TVar::new(1i64);
    let y = TVar::new(1i64);
    for _ in 0..200 {
        // Reset.
        {
            let mut ctx = stm.thread();
            ctx.atomically(|tx| {
                tx.write(&x, 1)?;
                tx.write(&y, 1)?;
                Ok(())
            })
            .unwrap();
        }
        thread::scope(|scope| {
            let stm_a = Arc::clone(&stm);
            let (xa, ya) = (x.clone(), y.clone());
            scope.spawn(move || {
                let mut ctx = stm_a.thread();
                ctx.atomically(|tx| {
                    let sum = tx.read(&xa)? + tx.read(&ya)?;
                    if sum >= 2 {
                        tx.modify(&xa, |v| v - 2)?;
                    }
                    Ok(())
                })
                .unwrap();
            });
            let stm_b = Arc::clone(&stm);
            let (xb, yb) = (x.clone(), y.clone());
            scope.spawn(move || {
                let mut ctx = stm_b.thread();
                ctx.atomically(|tx| {
                    let sum = tx.read(&xb)? + tx.read(&yb)?;
                    if sum >= 2 {
                        tx.modify(&yb, |v| v - 2)?;
                    }
                    Ok(())
                })
                .unwrap();
            });
        });
        let total = stm.read_atomic(&x) + stm.read_atomic(&y);
        assert!(total >= 0, "write skew produced an invalid state: {total}");
    }
}

#[test]
fn multi_structure_transactions_are_atomic_under_contention() {
    let stm = Arc::new(stm_with(ManagerKind::Greedy, ReadVisibility::Visible));
    let tree = TxRbTree::new();
    let list = TxList::new();
    // Invariant: tree and list always contain exactly the same elements.
    thread::scope(|scope| {
        for t in 0..4i64 {
            let stm = Arc::clone(&stm);
            let tree = tree.clone();
            let list = list.clone();
            scope.spawn(move || {
                let mut ctx = stm.thread();
                let mut seed = (t as u64) | 1;
                for _ in 0..300 {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let key = ((seed >> 33) % 48) as i64;
                    let insert = (seed >> 9) & 1 == 0;
                    ctx.atomically(|tx| {
                        if insert {
                            let a = tree.insert(tx, key)?;
                            let b = list.insert(tx, key)?;
                            assert_eq!(a, b, "structures diverged inside a transaction");
                        } else {
                            let a = tree.remove(tx, key)?;
                            let b = list.remove(tx, key)?;
                            assert_eq!(a, b, "structures diverged inside a transaction");
                        }
                        Ok(())
                    })
                    .unwrap();
                }
            });
        }
    });
    let mut ctx = stm.thread();
    let (tree_contents, list_contents) = ctx
        .atomically(|tx| Ok((tree.to_vec(tx)?, list.to_vec(tx)?)))
        .unwrap();
    assert_eq!(tree_contents, list_contents);
    ctx.atomically(|tx| tree.check_invariants(tx)).unwrap();
}

#[test]
fn queue_transfers_preserve_items_under_contention() {
    let stm = Arc::new(stm_with(ManagerKind::Polka, ReadVisibility::Visible));
    let source = TxQueue::new();
    let sink = TxQueue::new();
    {
        let mut ctx = stm.thread();
        for i in 0..400 {
            ctx.atomically(|tx| source.enqueue(tx, i)).unwrap();
        }
    }
    thread::scope(|scope| {
        for _ in 0..4 {
            let stm = Arc::clone(&stm);
            let source = source.clone();
            let sink = sink.clone();
            scope.spawn(move || {
                let mut ctx = stm.thread();
                loop {
                    let moved = ctx
                        .atomically(|tx| {
                            if let Some(v) = source.dequeue(tx)? {
                                sink.enqueue(tx, v)?;
                                Ok(true)
                            } else {
                                Ok(false)
                            }
                        })
                        .unwrap();
                    if !moved {
                        break;
                    }
                }
            });
        }
    });
    let mut ctx = stm.thread();
    let mut drained = Vec::new();
    while let Some(v) = ctx.atomically(|tx| sink.dequeue(tx)).unwrap() {
        drained.push(v);
    }
    drained.sort_unstable();
    assert_eq!(drained, (0..400).collect::<Vec<i64>>());
    assert!(ctx.atomically(|tx| source.is_empty(tx)).unwrap());
}

/// Property-based conservation check (seeded PRNG, no external dependency):
/// random interleaved transfers over a heap of `TVar` accounts must conserve
/// the total balance under every manager the paper benchmarks head-to-head.
///
/// Each thread draws its own deterministic stream of (from, to, amount)
/// triples and commits them concurrently with the others; any lost update,
/// dirty read, or torn transfer shows up as a drifting total. A final audit
/// transaction re-reads every account to cross-check `read_atomic`.
#[test]
fn random_transfers_conserve_total_for_literature_managers() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    const ACCOUNTS: usize = 12;
    const INITIAL: i64 = 1_000;
    const TRANSFERS_PER_THREAD: usize = 400;
    const THREADS: usize = 4;

    for kind in [
        ManagerKind::Greedy,
        ManagerKind::Karma,
        ManagerKind::Polka,
        ManagerKind::Timestamp,
    ] {
        for visibility in [ReadVisibility::Visible, ReadVisibility::Invisible] {
            let stm = Arc::new(stm_with(kind, visibility));
            let accounts: Vec<TVar<i64>> = (0..ACCOUNTS).map(|_| TVar::new(INITIAL)).collect();
            let expected = (ACCOUNTS as i64) * INITIAL;

            thread::scope(|scope| {
                for t in 0..THREADS {
                    let stm = Arc::clone(&stm);
                    let accounts = accounts.clone();
                    scope.spawn(move || {
                        let mut rng = SmallRng::seed_from_u64(0xacc7_0000 + t as u64);
                        let mut ctx = stm.thread();
                        for _ in 0..TRANSFERS_PER_THREAD {
                            let from = rng.gen_range(0..ACCOUNTS);
                            let to = rng.gen_range(0..ACCOUNTS);
                            let amount = rng.gen_range(1i64..=75);
                            ctx.atomically(|tx| {
                                // Overdrafts allowed: conservation is the
                                // invariant under test, not solvency.
                                tx.modify(&accounts[from], |b| b - amount)?;
                                tx.modify(&accounts[to], |b| b + amount)?;
                                Ok(())
                            })
                            .unwrap();
                        }
                    });
                }
            });

            let direct: i64 = accounts.iter().map(|a| stm.read_atomic(a)).sum();
            assert_eq!(
                direct, expected,
                "manager {kind} ({visibility:?}): total drifted after random transfers"
            );
            let mut ctx = stm.thread();
            let audited: i64 = ctx
                .atomically(|tx| {
                    let mut sum = 0;
                    for account in &accounts {
                        sum += tx.read(account)?;
                    }
                    Ok(sum)
                })
                .unwrap();
            assert_eq!(
                audited, expected,
                "manager {kind} ({visibility:?}): transactional audit disagrees"
            );
        }
    }
}

/// Read-mostly extension of the conservation check: 90% of each thread's
/// transactions are pure lookups that sum every account *inside* the
/// transaction and assert the invariant on the spot — a lookup that
/// interleaves with a half-committed transfer would observe a torn balance
/// immediately. The remaining 10% are the usual random transfers.
#[test]
fn read_mostly_lookups_never_observe_a_torn_balance() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    const ACCOUNTS: usize = 12;
    const INITIAL: i64 = 1_000;
    const OPS_PER_THREAD: usize = 400;
    const THREADS: usize = 4;

    for kind in [
        ManagerKind::Greedy,
        ManagerKind::Karma,
        ManagerKind::Polka,
        ManagerKind::Timestamp,
    ] {
        for visibility in [ReadVisibility::Visible, ReadVisibility::Invisible] {
            let stm = Arc::new(stm_with(kind, visibility));
            let accounts: Vec<TVar<i64>> = (0..ACCOUNTS).map(|_| TVar::new(INITIAL)).collect();
            let expected = (ACCOUNTS as i64) * INITIAL;

            thread::scope(|scope| {
                for t in 0..THREADS {
                    let stm = Arc::clone(&stm);
                    let accounts = accounts.clone();
                    scope.spawn(move || {
                        let mut rng = SmallRng::seed_from_u64(0x4ead_0000 + t as u64);
                        let mut ctx = stm.thread();
                        let mut lookups = 0usize;
                        for _ in 0..OPS_PER_THREAD {
                            if rng.gen_bool(0.9) {
                                // Lookup: a long read-only transaction over
                                // every account (invisible to writers in
                                // Invisible mode); the sum must be exact at
                                // the instant the transaction (logically)
                                // executes.
                                let observed: i64 = ctx
                                    .atomically(|tx| {
                                        let mut sum = 0;
                                        for account in &accounts {
                                            sum += tx.read(account)?;
                                        }
                                        Ok(sum)
                                    })
                                    .unwrap();
                                assert_eq!(
                                    observed, expected,
                                    "manager {kind} ({visibility:?}): lookup observed a torn balance"
                                );
                                lookups += 1;
                            } else {
                                let from = rng.gen_range(0..ACCOUNTS);
                                let to = rng.gen_range(0..ACCOUNTS);
                                let amount = rng.gen_range(1i64..=50);
                                ctx.atomically(|tx| {
                                    tx.modify(&accounts[from], |b| b - amount)?;
                                    tx.modify(&accounts[to], |b| b + amount)?;
                                    Ok(())
                                })
                                .unwrap();
                            }
                        }
                        // The 90/10 split must actually be read-dominated.
                        assert!(lookups > OPS_PER_THREAD / 2);
                    });
                }
            });

            let total: i64 = accounts.iter().map(|a| stm.read_atomic(a)).sum();
            assert_eq!(
                total, expected,
                "manager {kind} ({visibility:?}): total drifted in the read-mostly mix"
            );
        }
    }
}
