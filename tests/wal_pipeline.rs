//! Cross-manager property test for the WAL commit pipeline: under every
//! contention manager in the registry, contended commits flowing through
//! the real `stm-log` writer (sequence reservation, slot ring, group
//! commit) must produce a log whose **replay in record order reconstructs
//! exactly the final committed state** — the property recovery rests on.
//!
//! The run continues across a simulated crash: the newest segment's tail
//! is torn mid-record, recovery truncates it, a second contended phase
//! runs on the recovered state, and the final replay must still agree with
//! the final in-memory state.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use greedy_stm::cm::ManagerKind;
use greedy_stm::core::{CommitOp, CommitValue, Stm, TVar};
use greedy_stm::log::{Recovered, Wal, WalConfig};

const KEYS: usize = 8;
const THREADS: usize = 4;
const OPS_PER_THREAD: usize = 50;
const SEED: u64 = 0x9a1_5eed;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "stm-wal-pipeline-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs one phase of contended counter increments through `stm` (whose
/// commit hook is the real WAL), returning the highest commit sequence
/// number any transaction received.
fn run_phase(stm: &Arc<Stm>, cells: &[TVar<i64>], kind: ManagerKind, phase: u64) -> u64 {
    let mut max_seq = 0u64;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let stm = Arc::clone(stm);
            handles.push(scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(
                    SEED ^ (kind as u64) << 32 ^ phase << 16 ^ t as u64,
                );
                let mut ctx = stm.thread();
                let mut max_seq = 0u64;
                for _ in 0..OPS_PER_THREAD {
                    let key = rng.gen_range(0..KEYS);
                    let delta = rng.gen_range(1..5i64);
                    let (result, report) = ctx.atomically_traced(|tx| {
                        let next = tx.read(&cells[key])? + delta;
                        tx.write(&cells[key], next)?;
                        tx.publish(CommitOp::put(key as i64, next));
                        Ok(())
                    });
                    result.unwrap_or_else(|err| {
                        panic!("{kind}: increment transaction failed: {err}")
                    });
                    max_seq = max_seq.max(report.commit_seq.unwrap_or(0));
                }
                max_seq
            }));
        }
        for handle in handles {
            max_seq = max_seq.max(handle.join().expect("phase thread panicked"));
        }
    });
    max_seq
}

/// Replays a recovered tail in record order: last `Put` per key wins.
/// Asserts the sequence numbers are strictly increasing on the way (gaps
/// are legal — abandoned reservations never reach the disk).
fn replay(recovered: &Recovered, kind: ManagerKind) -> BTreeMap<i64, i64> {
    let mut state = BTreeMap::new();
    if let Some(snapshot) = &recovered.snapshot {
        for (key, value) in &snapshot.pairs {
            if let CommitValue::Int(v) = value {
                state.insert(*key, *v);
            }
        }
    }
    let mut prev_seq = 0u64;
    for (seq, ops) in &recovered.tail {
        assert!(
            *seq > prev_seq,
            "{kind}: log replay order regressed: seq {seq} after {prev_seq}"
        );
        prev_seq = *seq;
        for op in ops {
            match op {
                CommitOp::Put { id, value } => {
                    let v = value.as_int().expect("only ints are published here");
                    state.insert(*id, v);
                }
                CommitOp::Del { id } => {
                    state.remove(id);
                }
            }
        }
    }
    state
}

fn assert_replay_matches(
    replayed: &BTreeMap<i64, i64>,
    committed: &[i64],
    kind: ManagerKind,
    context: &str,
) {
    for (key, final_value) in committed.iter().enumerate() {
        assert_eq!(
            replayed.get(&(key as i64)).copied().unwrap_or(0),
            *final_value,
            "{kind}/{context}: replaying the log in seq order diverged from the \
             final committed state at key {key}"
        );
    }
}

/// Tears the newest segment by truncating a few bytes off its end,
/// simulating a crash mid-write. Returns how many bytes were cut.
fn tear_newest_segment(dir: &PathBuf) -> u64 {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("log dir readable")
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            let name = path.file_name()?.to_str()?;
            (name.starts_with("wal-") && name.ends_with(".log")).then_some(path)
        })
        .collect();
    segments.sort();
    let newest = segments.last().expect("at least one segment on disk");
    let len = std::fs::metadata(newest).expect("segment metadata").len();
    let cut = 3.min(len);
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(newest)
        .expect("segment writable");
    file.set_len(len - cut).expect("segment truncation");
    cut
}

#[test]
fn seq_order_replay_matches_committed_state_under_every_manager() {
    for kind in ManagerKind::ALL {
        let dir = temp_dir(kind.name());

        // Phase 1: contended commits through the real WAL writer.
        let (wal, recovered) = Wal::open(WalConfig::new(&dir)).expect("fresh log opens");
        assert!(recovered.tail.is_empty());
        let stm = Arc::new(
            Stm::builder()
                .manager(kind.factory())
                .commit_hook(wal.commit_hook())
                .build(),
        );
        let cells: Vec<TVar<i64>> = (0..KEYS).map(|_| TVar::new(0)).collect();
        let max_seq = run_phase(&stm, &cells, kind, 1);
        assert!(wal.wait_durable(max_seq), "{kind}: log failed during phase 1");
        let committed: Vec<i64> = cells.iter().map(|cell| stm.read_atomic(cell)).collect();
        assert!(
            committed.iter().any(|v| *v > 0),
            "{kind}: the workload committed nothing"
        );
        drop(wal); // graceful shutdown: flush + fsync

        let (wal_check, recovered) = Wal::open(WalConfig::new(&dir)).expect("clean reopen");
        assert_eq!(recovered.truncated_bytes, 0, "{kind}: clean shutdown tore the log");
        assert_eq!(
            recovered.tail.len(),
            THREADS * OPS_PER_THREAD,
            "{kind}: every committed transaction must have exactly one record"
        );
        assert_replay_matches(&replay(&recovered, kind), &committed, kind, "clean restart");
        drop(wal_check);

        // Phase 2: tear the tail mid-record, recover, and keep going on the
        // recovered state — the log must stay replayable end to end.
        tear_newest_segment(&dir);
        let (wal2, recovered) = Wal::open(WalConfig::new(&dir)).expect("torn log recovers");
        assert!(
            recovered.truncated_bytes > 0,
            "{kind}: recovery must report the torn bytes it discarded"
        );
        let survived = replay(&recovered, kind);
        let stm2 = Arc::new(
            Stm::builder()
                .manager(kind.factory())
                .commit_hook(wal2.commit_hook())
                .build(),
        );
        let cells2: Vec<TVar<i64>> = (0..KEYS)
            .map(|key| TVar::new(survived.get(&(key as i64)).copied().unwrap_or(0)))
            .collect();
        let max_seq = run_phase(&stm2, &cells2, kind, 2);
        assert!(wal2.wait_durable(max_seq), "{kind}: log failed during phase 2");
        let committed2: Vec<i64> = cells2.iter().map(|cell| stm2.read_atomic(cell)).collect();
        drop(wal2);

        let (_wal3, recovered) = Wal::open(WalConfig::new(&dir)).expect("final reopen");
        assert_replay_matches(&replay(&recovered, kind), &committed2, kind, "torn restart");
        drop(_wal3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
