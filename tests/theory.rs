//! Integration tests for the theory half of the paper (Section 4), driving
//! the simulator, the schedulers and the real contention managers together.

use greedy_stm::cm::ManagerKind;
use greedy_stm::sched::{
    chain, garey_graham_bound, list_schedule, optimal_list_schedule, random_transaction_system,
    simulate, theorem9_bound, RandomSystemConfig, SimConfig, TaskSystem,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[test]
fn paper_example_greedy_is_s_plus_one_and_optimal_is_two() {
    for s in [2usize, 4, 8] {
        let ticks = 10u64;
        let instance = chain(s, ticks);
        let outcome = simulate(
            &instance.transactions,
            ManagerKind::Greedy.factory(),
            SimConfig::default(),
        );
        let makespan = outcome.makespan_units(ticks as f64);
        assert!(
            (makespan - (s as f64 + 1.0)).abs() < 0.2,
            "greedy makespan for s={s} was {makespan}, expected ~{}",
            s + 1
        );
        let tasks = TaskSystem::from_transactions(&instance.transactions);
        let optimal = optimal_list_schedule(&tasks).makespan / ticks as f64;
        assert!((optimal - 2.0).abs() < 1e-9, "optimal should be 2, got {optimal}");
        assert!(outcome.pending_commit_held);
        // Theorem 1: every transaction eventually commits.
        assert!(outcome.commit_ticks.iter().all(|&t| t != u64::MAX));
    }
}

#[test]
fn greedy_never_aborts_the_oldest_transaction_on_random_instances() {
    let config = RandomSystemConfig {
        transactions: 8,
        objects: 4,
        min_duration: 4,
        max_duration: 20,
        accesses_per_transaction: 3,
        write_fraction: 1.0,
    };
    for seed in 0..15u64 {
        let txns = random_transaction_system(&config, seed);
        let outcome = simulate(&txns, ManagerKind::Greedy.factory(), SimConfig::default());
        assert!(outcome.makespan_ticks.is_some(), "seed {seed} did not finish");
        // The transaction with the smallest priority timestamp is never the
        // victim of Rule 1, so it must commit without a single abort.
        let oldest = txns
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| t.priority)
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(
            outcome.aborts[oldest], 0,
            "seed {seed}: the oldest transaction was aborted"
        );
    }
}

#[test]
fn greedy_respects_theorem9_on_random_instances() {
    // Only the pure greedy manager provably satisfies the pending-commit
    // property (the paper notes that none of the literature managers do, and
    // the Section 6 timeout extension can spuriously kill the oldest
    // transaction when its timeout is shorter than the enemy's execution), so
    // the strict Theorem 9 check applies to greedy alone.
    let config = RandomSystemConfig {
        transactions: 6,
        objects: 3,
        min_duration: 5,
        max_duration: 15,
        accesses_per_transaction: 2,
        write_fraction: 1.0,
    };
    let bound = theorem9_bound(config.objects);
    for seed in 0..15u64 {
        let txns = random_transaction_system(&config, seed);
        let outcome = simulate(
            &txns,
            ManagerKind::Greedy.factory(),
            SimConfig { max_ticks: 200_000 },
        );
        let Some(makespan) = outcome.makespan_ticks else {
            panic!("greedy did not finish on seed {seed}");
        };
        assert!(outcome.pending_commit_held, "seed {seed}: pending-commit violated");
        let tasks = TaskSystem::from_transactions(&txns);
        let optimal = optimal_list_schedule(&tasks).makespan;
        assert!(
            (makespan as f64) <= bound * optimal + 1e-6,
            "seed {seed}: makespan {makespan} vs optimal {optimal} exceeds bound {bound}"
        );
    }
}

/// Garey & Graham: *every* list order is within (s + 1)× of the best list
/// order found (which itself upper-bounds the optimum).
#[test]
fn any_list_order_is_within_garey_graham_of_the_best() {
    let mut rng = SmallRng::seed_from_u64(0x6a7e_1157);
    for case in 0..24 {
        let seed = rng.gen_range(0u64..1000);
        let n = rng.gen_range(3usize..7);
        let s = rng.gen_range(1usize..4);
        let config = RandomSystemConfig {
            transactions: n,
            objects: s,
            min_duration: 2,
            max_duration: 12,
            accesses_per_transaction: 2.min(s),
            write_fraction: 1.0,
        };
        let txns = random_transaction_system(&config, seed);
        let tasks = TaskSystem::from_transactions(&txns);
        let best = optimal_list_schedule(&tasks);
        let identity: Vec<usize> = (0..tasks.len()).collect();
        let reversed: Vec<usize> = identity.iter().rev().copied().collect();
        for order in [identity, reversed] {
            let m = list_schedule(&tasks, &order).makespan;
            assert!(
                m <= garey_graham_bound(s) * best.makespan + 1e-6,
                "case {case} (seed {seed}, n {n}, s {s}): {m} exceeds bound"
            );
            assert!(m + 1e-9 >= best.makespan, "case {case}: beat the best order");
            assert!(m + 1e-9 >= tasks.makespan_lower_bound(), "case {case}: beat the lower bound");
        }
    }
}

/// The simulated greedy makespan never exceeds the serial execution of
/// all transactions (a loose but absolute sanity bound), and Theorem 1
/// holds: every transaction commits.
#[test]
fn greedy_simulation_terminates_within_serial_time() {
    let mut rng = SmallRng::seed_from_u64(0x005e_71a1);
    for case in 0..24 {
        let seed = rng.gen_range(0u64..1000);
        let n = rng.gen_range(2usize..8);
        let s = rng.gen_range(1usize..5);
        let config = RandomSystemConfig {
            transactions: n,
            objects: s,
            min_duration: 3,
            max_duration: 10,
            accesses_per_transaction: 2.min(s),
            write_fraction: 1.0,
        };
        let txns = random_transaction_system(&config, seed);
        let outcome = simulate(&txns, ManagerKind::Greedy.factory(), SimConfig::default());
        let makespan = outcome.makespan_ticks.expect("greedy always terminates");
        assert!(
            outcome.commit_ticks.iter().all(|&t| t != u64::MAX),
            "case {case} (seed {seed}): a transaction never committed"
        );
        // Under greedy, work is never wasted forever: the makespan is at most
        // the total serial duration times (1 + total number of aborts).
        let serial: u64 = txns.iter().map(|t| t.duration).sum();
        assert!(
            makespan <= serial * (1 + outcome.total_aborts()) + serial,
            "case {case} (seed {seed}): makespan {makespan} exceeds abort-adjusted serial time"
        );
    }
}

/// The chain construction scales: greedy lands on s + 1 for arbitrary s.
#[test]
fn chain_scales_with_s() {
    for s in 2usize..10 {
        let ticks = 10u64;
        let instance = chain(s, ticks);
        let outcome = simulate(
            &instance.transactions,
            ManagerKind::Greedy.factory(),
            SimConfig::default(),
        );
        let makespan = outcome.makespan_units(ticks as f64);
        assert!(
            (makespan - (s as f64 + 1.0)).abs() < 0.2,
            "s {s}: greedy makespan {makespan}, expected ~{}",
            s + 1
        );
        assert!(makespan / 2.0 <= theorem9_bound(s), "s {s}: ratio exceeds Theorem 9");
    }
}
