//! Theory-vs-implementation cross-validation.
//!
//! `stm_sched::simulate` and the real `stm-core` runtime implement the same
//! contention-management protocol at two fidelities: the simulator takes the
//! paper's abstract model literally (discrete ticks, all transactions start
//! at time 0), while the runtime arbitrates real threads over real `TVar`s.
//! These tests run the same instances — the Section 4 adversarial chain and
//! seeded random transaction systems — through *both* and assert that the
//! shapes agree, catching drift between the theory crates and the runtime:
//!
//! * Simulator side (deterministic): greedy needs `s + 1` time units on the
//!   chain while the optimal list schedule needs `2`, the ratio grows with
//!   `s` and stays under Theorem 9's `s(s+1) + 2` bound, and the
//!   pending-commit property holds.
//! * Runtime side: the same instance, executed by real threads that replay
//!   each transaction's access pattern on a tick grid, commits every
//!   transaction (Theorem 1's bounded commit delay), is serializable (each
//!   object's final value equals its total write count), and finishes within
//!   the theorem's makespan envelope.

use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

use greedy_stm::prelude::*;
use greedy_stm::sched::{
    chain, optimal_list_schedule, random_transaction_system, simulate, RandomSystemConfig,
    SimConfig, SimTransaction, TaskSystem,
};

/// Wall-clock length of one simulator tick when an instance is replayed on
/// the real runtime. Coarse enough that thread scheduling noise stays well
/// below a tick, fine enough that the tests finish quickly.
const TICK: Duration = Duration::from_millis(2);

struct RuntimeOutcome {
    /// Wall-clock time from the start barrier to the last commit.
    wall: Duration,
    /// Final value of each object's `TVar` (each write increments by one).
    object_values: Vec<i64>,
    /// Total aborts observed by the runtime's statistics.
    aborts: u64,
}

/// Replays a simulated transaction system on the real STM under the given
/// contention manager: one thread per transaction, each performing its
/// accesses (writes increment the object's `TVar`, reads just read it) at
/// their tick offsets, then holding the transaction open until its full
/// duration has elapsed. Aborted attempts restart from scratch, re-spinning
/// their offsets — the same restart semantics the simulator models.
fn run_on_runtime_with(
    txns: &[SimTransaction],
    objects: usize,
    factory: stm_core::manager::ManagerFactory,
) -> RuntimeOutcome {
    let stm = Arc::new(Stm::builder().manager(factory).build());
    let vars: Vec<TVar<i64>> = (0..objects).map(|_| TVar::new(0)).collect();
    let barrier = Arc::new(Barrier::new(txns.len() + 1));
    let mut started = Instant::now();
    thread::scope(|scope| {
        for txn in txns {
            let stm = Arc::clone(&stm);
            let vars = vars.clone();
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                let mut ctx = stm.thread();
                barrier.wait();
                ctx.atomically(|tx| {
                    let begin = Instant::now();
                    for access in &txn.accesses {
                        let due = TICK * access.offset as u32;
                        while begin.elapsed() < due {
                            thread::yield_now();
                        }
                        if access.write {
                            tx.modify(&vars[access.object], |v| v + 1)?;
                        } else {
                            let _ = tx.read(&vars[access.object])?;
                        }
                    }
                    let full = TICK * txn.duration as u32;
                    while begin.elapsed() < full {
                        thread::yield_now();
                    }
                    Ok(())
                })
                .expect("every transaction must eventually commit");
            });
        }
        // Release the workers and start the clock; the scope's implicit join
        // (when this closure returns) waits for the last commit.
        barrier.wait();
        started = Instant::now();
    });
    RuntimeOutcome {
        wall: started.elapsed(),
        object_values: vars.iter().map(|v| stm.read_atomic(v)).collect(),
        aborts: stm.stats().snapshot().aborts,
    }
}

/// The original greedy replay.
fn run_on_runtime(txns: &[SimTransaction], objects: usize) -> RuntimeOutcome {
    run_on_runtime_with(txns, objects, GreedyManager::factory())
}

/// Expected final value of every object: the number of write accesses it
/// receives across the whole system (each transaction commits exactly once).
fn expected_write_counts(txns: &[SimTransaction], objects: usize) -> Vec<i64> {
    let mut counts = vec![0i64; objects];
    for txn in txns {
        for access in &txn.accesses {
            if access.write {
                counts[access.object] += 1;
            }
        }
    }
    counts
}

#[test]
fn chain_shapes_agree_between_simulator_and_runtime() {
    let ticks_per_unit = 10u64;
    let mut previous_makespan = 0.0f64;
    let mut total_runtime_aborts = 0u64;
    for s in [2usize, 3, 4] {
        let instance = chain(s, ticks_per_unit);

        // Simulator: greedy needs s + 1 units, the optimal schedule 2.
        let outcome = simulate(
            &instance.transactions,
            GreedyManager::factory(),
            SimConfig::default(),
        );
        let sim_makespan = outcome.makespan_units(ticks_per_unit as f64);
        assert!(
            (sim_makespan - instance.expected_greedy_makespan()).abs() < 0.2,
            "s = {s}: simulated greedy makespan {sim_makespan}, expected {}",
            instance.expected_greedy_makespan()
        );
        assert!(outcome.pending_commit_held, "s = {s}: pending commit violated");
        assert!(
            sim_makespan > previous_makespan,
            "s = {s}: the chain's makespan must grow with s"
        );
        previous_makespan = sim_makespan;

        let tasks = TaskSystem::from_transactions(&instance.transactions);
        let optimal_units = optimal_list_schedule(&tasks).makespan / ticks_per_unit as f64;
        assert!(
            (optimal_units - instance.expected_optimal_makespan()).abs() < 1e-9,
            "s = {s}: optimal list schedule is {optimal_units}, expected 2"
        );

        // Runtime: same instance on real threads. Every transaction commits,
        // the execution is serializable (each of the s objects is written by
        // exactly two transactions), and the wall-clock makespan stays inside
        // Theorem 9's envelope around the optimal schedule.
        let runtime = run_on_runtime(&instance.transactions, s);
        assert_eq!(
            runtime.object_values,
            expected_write_counts(&instance.transactions, s),
            "s = {s}: runtime execution lost or duplicated writes"
        );
        total_runtime_aborts += runtime.aborts;
        let bound = greedy_stm::sched::theorem9_bound(s);
        let envelope = TICK * (ticks_per_unit as u32) * ((bound * optimal_units) as u32 + 5);
        assert!(
            runtime.wall <= envelope,
            "s = {s}: runtime makespan {:?} exceeds the Theorem 9 envelope {:?}",
            runtime.wall,
            envelope
        );
    }
    // The chain is built to make greedy abort victims; replayed with real
    // overlap (start barrier + multi-tick durations), at least one of the
    // three instances must have produced an abort.
    assert!(
        total_runtime_aborts > 0,
        "the adversarial chain never caused a single runtime abort"
    );
}

#[test]
fn karma_beats_greedy_on_the_chain_and_the_runtime_agrees() {
    // The simulator predicts that Karma handles the adversarial chain
    // *better* than greedy: work-based priorities let the long transaction
    // erupt through instead of being serialized behind every short one
    // (EXPERIMENTS.md E5 measures ~1.2 units vs greedy's s + 1). Check the
    // prediction deterministically in the simulator, then replay the same
    // instances on the real runtime under Karma and verify they commit,
    // serialize, and finish inside the makespan the simulator promises —
    // with slack for thread scheduling, but strictly less than what greedy's
    // own predicted makespan would allow at larger s.
    let ticks_per_unit = 10u64;
    for s in [2usize, 3, 4] {
        let instance = chain(s, ticks_per_unit);
        let greedy_sim = simulate(
            &instance.transactions,
            GreedyManager::factory(),
            SimConfig::default(),
        );
        let karma_sim = simulate(
            &instance.transactions,
            KarmaManager::factory(),
            SimConfig::default(),
        );
        let greedy_units = greedy_sim.makespan_units(ticks_per_unit as f64);
        let karma_units = karma_sim.makespan_units(ticks_per_unit as f64);
        assert!(
            karma_units < greedy_units,
            "s = {s}: simulation must predict karma ({karma_units}) beats greedy \
             ({greedy_units}) on the chain"
        );

        // The discrete simulator charges an aborted transaction only its
        // remaining work, while the runtime re-spins the full duration on
        // every restart — so karma's wall-clock cannot be held to the 1.2-unit
        // simulated figure. What must hold on the runtime is the same
        // Theorem 9 envelope the greedy replay satisfies: karma may not do
        // *worse* than the bound the paper proves for the pending-commit
        // managers it empirically beats here.
        //
        // The envelope is a statement about STM scheduling, but wall-clock
        // also absorbs OS scheduling: a preempted thread on a loaded CI
        // machine can blow the budget without the runtime misbehaving. So
        // the replay retries up to three times and the *timing* assertion
        // passes if any attempt lands inside the envelope — while the
        // serializability assertion stays strict on every attempt,
        // including the ones whose timing is discarded.
        let optimal_units = instance.expected_optimal_makespan();
        let bound = greedy_stm::sched::theorem9_bound(s);
        let envelope = TICK * ticks_per_unit as u32 * ((bound * optimal_units) as u32 + 5);
        const TIMING_ATTEMPTS: usize = 3;
        let mut walls = Vec::new();
        for _ in 0..TIMING_ATTEMPTS {
            let runtime = run_on_runtime_with(&instance.transactions, s, KarmaManager::factory());
            assert_eq!(
                runtime.object_values,
                expected_write_counts(&instance.transactions, s),
                "s = {s}: karma runtime execution lost or duplicated writes"
            );
            walls.push(runtime.wall);
            if runtime.wall <= envelope {
                break;
            }
        }
        assert!(
            walls.iter().any(|wall| *wall <= envelope),
            "s = {s}: karma runtime makespan exceeded the Theorem 9 envelope {:?} on all \
             {TIMING_ATTEMPTS} attempts: {walls:?}",
            envelope
        );
    }
}

#[test]
fn random_instances_agree_between_simulator_and_runtime() {
    let config = RandomSystemConfig {
        transactions: 6,
        objects: 3,
        min_duration: 4,
        max_duration: 12,
        accesses_per_transaction: 2,
        write_fraction: 1.0,
    };
    let bound = greedy_stm::sched::theorem9_bound(config.objects);
    for seed in 0..6u64 {
        let txns = random_transaction_system(&config, 0xc0de_0000 + seed);

        // Simulator side: greedy finishes, within the Theorem 9 bound.
        let outcome = simulate(&txns, GreedyManager::factory(), SimConfig::default());
        let sim_ticks = outcome
            .makespan_ticks
            .expect("greedy always finishes the random instances") as f64;
        let tasks = TaskSystem::from_transactions(&txns);
        let optimal_ticks = optimal_list_schedule(&tasks).makespan;
        assert!(
            sim_ticks <= bound * optimal_ticks + 1e-6,
            "seed {seed}: simulated makespan {sim_ticks} exceeds bound × optimal"
        );
        assert!(outcome.pending_commit_held, "seed {seed}: pending commit violated");

        // Runtime side: serializable, every transaction commits, and the
        // wall-clock stays within the same envelope (scaled to wall ticks,
        // with slack for thread scheduling).
        let runtime = run_on_runtime(&txns, config.objects);
        assert_eq!(
            runtime.object_values,
            expected_write_counts(&txns, config.objects),
            "seed {seed}: runtime execution lost or duplicated writes"
        );
        let envelope = TICK * ((bound * optimal_ticks) as u32 + 50);
        assert!(
            runtime.wall <= envelope,
            "seed {seed}: runtime makespan {:?} exceeds envelope {:?}",
            runtime.wall,
            envelope
        );
    }
}
