//! Property tests of the commit-time cell GC: seeded random PUT/DEL/GET
//! churn across threads, repeated under **every** contention manager, must
//! (a) conserve a closed transfer total running concurrently with the
//! churn, (b) never lose a write to a reclaimed cell (each thread audits
//! its own rolling window mid-churn), and (c) keep the cell accounting
//! conserved: every cell ever allocated is either still linked in a shard
//! table or was retired to the epoch limbo, and the limbo drains to empty
//! once every thread has unpinned. The no-use-after-reclaim guarantee
//! itself (limbo never frees an entry a pinned transaction could still
//! reach) is unit-tested in `stm-core::epoch`; here it is exercised at full
//! stack depth — a violation would surface as a lost window value or a
//! panicked read.

use std::sync::Arc;
use std::thread;

use greedy_stm::cm::ManagerKind;
use greedy_stm::kv::Value;
use greedy_stm::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Closed-transfer keys (never deleted — the conservation witness).
const SHARED_LO: i64 = 0;
const SHARED_HI: i64 = 7;
const SEED_BALANCE: i64 = 100;

/// Keys every thread churns against every other thread (put/del/get races
/// on the same cells — the contention witness).
const CONTENDED_LO: i64 = 500;
const CONTENDED_KEYS: i64 = 6;

/// Per-thread private rolling window (the reclamation witness).
const WINDOW: i64 = 6;

fn stm_with(kind: ManagerKind) -> Stm {
    Stm::builder().manager(kind.factory()).build()
}

#[test]
fn seeded_churn_conserves_and_keeps_cell_accounting_exact_for_every_manager() {
    const THREADS: usize = 4;
    const OPS: i64 = 120;

    for kind in ManagerKind::ALL {
        let stm = Arc::new(stm_with(kind));
        // No pre-allocated range: every key lives in a reclaimable
        // overflow cell, so the GC is on the hook for all of them.
        let store = Arc::new(KvStore::new(4));
        {
            let mut ctx = stm.thread();
            ctx.atomically(|tx| {
                for key in SHARED_LO..=SHARED_HI {
                    store.put(tx, key, SEED_BALANCE)?;
                }
                Ok(())
            })
            .unwrap();
        }
        let shared_total = (SHARED_HI - SHARED_LO + 1) * SEED_BALANCE;

        thread::scope(|scope| {
            for t in 0..THREADS {
                let stm = Arc::clone(&stm);
                let store = Arc::clone(&store);
                scope.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(0x6c_c000 + t as u64);
                    let mut ctx = stm.thread();
                    let base = 1_000_000 + (t as i64) * 1_000_000;
                    for i in 0..OPS {
                        // Private rolling window: create ahead, delete behind.
                        ctx.atomically(|tx| store.put(tx, base + i, i)).unwrap();
                        if i >= WINDOW {
                            let victim = base + i - WINDOW;
                            let prev = ctx.atomically(|tx| store.del(tx, victim)).unwrap();
                            assert_eq!(
                                prev,
                                Some(Value::Int(i - WINDOW)),
                                "{kind}: window write lost at key {victim}"
                            );
                        }
                        // Mid-churn audit of a random in-window key: a
                        // use-after-reclaim or torn unlink shows up here.
                        let probe = rng.gen_range((i - (WINDOW - 1)).max(0)..=i);
                        let seen = ctx.atomically(|tx| store.get(tx, base + probe)).unwrap();
                        assert_eq!(
                            seen,
                            Some(Value::Int(probe)),
                            "{kind}: window read disagrees at offset {probe}"
                        );
                        // A closed transfer between two shared keys.
                        let from = rng.gen_range(SHARED_LO..=SHARED_HI);
                        let to = rng.gen_range(SHARED_LO..=SHARED_HI);
                        let amount = rng.gen_range(1i64..=25);
                        ctx.atomically(|tx| {
                            store.add(tx, from, -amount)?.unwrap();
                            store.add(tx, to, amount)?.unwrap();
                            Ok(())
                        })
                        .unwrap();
                        // Contended churn: all threads put/del/get the same
                        // small key range, racing deletes against writes.
                        let hot = CONTENDED_LO + rng.gen_range(0..CONTENDED_KEYS);
                        match rng.gen_range(0u32..4) {
                            0 => {
                                ctx.atomically(|tx| store.put(tx, hot, i)).unwrap();
                            }
                            1 => {
                                ctx.atomically(|tx| store.del(tx, hot)).unwrap();
                            }
                            2 => {
                                // del + re-put in one transaction: the
                                // tombstone is overwritten before commit and
                                // the cell must survive.
                                ctx.atomically(|tx| {
                                    store.del(tx, hot)?;
                                    store.put(tx, hot, -i)
                                })
                                .unwrap();
                            }
                            _ => {
                                ctx.atomically(|tx| store.get(tx, hot)).unwrap();
                            }
                        }
                        // Concurrent conservation audit over the shared keys.
                        if i % 16 == 0 {
                            let (total, count) = ctx
                                .atomically(|tx| store.sum(tx, SHARED_LO, SHARED_HI))
                                .unwrap()
                                .unwrap();
                            assert_eq!(
                                total, shared_total,
                                "{kind}: mid-run audit saw a drifted total"
                            );
                            assert_eq!(count as i64, SHARED_HI - SHARED_LO + 1);
                        }
                    }
                });
            }
        });

        // Quiescent: every thread unpinned, so the limbo drains completely.
        let gc = stm.epoch();
        gc.collect();
        gc.collect();
        let stats = gc.stats();
        assert_eq!(stats.limbo, 0, "{kind}: limbo must drain at quiescence: {stats:?}");
        assert_eq!(
            stats.retired, stats.reclaimed,
            "{kind}: every retired cell must eventually free: {stats:?}"
        );

        // Cell accounting is conserved: allocated = linked + retired.
        assert_eq!(
            store.cells_allocated() as u64,
            store.cells_live() as u64 + stats.retired,
            "{kind}: allocation/reclamation books must balance: {stats:?}"
        );

        // The table holds exactly the live keys: shared + per-thread
        // windows + whatever subset of the contended range survived.
        let mut ctx = stm.thread();
        let live_keys = ctx.atomically(|tx| store.len(tx)).unwrap();
        assert_eq!(
            store.cells_live(),
            live_keys,
            "{kind}: resident cells must match present keys"
        );
        let windows = THREADS as i64 * WINDOW;
        let upper = (SHARED_HI - SHARED_LO + 1) + windows + CONTENDED_KEYS;
        assert!(
            (live_keys as i64) <= upper,
            "{kind}: {live_keys} live keys exceeds the {upper} possible"
        );

        // Final conservation + per-window model check.
        let (total, _) = ctx
            .atomically(|tx| store.sum(tx, SHARED_LO, SHARED_HI))
            .unwrap()
            .unwrap();
        assert_eq!(total, shared_total, "{kind}: final total drifted");
        for t in 0..THREADS as i64 {
            let base = 1_000_000 + t * 1_000_000;
            for i in (OPS - WINDOW)..OPS {
                assert_eq!(
                    ctx.atomically(|tx| store.get(tx, base + i)).unwrap(),
                    Some(Value::Int(i)),
                    "{kind}: surviving window key lost"
                );
            }
        }
    }
}
