//! The red-black forest (Figure 4, "Red-black forest application").
//!
//! "A data structure made of fifty red-black trees, in which insertions and
//! removals of elements proceed in either one or all trees on a random
//! basis; the distribution of the lengths of the transactions produced ...
//! thus exhibits a high variance." Short transactions touch a single tree;
//! occasionally a transaction updates every tree, producing an update
//! transaction roughly fifty times longer — exactly the "long transactions
//! competing with shorter transactions" situation in which simple backoff
//! struggles and priority-accumulating or priority-preserving managers are
//! expected to shine.
//!
//! The *decision* of whether to touch one tree or all of them belongs to the
//! workload (the caller), which keeps this structure deterministic; the
//! benchmark harness draws it from its own RNG.

use stm_core::{TxResult, Txn};

use crate::rbtree::TxRbTree;
use crate::set::TxSet;

/// Number of trees used by the paper's benchmark.
pub const DEFAULT_FOREST_SIZE: usize = 50;

/// Which trees a forest update targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateScope {
    /// Update the single tree with this index.
    One(usize),
    /// Update every tree in the forest.
    All,
}

/// A collection of red-black trees updated together or individually.
#[derive(Debug, Clone)]
pub struct TxRbForest {
    trees: Vec<TxRbTree>,
}

impl Default for TxRbForest {
    fn default() -> Self {
        Self::new(DEFAULT_FOREST_SIZE)
    }
}

impl TxRbForest {
    /// Creates a forest of `size` empty trees.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "a forest needs at least one tree");
        TxRbForest {
            trees: (0..size).map(|_| TxRbTree::new()).collect(),
        }
    }

    /// Number of trees in the forest.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Access to an individual tree.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn tree(&self, index: usize) -> &TxRbTree {
        &self.trees[index]
    }

    /// Inserts `key` into the trees selected by `scope`. Returns the number
    /// of trees in which the key was newly inserted.
    pub fn insert(&self, tx: &mut Txn<'_>, scope: UpdateScope, key: i64) -> TxResult<usize> {
        match scope {
            UpdateScope::One(index) => Ok(usize::from(self.trees[index].insert(tx, key)?)),
            UpdateScope::All => {
                let mut inserted = 0;
                for tree in &self.trees {
                    if tree.insert(tx, key)? {
                        inserted += 1;
                    }
                }
                Ok(inserted)
            }
        }
    }

    /// Removes `key` from the trees selected by `scope`. Returns the number
    /// of trees from which the key was removed.
    pub fn remove(&self, tx: &mut Txn<'_>, scope: UpdateScope, key: i64) -> TxResult<usize> {
        match scope {
            UpdateScope::One(index) => Ok(usize::from(self.trees[index].remove(tx, key)?)),
            UpdateScope::All => {
                let mut removed = 0;
                for tree in &self.trees {
                    if tree.remove(tx, key)? {
                        removed += 1;
                    }
                }
                Ok(removed)
            }
        }
    }

    /// Returns `true` if `key` is present in the tree with index `index`.
    pub fn contains_in(&self, tx: &mut Txn<'_>, index: usize, key: i64) -> TxResult<bool> {
        self.trees[index].contains(tx, key)
    }

    /// The keys in `lo..=hi` of the tree with index `index`, in ascending
    /// order (see [`TxSet::range`]).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn range_in(&self, tx: &mut Txn<'_>, index: usize, lo: i64, hi: i64) -> TxResult<Vec<i64>> {
        self.trees[index].range(tx, lo, hi)
    }

    /// Total number of elements across all trees.
    pub fn total_len(&self, tx: &mut Txn<'_>) -> TxResult<usize> {
        let mut total = 0;
        for tree in &self.trees {
            total += tree.len(tx)?;
        }
        Ok(total)
    }

    /// Validates the red-black invariants of every tree and returns the total
    /// number of nodes.
    pub fn check_invariants(&self, tx: &mut Txn<'_>) -> TxResult<usize> {
        let mut total = 0;
        for tree in &self.trees {
            total += tree.check_invariants(tx)?;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use stm_cm::KarmaManager;
    use stm_core::Stm;

    #[test]
    fn one_scope_touches_a_single_tree() {
        let stm = Stm::default();
        let forest = TxRbForest::new(5);
        let mut ctx = stm.thread();
        assert_eq!(
            ctx.atomically(|tx| forest.insert(tx, UpdateScope::One(2), 7))
                .unwrap(),
            1
        );
        assert!(ctx
            .atomically(|tx| forest.contains_in(tx, 2, 7))
            .unwrap());
        assert!(!ctx
            .atomically(|tx| forest.contains_in(tx, 0, 7))
            .unwrap());
        assert_eq!(ctx.atomically(|tx| forest.total_len(tx)).unwrap(), 1);
        assert_eq!(
            ctx.atomically(|tx| forest.range_in(tx, 2, 0, 10)).unwrap(),
            vec![7]
        );
        assert_eq!(
            ctx.atomically(|tx| forest.range_in(tx, 0, 0, 10)).unwrap(),
            Vec::<i64>::new()
        );
    }

    #[test]
    fn all_scope_touches_every_tree_atomically() {
        let stm = Stm::default();
        let forest = TxRbForest::new(8);
        let mut ctx = stm.thread();
        assert_eq!(
            ctx.atomically(|tx| forest.insert(tx, UpdateScope::All, 42))
                .unwrap(),
            8
        );
        for i in 0..8 {
            assert!(ctx
                .atomically(|tx| forest.contains_in(tx, i, 42))
                .unwrap());
        }
        assert_eq!(
            ctx.atomically(|tx| forest.remove(tx, UpdateScope::All, 42))
                .unwrap(),
            8
        );
        assert_eq!(ctx.atomically(|tx| forest.total_len(tx)).unwrap(), 0);
        // Aborted all-tree update leaves nothing behind.
        let _ = ctx.atomically(|tx| {
            forest.insert(tx, UpdateScope::All, 1)?;
            tx.abort::<()>()
        });
        assert_eq!(ctx.atomically(|tx| forest.total_len(tx)).unwrap(), 0);
    }

    #[test]
    fn default_forest_has_fifty_trees() {
        let forest = TxRbForest::default();
        assert_eq!(forest.num_trees(), DEFAULT_FOREST_SIZE);
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_sized_forest_is_rejected() {
        let _ = TxRbForest::new(0);
    }

    #[test]
    fn concurrent_mixed_scope_workload_preserves_invariants() {
        let stm = Arc::new(Stm::builder().manager(KarmaManager::factory()).build());
        let forest = TxRbForest::new(10);
        thread::scope(|scope| {
            for t in 0..4u64 {
                let stm = Arc::clone(&stm);
                let forest = forest.clone();
                scope.spawn(move || {
                    let mut ctx = stm.thread();
                    let mut seed = t.wrapping_mul(0x5851F42D4C957F2D) | 1;
                    for step in 0..200 {
                        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let key = ((seed >> 33) % 32) as i64;
                        let scope_choice = if step % 20 == 0 {
                            UpdateScope::All
                        } else {
                            UpdateScope::One(((seed >> 7) % 10) as usize)
                        };
                        if (seed >> 3) & 1 == 0 {
                            ctx.atomically(|tx| forest.insert(tx, scope_choice, key))
                                .unwrap();
                        } else {
                            ctx.atomically(|tx| forest.remove(tx, scope_choice, key))
                                .unwrap();
                        }
                    }
                });
            }
        });
        let mut ctx = stm.thread();
        ctx.atomically(|tx| forest.check_invariants(tx)).unwrap();
    }
}
