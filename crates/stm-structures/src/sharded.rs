//! A shard-aware wrapper that partitions one logical [`TxSet`] across many
//! underlying sets.
//!
//! Sharding is the standard first move when scaling a keyspace past one
//! structure's contention ceiling: keys are partitioned by residue class
//! (`key mod shards`), so transactions that touch different shards share no
//! `TVar`s at all and can only conflict through keys that genuinely collide.
//! The `stm-kv` server builds its keyspace index out of a [`ShardedTxSet`]
//! over red-black trees; because every constituent set is itself
//! transactional, a multi-shard operation (a cross-shard `range`, a batch
//! touching keys in several shards) still executes as one serializable
//! transaction — sharding changes the conflict footprint, never the
//! semantics.
//!
//! Ordered queries ([`ShardedTxSet::range`], [`ShardedTxSet::to_vec`])
//! gather the per-shard results (each already ascending) and merge them.

use std::sync::Arc;

use stm_core::{TxResult, Txn};

use crate::rbtree::TxRbTree;
use crate::set::TxSet;
use crate::skiplist::TxSkipList;

/// A transactional integer set partitioned over `shards` underlying sets by
/// key residue (`key.rem_euclid(shards)`).
#[derive(Clone)]
pub struct ShardedTxSet {
    shards: Vec<Arc<dyn TxSet>>,
}

impl std::fmt::Debug for ShardedTxSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedTxSet")
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl ShardedTxSet {
    /// Builds a sharded set from explicit shard instances.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is empty.
    pub fn new(shards: Vec<Arc<dyn TxSet>>) -> Self {
        assert!(!shards.is_empty(), "a sharded set needs at least one shard");
        ShardedTxSet { shards }
    }

    /// A sharded set whose shards are red-black trees (the `stm-kv`
    /// keyspace-index configuration).
    pub fn rbtree(shards: usize) -> Self {
        ShardedTxSet::new(
            (0..shards.max(1))
                .map(|_| Arc::new(TxRbTree::new()) as Arc<dyn TxSet>)
                .collect(),
        )
    }

    /// A sharded set whose shards are skiplists.
    pub fn skiplist(shards: usize) -> Self {
        ShardedTxSet::new(
            (0..shards.max(1))
                .map(|_| Arc::new(TxSkipList::new()) as Arc<dyn TxSet>)
                .collect(),
        )
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard index responsible for `key`.
    pub fn shard_of(&self, key: i64) -> usize {
        key.rem_euclid(self.shards.len() as i64) as usize
    }

    fn shard(&self, key: i64) -> &dyn TxSet {
        &*self.shards[self.shard_of(key)]
    }

    /// Merges per-shard ascending runs into one ascending vector.
    fn merge_sorted(runs: Vec<Vec<i64>>) -> Vec<i64> {
        let total = runs.iter().map(Vec::len).sum();
        let mut merged = Vec::with_capacity(total);
        let mut cursors = vec![0usize; runs.len()];
        loop {
            let mut best: Option<(usize, i64)> = None;
            for (i, run) in runs.iter().enumerate() {
                if let Some(&head) = run.get(cursors[i]) {
                    if best.is_none_or(|(_, b)| head < b) {
                        best = Some((i, head));
                    }
                }
            }
            match best {
                Some((i, head)) => {
                    cursors[i] += 1;
                    merged.push(head);
                }
                None => break,
            }
        }
        merged
    }
}

impl TxSet for ShardedTxSet {
    fn insert(&self, tx: &mut Txn<'_>, key: i64) -> TxResult<bool> {
        self.shard(key).insert(tx, key)
    }

    fn remove(&self, tx: &mut Txn<'_>, key: i64) -> TxResult<bool> {
        self.shard(key).remove(tx, key)
    }

    fn contains(&self, tx: &mut Txn<'_>, key: i64) -> TxResult<bool> {
        self.shard(key).contains(tx, key)
    }

    fn len(&self, tx: &mut Txn<'_>) -> TxResult<usize> {
        let mut total = 0;
        for shard in &self.shards {
            total += shard.len(tx)?;
        }
        Ok(total)
    }

    fn to_vec(&self, tx: &mut Txn<'_>) -> TxResult<Vec<i64>> {
        let mut runs = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            runs.push(shard.to_vec(tx)?);
        }
        Ok(Self::merge_sorted(runs))
    }

    fn range(&self, tx: &mut Txn<'_>, lo: i64, hi: i64) -> TxResult<Vec<i64>> {
        let mut runs = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            runs.push(shard.range(tx, lo, hi)?);
        }
        Ok(Self::merge_sorted(runs))
    }

    fn structure_name(&self) -> &'static str {
        "sharded"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_core::Stm;

    fn with_set(shards: usize, body: impl FnOnce(&Stm, &ShardedTxSet)) {
        let stm = Stm::default();
        let set = ShardedTxSet::rbtree(shards);
        body(&stm, &set);
    }

    #[test]
    fn basic_ops_route_to_shards() {
        with_set(4, |stm, set| {
            let mut ctx = stm.thread();
            ctx.atomically(|tx| {
                for key in [-5i64, -1, 0, 3, 4, 7, 100] {
                    assert!(set.insert(tx, key)?);
                    assert!(!set.insert(tx, key)?);
                }
                assert!(set.contains(tx, 7)?);
                assert!(!set.contains(tx, 8)?);
                assert!(set.remove(tx, 3)?);
                assert!(!set.remove(tx, 3)?);
                assert_eq!(set.len(tx)?, 6);
                Ok(())
            })
            .unwrap();
        });
    }

    #[test]
    fn to_vec_and_range_merge_ascending_across_shards() {
        with_set(3, |stm, set| {
            let mut ctx = stm.thread();
            let keys: Vec<i64> = vec![9, 2, 14, -3, 0, 5, 7, 21, 22, 23];
            ctx.atomically(|tx| {
                for &key in &keys {
                    set.insert(tx, key)?;
                }
                Ok(())
            })
            .unwrap();
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            let all = ctx.atomically(|tx| set.to_vec(tx)).unwrap();
            assert_eq!(all, sorted);
            let window = ctx.atomically(|tx| set.range(tx, 0, 14)).unwrap();
            let expect: Vec<i64> = sorted.iter().copied().filter(|k| (0..=14).contains(k)).collect();
            assert_eq!(window, expect);
        });
    }

    #[test]
    fn shard_of_handles_negative_keys() {
        let set = ShardedTxSet::rbtree(8);
        assert_eq!(set.num_shards(), 8);
        for key in [-17i64, -8, -1, 0, 1, 63] {
            let shard = set.shard_of(key);
            assert!(shard < 8);
            assert_eq!(shard as i64, key.rem_euclid(8));
        }
    }

    #[test]
    fn skiplist_shards_and_single_shard_degenerate() {
        let stm = Stm::default();
        let set = ShardedTxSet::skiplist(1);
        assert_eq!(set.num_shards(), 1);
        assert_eq!(set.structure_name(), "sharded");
        let mut ctx = stm.thread();
        ctx.atomically(|tx| {
            set.insert(tx, 10)?;
            set.insert(tx, 1)?;
            Ok(())
        })
        .unwrap();
        assert_eq!(ctx.atomically(|tx| set.to_vec(tx)).unwrap(), vec![1, 10]);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn empty_shard_vector_is_rejected() {
        let _ = ShardedTxSet::new(Vec::new());
    }
}
