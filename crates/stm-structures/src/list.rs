//! The sorted linked-list integer set (Figure 1, "List application").
//!
//! Every operation walks the list from the head, transactionally reading
//! each node it passes; with the paper's parameters (256 possible keys, 100%
//! updates) the shared prefix makes this the most contention-intensive of
//! the benchmark structures.
//!
//! The list uses two sentinel nodes holding `i64::MIN` and `i64::MAX`, so
//! traversal never has to special-case an empty list.

use stm_core::{TVar, TxResult, Txn};

use crate::set::TxSet;

/// One list node: a key and the next node.
#[derive(Debug, Clone)]
struct Node {
    key: i64,
    next: Option<TVar<Node>>,
}

/// A transactional sorted linked-list set.
#[derive(Debug, Clone)]
pub struct TxList {
    head: TVar<Node>,
}

impl Default for TxList {
    fn default() -> Self {
        Self::new()
    }
}

impl TxList {
    /// Creates an empty list.
    pub fn new() -> Self {
        let tail = TVar::new(Node {
            key: i64::MAX,
            next: None,
        });
        let head = TVar::new(Node {
            key: i64::MIN,
            next: Some(tail),
        });
        TxList { head }
    }

    /// Finds the node pair `(pred, curr)` such that `pred.key < key` and
    /// `curr.key >= key`. `curr` is `None` only if the key is larger than
    /// every element (impossible given the `i64::MAX` sentinel).
    fn locate(
        &self,
        tx: &mut Txn<'_>,
        key: i64,
    ) -> TxResult<(TVar<Node>, Node, TVar<Node>, Node)> {
        debug_assert!(key > i64::MIN && key < i64::MAX, "sentinel keys are reserved");
        let mut pred_var = self.head.clone();
        let mut pred = tx.read(&pred_var)?;
        loop {
            let curr_var = pred
                .next
                .clone()
                .expect("interior nodes always have a successor");
            let curr = tx.read(&curr_var)?;
            if curr.key >= key {
                return Ok((pred_var, pred, curr_var, curr));
            }
            pred_var = curr_var;
            pred = curr;
        }
    }

    /// Materializes the whole list inside the caller's transaction.
    ///
    /// A snapshot is a single pass whose read set covers every node — the
    /// longest invisible-read chain any benchmark structure produces — so it
    /// is the list's entry in the range-query workloads: any concurrent
    /// update to any node conflicts with it.
    pub fn snapshot(&self, tx: &mut Txn<'_>) -> TxResult<Vec<i64>> {
        let mut out = Vec::new();
        let mut node = tx.read(&self.head)?;
        while let Some(next_var) = node.next.clone() {
            node = tx.read(&next_var)?;
            if node.key != i64::MAX {
                out.push(node.key);
            }
        }
        Ok(out)
    }
}

impl TxSet for TxList {
    fn insert(&self, tx: &mut Txn<'_>, key: i64) -> TxResult<bool> {
        let (pred_var, pred, curr_var, curr) = self.locate(tx, key)?;
        if curr.key == key {
            return Ok(false);
        }
        let node = TVar::new(Node {
            key,
            next: Some(curr_var),
        });
        tx.write(
            &pred_var,
            Node {
                key: pred.key,
                next: Some(node),
            },
        )?;
        Ok(true)
    }

    fn remove(&self, tx: &mut Txn<'_>, key: i64) -> TxResult<bool> {
        let (pred_var, pred, _curr_var, curr) = self.locate(tx, key)?;
        if curr.key != key {
            return Ok(false);
        }
        tx.write(
            &pred_var,
            Node {
                key: pred.key,
                next: curr.next,
            },
        )?;
        Ok(true)
    }

    fn contains(&self, tx: &mut Txn<'_>, key: i64) -> TxResult<bool> {
        let (_, _, _, curr) = self.locate(tx, key)?;
        Ok(curr.key == key)
    }

    fn len(&self, tx: &mut Txn<'_>) -> TxResult<usize> {
        Ok(self.to_vec(tx)?.len())
    }

    fn to_vec(&self, tx: &mut Txn<'_>) -> TxResult<Vec<i64>> {
        self.snapshot(tx)
    }

    /// Walks from the head and stops at the first key past `hi`, so the read
    /// set covers only the prefix up to the end of the interval (the list
    /// cannot skip the prefix below `lo`).
    fn range(&self, tx: &mut Txn<'_>, lo: i64, hi: i64) -> TxResult<Vec<i64>> {
        let mut out = Vec::new();
        let mut node = tx.read(&self.head)?;
        while let Some(next_var) = node.next.clone() {
            node = tx.read(&next_var)?;
            if node.key == i64::MAX || node.key > hi {
                break;
            }
            if node.key >= lo {
                out.push(node.key);
            }
        }
        Ok(out)
    }

    fn structure_name(&self) -> &'static str {
        "list"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::Arc;
    use std::thread;
    use stm_cm::GreedyManager;
    use stm_core::Stm;

    fn with_list<R>(f: impl FnOnce(&Stm, &TxList) -> R) -> R {
        let stm = Stm::builder().manager(GreedyManager::factory()).build();
        let list = TxList::new();
        f(&stm, &list)
    }

    #[test]
    fn insert_remove_contains_basics() {
        with_list(|stm, list| {
            let mut ctx = stm.thread();
            assert!(ctx.atomically(|tx| list.insert(tx, 5)).unwrap());
            assert!(ctx.atomically(|tx| list.insert(tx, 1)).unwrap());
            assert!(ctx.atomically(|tx| list.insert(tx, 9)).unwrap());
            assert!(!ctx.atomically(|tx| list.insert(tx, 5)).unwrap());
            assert!(ctx.atomically(|tx| list.contains(tx, 5)).unwrap());
            assert!(!ctx.atomically(|tx| list.contains(tx, 4)).unwrap());
            assert_eq!(ctx.atomically(|tx| list.to_vec(tx)).unwrap(), vec![1, 5, 9]);
            assert!(ctx.atomically(|tx| list.remove(tx, 5)).unwrap());
            assert!(!ctx.atomically(|tx| list.remove(tx, 5)).unwrap());
            assert_eq!(ctx.atomically(|tx| list.to_vec(tx)).unwrap(), vec![1, 9]);
            assert_eq!(ctx.atomically(|tx| list.len(tx)).unwrap(), 2);
            assert!(!ctx.atomically(|tx| list.is_empty(tx)).unwrap());
            assert_eq!(list.structure_name(), "list");
        });
    }

    #[test]
    fn matches_a_model_set_for_a_random_workload() {
        with_list(|stm, list| {
            let mut ctx = stm.thread();
            let mut model = BTreeSet::new();
            let mut seed = 0x9e3779b97f4a7c15u64;
            for _ in 0..2_000 {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                let key = ((seed >> 33) % 64) as i64;
                let insert = (seed >> 11) & 1 == 0;
                let (expected, actual) = if insert {
                    (
                        model.insert(key),
                        ctx.atomically(|tx| list.insert(tx, key)).unwrap(),
                    )
                } else {
                    (
                        model.remove(&key),
                        ctx.atomically(|tx| list.remove(tx, key)).unwrap(),
                    )
                };
                assert_eq!(expected, actual);
            }
            let contents = ctx.atomically(|tx| list.to_vec(tx)).unwrap();
            assert_eq!(contents, model.iter().copied().collect::<Vec<_>>());
        });
    }

    #[test]
    fn snapshot_and_range_agree_with_to_vec() {
        with_list(|stm, list| {
            let mut ctx = stm.thread();
            for key in [4, 1, 9, 6, 2] {
                ctx.atomically(|tx| list.insert(tx, key)).unwrap();
            }
            assert_eq!(
                ctx.atomically(|tx| list.snapshot(tx)).unwrap(),
                vec![1, 2, 4, 6, 9]
            );
            assert_eq!(
                ctx.atomically(|tx| list.range(tx, 2, 6)).unwrap(),
                vec![2, 4, 6]
            );
            assert_eq!(
                ctx.atomically(|tx| list.range(tx, 5, 5)).unwrap(),
                Vec::<i64>::new()
            );
            assert_eq!(
                ctx.atomically(|tx| list.range(tx, -100, 100)).unwrap(),
                vec![1, 2, 4, 6, 9]
            );
            // A range sees writes of its own transaction.
            let in_tx = ctx
                .atomically(|tx| {
                    list.insert(tx, 3)?;
                    list.range(tx, 1, 4)
                })
                .unwrap();
            assert_eq!(in_tx, vec![1, 2, 3, 4]);
        });
    }

    #[test]
    fn multi_key_transaction_is_atomic() {
        with_list(|stm, list| {
            let mut ctx = stm.thread();
            ctx.atomically(|tx| {
                list.insert(tx, 1)?;
                list.insert(tx, 2)?;
                list.insert(tx, 3)?;
                Ok(())
            })
            .unwrap();
            // Aborted transaction leaves no partial effects.
            let _ = ctx.atomically(|tx| {
                list.remove(tx, 1)?;
                list.remove(tx, 2)?;
                tx.abort::<()>()
            });
            assert_eq!(
                ctx.atomically(|tx| list.to_vec(tx)).unwrap(),
                vec![1, 2, 3]
            );
        });
    }

    #[test]
    fn concurrent_disjoint_inserts_all_land() {
        let stm = Arc::new(Stm::builder().manager(GreedyManager::factory()).build());
        let list = TxList::new();
        let threads = 4i64;
        let per_thread = 64i64;
        thread::scope(|scope| {
            for t in 0..threads {
                let stm = Arc::clone(&stm);
                let list = list.clone();
                scope.spawn(move || {
                    let mut ctx = stm.thread();
                    for i in 0..per_thread {
                        let key = t * per_thread + i;
                        assert!(ctx.atomically(|tx| list.insert(tx, key)).unwrap());
                    }
                });
            }
        });
        let mut ctx = stm.thread();
        let contents = ctx.atomically(|tx| list.to_vec(tx)).unwrap();
        assert_eq!(contents.len(), (threads * per_thread) as usize);
        assert!(contents.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");
    }

    #[test]
    fn concurrent_mixed_workload_preserves_set_semantics() {
        let stm = Arc::new(Stm::builder().manager(GreedyManager::factory()).build());
        let list = TxList::new();
        let keys = 32i64;
        thread::scope(|scope| {
            for t in 0..4u64 {
                let stm = Arc::clone(&stm);
                let list = list.clone();
                scope.spawn(move || {
                    let mut ctx = stm.thread();
                    let mut seed = t.wrapping_mul(0x9e3779b97f4a7c15) | 1;
                    for _ in 0..500 {
                        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let key = ((seed >> 33) % keys as u64) as i64;
                        if (seed >> 7) & 1 == 0 {
                            let _ = ctx.atomically(|tx| list.insert(tx, key)).unwrap();
                        } else {
                            let _ = ctx.atomically(|tx| list.remove(tx, key)).unwrap();
                        }
                    }
                });
            }
        });
        let mut ctx = stm.thread();
        let contents = ctx.atomically(|tx| list.to_vec(tx)).unwrap();
        assert!(contents.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");
        assert!(contents.iter().all(|&k| (0..keys).contains(&k)));
    }
}
