//! The skiplist integer set (Figure 2, "Skiplist application").
//!
//! A skiplist keeps several levels of forward pointers so that searches skip
//! over large portions of the list; compared to the plain sorted list this
//! shortens the shared prefix that every transaction reads, and therefore
//! reduces (but does not eliminate) contention.
//!
//! Node levels are derived deterministically from the key (by hashing), so
//! the structure needs no per-operation random-number generator and its
//! shape is reproducible across runs — convenient for benchmarking, and the
//! expected level distribution is the same geometric distribution a
//! randomized skiplist would use.

use stm_core::{TVar, TxResult, Txn};

use crate::set::TxSet;

/// Maximum number of levels. With 256-key benchmark sets, levels beyond 8
/// are essentially never populated, but the structure supports much larger
/// sets.
pub const MAX_LEVEL: usize = 16;

/// One skiplist node: a key and one forward pointer per level.
#[derive(Debug, Clone)]
struct Node {
    key: i64,
    /// Forward pointers; `forward.len()` is the node's level (>= 1). The
    /// tail sentinel has no forward pointers.
    forward: Vec<Option<TVar<Node>>>,
}

/// A transactional skiplist set.
#[derive(Debug, Clone)]
pub struct TxSkipList {
    head: TVar<Node>,
}

impl Default for TxSkipList {
    fn default() -> Self {
        Self::new()
    }
}

/// Deterministic node level for a key: a geometric distribution with
/// parameter 1/2 obtained from the trailing zeros of a mixed hash.
fn level_for_key(key: i64) -> usize {
    let mut h = key as u64 ^ 0x9e37_79b9_7f4a_7c15;
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    ((h.trailing_zeros() as usize) + 1).min(MAX_LEVEL)
}

impl TxSkipList {
    /// Creates an empty skiplist.
    pub fn new() -> Self {
        let tail = TVar::new(Node {
            key: i64::MAX,
            forward: Vec::new(),
        });
        let head = TVar::new(Node {
            key: i64::MIN,
            forward: vec![Some(tail); MAX_LEVEL],
        });
        TxSkipList { head }
    }

    /// Walks the skiplist and returns, for every level, the predecessor node
    /// (as a `TVar` plus its value) of the position where `key` belongs,
    /// together with the node found at level 0 (which has `node.key >= key`).
    #[allow(clippy::type_complexity)]
    fn locate(
        &self,
        tx: &mut Txn<'_>,
        key: i64,
    ) -> TxResult<(Vec<(TVar<Node>, Node)>, TVar<Node>, Node)> {
        debug_assert!(key > i64::MIN && key < i64::MAX, "sentinel keys are reserved");
        let mut preds: Vec<(TVar<Node>, Node)> = Vec::with_capacity(MAX_LEVEL);
        let mut current_var = self.head.clone();
        let mut current = tx.read(&current_var)?;
        for level in (0..MAX_LEVEL).rev() {
            loop {
                let next_var = current.forward[level]
                    .clone()
                    .expect("interior levels always point at the tail sentinel");
                let next = tx.read(&next_var)?;
                if next.key < key {
                    current_var = next_var;
                    current = next;
                } else {
                    break;
                }
            }
            preds.push((current_var.clone(), current.clone()));
        }
        preds.reverse(); // preds[level] is now the predecessor at `level`.
        let succ_var = preds[0]
            .1
            .forward[0]
            .clone()
            .expect("level-0 predecessor always has a successor");
        let succ = tx.read(&succ_var)?;
        Ok((preds, succ_var, succ))
    }
}

impl TxSet for TxSkipList {
    fn insert(&self, tx: &mut Txn<'_>, key: i64) -> TxResult<bool> {
        let (preds, _succ_var, succ) = self.locate(tx, key)?;
        if succ.key == key {
            return Ok(false);
        }
        let level = level_for_key(key);
        // The new node's forward pointers are what each predecessor currently
        // points at, level by level.
        let mut forward = Vec::with_capacity(level);
        for (lvl, (_, pred)) in preds.iter().enumerate().take(level) {
            forward.push(pred.forward[lvl].clone());
        }
        let node = TVar::new(Node { key, forward });
        // Re-read each predecessor through `modify`: the same node may be the
        // predecessor at several levels, so each link update must start from
        // the value produced by the previous one.
        for (lvl, (pred_var, _)) in preds.iter().enumerate().take(level) {
            let node = node.clone();
            tx.modify(pred_var, move |p| {
                let mut updated = p.clone();
                updated.forward[lvl] = Some(node);
                updated
            })?;
        }
        Ok(true)
    }

    fn remove(&self, tx: &mut Txn<'_>, key: i64) -> TxResult<bool> {
        let (preds, succ_var, succ) = self.locate(tx, key)?;
        if succ.key != key {
            return Ok(false);
        }
        for (lvl, (pred_var, _)) in preds.iter().enumerate().take(succ.forward.len()) {
            // Only unlink at levels where the predecessor actually points at
            // the victim; re-read through `modify` because the same node may
            // be the predecessor at several levels.
            let victim = succ_var.clone();
            let replacement = succ.forward[lvl].clone();
            tx.modify(pred_var, move |p| {
                let points_at_victim = p.forward[lvl]
                    .as_ref()
                    .map(|next| next.same_object(&victim))
                    .unwrap_or(false);
                if points_at_victim {
                    let mut updated = p.clone();
                    updated.forward[lvl] = replacement;
                    updated
                } else {
                    p.clone()
                }
            })?;
        }
        Ok(true)
    }

    fn contains(&self, tx: &mut Txn<'_>, key: i64) -> TxResult<bool> {
        let (_, _, succ) = self.locate(tx, key)?;
        Ok(succ.key == key)
    }

    fn len(&self, tx: &mut Txn<'_>) -> TxResult<usize> {
        Ok(self.to_vec(tx)?.len())
    }

    /// Uses the forward pointers to skip the prefix below `lo`, then walks
    /// level 0 until the first key past `hi`: the transaction's read set is
    /// the `O(log n)` descent plus exactly the interval — the long
    /// invisible-read pattern the range workloads stress.
    fn range(&self, tx: &mut Txn<'_>, lo: i64, hi: i64) -> TxResult<Vec<i64>> {
        // Unlike `locate`, sentinel-valued bounds are fine here: the descent
        // never advances past a key >= lo, and the tail check below fires
        // before the `> hi` comparison.
        if lo > hi {
            return Ok(Vec::new());
        }
        // Descend to the level-0 predecessor of `lo` (same walk as `locate`,
        // without recording the per-level predecessors).
        let mut current = tx.read(&self.head)?;
        for level in (0..MAX_LEVEL).rev() {
            loop {
                let next_var = current.forward[level]
                    .clone()
                    .expect("interior levels always point at the tail sentinel");
                let next = tx.read(&next_var)?;
                if next.key < lo {
                    current = next;
                } else {
                    break;
                }
            }
        }
        let mut out = Vec::new();
        let mut node_var = current.forward[0]
            .clone()
            .expect("level-0 predecessor always has a successor");
        loop {
            let node = tx.read(&node_var)?;
            if node.key == i64::MAX || node.key > hi {
                break;
            }
            out.push(node.key);
            node_var = node.forward[0]
                .clone()
                .expect("interior nodes always have a level-0 successor");
        }
        Ok(out)
    }

    fn to_vec(&self, tx: &mut Txn<'_>) -> TxResult<Vec<i64>> {
        let mut out = Vec::new();
        let mut node = tx.read(&self.head)?;
        while let Some(next_var) = node.forward.first().cloned().flatten() {
            node = tx.read(&next_var)?;
            if node.key == i64::MAX {
                break;
            }
            out.push(node.key);
        }
        Ok(out)
    }

    fn structure_name(&self) -> &'static str {
        "skiplist"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::Arc;
    use std::thread;
    use stm_cm::GreedyManager;
    use stm_core::Stm;

    #[test]
    fn level_distribution_is_geometric_and_bounded() {
        let mut histogram = [0usize; MAX_LEVEL + 1];
        for key in 0..4096i64 {
            let level = level_for_key(key);
            assert!((1..=MAX_LEVEL).contains(&level));
            histogram[level] += 1;
        }
        // Roughly half the keys should be level 1, a quarter level 2, etc.
        assert!(histogram[1] > 1500 && histogram[1] < 2600);
        assert!(histogram[2] > 700 && histogram[2] < 1400);
        assert!(histogram[1] > histogram[2]);
        assert!(histogram[2] > histogram[3]);
    }

    #[test]
    fn insert_remove_contains_basics() {
        let stm = Stm::builder().manager(GreedyManager::factory()).build();
        let set = TxSkipList::new();
        let mut ctx = stm.thread();
        assert!(ctx.atomically(|tx| set.insert(tx, 10)).unwrap());
        assert!(ctx.atomically(|tx| set.insert(tx, 3)).unwrap());
        assert!(ctx.atomically(|tx| set.insert(tx, 7)).unwrap());
        assert!(!ctx.atomically(|tx| set.insert(tx, 7)).unwrap());
        assert!(ctx.atomically(|tx| set.contains(tx, 3)).unwrap());
        assert!(!ctx.atomically(|tx| set.contains(tx, 4)).unwrap());
        assert_eq!(
            ctx.atomically(|tx| set.to_vec(tx)).unwrap(),
            vec![3, 7, 10]
        );
        assert!(ctx.atomically(|tx| set.remove(tx, 7)).unwrap());
        assert!(!ctx.atomically(|tx| set.remove(tx, 7)).unwrap());
        assert_eq!(ctx.atomically(|tx| set.to_vec(tx)).unwrap(), vec![3, 10]);
        assert_eq!(set.structure_name(), "skiplist");
    }

    #[test]
    fn matches_a_model_set_for_a_random_workload() {
        let stm = Stm::builder().manager(GreedyManager::factory()).build();
        let set = TxSkipList::new();
        let mut ctx = stm.thread();
        let mut model = BTreeSet::new();
        let mut seed = 0xdeadbeefcafef00du64;
        for _ in 0..3_000 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = ((seed >> 33) % 128) as i64;
            let insert = (seed >> 13) & 1 == 0;
            let (expected, actual) = if insert {
                (
                    model.insert(key),
                    ctx.atomically(|tx| set.insert(tx, key)).unwrap(),
                )
            } else {
                (
                    model.remove(&key),
                    ctx.atomically(|tx| set.remove(tx, key)).unwrap(),
                )
            };
            assert_eq!(expected, actual);
            // Membership of a few probe keys stays consistent as well.
            let probe = (key + 17) % 128;
            assert_eq!(
                model.contains(&probe),
                ctx.atomically(|tx| set.contains(tx, probe)).unwrap()
            );
        }
        let contents = ctx.atomically(|tx| set.to_vec(tx)).unwrap();
        assert_eq!(contents, model.iter().copied().collect::<Vec<_>>());
    }

    #[test]
    fn range_returns_the_requested_interval() {
        let stm = Stm::builder().manager(GreedyManager::factory()).build();
        let set = TxSkipList::new();
        let mut ctx = stm.thread();
        for key in (0..64i64).step_by(3) {
            ctx.atomically(|tx| set.insert(tx, key)).unwrap();
        }
        assert_eq!(
            ctx.atomically(|tx| set.range(tx, 10, 25)).unwrap(),
            vec![12, 15, 18, 21, 24]
        );
        assert_eq!(
            ctx.atomically(|tx| set.range(tx, 0, 0)).unwrap(),
            vec![0]
        );
        assert_eq!(
            ctx.atomically(|tx| set.range(tx, 64, 100)).unwrap(),
            Vec::<i64>::new()
        );
        assert_eq!(
            ctx.atomically(|tx| set.range(tx, 25, 10)).unwrap(),
            Vec::<i64>::new()
        );
        // Sentinel-valued bounds are a full-set scan, not a panic.
        assert_eq!(
            ctx.atomically(|tx| set.range(tx, i64::MIN, i64::MAX)).unwrap(),
            ctx.atomically(|tx| set.to_vec(tx)).unwrap()
        );
        // A range sees writes of its own transaction.
        let in_tx = ctx
            .atomically(|tx| {
                set.insert(tx, 13)?;
                set.range(tx, 12, 15)
            })
            .unwrap();
        assert_eq!(in_tx, vec![12, 13, 15]);
    }

    #[test]
    fn concurrent_disjoint_inserts_all_land() {
        let stm = Arc::new(Stm::builder().manager(GreedyManager::factory()).build());
        let set = TxSkipList::new();
        let threads = 4i64;
        let per_thread = 64i64;
        thread::scope(|scope| {
            for t in 0..threads {
                let stm = Arc::clone(&stm);
                let set = set.clone();
                scope.spawn(move || {
                    let mut ctx = stm.thread();
                    for i in 0..per_thread {
                        assert!(ctx
                            .atomically(|tx| set.insert(tx, t * per_thread + i))
                            .unwrap());
                    }
                });
            }
        });
        let mut ctx = stm.thread();
        let contents = ctx.atomically(|tx| set.to_vec(tx)).unwrap();
        assert_eq!(contents.len(), (threads * per_thread) as usize);
        assert!(contents.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn concurrent_mixed_workload_preserves_set_semantics() {
        let stm = Arc::new(Stm::builder().manager(GreedyManager::factory()).build());
        let set = TxSkipList::new();
        thread::scope(|scope| {
            for t in 0..4u64 {
                let stm = Arc::clone(&stm);
                let set = set.clone();
                scope.spawn(move || {
                    let mut ctx = stm.thread();
                    let mut seed = t.wrapping_mul(0x2545F4914F6CDD1D) | 1;
                    for _ in 0..400 {
                        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let key = ((seed >> 33) % 48) as i64;
                        if (seed >> 9) & 1 == 0 {
                            let _ = ctx.atomically(|tx| set.insert(tx, key)).unwrap();
                        } else {
                            let _ = ctx.atomically(|tx| set.remove(tx, key)).unwrap();
                        }
                    }
                });
            }
        });
        let mut ctx = stm.thread();
        let contents = ctx.atomically(|tx| set.to_vec(tx)).unwrap();
        assert!(contents.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");
        assert!(contents.iter().all(|&k| (0..48).contains(&k)));
    }
}
