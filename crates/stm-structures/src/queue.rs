//! A transactional FIFO queue (two-stack "banker's queue" representation).
//!
//! Used by the examples and the integration tests to exercise transactions
//! whose read and write sets differ between operations (enqueues touch only
//! the back stack, dequeues usually only the front stack, but occasionally a
//! dequeue reverses the back stack, producing an irregularly long
//! transaction — a miniature version of the red-black-forest effect).

use stm_core::{Stm, TVar, TxResult, Txn};

/// A transactional FIFO queue of 64-bit integers.
#[derive(Debug, Clone, Default)]
pub struct TxQueue {
    /// Elements ready to be popped, front of the queue at the end.
    front: TVar<Vec<i64>>,
    /// Freshly pushed elements, newest at the end.
    back: TVar<Vec<i64>>,
}

impl TxQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        TxQueue {
            front: TVar::new(Vec::new()),
            back: TVar::new(Vec::new()),
        }
    }

    /// Appends `value` to the back of the queue.
    pub fn enqueue(&self, tx: &mut Txn<'_>, value: i64) -> TxResult<()> {
        tx.modify(&self.back, |b| {
            let mut b = b.clone();
            b.push(value);
            b
        })
    }

    /// Removes and returns the front element, or `None` if the queue is
    /// empty.
    pub fn dequeue(&self, tx: &mut Txn<'_>) -> TxResult<Option<i64>> {
        let mut front = tx.read(&self.front)?;
        if front.is_empty() {
            let back = tx.read(&self.back)?;
            if back.is_empty() {
                return Ok(None);
            }
            front = back.into_iter().rev().collect();
            tx.write(&self.back, Vec::new())?;
        }
        let value = front.pop();
        tx.write(&self.front, front)?;
        Ok(value)
    }

    /// Number of elements currently queued.
    pub fn len(&self, tx: &mut Txn<'_>) -> TxResult<usize> {
        Ok(tx.read(&self.front)?.len() + tx.read(&self.back)?.len())
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self, tx: &mut Txn<'_>) -> TxResult<bool> {
        Ok(self.len(tx)? == 0)
    }

    /// Total number of queued elements, read non-transactionally (only
    /// meaningful when no concurrent writers exist).
    pub fn len_committed(&self, stm: &Stm) -> usize {
        stm.read_atomic(&self.front).len() + stm.read_atomic(&self.back).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;
    use std::thread;
    use stm_cm::KarmaManager;

    #[test]
    fn fifo_order_single_threaded() {
        let stm = Stm::default();
        let q = TxQueue::new();
        let mut ctx = stm.thread();
        ctx.atomically(|tx| {
            for i in 0..5 {
                q.enqueue(tx, i)?;
            }
            Ok(())
        })
        .unwrap();
        let mut out = Vec::new();
        while let Some(v) = ctx.atomically(|tx| q.dequeue(tx)).unwrap() {
            out.push(v);
        }
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert!(ctx.atomically(|tx| q.is_empty(tx)).unwrap());
    }

    #[test]
    fn dequeue_on_empty_returns_none() {
        let stm = Stm::default();
        let q = TxQueue::new();
        let mut ctx = stm.thread();
        assert_eq!(ctx.atomically(|tx| q.dequeue(tx)).unwrap(), None);
        assert_eq!(ctx.atomically(|tx| q.len(tx)).unwrap(), 0);
        assert_eq!(q.len_committed(&stm), 0);
    }

    #[test]
    fn concurrent_producers_and_consumers_neither_lose_nor_duplicate() {
        let stm = Arc::new(Stm::builder().manager(KarmaManager::factory()).build());
        let q = TxQueue::new();
        let producers = 3;
        let per_producer = 200i64;
        let consumed = thread::scope(|scope| {
            for p in 0..producers {
                let stm = Arc::clone(&stm);
                let q = q.clone();
                scope.spawn(move || {
                    let mut ctx = stm.thread();
                    for i in 0..per_producer {
                        let value = p * per_producer + i;
                        ctx.atomically(|tx| q.enqueue(tx, value)).unwrap();
                    }
                });
            }
            let mut handles = Vec::new();
            for _ in 0..2 {
                let stm = Arc::clone(&stm);
                let q = q.clone();
                handles.push(scope.spawn(move || {
                    let mut ctx = stm.thread();
                    let mut got = Vec::new();
                    let mut empty_rounds = 0;
                    while empty_rounds < 200 {
                        match ctx.atomically(|tx| q.dequeue(tx)).unwrap() {
                            Some(v) => {
                                got.push(v);
                                empty_rounds = 0;
                            }
                            None => {
                                empty_rounds += 1;
                                thread::yield_now();
                            }
                        }
                    }
                    got
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect::<Vec<i64>>()
        });
        // Whatever remains in the queue plus what was consumed must be exactly
        // the produced values, each exactly once.
        let stm2 = Arc::clone(&stm);
        let mut ctx = stm2.thread();
        let mut remaining = Vec::new();
        while let Some(v) = ctx.atomically(|tx| q.dequeue(tx)).unwrap() {
            remaining.push(v);
        }
        let mut all: Vec<i64> = consumed.into_iter().chain(remaining).collect();
        all.sort_unstable();
        let expected: Vec<i64> = (0..producers * per_producer).collect();
        assert_eq!(all.len(), expected.len(), "lost or duplicated elements");
        assert_eq!(all.iter().copied().collect::<HashSet<_>>().len(), all.len());
        assert_eq!(all, expected);
    }
}
