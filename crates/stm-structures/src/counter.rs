//! A trivial transactional counter, used by examples, tests and the
//! starvation experiment (Theorem 1: every transaction commits within a
//! bounded delay, even a long transaction that touches many counters while
//! short transactions hammer them).

use stm_core::{Stm, TVar, TxResult, Txn};

/// A shared 64-bit counter.
#[derive(Debug, Clone, Default)]
pub struct TxCounter {
    value: TVar<i64>,
}

impl TxCounter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        TxCounter {
            value: TVar::new(0),
        }
    }

    /// Creates a counter starting at `initial`.
    pub fn with_value(initial: i64) -> Self {
        TxCounter {
            value: TVar::new(initial),
        }
    }

    /// Adds `delta` to the counter and returns the new value.
    pub fn add(&self, tx: &mut Txn<'_>, delta: i64) -> TxResult<i64> {
        let next = tx.read(&self.value)? + delta;
        tx.write(&self.value, next)?;
        Ok(next)
    }

    /// Increments the counter by one and returns the new value.
    pub fn increment(&self, tx: &mut Txn<'_>) -> TxResult<i64> {
        self.add(tx, 1)
    }

    /// Reads the counter inside a transaction.
    pub fn get(&self, tx: &mut Txn<'_>) -> TxResult<i64> {
        tx.read(&self.value)
    }

    /// Reads the latest committed value outside any transaction.
    pub fn load(&self, stm: &Stm) -> i64 {
        stm.read_atomic(&self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use stm_cm::GreedyManager;

    #[test]
    fn increments_and_reads() {
        let stm = Stm::default();
        let counter = TxCounter::new();
        let mut ctx = stm.thread();
        let v = ctx
            .atomically(|tx| {
                counter.add(tx, 5)?;
                counter.increment(tx)?;
                counter.get(tx)
            })
            .unwrap();
        assert_eq!(v, 6);
        assert_eq!(counter.load(&stm), 6);
    }

    #[test]
    fn with_value_starts_at_given_value() {
        let stm = Stm::default();
        let counter = TxCounter::with_value(41);
        let mut ctx = stm.thread();
        ctx.atomically(|tx| counter.increment(tx)).unwrap();
        assert_eq!(counter.load(&stm), 42);
    }

    #[test]
    fn concurrent_increments_are_exact_under_greedy() {
        let stm = Arc::new(Stm::builder().manager(GreedyManager::factory()).build());
        let counter = TxCounter::new();
        let threads = 4;
        let per_thread = 1_000;
        thread::scope(|scope| {
            for _ in 0..threads {
                let stm = Arc::clone(&stm);
                let counter = counter.clone();
                scope.spawn(move || {
                    let mut ctx = stm.thread();
                    for _ in 0..per_thread {
                        ctx.atomically(|tx| counter.increment(tx)).unwrap();
                    }
                });
            }
        });
        assert_eq!(counter.load(&stm), threads * per_thread);
    }
}
