//! The red-black tree integer set (Figure 3, "Red-black application").
//!
//! A classic CLRS-style red-black tree whose nodes live in [`TVar`]s, so
//! every traversal read and every structural write is transactional. The
//! tree keeps no parent pointers (which would create `Arc` cycles); instead
//! the insertion and deletion algorithms record the access path on the way
//! down and perform the bottom-up recolouring/rotation fix-ups from that
//! path stack.
//!
//! Compared to the list and skiplist, searches touch only `O(log n)` nodes
//! and updates conflict mostly near the nodes they rebalance, which is why
//! the paper pairs this structure with its *low-contention* workload.

use stm_core::{TVar, TxResult, Txn};

use crate::set::TxSet;

/// Node colour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Color {
    Red,
    Black,
}

/// Direction taken when descending from a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    Left,
    Right,
}

type Link = Option<TVar<Node>>;

/// One tree node.
#[derive(Debug, Clone)]
struct Node {
    key: i64,
    color: Color,
    left: Link,
    right: Link,
}

impl Node {
    fn child(&self, dir: Dir) -> Link {
        match dir {
            Dir::Left => self.left.clone(),
            Dir::Right => self.right.clone(),
        }
    }
}

/// A path entry: a node plus the direction taken from it.
type PathEntry = (TVar<Node>, Dir);

/// A transactional red-black tree set.
#[derive(Debug, Clone)]
pub struct TxRbTree {
    root: TVar<Link>,
}

impl Default for TxRbTree {
    fn default() -> Self {
        Self::new()
    }
}

impl TxRbTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        TxRbTree {
            root: TVar::new(None),
        }
    }

    fn read_node(tx: &mut Txn<'_>, var: &TVar<Node>) -> TxResult<Node> {
        tx.read(var)
    }

    fn recolor(tx: &mut Txn<'_>, var: &TVar<Node>, color: Color) -> TxResult<()> {
        let node = tx.read(var)?;
        if node.color != color {
            tx.write(var, Node { color, ..node })?;
        }
        Ok(())
    }

    fn set_child_of(
        tx: &mut Txn<'_>,
        var: &TVar<Node>,
        dir: Dir,
        child: Link,
    ) -> TxResult<()> {
        let node = tx.read(var)?;
        let updated = match dir {
            Dir::Left => Node {
                left: child,
                ..node
            },
            Dir::Right => Node {
                right: child,
                ..node
            },
        };
        tx.write(var, updated)
    }

    /// Attaches `child` below `parent` (or installs it as the root when
    /// `parent` is `None`).
    fn attach(&self, tx: &mut Txn<'_>, parent: Option<&PathEntry>, child: Link) -> TxResult<()> {
        match parent {
            None => tx.write(&self.root, child),
            Some((var, dir)) => Self::set_child_of(tx, var, *dir, child),
        }
    }

    /// Left rotation at `x`: `x`'s right child `y` becomes the subtree root,
    /// `x` becomes `y`'s left child. Returns `y`. The caller must re-attach
    /// `y` below `x`'s former parent.
    fn rotate_left(tx: &mut Txn<'_>, x_var: &TVar<Node>) -> TxResult<TVar<Node>> {
        let x = tx.read(x_var)?;
        let y_var = x.right.clone().expect("rotate_left requires a right child");
        let y = tx.read(&y_var)?;
        tx.write(
            x_var,
            Node {
                right: y.left.clone(),
                ..x
            },
        )?;
        tx.write(
            &y_var,
            Node {
                left: Some(x_var.clone()),
                ..y
            },
        )?;
        Ok(y_var)
    }

    /// Right rotation at `x` (mirror of [`TxRbTree::rotate_left`]).
    fn rotate_right(tx: &mut Txn<'_>, x_var: &TVar<Node>) -> TxResult<TVar<Node>> {
        let x = tx.read(x_var)?;
        let y_var = x.left.clone().expect("rotate_right requires a left child");
        let y = tx.read(&y_var)?;
        tx.write(
            x_var,
            Node {
                left: y.right.clone(),
                ..x
            },
        )?;
        tx.write(
            &y_var,
            Node {
                right: Some(x_var.clone()),
                ..y
            },
        )?;
        Ok(y_var)
    }

    fn rotate(tx: &mut Txn<'_>, var: &TVar<Node>, dir: Dir) -> TxResult<TVar<Node>> {
        match dir {
            Dir::Left => Self::rotate_left(tx, var),
            Dir::Right => Self::rotate_right(tx, var),
        }
    }

    /// Descends from the root looking for `key`, recording the path. Returns
    /// the path and the node holding `key`, if present.
    fn descend(
        &self,
        tx: &mut Txn<'_>,
        key: i64,
    ) -> TxResult<(Vec<PathEntry>, Option<TVar<Node>>)> {
        let mut path = Vec::new();
        let mut current = tx.read(&self.root)?;
        while let Some(var) = current {
            let node = tx.read(&var)?;
            if node.key == key {
                return Ok((path, Some(var)));
            }
            let dir = if key < node.key { Dir::Left } else { Dir::Right };
            path.push((var, dir));
            current = node.child(dir);
        }
        Ok((path, None))
    }

    /// Makes sure the root (if any) is black. Blackening the root never
    /// violates any red-black invariant.
    fn blacken_root(&self, tx: &mut Txn<'_>) -> TxResult<()> {
        if let Some(root_var) = tx.read(&self.root)? {
            Self::recolor(tx, &root_var, Color::Black)?;
        }
        Ok(())
    }

    fn insert_fixup(
        &self,
        tx: &mut Txn<'_>,
        mut path: Vec<PathEntry>,
        mut _z: TVar<Node>,
    ) -> TxResult<()> {
        // When the path is exhausted, z is the root; blacken_root finishes.
        while let Some((parent_var, parent_dir)) = path.last().cloned() {
            let parent = Self::read_node(tx, &parent_var)?;
            if parent.color == Color::Black {
                break;
            }
            // The parent is red, so it cannot be the root: a grandparent exists.
            let (grand_var, grand_dir) = path[path.len() - 2].clone();
            let grand = Self::read_node(tx, &grand_var)?;
            let uncle_link = grand.child(opposite(grand_dir));
            let uncle_is_red = match &uncle_link {
                Some(u) => Self::read_node(tx, u)?.color == Color::Red,
                None => false,
            };
            if uncle_is_red {
                // Case 1: red uncle — recolour and move the violation up.
                Self::recolor(tx, &parent_var, Color::Black)?;
                if let Some(u) = &uncle_link {
                    Self::recolor(tx, u, Color::Black)?;
                }
                Self::recolor(tx, &grand_var, Color::Red)?;
                _z = grand_var;
                path.pop();
                path.pop();
                continue;
            }
            // Cases 2 and 3: black (or absent) uncle — rotations.
            let mut pivot_var = parent_var.clone();
            if parent_dir != grand_dir {
                // Case 2 (zig-zag): rotate at the parent so the violation
                // becomes a zig-zig.
                let new_sub = Self::rotate(tx, &parent_var, grand_dir)?;
                Self::set_child_of(tx, &grand_var, grand_dir, Some(new_sub.clone()))?;
                pivot_var = new_sub;
            }
            // Case 3 (zig-zig): recolour and rotate at the grandparent.
            Self::recolor(tx, &pivot_var, Color::Black)?;
            Self::recolor(tx, &grand_var, Color::Red)?;
            let new_sub = Self::rotate(tx, &grand_var, opposite(grand_dir))?;
            let above = if path.len() >= 3 {
                Some(path[path.len() - 3].clone())
            } else {
                None
            };
            self.attach(tx, above.as_ref(), Some(new_sub))?;
            break;
        }
        self.blacken_root(tx)
    }

    fn delete_fixup(
        &self,
        tx: &mut Txn<'_>,
        mut path: Vec<PathEntry>,
        mut x: Link,
    ) -> TxResult<()> {
        loop {
            let Some((parent_var, dir)) = path.last().cloned() else {
                // x is the root (or the tree is empty): blacken and stop.
                if let Some(xv) = &x {
                    Self::recolor(tx, xv, Color::Black)?;
                }
                break;
            };
            if let Some(xv) = &x {
                if Self::read_node(tx, xv)?.color == Color::Red {
                    Self::recolor(tx, xv, Color::Black)?;
                    break;
                }
            }
            let parent = Self::read_node(tx, &parent_var)?;
            let w_var = parent
                .child(opposite(dir))
                .expect("a doubly-black node always has a sibling");
            let w = Self::read_node(tx, &w_var)?;
            if w.color == Color::Red {
                // Case 1: red sibling — rotate it above the parent so the
                // new sibling is black.
                Self::recolor(tx, &w_var, Color::Black)?;
                Self::recolor(tx, &parent_var, Color::Red)?;
                let new_sub = Self::rotate(tx, &parent_var, dir)?;
                let above = if path.len() >= 2 {
                    Some(path[path.len() - 2].clone())
                } else {
                    None
                };
                self.attach(tx, above.as_ref(), Some(new_sub.clone()))?;
                // The path to x gains one level: ... -> new_sub -> parent -> x.
                let last = path.len() - 1;
                path.insert(last, (new_sub, dir));
                continue;
            }
            let near_link = w.child(dir);
            let far_link = w.child(opposite(dir));
            let near_red = match &near_link {
                Some(v) => Self::read_node(tx, v)?.color == Color::Red,
                None => false,
            };
            let far_red = match &far_link {
                Some(v) => Self::read_node(tx, v)?.color == Color::Red,
                None => false,
            };
            if !near_red && !far_red {
                // Case 2: black sibling with black children — recolour the
                // sibling and move the double black up.
                Self::recolor(tx, &w_var, Color::Red)?;
                x = Some(parent_var.clone());
                path.pop();
                continue;
            }
            if !far_red {
                // Case 3: near nephew red, far nephew black — rotate the
                // sibling so the red nephew moves to the far side.
                let near_var = near_link.expect("near nephew is red, hence present");
                Self::recolor(tx, &near_var, Color::Black)?;
                Self::recolor(tx, &w_var, Color::Red)?;
                let new_w = Self::rotate(tx, &w_var, opposite(dir))?;
                Self::set_child_of(tx, &parent_var, opposite(dir), Some(new_w))?;
                continue; // Falls into case 4 on the next iteration.
            }
            // Case 4: far nephew red — one rotation finishes the repair.
            let parent_color = Self::read_node(tx, &parent_var)?.color;
            Self::recolor(tx, &w_var, parent_color)?;
            Self::recolor(tx, &parent_var, Color::Black)?;
            let far_var = far_link.expect("far nephew is red, hence present");
            Self::recolor(tx, &far_var, Color::Black)?;
            let new_sub = Self::rotate(tx, &parent_var, dir)?;
            let above = if path.len() >= 2 {
                Some(path[path.len() - 2].clone())
            } else {
                None
            };
            self.attach(tx, above.as_ref(), Some(new_sub))?;
            break;
        }
        self.blacken_root(tx)
    }

    /// In-order walk pruned to `lo..=hi`: subtrees that cannot intersect the
    /// interval are never read, so the transaction's read set is the two
    /// boundary search paths plus the nodes inside the interval.
    fn range_walk(
        tx: &mut Txn<'_>,
        link: &Link,
        lo: i64,
        hi: i64,
        out: &mut Vec<i64>,
    ) -> TxResult<()> {
        let Some(var) = link else {
            return Ok(());
        };
        let node = tx.read(var)?;
        if node.key > lo {
            Self::range_walk(tx, &node.left, lo, hi, out)?;
        }
        if (lo..=hi).contains(&node.key) {
            out.push(node.key);
        }
        if node.key < hi {
            Self::range_walk(tx, &node.right, lo, hi, out)?;
        }
        Ok(())
    }

    /// Validates the red-black invariants (binary-search-tree order, no
    /// red node with a red child, equal black heights) and returns the
    /// number of nodes. Intended for tests and debugging.
    pub fn check_invariants(&self, tx: &mut Txn<'_>) -> TxResult<usize> {
        fn walk(
            tx: &mut Txn<'_>,
            link: &Link,
            lower: Option<i64>,
            upper: Option<i64>,
            parent_red: bool,
        ) -> TxResult<(usize, usize)> {
            match link {
                None => Ok((1, 0)), // nil nodes are black, height 1 by convention
                Some(var) => {
                    let node = tx.read(var)?;
                    if let Some(lo) = lower {
                        assert!(node.key > lo, "BST order violated: {} <= {}", node.key, lo);
                    }
                    if let Some(hi) = upper {
                        assert!(node.key < hi, "BST order violated: {} >= {}", node.key, hi);
                    }
                    let is_red = node.color == Color::Red;
                    assert!(
                        !(parent_red && is_red),
                        "red-red violation at key {}",
                        node.key
                    );
                    let (lh, lc) = walk(tx, &node.left, lower, Some(node.key), is_red)?;
                    let (rh, rc) = walk(tx, &node.right, Some(node.key), upper, is_red)?;
                    assert_eq!(
                        lh, rh,
                        "black-height mismatch under key {}: {} vs {}",
                        node.key, lh, rh
                    );
                    let own = if is_red { 0 } else { 1 };
                    Ok((lh + own, lc + rc + 1))
                }
            }
        }
        let root = tx.read(&self.root)?;
        if let Some(root_var) = &root {
            let root_node = tx.read(root_var)?;
            assert_eq!(root_node.color, Color::Black, "root must be black");
        }
        let (_, count) = walk(tx, &root, None, None, false)?;
        Ok(count)
    }
}

fn opposite(dir: Dir) -> Dir {
    match dir {
        Dir::Left => Dir::Right,
        Dir::Right => Dir::Left,
    }
}

impl TxSet for TxRbTree {
    fn insert(&self, tx: &mut Txn<'_>, key: i64) -> TxResult<bool> {
        let (path, found) = self.descend(tx, key)?;
        if found.is_some() {
            return Ok(false);
        }
        let z = TVar::new(Node {
            key,
            color: Color::Red,
            left: None,
            right: None,
        });
        self.attach(tx, path.last(), Some(z.clone()))?;
        self.insert_fixup(tx, path, z)?;
        Ok(true)
    }

    fn remove(&self, tx: &mut Txn<'_>, key: i64) -> TxResult<bool> {
        let (mut path, found) = self.descend(tx, key)?;
        let Some(z_var) = found else {
            return Ok(false);
        };
        let z = tx.read(&z_var)?;
        let target_var = if z.left.is_some() && z.right.is_some() {
            // Two children: find the in-order successor, copy its key into z,
            // then splice the successor out instead.
            path.push((z_var.clone(), Dir::Right));
            let mut current = z.right.clone().expect("right child checked above");
            loop {
                let node = tx.read(&current)?;
                match node.left.clone() {
                    Some(left) => {
                        path.push((current.clone(), Dir::Left));
                        current = left;
                    }
                    None => break,
                }
            }
            let successor = tx.read(&current)?;
            let z_now = tx.read(&z_var)?;
            tx.write(
                &z_var,
                Node {
                    key: successor.key,
                    ..z_now
                },
            )?;
            current
        } else {
            z_var
        };
        let target = tx.read(&target_var)?;
        let child = target.left.clone().or_else(|| target.right.clone());
        self.attach(tx, path.last(), child.clone())?;
        if target.color == Color::Black {
            self.delete_fixup(tx, path, child)?;
        } else {
            self.blacken_root(tx)?;
        }
        Ok(true)
    }

    fn contains(&self, tx: &mut Txn<'_>, key: i64) -> TxResult<bool> {
        let (_, found) = self.descend(tx, key)?;
        Ok(found.is_some())
    }

    fn len(&self, tx: &mut Txn<'_>) -> TxResult<usize> {
        Ok(self.to_vec(tx)?.len())
    }

    fn to_vec(&self, tx: &mut Txn<'_>) -> TxResult<Vec<i64>> {
        let mut out = Vec::new();
        let mut stack: Vec<(TVar<Node>, bool)> = Vec::new();
        if let Some(root) = tx.read(&self.root)? {
            stack.push((root, false));
        }
        while let Some((var, expanded)) = stack.pop() {
            let node = tx.read(&var)?;
            if expanded {
                out.push(node.key);
                continue;
            }
            // In-order: right, self (marked), left — pushed in reverse.
            if let Some(right) = node.right.clone() {
                stack.push((right, false));
            }
            stack.push((var, true));
            if let Some(left) = node.left.clone() {
                stack.push((left, false));
            }
        }
        Ok(out)
    }

    fn range(&self, tx: &mut Txn<'_>, lo: i64, hi: i64) -> TxResult<Vec<i64>> {
        let mut out = Vec::new();
        if lo <= hi {
            let root = tx.read(&self.root)?;
            Self::range_walk(tx, &root, lo, hi, &mut out)?;
        }
        Ok(out)
    }

    fn structure_name(&self) -> &'static str {
        "rbtree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::Arc;
    use std::thread;
    use stm_cm::GreedyManager;
    use stm_core::Stm;

    fn new_stm() -> Stm {
        Stm::builder().manager(GreedyManager::factory()).build()
    }

    #[test]
    fn insert_remove_contains_basics() {
        let stm = new_stm();
        let tree = TxRbTree::new();
        let mut ctx = stm.thread();
        for key in [5, 2, 8, 1, 9, 3, 7] {
            assert!(ctx.atomically(|tx| tree.insert(tx, key)).unwrap());
        }
        assert!(!ctx.atomically(|tx| tree.insert(tx, 5)).unwrap());
        assert!(ctx.atomically(|tx| tree.contains(tx, 7)).unwrap());
        assert!(!ctx.atomically(|tx| tree.contains(tx, 6)).unwrap());
        assert_eq!(
            ctx.atomically(|tx| tree.to_vec(tx)).unwrap(),
            vec![1, 2, 3, 5, 7, 8, 9]
        );
        assert!(ctx.atomically(|tx| tree.remove(tx, 5)).unwrap());
        assert!(!ctx.atomically(|tx| tree.remove(tx, 5)).unwrap());
        assert_eq!(ctx.atomically(|tx| tree.len(tx)).unwrap(), 6);
        ctx.atomically(|tx| tree.check_invariants(tx)).unwrap();
        assert_eq!(tree.structure_name(), "rbtree");
    }

    #[test]
    fn ascending_and_descending_insertions_stay_balanced() {
        let stm = new_stm();
        let mut ctx = stm.thread();
        for ascending in [true, false] {
            let tree = TxRbTree::new();
            let keys: Vec<i64> = if ascending {
                (0..128).collect()
            } else {
                (0..128).rev().collect()
            };
            for &k in &keys {
                assert!(ctx.atomically(|tx| tree.insert(tx, k)).unwrap());
                ctx.atomically(|tx| tree.check_invariants(tx)).unwrap();
            }
            let count = ctx.atomically(|tx| tree.check_invariants(tx)).unwrap();
            assert_eq!(count, 128);
            assert_eq!(
                ctx.atomically(|tx| tree.to_vec(tx)).unwrap(),
                (0..128).collect::<Vec<i64>>()
            );
        }
    }

    #[test]
    fn deleting_every_element_in_various_orders_keeps_invariants() {
        let stm = new_stm();
        let mut ctx = stm.thread();
        let n = 64i64;
        for removal_stride in [1i64, 3, 7, 11] {
            let tree = TxRbTree::new();
            for k in 0..n {
                ctx.atomically(|tx| tree.insert(tx, k)).unwrap();
            }
            let mut remaining: BTreeSet<i64> = (0..n).collect();
            let mut key = 0i64;
            while !remaining.is_empty() {
                key = (key + removal_stride) % n;
                if remaining.remove(&key) {
                    assert!(ctx.atomically(|tx| tree.remove(tx, key)).unwrap());
                } else {
                    assert!(!ctx.atomically(|tx| tree.remove(tx, key)).unwrap());
                }
                let count = ctx.atomically(|tx| tree.check_invariants(tx)).unwrap();
                assert_eq!(count, remaining.len());
            }
            assert!(ctx.atomically(|tx| tree.is_empty(tx)).unwrap());
        }
    }

    #[test]
    fn matches_a_model_set_for_a_random_workload_with_invariants() {
        let stm = new_stm();
        let tree = TxRbTree::new();
        let mut ctx = stm.thread();
        let mut model = BTreeSet::new();
        let mut seed = 0x0123_4567_89ab_cdefu64;
        for step in 0..4_000u32 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = ((seed >> 33) % 256) as i64;
            let insert = (seed >> 17) & 1 == 0;
            let (expected, actual) = if insert {
                (
                    model.insert(key),
                    ctx.atomically(|tx| tree.insert(tx, key)).unwrap(),
                )
            } else {
                (
                    model.remove(&key),
                    ctx.atomically(|tx| tree.remove(tx, key)).unwrap(),
                )
            };
            assert_eq!(expected, actual, "step {step}, key {key}, insert {insert}");
            if step % 64 == 0 {
                let count = ctx.atomically(|tx| tree.check_invariants(tx)).unwrap();
                assert_eq!(count, model.len());
            }
        }
        assert_eq!(
            ctx.atomically(|tx| tree.to_vec(tx)).unwrap(),
            model.iter().copied().collect::<Vec<_>>()
        );
        ctx.atomically(|tx| tree.check_invariants(tx)).unwrap();
    }

    #[test]
    fn range_matches_a_model_over_random_intervals() {
        let stm = new_stm();
        let tree = TxRbTree::new();
        let mut ctx = stm.thread();
        let mut model = BTreeSet::new();
        let mut seed = 0x7a3e_11d5_90cc_4b01u64;
        for _ in 0..500 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = ((seed >> 33) % 128) as i64;
            if (seed >> 11) & 1 == 0 {
                model.insert(key);
                ctx.atomically(|tx| tree.insert(tx, key)).unwrap();
            } else {
                model.remove(&key);
                ctx.atomically(|tx| tree.remove(tx, key)).unwrap();
            }
            let a = ((seed >> 5) % 128) as i64;
            let b = ((seed >> 21) % 128) as i64;
            let (lo, hi) = (a.min(b), a.max(b));
            let got = ctx.atomically(|tx| tree.range(tx, lo, hi)).unwrap();
            let want: Vec<i64> = model.range(lo..=hi).copied().collect();
            assert_eq!(got, want, "range({lo}, {hi}) diverged");
        }
        // Inverted and empty intervals.
        assert_eq!(
            ctx.atomically(|tx| tree.range(tx, 10, 5)).unwrap(),
            Vec::<i64>::new()
        );
        assert_eq!(
            ctx.atomically(|tx| tree.range(tx, 1000, 2000)).unwrap(),
            Vec::<i64>::new()
        );
    }

    #[test]
    fn multi_key_transaction_is_atomic() {
        let stm = new_stm();
        let tree = TxRbTree::new();
        let mut ctx = stm.thread();
        ctx.atomically(|tx| {
            for k in 0..10 {
                tree.insert(tx, k)?;
            }
            Ok(())
        })
        .unwrap();
        let _ = ctx.atomically(|tx| {
            tree.remove(tx, 3)?;
            tree.remove(tx, 4)?;
            tx.abort::<()>()
        });
        assert_eq!(ctx.atomically(|tx| tree.len(tx)).unwrap(), 10);
    }

    #[test]
    fn concurrent_mixed_workload_preserves_invariants() {
        let stm = Arc::new(new_stm());
        let tree = TxRbTree::new();
        thread::scope(|scope| {
            for t in 0..4u64 {
                let stm = Arc::clone(&stm);
                let tree = tree.clone();
                scope.spawn(move || {
                    let mut ctx = stm.thread();
                    let mut seed = t.wrapping_mul(0x9e3779b97f4a7c15) | 1;
                    for _ in 0..400 {
                        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let key = ((seed >> 33) % 64) as i64;
                        if (seed >> 5) & 1 == 0 {
                            let _ = ctx.atomically(|tx| tree.insert(tx, key)).unwrap();
                        } else {
                            let _ = ctx.atomically(|tx| tree.remove(tx, key)).unwrap();
                        }
                    }
                });
            }
        });
        let mut ctx = stm.thread();
        let contents = ctx.atomically(|tx| tree.to_vec(tx)).unwrap();
        assert!(contents.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");
        let count = ctx.atomically(|tx| tree.check_invariants(tx)).unwrap();
        assert_eq!(count, contents.len());
    }
}
