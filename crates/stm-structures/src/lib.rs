//! # stm-structures
//!
//! Transactional data structures built on top of `stm-core`, mirroring the
//! benchmark applications of *"Toward a Theory of Transactional Contention
//! Managers"* (Guerraoui, Herlihy, Pochon — PODC 2005):
//!
//! * [`TxList`] — a sorted linked-list integer set (Figure 1, high
//!   contention: every operation traverses the same prefix).
//! * [`TxSkipList`] — a skiplist integer set (Figure 2).
//! * [`TxRbTree`] — a red-black tree integer set (Figure 3, run with a low
//!   contention workload in the paper).
//! * [`TxRbForest`] — fifty red-black trees; each update touches either one
//!   tree or all of them at random, producing transactions of highly
//!   variable length (Figure 4).
//!
//! All four implement the [`TxSet`] trait so the benchmark harness can be
//! generic over the structure. Two auxiliary structures, [`TxCounter`] and
//! [`TxQueue`], are used by the examples and tests.
//!
//! Every operation takes `&mut Txn` and returns a [`stm_core::TxResult`];
//! operations compose — several calls inside one `atomically` closure form a
//! single atomic transaction:
//!
//! ```
//! use stm_core::Stm;
//! use stm_cm::GreedyManager;
//! use stm_structures::{TxList, TxSet};
//!
//! let stm = Stm::builder().manager(GreedyManager::factory()).build();
//! let set = TxList::new();
//! let mut ctx = stm.thread();
//! ctx.atomically(|tx| {
//!     set.insert(tx, 3)?;
//!     set.insert(tx, 1)?;
//!     set.remove(tx, 3)?;
//!     Ok(())
//! })
//! .unwrap();
//! let contents = ctx.atomically(|tx| set.to_vec(tx)).unwrap();
//! assert_eq!(contents, vec![1]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod counter;
pub mod forest;
pub mod list;
pub mod queue;
pub mod rbtree;
pub mod set;
pub mod sharded;
pub mod skiplist;

pub use counter::TxCounter;
pub use forest::TxRbForest;
pub use list::TxList;
pub use queue::TxQueue;
pub use rbtree::TxRbTree;
pub use set::TxSet;
pub use sharded::ShardedTxSet;
pub use skiplist::TxSkipList;
