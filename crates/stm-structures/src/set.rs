//! The [`TxSet`] trait: the integer-set interface shared by all benchmark
//! structures, so workloads can be written once and run against the list,
//! the skiplist, the red-black tree, or the forest.

use stm_core::{TxResult, Txn};

/// A transactional set of 64-bit integers.
///
/// All operations run inside the caller's transaction: they neither start
/// nor commit transactions themselves, so several operations can be composed
/// atomically.
pub trait TxSet: Send + Sync {
    /// Inserts `key`. Returns `true` if the key was not already present.
    fn insert(&self, tx: &mut Txn<'_>, key: i64) -> TxResult<bool>;

    /// Removes `key`. Returns `true` if the key was present.
    fn remove(&self, tx: &mut Txn<'_>, key: i64) -> TxResult<bool>;

    /// Returns `true` if `key` is present.
    fn contains(&self, tx: &mut Txn<'_>, key: i64) -> TxResult<bool>;

    /// Number of elements in the set.
    fn len(&self, tx: &mut Txn<'_>) -> TxResult<usize>;

    /// Returns `true` when the set is empty.
    fn is_empty(&self, tx: &mut Txn<'_>) -> TxResult<bool> {
        Ok(self.len(tx)? == 0)
    }

    /// The set's elements in ascending order.
    fn to_vec(&self, tx: &mut Txn<'_>) -> TxResult<Vec<i64>>;

    /// The set's elements in `lo..=hi`, in ascending order.
    ///
    /// Range queries run entirely inside the caller's transaction, so the
    /// whole interval is observed as one consistent snapshot; on structures
    /// with invisible reads the accumulated read set is what the paper's
    /// read-dominated workloads stress. The default implementation
    /// materializes the full set via [`TxSet::to_vec`] and filters;
    /// implementations override it with a bounded walk that reads only the
    /// search path to `lo` plus the interval itself.
    fn range(&self, tx: &mut Txn<'_>, lo: i64, hi: i64) -> TxResult<Vec<i64>> {
        Ok(self
            .to_vec(tx)?
            .into_iter()
            .filter(|key| (lo..=hi).contains(key))
            .collect())
    }

    /// A short name for reports ("list", "skiplist", "rbtree", ...).
    fn structure_name(&self) -> &'static str;
}
