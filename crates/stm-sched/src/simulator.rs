//! A discrete-time execution simulator for contention-managed transactions.
//!
//! The simulator takes the paper's abstract execution model literally: `n`
//! transactions all start at time 0, each runs for a fixed number of ticks,
//! and each opens a given object at a given offset into its execution. When
//! an open conflicts with a live transaction, the opener consults a *real*
//! [`ContentionManager`] implementation (the same code that drives the STM
//! runtime) and either aborts the enemy, waits, or aborts itself; aborted
//! transactions restart from scratch while keeping their timestamp. The
//! simulation ends when every transaction has committed; the *makespan* is
//! the tick at which the last one commits.
//!
//! Besides the makespan the simulator reports per-transaction abort counts
//! and whether the **pending-commit property** held: at every instant before
//! the makespan, some transaction that was running at that instant went on to
//! commit without aborting or waiting in between. Theorem 9 of the paper
//! derives the `s(s+1)+2` competitive bound from exactly this property.

use std::sync::Arc;
use std::time::Duration;

use stm_core::manager::ManagerFactory;
use stm_core::{ConflictKind, ContentionManager, TxLineage, TxShared, TxView};

/// One object access performed by a simulated transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimAccess {
    /// Tick offset into the transaction's execution at which the access
    /// happens (must be smaller than the transaction's duration).
    pub offset: u64,
    /// Index of the accessed object.
    pub object: usize,
    /// Whether the access is an update (`true`) or a read (`false`).
    pub write: bool,
}

/// A simulated transaction: a duration, a priority timestamp, and a list of
/// accesses sorted by offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimTransaction {
    /// Number of ticks of work the transaction performs per attempt.
    pub duration: u64,
    /// Timestamp used as the greedy priority (smaller = older = higher).
    pub priority: u64,
    /// Accesses in non-decreasing offset order.
    pub accesses: Vec<SimAccess>,
}

impl SimTransaction {
    /// Validates the transaction shape (positive duration, offsets within the
    /// duration and non-decreasing).
    pub fn validate(&self) -> Result<(), String> {
        if self.duration == 0 {
            return Err("duration must be positive".to_string());
        }
        let mut last = 0;
        for access in &self.accesses {
            if access.offset >= self.duration {
                return Err(format!(
                    "access offset {} is not smaller than duration {}",
                    access.offset, self.duration
                ));
            }
            if access.offset < last {
                return Err("accesses must be sorted by offset".to_string());
            }
            last = access.offset;
        }
        Ok(())
    }
}

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Upper bound on simulated ticks; if the system has not quiesced by
    /// then (e.g. a livelocking manager) the outcome reports a `None`
    /// makespan.
    pub max_ticks: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { max_ticks: 1_000_000 }
    }
}

/// The result of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// Tick at which the last transaction committed, or `None` if the run
    /// hit the tick limit first.
    pub makespan_ticks: Option<u64>,
    /// Commit tick of each transaction (`u64::MAX` if it never committed).
    pub commit_ticks: Vec<u64>,
    /// Abort count of each transaction.
    pub aborts: Vec<u64>,
    /// Whether the pending-commit property held at every tick before the
    /// makespan.
    pub pending_commit_held: bool,
    /// Number of ticks actually simulated.
    pub ticks_run: u64,
}

impl SimOutcome {
    /// Total aborts across all transactions.
    pub fn total_aborts(&self) -> u64 {
        self.aborts.iter().sum()
    }

    /// Makespan converted to time units given the tick resolution, or
    /// infinity if the run did not finish.
    pub fn makespan_units(&self, ticks_per_unit: f64) -> f64 {
        match self.makespan_ticks {
            Some(ticks) => ticks as f64 / ticks_per_unit,
            None => f64::INFINITY,
        }
    }
}

/// Which transactions currently use an object.
#[derive(Debug, Default, Clone)]
struct ObjectState {
    writer: Option<usize>,
    readers: Vec<usize>,
}

/// Per-transaction runtime state inside the simulator.
struct TxRuntime {
    lineage: Arc<TxLineage>,
    shared: Arc<TxShared>,
    manager: Box<dyn ContentionManager>,
    progress: u64,
    next_access: usize,
    waiting_on: Option<usize>,
    committed_at: Option<u64>,
    aborts: u64,
    uninterrupted_from: u64,
    uninterrupted_from_at_commit: u64,
}

/// Runs the simulation of `transactions` under the contention manager built
/// by `factory` (one instance per transaction, as in the real runtime).
///
/// # Panics
///
/// Panics if any transaction fails [`SimTransaction::validate`].
pub fn simulate(
    transactions: &[SimTransaction],
    factory: ManagerFactory,
    config: SimConfig,
) -> SimOutcome {
    for (i, txn) in transactions.iter().enumerate() {
        if let Err(msg) = txn.validate() {
            panic!("invalid simulated transaction {i}: {msg}");
        }
    }
    let num_objects = transactions
        .iter()
        .flat_map(|t| t.accesses.iter().map(|a| a.object + 1))
        .max()
        .unwrap_or(0);
    let mut objects: Vec<ObjectState> = vec![ObjectState::default(); num_objects];
    let mut txs: Vec<TxRuntime> = transactions
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let lineage = Arc::new(TxLineage::new(i as u64, spec.priority));
            let shared = Arc::new(TxShared::new(Arc::clone(&lineage), 1));
            let mut manager = factory();
            manager.begin(TxView::new(&shared));
            TxRuntime {
                lineage,
                shared,
                manager,
                progress: 0,
                next_access: 0,
                waiting_on: None,
                committed_at: None,
                aborts: 0,
                uninterrupted_from: 0,
                uninterrupted_from_at_commit: 0,
            }
        })
        .collect();

    let n = transactions.len();
    let mut tick = 0u64;
    while tick < config.max_ticks {
        if txs.iter().all(|t| t.committed_at.is_some()) {
            break;
        }
        // Phase A: clean up transactions that were aborted, restart them.
        for (i, tx) in txs.iter_mut().enumerate() {
            if tx.committed_at.is_some() {
                continue;
            }
            if tx.shared.is_aborted() {
                release_objects(&mut objects, i);
                let old_shared = Arc::clone(&tx.shared);
                tx.manager.aborted(TxView::new(&old_shared));
                tx.aborts += 1;
                let attempt = tx.aborts + 1;
                let shared = Arc::new(TxShared::new(Arc::clone(&tx.lineage), attempt));
                tx.manager.begin(TxView::new(&shared));
                tx.shared = shared;
                tx.progress = 0;
                tx.next_access = 0;
                tx.waiting_on = None;
                tx.uninterrupted_from = tick;
            }
        }
        // Phase B: wake waiters whose enemy is gone or itself waiting.
        for i in 0..n {
            if txs[i].committed_at.is_some() {
                continue;
            }
            if let Some(j) = txs[i].waiting_on {
                let enemy_gone = !txs[j].shared.is_active() || txs[j].shared.is_waiting();
                if enemy_gone {
                    txs[i].waiting_on = None;
                    txs[i].shared.set_waiting(false);
                    txs[i].uninterrupted_from = tick;
                }
            }
        }
        // Phase C1: every running transaction performs the accesses scheduled
        // for its current progress, resolving conflicts through its manager.
        for i in 0..n {
            if txs[i].committed_at.is_some()
                || txs[i].waiting_on.is_some()
                || txs[i].shared.is_aborted()
            {
                continue;
            }
            let mut attempts_this_tick = 0usize;
            'accesses: while txs[i].next_access < transactions[i].accesses.len() {
                let access = transactions[i].accesses[txs[i].next_access];
                if access.offset != txs[i].progress {
                    break;
                }
                attempts_this_tick += 1;
                if attempts_this_tick > 4 * n.max(1) {
                    // Give up for this tick; retry next tick.
                    break;
                }
                prune_object(&mut objects[access.object], &txs);
                let enemy = find_enemy(&objects[access.object], &txs, i, access.write);
                match enemy {
                    None => {
                        acquire(&mut objects[access.object], i, access.write);
                        let shared = Arc::clone(&txs[i].shared);
                        txs[i]
                            .manager
                            .opened(TxView::new(&shared), access.object as u64);
                        txs[i].next_access += 1;
                    }
                    Some(j) => {
                        let kind = if access.write {
                            ConflictKind::WriteWrite
                        } else {
                            ConflictKind::ReadWrite
                        };
                        let me_shared = Arc::clone(&txs[i].shared);
                        let other_shared = Arc::clone(&txs[j].shared);
                        let resolution = txs[i].manager.resolve(
                            TxView::new(&me_shared),
                            TxView::new(&other_shared),
                            kind,
                        );
                        match resolution {
                            stm_core::Resolution::AbortOther => {
                                other_shared.try_abort();
                                release_objects(&mut objects, j);
                                // Retry the same access immediately.
                            }
                            stm_core::Resolution::Wait(_) => {
                                txs[i].waiting_on = Some(j);
                                txs[i].shared.set_waiting(true);
                                break 'accesses;
                            }
                            stm_core::Resolution::AbortSelf => {
                                txs[i].shared.try_abort();
                                break 'accesses;
                            }
                        }
                    }
                }
            }
        }
        // Phase C2: progress and commits.
        for i in 0..n {
            if txs[i].committed_at.is_some()
                || txs[i].waiting_on.is_some()
                || txs[i].shared.is_aborted()
            {
                continue;
            }
            // A transaction only advances once the accesses scheduled for the
            // current tick have all been performed (the per-tick retry cap in
            // phase C1 can leave one pending).
            let pending_access = transactions[i]
                .accesses
                .get(txs[i].next_access)
                .map(|a| a.offset == txs[i].progress)
                .unwrap_or(false);
            if pending_access {
                continue;
            }
            txs[i].progress += 1;
            if txs[i].progress >= transactions[i].duration
                && txs[i].next_access >= transactions[i].accesses.len()
                && txs[i].shared.try_commit()
            {
                txs[i].committed_at = Some(tick + 1);
                txs[i].uninterrupted_from_at_commit = txs[i].uninterrupted_from;
                release_objects(&mut objects, i);
                let shared = Arc::clone(&txs[i].shared);
                txs[i].manager.committed(TxView::new(&shared));
            }
        }
        tick += 1;
    }

    let commit_ticks: Vec<u64> = txs
        .iter()
        .map(|t| t.committed_at.unwrap_or(u64::MAX))
        .collect();
    let makespan_ticks = if txs.iter().all(|t| t.committed_at.is_some()) {
        Some(commit_ticks.iter().copied().max().unwrap_or(0))
    } else {
        None
    };
    let pending_commit_held = match makespan_ticks {
        None => false,
        Some(makespan) => (0..makespan).all(|t| {
            txs.iter().any(|txn| match txn.committed_at {
                Some(commit) => commit > t && txn.uninterrupted_from_at_commit <= t,
                None => false,
            })
        }),
    };
    SimOutcome {
        makespan_ticks,
        commit_ticks,
        aborts: txs.iter().map(|t| t.aborts).collect(),
        pending_commit_held,
        ticks_run: tick,
    }
}

/// Convenience: simulate a set of unit-length update transactions with the
/// given accesses, all starting at time 0, under the given manager.
pub fn simulate_with_timeout(
    transactions: &[SimTransaction],
    factory: ManagerFactory,
    timeout: Duration,
) -> SimOutcome {
    // One tick is simulated fast enough that a generous tick budget stands in
    // for a wall-clock timeout; keep the API explicit about intent.
    let ticks = (timeout.as_micros() as u64).max(10_000);
    simulate(transactions, factory, SimConfig { max_ticks: ticks })
}

fn release_objects(objects: &mut [ObjectState], owner: usize) {
    for obj in objects.iter_mut() {
        if obj.writer == Some(owner) {
            obj.writer = None;
        }
        obj.readers.retain(|&r| r != owner);
    }
}

fn prune_object(obj: &mut ObjectState, txs: &[TxRuntime]) {
    if let Some(w) = obj.writer {
        if !txs[w].shared.is_active() {
            obj.writer = None;
        }
    }
    obj.readers.retain(|&r| txs[r].shared.is_active());
}

fn find_enemy(obj: &ObjectState, txs: &[TxRuntime], me: usize, write: bool) -> Option<usize> {
    if let Some(w) = obj.writer {
        if w != me && txs[w].shared.is_active() {
            return Some(w);
        }
    }
    if write {
        obj.readers
            .iter()
            .copied()
            .find(|&r| r != me && txs[r].shared.is_active())
    } else {
        None
    }
}

fn acquire(obj: &mut ObjectState, me: usize, write: bool) {
    if write {
        obj.writer = Some(me);
        obj.readers.retain(|&r| r == me);
    } else if !obj.readers.contains(&me) {
        obj.readers.push(me);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_cm::{AggressiveManager, GreedyManager, KarmaManager};
    use stm_core::manager::factory;

    fn write_access(offset: u64, object: usize) -> SimAccess {
        SimAccess {
            offset,
            object,
            write: true,
        }
    }

    #[test]
    fn independent_transactions_finish_in_one_duration() {
        let txns: Vec<SimTransaction> = (0..4)
            .map(|i| SimTransaction {
                duration: 10,
                priority: i,
                accesses: vec![write_access(0, i as usize)],
            })
            .collect();
        let outcome = simulate(&txns, GreedyManager::factory(), SimConfig::default());
        assert_eq!(outcome.makespan_ticks, Some(10));
        assert_eq!(outcome.total_aborts(), 0);
        assert!(outcome.pending_commit_held);
        assert!((outcome.makespan_units(10.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_conflicting_transactions_serialize_under_greedy() {
        let txns = vec![
            SimTransaction {
                duration: 10,
                priority: 0,
                accesses: vec![write_access(0, 0)],
            },
            SimTransaction {
                duration: 10,
                priority: 1,
                accesses: vec![write_access(0, 0)],
            },
        ];
        let outcome = simulate(&txns, GreedyManager::factory(), SimConfig::default());
        // The older transaction runs to completion; the younger waits and
        // then runs: makespan two durations.
        assert_eq!(outcome.makespan_ticks, Some(20));
        assert!(outcome.pending_commit_held);
        assert_eq!(outcome.commit_ticks[0], 10);
        assert_eq!(outcome.commit_ticks[1], 20);
    }

    #[test]
    fn greedy_never_aborts_the_highest_priority_transaction() {
        // Transaction 0 has the earliest timestamp; whatever the interleaving
        // it must commit on its first attempt.
        let txns = vec![
            SimTransaction {
                duration: 20,
                priority: 0,
                accesses: vec![write_access(0, 0), write_access(10, 1)],
            },
            SimTransaction {
                duration: 20,
                priority: 1,
                accesses: vec![write_access(0, 1), write_access(10, 0)],
            },
            SimTransaction {
                duration: 20,
                priority: 2,
                accesses: vec![write_access(0, 2), write_access(5, 0)],
            },
        ];
        let outcome = simulate(&txns, GreedyManager::factory(), SimConfig::default());
        assert!(outcome.makespan_ticks.is_some());
        assert_eq!(outcome.aborts[0], 0, "highest priority must never abort");
        assert!(outcome.pending_commit_held);
    }

    #[test]
    fn aggressive_can_livelock_but_greedy_cannot() {
        // Two transactions that want each other's objects mid-way. Under the
        // aggressive manager they can keep aborting each other; the tick
        // limit makes the simulation terminate either way. Greedy resolves it
        // deterministically.
        let txns = vec![
            SimTransaction {
                duration: 10,
                priority: 0,
                accesses: vec![write_access(0, 0), write_access(5, 1)],
            },
            SimTransaction {
                duration: 10,
                priority: 1,
                accesses: vec![write_access(0, 1), write_access(5, 0)],
            },
        ];
        let greedy = simulate(&txns, GreedyManager::factory(), SimConfig { max_ticks: 10_000 });
        assert!(greedy.makespan_ticks.is_some());
        assert!(greedy.pending_commit_held);
        let aggressive = simulate(
            &txns,
            factory(AggressiveManager::new),
            SimConfig { max_ticks: 2_000 },
        );
        // Aggressive may or may not converge (it is livelock-prone); the
        // simulator must simply terminate and report what happened.
        assert!(aggressive.ticks_run <= 2_000);
    }

    #[test]
    fn karma_accumulates_priority_across_aborts() {
        let txns = vec![
            SimTransaction {
                duration: 30,
                priority: 0,
                accesses: vec![write_access(0, 0), write_access(20, 1)],
            },
            SimTransaction {
                duration: 10,
                priority: 1,
                accesses: vec![write_access(0, 1)],
            },
            SimTransaction {
                duration: 10,
                priority: 2,
                accesses: vec![write_access(0, 2), write_access(5, 1)],
            },
        ];
        let outcome = simulate(&txns, KarmaManager::factory(), SimConfig::default());
        assert!(outcome.makespan_ticks.is_some(), "karma workload must finish");
    }

    #[test]
    fn invalid_transactions_are_rejected() {
        let bad = SimTransaction {
            duration: 5,
            priority: 0,
            accesses: vec![write_access(7, 0)],
        };
        assert!(bad.validate().is_err());
        let unsorted = SimTransaction {
            duration: 10,
            priority: 0,
            accesses: vec![write_access(5, 0), write_access(1, 1)],
        };
        assert!(unsorted.validate().is_err());
        let zero = SimTransaction {
            duration: 0,
            priority: 0,
            accesses: vec![],
        };
        assert!(zero.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid simulated transaction")]
    fn simulate_panics_on_invalid_input() {
        let bad = SimTransaction {
            duration: 0,
            priority: 0,
            accesses: vec![],
        };
        let _ = simulate(&[bad], GreedyManager::factory(), SimConfig::default());
    }

    #[test]
    fn read_accesses_do_not_conflict_with_each_other() {
        let txns: Vec<SimTransaction> = (0..4)
            .map(|i| SimTransaction {
                duration: 10,
                priority: i,
                accesses: vec![SimAccess {
                    offset: 0,
                    object: 0,
                    write: false,
                }],
            })
            .collect();
        let outcome = simulate(&txns, GreedyManager::factory(), SimConfig::default());
        assert_eq!(outcome.makespan_ticks, Some(10));
        assert_eq!(outcome.total_aborts(), 0);
    }

    #[test]
    fn timeout_helper_limits_ticks() {
        let txns = vec![SimTransaction {
            duration: 10,
            priority: 0,
            accesses: vec![write_access(0, 0)],
        }];
        let outcome =
            simulate_with_timeout(&txns, GreedyManager::factory(), Duration::from_millis(50));
        assert_eq!(outcome.makespan_ticks, Some(10));
    }
}
