//! Garey–Graham task systems (Section 4.1 of the paper).
//!
//! A task system is a set of tasks `{T_1, ..., T_n}` and shared resources
//! `{R_1, ..., R_s}`. Each task `T_j` has a length `τ_j > 0` and uses
//! `R_i(T_j)` units of resource `R_i`, with demands normalised to `[0, 1]`;
//! at every instant the total demand on each resource must stay at or below
//! one.
//!
//! Transactions map to tasks "in a straightforward way" (Section 4.2): a
//! transaction of duration `δ_j` becomes a task of the same duration, an
//! updated object becomes a resource demand of `1`, and an object that is
//! only read becomes a demand of `1/n`, so that any number of readers — but
//! at most one writer — fit simultaneously.

use crate::simulator::SimTransaction;

/// A single task: a positive length and one demand per resource.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// Task length `τ_j` (same unit as the schedule's makespan).
    pub length: f64,
    /// Demand on each resource, each in `[0, 1]`.
    pub demands: Vec<f64>,
}

impl Task {
    /// Creates a task, validating the length and demands.
    ///
    /// # Panics
    ///
    /// Panics if the length is not positive and finite, or if any demand is
    /// outside `[0, 1]`.
    pub fn new(length: f64, demands: Vec<f64>) -> Self {
        assert!(length > 0.0 && length.is_finite(), "task length must be positive");
        for (i, d) in demands.iter().enumerate() {
            assert!(
                (0.0..=1.0).contains(d),
                "demand {d} on resource {i} outside [0, 1]"
            );
        }
        Task { length, demands }
    }

    /// Demand on resource `i` (zero if the task does not use it).
    pub fn demand(&self, resource: usize) -> f64 {
        self.demands.get(resource).copied().unwrap_or(0.0)
    }
}

/// A Garey–Graham task system.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TaskSystem {
    tasks: Vec<Task>,
    num_resources: usize,
}

impl TaskSystem {
    /// Creates a task system over `num_resources` resources.
    pub fn new(num_resources: usize) -> Self {
        TaskSystem {
            tasks: Vec::new(),
            num_resources,
        }
    }

    /// Adds a task; its demand vector is padded (or must not exceed) the
    /// system's resource count.
    ///
    /// # Panics
    ///
    /// Panics if the task names more resources than the system has.
    pub fn push(&mut self, mut task: Task) {
        assert!(
            task.demands.len() <= self.num_resources,
            "task uses {} resources but the system has {}",
            task.demands.len(),
            self.num_resources
        );
        task.demands.resize(self.num_resources, 0.0);
        self.tasks.push(task);
    }

    /// The tasks in the system.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Number of tasks `n`.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the system contains no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Number of shared resources `s`.
    pub fn num_resources(&self) -> usize {
        self.num_resources
    }

    /// Sum of all task lengths (the makespan of a fully serial schedule, and
    /// a trivial upper bound for any valid schedule).
    pub fn total_length(&self) -> f64 {
        self.tasks.iter().map(|t| t.length).sum()
    }

    /// The longest single task (a trivial lower bound on any makespan).
    pub fn max_length(&self) -> f64 {
        self.tasks.iter().map(|t| t.length).fold(0.0, f64::max)
    }

    /// A lower bound on the optimal makespan: the maximum over resources of
    /// the total work (length × demand) demanded from that resource, and the
    /// longest task.
    pub fn makespan_lower_bound(&self) -> f64 {
        let mut bound = self.max_length();
        for r in 0..self.num_resources {
            let load: f64 = self.tasks.iter().map(|t| t.length * t.demand(r)).sum();
            bound = bound.max(load);
        }
        bound
    }

    /// Builds the task system corresponding to a transaction system
    /// (Section 4.2): writes demand a full object, reads demand `1/n`.
    ///
    /// Durations are converted from ticks to time units of
    /// `ticks_per_unit = ` the largest duration, i.e. the longest transaction
    /// has length 1; callers that care about absolute units can scale.
    pub fn from_transactions(transactions: &[SimTransaction]) -> Self {
        let n = transactions.len().max(1);
        let num_objects = transactions
            .iter()
            .flat_map(|t| t.accesses.iter().map(|a| a.object + 1))
            .max()
            .unwrap_or(0);
        let mut system = TaskSystem::new(num_objects);
        for txn in transactions {
            let mut demands = vec![0.0; num_objects];
            for access in &txn.accesses {
                let demand = if access.write { 1.0 } else { 1.0 / n as f64 };
                if demand > demands[access.object] {
                    demands[access.object] = demand;
                }
            }
            system.push(Task::new(txn.duration as f64, demands));
        }
        system
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::SimAccess;

    #[test]
    fn task_validation() {
        let t = Task::new(2.0, vec![0.5, 1.0]);
        assert_eq!(t.demand(0), 0.5);
        assert_eq!(t.demand(1), 1.0);
        assert_eq!(t.demand(7), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_task_is_rejected() {
        let _ = Task::new(0.0, vec![]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn oversized_demand_is_rejected() {
        let _ = Task::new(1.0, vec![1.5]);
    }

    #[test]
    fn system_accounting() {
        let mut sys = TaskSystem::new(2);
        sys.push(Task::new(1.0, vec![1.0]));
        sys.push(Task::new(3.0, vec![0.0, 0.5]));
        sys.push(Task::new(2.0, vec![0.5, 0.5]));
        assert_eq!(sys.len(), 3);
        assert!(!sys.is_empty());
        assert_eq!(sys.num_resources(), 2);
        assert!((sys.total_length() - 6.0).abs() < 1e-12);
        assert!((sys.max_length() - 3.0).abs() < 1e-12);
        // Resource 0 load: 1*1 + 2*0.5 = 2; resource 1: 3*0.5 + 2*0.5 = 2.5;
        // longest task 3 -> lower bound 3.
        assert!((sys.makespan_lower_bound() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "resources")]
    fn task_with_too_many_resources_is_rejected() {
        let mut sys = TaskSystem::new(1);
        sys.push(Task::new(1.0, vec![0.1, 0.2]));
    }

    #[test]
    fn transaction_conversion_uses_full_and_fractional_demands() {
        let transactions = vec![
            SimTransaction {
                duration: 10,
                priority: 0,
                accesses: vec![
                    SimAccess {
                        offset: 0,
                        object: 0,
                        write: true,
                    },
                    SimAccess {
                        offset: 5,
                        object: 1,
                        write: false,
                    },
                ],
            },
            SimTransaction {
                duration: 20,
                priority: 1,
                accesses: vec![SimAccess {
                    offset: 0,
                    object: 1,
                    write: false,
                }],
            },
        ];
        let sys = TaskSystem::from_transactions(&transactions);
        assert_eq!(sys.num_resources(), 2);
        assert_eq!(sys.len(), 2);
        assert!((sys.tasks()[0].demand(0) - 1.0).abs() < 1e-12);
        assert!((sys.tasks()[0].demand(1) - 0.5).abs() < 1e-12);
        assert!((sys.tasks()[1].demand(0) - 0.0).abs() < 1e-12);
        assert!((sys.tasks()[1].demand(1) - 0.5).abs() < 1e-12);
        assert!((sys.tasks()[1].length - 20.0).abs() < 1e-12);
    }
}
