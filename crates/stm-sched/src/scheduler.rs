//! List schedules and the optimal-list-schedule search.
//!
//! A *list scheduler* keeps the tasks in a list; whenever a processor is free
//! it scans the list front to back and starts the first unstarted task whose
//! resource demands currently fit (the paper, following Garey & Graham,
//! considers as many processors as tasks). List schedules are *non-idling*:
//! no task waits while the resources it needs are available.
//!
//! Computing the best list order is NP-complete, but any list order is within
//! a factor of `s + 1` of the optimum (Garey & Graham); the paper compares
//! the greedy contention manager against exactly this "optimal off-line list
//! scheduler", which is what [`optimal_list_schedule`] computes (exhaustively
//! for small instances, by heuristic search for larger ones).

use crate::tasks::TaskSystem;

/// Tolerance used when packing fractional resource demands.
const EPSILON: f64 = 1e-9;

/// The outcome of scheduling a task system.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleResult {
    /// Total time until the last task finishes.
    pub makespan: f64,
    /// Start time of each task, indexed like the task system.
    pub start_times: Vec<f64>,
    /// The list order that produced this schedule.
    pub order: Vec<usize>,
    /// Whether the result is provably optimal among list schedules (true only
    /// when the search was exhaustive).
    pub exact: bool,
}

/// Simulates the list schedule induced by `order` (a permutation of task
/// indices) and returns its makespan and start times.
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..tasks.len()`.
pub fn list_schedule(tasks: &TaskSystem, order: &[usize]) -> ScheduleResult {
    let n = tasks.len();
    assert_eq!(order.len(), n, "order must mention every task exactly once");
    let mut seen = vec![false; n];
    for &i in order {
        assert!(i < n && !seen[i], "order must be a permutation");
        seen[i] = true;
    }
    let mut started = vec![false; n];
    let mut finished = vec![false; n];
    let mut start_times = vec![0.0f64; n];
    let mut finish_times = vec![0.0f64; n];
    let mut usage = vec![0.0f64; tasks.num_resources()];
    let mut now = 0.0f64;
    let mut running: Vec<usize> = Vec::new();
    let mut makespan = 0.0f64;

    loop {
        // Start every task (in list order) that fits right now.
        let mut progressed = true;
        while progressed {
            progressed = false;
            for &candidate in order {
                if started[candidate] {
                    continue;
                }
                let task = &tasks.tasks()[candidate];
                let fits = (0..tasks.num_resources())
                    .all(|r| usage[r] + task.demand(r) <= 1.0 + EPSILON);
                if fits {
                    started[candidate] = true;
                    start_times[candidate] = now;
                    finish_times[candidate] = now + task.length;
                    makespan = makespan.max(finish_times[candidate]);
                    for (r, used) in usage.iter_mut().enumerate() {
                        *used += task.demand(r);
                    }
                    running.push(candidate);
                    progressed = true;
                }
            }
        }
        if running.is_empty() {
            // Nothing is running and nothing could start: either we are done
            // or the instance is infeasible (a single task demanding more
            // than a unit of some resource, which Task::new prevents).
            break;
        }
        // Advance to the earliest completion.
        let (pos, &next_idx) = running
            .iter()
            .enumerate()
            .min_by(|a, b| {
                finish_times[*a.1]
                    .partial_cmp(&finish_times[*b.1])
                    .expect("finite times")
            })
            .expect("running is non-empty");
        now = finish_times[next_idx];
        running.swap_remove(pos);
        finished[next_idx] = true;
        let task = &tasks.tasks()[next_idx];
        for (r, used) in usage.iter_mut().enumerate() {
            *used = (*used - task.demand(r)).max(0.0);
        }
        // Also retire any other task finishing at exactly the same time.
        let mut i = 0;
        while i < running.len() {
            if (finish_times[running[i]] - now).abs() <= EPSILON {
                let idx = running.swap_remove(i);
                finished[idx] = true;
                let t = &tasks.tasks()[idx];
                for (r, used) in usage.iter_mut().enumerate() {
                    *used = (*used - t.demand(r)).max(0.0);
                }
            } else {
                i += 1;
            }
        }
        if finished.iter().all(|&f| f) {
            break;
        }
    }

    ScheduleResult {
        makespan,
        start_times,
        order: order.to_vec(),
        exact: false,
    }
}

/// Upper bound on the instance size for which the optimal list order is found
/// exhaustively (8! = 40 320 orders).
pub const EXHAUSTIVE_LIMIT: usize = 8;

/// Finds the best list schedule: exhaustively for systems of at most
/// [`EXHAUSTIVE_LIMIT`] tasks, otherwise by trying a family of natural
/// heuristic orders (original, longest-first, shortest-first, most-demanding
/// first) and keeping the best.
pub fn optimal_list_schedule(tasks: &TaskSystem) -> ScheduleResult {
    let n = tasks.len();
    if n == 0 {
        return ScheduleResult {
            makespan: 0.0,
            start_times: Vec::new(),
            order: Vec::new(),
            exact: true,
        };
    }
    if n <= EXHAUSTIVE_LIMIT {
        let mut order: Vec<usize> = (0..n).collect();
        let mut best = list_schedule(tasks, &order);
        permute(&mut order, 0, &mut |perm| {
            let candidate = list_schedule(tasks, perm);
            if candidate.makespan < best.makespan - EPSILON {
                best = candidate;
            }
        });
        best.exact = true;
        best
    } else {
        let identity: Vec<usize> = (0..n).collect();
        let mut longest_first = identity.clone();
        longest_first.sort_by(|&a, &b| {
            tasks.tasks()[b]
                .length
                .partial_cmp(&tasks.tasks()[a].length)
                .expect("finite lengths")
        });
        let mut shortest_first = longest_first.clone();
        shortest_first.reverse();
        let mut demanding_first = identity.clone();
        demanding_first.sort_by(|&a, &b| {
            let da: f64 = tasks.tasks()[a].demands.iter().sum();
            let db: f64 = tasks.tasks()[b].demands.iter().sum();
            db.partial_cmp(&da).expect("finite demands")
        });
        let mut best: Option<ScheduleResult> = None;
        for order in [identity, longest_first, shortest_first, demanding_first] {
            let candidate = list_schedule(tasks, &order);
            if best
                .as_ref()
                .map(|b| candidate.makespan < b.makespan - EPSILON)
                .unwrap_or(true)
            {
                best = Some(candidate);
            }
        }
        let mut best = best.expect("at least one candidate order");
        best.exact = false;
        best
    }
}

/// Heap-style permutation enumeration calling `visit` on each permutation.
fn permute(items: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::Task;

    fn system(tasks: Vec<Task>, resources: usize) -> TaskSystem {
        let mut sys = TaskSystem::new(resources);
        for t in tasks {
            sys.push(t);
        }
        sys
    }

    #[test]
    fn independent_tasks_run_fully_in_parallel() {
        let sys = system(
            vec![
                Task::new(1.0, vec![1.0, 0.0, 0.0]),
                Task::new(2.0, vec![0.0, 1.0, 0.0]),
                Task::new(3.0, vec![0.0, 0.0, 1.0]),
            ],
            3,
        );
        let result = list_schedule(&sys, &[0, 1, 2]);
        assert!((result.makespan - 3.0).abs() < 1e-9);
        assert!(result.start_times.iter().all(|&s| s.abs() < 1e-9));
    }

    #[test]
    fn conflicting_tasks_serialize() {
        let sys = system(
            vec![Task::new(1.0, vec![1.0]), Task::new(2.0, vec![1.0])],
            1,
        );
        let result = list_schedule(&sys, &[0, 1]);
        assert!((result.makespan - 3.0).abs() < 1e-9);
        let result = list_schedule(&sys, &[1, 0]);
        assert!((result.makespan - 3.0).abs() < 1e-9);
    }

    #[test]
    fn readers_share_a_resource() {
        // Four readers each demanding a quarter all fit at once.
        let sys = system(
            vec![
                Task::new(1.0, vec![0.25]),
                Task::new(1.0, vec![0.25]),
                Task::new(1.0, vec![0.25]),
                Task::new(1.0, vec![0.25]),
            ],
            1,
        );
        let result = list_schedule(&sys, &[0, 1, 2, 3]);
        assert!((result.makespan - 1.0).abs() < 1e-9);
    }

    #[test]
    fn list_order_matters_and_optimal_finds_the_best() {
        // The paper's chain with s = 3: tasks T0..T3, objects X1..X3.
        // T0 uses X1; T1 uses X1,X2; T2 uses X2,X3; T3 uses X3.
        let sys = system(
            vec![
                Task::new(1.0, vec![1.0, 0.0, 0.0]),
                Task::new(1.0, vec![1.0, 1.0, 0.0]),
                Task::new(1.0, vec![0.0, 1.0, 1.0]),
                Task::new(1.0, vec![0.0, 0.0, 1.0]),
            ],
            3,
        );
        // Even-then-odd is optimal: makespan 2.
        let good = list_schedule(&sys, &[0, 2, 1, 3]);
        assert!((good.makespan - 2.0).abs() < 1e-9);
        let best = optimal_list_schedule(&sys);
        assert!(best.exact);
        assert!((best.makespan - 2.0).abs() < 1e-9);
        // No list order can beat the lower bound.
        assert!(best.makespan + 1e-9 >= sys.makespan_lower_bound());
    }

    #[test]
    fn garey_graham_factor_holds_on_small_instances() {
        // Any list order is within (s + 1) of the optimum.
        let sys = system(
            vec![
                Task::new(1.0, vec![1.0, 0.0]),
                Task::new(2.0, vec![1.0, 1.0]),
                Task::new(1.5, vec![0.0, 1.0]),
                Task::new(0.5, vec![1.0, 0.0]),
            ],
            2,
        );
        let best = optimal_list_schedule(&sys);
        let worst = {
            let mut worst = best.makespan;
            let mut order: Vec<usize> = (0..sys.len()).collect();
            permute(&mut order, 0, &mut |perm| {
                let m = list_schedule(&sys, perm).makespan;
                if m > worst {
                    worst = m;
                }
            });
            worst
        };
        let s = sys.num_resources() as f64;
        assert!(worst <= (s + 1.0) * best.makespan + 1e-9);
    }

    #[test]
    fn heuristic_path_is_used_for_large_instances() {
        let tasks: Vec<Task> = (0..12)
            .map(|i| Task::new(1.0 + (i % 3) as f64, vec![if i % 2 == 0 { 1.0 } else { 0.5 }]))
            .collect();
        let sys = system(tasks, 1);
        let result = optimal_list_schedule(&sys);
        assert!(!result.exact);
        assert!(result.makespan >= sys.makespan_lower_bound() - 1e-9);
        assert!(result.makespan <= sys.total_length() + 1e-9);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn invalid_order_is_rejected() {
        let sys = system(
            vec![Task::new(1.0, vec![1.0]), Task::new(1.0, vec![0.5])],
            1,
        );
        let _ = list_schedule(&sys, &[0, 0]);
    }

    #[test]
    fn empty_system_has_zero_makespan() {
        let sys = TaskSystem::new(3);
        let result = optimal_list_schedule(&sys);
        assert_eq!(result.makespan, 0.0);
        assert!(result.exact);
    }
}
