//! The paper's adversarial chain (Section 4, the example between Theorem 1
//! and the task-system formalism).
//!
//! Transactions `T_0, ..., T_s` share objects `X_1, ..., X_s`; every
//! transaction runs for one time unit, and `T_i` has higher priority (an
//! earlier timestamp) than `T_{i-1}`. `T_0` accesses `X_1`, `T_s` accesses
//! `X_s`, and each remaining `T_i` accesses `X_i` and `X_{i+1}`:
//!
//! * At time `0`, each `T_i` with `i < s` opens `X_{i+1}`.
//! * Just before finishing (time `1 - ε`) each `T_i` with `i ≥ 1` opens
//!   `X_i`, which is held by the lower-priority `T_{i-1}` — so the greedy
//!   manager aborts `T_{i-1}`. Only `T_s` commits at time 1.
//! * The scenario repeats, one victim fewer each round, for a makespan of
//!   `s + 1`, while a good list schedule (evens then odds) achieves `2`.
//!
//! [`chain`] builds this instance for the execution simulator; the
//! corresponding task system (for the optimal list schedule) is obtained via
//! [`crate::tasks::TaskSystem::from_transactions`].

use crate::simulator::{SimAccess, SimTransaction};

/// The generated chain instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainInstance {
    /// Number of shared objects `s`.
    pub s: usize,
    /// Ticks per paper time unit.
    pub ticks_per_unit: u64,
    /// The transactions `T_0, ..., T_s` (index `i` is `T_i`).
    pub transactions: Vec<SimTransaction>,
}

impl ChainInstance {
    /// Expected greedy makespan in time units (`s + 1`).
    pub fn expected_greedy_makespan(&self) -> f64 {
        (self.s + 1) as f64
    }

    /// Expected optimal list-schedule makespan in time units (`2`, for
    /// `s >= 2`; `1` when there is no conflict at all).
    pub fn expected_optimal_makespan(&self) -> f64 {
        if self.s >= 2 {
            2.0
        } else {
            2.0_f64.min((self.s + 1) as f64)
        }
    }
}

/// Builds the chain instance with `s` objects and the given tick resolution
/// (the access "at time `1 - ε`" is placed on the last tick of the unit).
///
/// # Panics
///
/// Panics if `s == 0` or `ticks_per_unit < 2` (the construction needs a tick
/// strictly between 0 and the end of the unit).
pub fn chain(s: usize, ticks_per_unit: u64) -> ChainInstance {
    assert!(s >= 1, "the chain needs at least one shared object");
    assert!(ticks_per_unit >= 2, "need at least two ticks per time unit");
    let last_tick = ticks_per_unit - 1;
    let mut transactions = Vec::with_capacity(s + 1);
    for i in 0..=s {
        // T_i has higher priority than T_{i-1}: priorities descend with i.
        let priority = (s - i) as u64;
        let mut accesses = Vec::new();
        if i < s {
            // Objects are indexed 0..s internally; X_{i+1} is index i.
            accesses.push(SimAccess {
                offset: 0,
                object: i,
                write: true,
            });
        }
        if i >= 1 {
            // X_i is index i - 1, accessed just before the end of the unit.
            accesses.push(SimAccess {
                offset: last_tick,
                object: i - 1,
                write: true,
            });
        }
        accesses.sort_by_key(|a| a.offset);
        transactions.push(SimTransaction {
            duration: ticks_per_unit,
            priority,
            accesses,
        });
    }
    ChainInstance {
        s,
        ticks_per_unit,
        transactions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::optimal_list_schedule;
    use crate::simulator::{simulate, SimConfig};
    use crate::tasks::TaskSystem;
    use stm_cm::GreedyManager;

    #[test]
    fn chain_shape_matches_the_paper() {
        let instance = chain(3, 10);
        assert_eq!(instance.transactions.len(), 4);
        // T_0 accesses only X_1 at time 0.
        assert_eq!(instance.transactions[0].accesses.len(), 1);
        assert_eq!(instance.transactions[0].accesses[0].offset, 0);
        // T_3 accesses only X_3, at 1 - epsilon.
        assert_eq!(instance.transactions[3].accesses.len(), 1);
        assert_eq!(instance.transactions[3].accesses[0].offset, 9);
        // Interior transactions access two objects.
        assert_eq!(instance.transactions[1].accesses.len(), 2);
        assert_eq!(instance.transactions[2].accesses.len(), 2);
        // Priorities descend with the index (T_s is the oldest).
        assert!(instance.transactions[3].priority < instance.transactions[0].priority);
    }

    #[test]
    fn greedy_needs_s_plus_one_units() {
        for s in 2..=5usize {
            let ticks = 10;
            let instance = chain(s, ticks);
            let outcome = simulate(
                &instance.transactions,
                GreedyManager::factory(),
                SimConfig::default(),
            );
            let makespan = outcome.makespan_units(ticks as f64);
            assert!(
                (makespan - instance.expected_greedy_makespan()).abs() < 0.2,
                "s = {s}: greedy makespan {makespan}, expected {}",
                instance.expected_greedy_makespan()
            );
            assert!(outcome.pending_commit_held, "greedy satisfies pending commit");
        }
    }

    #[test]
    fn optimal_list_schedule_needs_two_units() {
        for s in 2..=6usize {
            let ticks = 10u64;
            let instance = chain(s, ticks);
            let tasks = TaskSystem::from_transactions(&instance.transactions);
            let best = optimal_list_schedule(&tasks);
            let expected = instance.expected_optimal_makespan() * ticks as f64;
            assert!(
                (best.makespan - expected).abs() < 1e-6,
                "s = {s}: optimal {} expected {expected}",
                best.makespan
            );
        }
    }

    #[test]
    fn greedy_to_optimal_ratio_stays_under_the_theorem_bound() {
        for s in 2..=5usize {
            let ticks = 10u64;
            let instance = chain(s, ticks);
            let outcome = simulate(
                &instance.transactions,
                GreedyManager::factory(),
                SimConfig::default(),
            );
            let tasks = TaskSystem::from_transactions(&instance.transactions);
            let best = optimal_list_schedule(&tasks);
            let ratio = outcome.makespan_units(ticks as f64) / (best.makespan / ticks as f64);
            let bound = crate::bounds::theorem9_bound(s);
            assert!(
                ratio <= bound + 1e-9,
                "s = {s}: ratio {ratio} exceeds bound {bound}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one shared object")]
    fn zero_object_chain_is_rejected() {
        let _ = chain(0, 10);
    }

    #[test]
    #[should_panic(expected = "two ticks")]
    fn single_tick_chain_is_rejected() {
        let _ = chain(3, 1);
    }
}
