//! Random transaction-system generation for the makespan experiments.
//!
//! Theorem 9 bounds the competitive ratio of *any* pending-commit manager on
//! *any* instance; the benchmark sweeps randomly generated instances (varying
//! the number of transactions `n`, objects `s`, transaction lengths, and
//! access densities), simulates them under several contention managers, and
//! compares the resulting makespans to the optimal list schedule.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::simulator::{SimAccess, SimTransaction};

/// Parameters of the random instance generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomSystemConfig {
    /// Number of transactions.
    pub transactions: usize,
    /// Number of shared objects.
    pub objects: usize,
    /// Minimum transaction duration in ticks.
    pub min_duration: u64,
    /// Maximum transaction duration in ticks (inclusive).
    pub max_duration: u64,
    /// Expected number of accesses per transaction (at least 1, at most the
    /// number of objects).
    pub accesses_per_transaction: usize,
    /// Fraction of accesses that are updates (the rest are reads).
    pub write_fraction: f64,
}

impl Default for RandomSystemConfig {
    fn default() -> Self {
        RandomSystemConfig {
            transactions: 8,
            objects: 4,
            min_duration: 5,
            max_duration: 20,
            accesses_per_transaction: 2,
            write_fraction: 1.0,
        }
    }
}

/// Generates a random transaction system. Deterministic for a given `seed`.
///
/// # Panics
///
/// Panics if the configuration is degenerate (no transactions, no objects, or
/// an empty duration range).
pub fn random_transaction_system(config: &RandomSystemConfig, seed: u64) -> Vec<SimTransaction> {
    assert!(config.transactions > 0, "need at least one transaction");
    assert!(config.objects > 0, "need at least one object");
    assert!(
        config.min_duration > 0 && config.min_duration <= config.max_duration,
        "invalid duration range"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut transactions = Vec::with_capacity(config.transactions);
    for i in 0..config.transactions {
        let duration = rng.gen_range(config.min_duration..=config.max_duration);
        let count = config
            .accesses_per_transaction
            .clamp(1, config.objects)
            .max(1);
        // Choose distinct objects for this transaction.
        let mut chosen: Vec<usize> = (0..config.objects).collect();
        for k in 0..count.min(chosen.len()) {
            let j = rng.gen_range(k..chosen.len());
            chosen.swap(k, j);
        }
        chosen.truncate(count);
        let mut accesses: Vec<SimAccess> = chosen
            .into_iter()
            .map(|object| SimAccess {
                offset: rng.gen_range(0..duration),
                object,
                write: rng.gen_bool(config.write_fraction.clamp(0.0, 1.0)),
            })
            .collect();
        accesses.sort_by_key(|a| a.offset);
        transactions.push(SimTransaction {
            duration,
            priority: i as u64,
            accesses,
        });
    }
    transactions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::optimal_list_schedule;
    use crate::simulator::{simulate, SimConfig};
    use crate::tasks::TaskSystem;
    use stm_cm::GreedyManager;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = RandomSystemConfig::default();
        let a = random_transaction_system(&config, 7);
        let b = random_transaction_system(&config, 7);
        let c = random_transaction_system(&config, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_transactions_are_valid() {
        let config = RandomSystemConfig {
            transactions: 20,
            objects: 6,
            accesses_per_transaction: 3,
            ..RandomSystemConfig::default()
        };
        for seed in 0..10 {
            for txn in random_transaction_system(&config, seed) {
                txn.validate().expect("generated transaction must be valid");
                assert!(txn.accesses.len() <= 3);
                assert!(!txn.accesses.is_empty());
            }
        }
    }

    #[test]
    fn greedy_respects_theorem9_bound_on_random_instances() {
        let config = RandomSystemConfig {
            transactions: 6,
            objects: 3,
            min_duration: 4,
            max_duration: 12,
            accesses_per_transaction: 2,
            write_fraction: 1.0,
        };
        for seed in 0..20u64 {
            let txns = random_transaction_system(&config, seed);
            let outcome = simulate(&txns, GreedyManager::factory(), SimConfig::default());
            let makespan = outcome
                .makespan_ticks
                .expect("greedy always finishes") as f64;
            let tasks = TaskSystem::from_transactions(&txns);
            let optimal = optimal_list_schedule(&tasks).makespan;
            let bound = crate::bounds::theorem9_bound(config.objects);
            assert!(
                makespan <= bound * optimal + 1e-6,
                "seed {seed}: makespan {makespan} optimal {optimal} bound {bound}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one transaction")]
    fn degenerate_config_is_rejected() {
        let config = RandomSystemConfig {
            transactions: 0,
            ..RandomSystemConfig::default()
        };
        let _ = random_transaction_system(&config, 0);
    }
}
