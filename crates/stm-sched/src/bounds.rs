//! Closed-form bounds from the paper and from Garey & Graham.

/// Theorem 9: any contention manager satisfying the pending-commit property
/// produces a makespan within a factor of `s(s + 1) + 2` of optimal, where
/// `s` is the number of shared objects.
pub fn theorem9_bound(s: usize) -> f64 {
    (s * (s + 1) + 2) as f64
}

/// Garey & Graham: any list schedule is within a factor of `s + 1` of the
/// optimal schedule for a task system with `s` resources.
pub fn garey_graham_bound(s: usize) -> f64 {
    (s + 1) as f64
}

/// The number of auxiliary resources `X'_{ij}` used in the proof of
/// Theorem 9: one per unordered pair of objects, `s(s + 1) / 2`.
pub fn proof_resource_count(s: usize) -> usize {
    s * (s + 1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem9_values() {
        assert_eq!(theorem9_bound(1), 4.0);
        assert_eq!(theorem9_bound(2), 8.0);
        assert_eq!(theorem9_bound(5), 32.0);
        assert_eq!(theorem9_bound(10), 112.0);
    }

    #[test]
    fn garey_graham_values() {
        assert_eq!(garey_graham_bound(1), 2.0);
        assert_eq!(garey_graham_bound(7), 8.0);
    }

    #[test]
    fn proof_resources_are_triangular_numbers() {
        assert_eq!(proof_resource_count(1), 1);
        assert_eq!(proof_resource_count(2), 3);
        assert_eq!(proof_resource_count(5), 15);
    }

    #[test]
    fn bounds_grow_monotonically() {
        for s in 1..50 {
            assert!(theorem9_bound(s + 1) > theorem9_bound(s));
            assert!(garey_graham_bound(s + 1) > garey_graham_bound(s));
            assert!(theorem9_bound(s) > garey_graham_bound(s));
        }
    }
}
