//! # stm-sched
//!
//! The scheduling-theory half of the reproduction: everything needed to
//! restate and check Section 4 of *"Toward a Theory of Transactional
//! Contention Managers"* computationally.
//!
//! * [`tasks`] — Garey–Graham task systems: tasks with lengths and fractional
//!   resource demands, plus the straightforward conversion from transaction
//!   systems (writes demand a full object, reads demand `1/n`).
//! * [`scheduler`] — list schedules (greedy, non-idling schedules driven by a
//!   task ordering) and an optimal-list-schedule search for small instances.
//!   Any list schedule is within a factor of `s + 1` of optimal (Garey &
//!   Graham); computing the optimum is NP-complete, hence the exhaustive
//!   search is bounded.
//! * [`simulator`] — a discrete-time execution simulator that runs a set of
//!   concurrent transactions under a *real* [`stm_core::ContentionManager`]
//!   implementation (greedy, karma, aggressive, ...), producing the makespan,
//!   abort counts, and a check of the *pending-commit property*.
//! * [`adversarial`] — the paper's Section 4 chain construction on which the
//!   greedy manager needs makespan `s + 1` while an optimal list schedule
//!   finishes in `2`.
//! * [`bounds`] — the closed-form bounds of Theorem 9 and of Garey–Graham.
//!
//! ```
//! use stm_sched::adversarial::chain;
//! use stm_sched::simulator::{simulate, SimConfig};
//! use stm_sched::scheduler::optimal_list_schedule;
//! use stm_sched::tasks::TaskSystem;
//! use stm_cm::GreedyManager;
//!
//! let s = 4;
//! let instance = chain(s, 10);
//! let outcome = simulate(&instance.transactions, GreedyManager::factory(), SimConfig::default());
//! let tasks = TaskSystem::from_transactions(&instance.transactions);
//! let optimal = optimal_list_schedule(&tasks);
//! // Greedy needs about s + 1 time units; the optimal schedule needs 2.
//! assert!(outcome.makespan_units(10.0) >= (s as f64));
//! assert!((optimal.makespan - 2.0 * 10.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adversarial;
pub mod bounds;
pub mod random;
pub mod scheduler;
pub mod simulator;
pub mod tasks;

pub use adversarial::{chain, ChainInstance};
pub use bounds::{garey_graham_bound, theorem9_bound};
pub use random::{random_transaction_system, RandomSystemConfig};
pub use scheduler::{list_schedule, optimal_list_schedule, ScheduleResult};
pub use simulator::{simulate, SimAccess, SimConfig, SimOutcome, SimTransaction};
pub use tasks::{Task, TaskSystem};
