//! Crate-level tests for the scheduling theory: the Garey–Graham
//! list-schedule makespan bound must hold on randomly generated task
//! systems, and both the generator and the simulator must be fully
//! deterministic for a fixed seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use stm_cm::{GreedyManager, KarmaManager, TimestampManager};
use stm_sched::{
    garey_graham_bound, list_schedule, optimal_list_schedule, random_transaction_system,
    simulate, RandomSystemConfig, SimConfig, TaskSystem,
};

/// Garey & Graham: for a task system over `s` resources, *any* list order's
/// makespan is within `s + 1` of the optimum. `optimal_list_schedule` is the
/// best list order, which upper-bounds the true optimum, so every sampled
/// permutation must land within `garey_graham_bound(s)` of it.
#[test]
fn garey_graham_bound_holds_for_sampled_list_orders() {
    let mut rng = SmallRng::seed_from_u64(0x0009_a4e7);
    for case in 0..40 {
        let s = rng.gen_range(1usize..5);
        let n = rng.gen_range(2usize..8);
        let config = RandomSystemConfig {
            transactions: n,
            objects: s,
            min_duration: 1,
            max_duration: 15,
            accesses_per_transaction: rng.gen_range(1..=s.min(3)),
            write_fraction: 1.0,
        };
        let txns = random_transaction_system(&config, rng.gen());
        let tasks = TaskSystem::from_transactions(&txns);
        let best = optimal_list_schedule(&tasks).makespan;
        let bound = garey_graham_bound(s);
        // Sample a handful of random permutations plus the two extremes.
        let mut orders: Vec<Vec<usize>> = vec![
            (0..tasks.len()).collect(),
            (0..tasks.len()).rev().collect(),
        ];
        for _ in 0..6 {
            let mut order: Vec<usize> = (0..tasks.len()).collect();
            for k in 0..order.len() {
                let j = rng.gen_range(k..order.len());
                order.swap(k, j);
            }
            orders.push(order);
        }
        for order in orders {
            let m = list_schedule(&tasks, &order).makespan;
            assert!(
                m <= bound * best + 1e-6,
                "case {case}: order {order:?} makespan {m} exceeds {bound} x {best}"
            );
            assert!(
                m + 1e-9 >= tasks.makespan_lower_bound(),
                "case {case}: order {order:?} beat the resource lower bound"
            );
        }
    }
}

/// The bound is tight in `s`: it must never be loosenable to `s` itself.
/// The chain instances drive greedy to `s + 1` against an optimum of 2, so
/// ratios above `(s + 1) / 2` are actually reached — check the closed forms
/// stay ordered the way the proofs need them.
#[test]
fn closed_form_bounds_are_consistent() {
    for s in 1..64usize {
        assert_eq!(garey_graham_bound(s), (s + 1) as f64);
        assert!(garey_graham_bound(s) >= 2.0);
        // Theorem 9's s(s+1)+2 dominates Garey–Graham for every s.
        assert!(stm_sched::theorem9_bound(s) > garey_graham_bound(s));
    }
}

/// `random_transaction_system` and `simulate` must be bit-for-bit
/// deterministic for a fixed seed: same instance, same outcome, across
/// repeated runs and for every deterministic manager.
#[test]
fn simulation_is_deterministic_under_a_fixed_seed() {
    let config = RandomSystemConfig {
        transactions: 10,
        objects: 4,
        min_duration: 3,
        max_duration: 18,
        accesses_per_transaction: 3,
        write_fraction: 0.8,
    };
    for seed in [0u64, 1, 42, 0xdead_beef] {
        let a = random_transaction_system(&config, seed);
        let b = random_transaction_system(&config, seed);
        assert_eq!(a, b, "generator diverged for seed {seed}");

        let factories = [
            GreedyManager::factory(),
            KarmaManager::factory(),
            TimestampManager::factory(),
        ];
        for factory in factories {
            let first = simulate(&a, factory.clone(), SimConfig::default());
            let second = simulate(&b, factory, SimConfig::default());
            assert_eq!(
                first, second,
                "simulation diverged for seed {seed} despite identical inputs"
            );
        }
    }
}

/// Different seeds must explore different instances (the sweep in the bound
/// experiment relies on this to cover the space).
#[test]
fn different_seeds_generate_different_instances() {
    let config = RandomSystemConfig::default();
    let distinct: std::collections::HashSet<String> = (0..16u64)
        .map(|seed| format!("{:?}", random_transaction_system(&config, seed)))
        .collect();
    assert!(
        distinct.len() >= 15,
        "only {} distinct instances out of 16 seeds",
        distinct.len()
    );
}
