//! Figure 1 — the list application: committed update transactions on a
//! 256-key sorted linked list, compared across contention managers.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use stm_bench::StructureKind;

fn fig1(c: &mut Criterion) {
    common::bench_structure(c, "fig1_list", StructureKind::List, 0);
}

criterion_group!(benches, fig1);
criterion_main!(benches);
