//! Figure 3 — the red-black tree under low contention: each transaction ends
//! with uncontended local work, so conflicts are rare.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use stm_bench::StructureKind;

fn fig3(c: &mut Criterion) {
    common::bench_structure(c, "fig3_rbtree_low_contention", StructureKind::RbTree, 2_000);
}

criterion_group!(benches, fig3);
criterion_main!(benches);
