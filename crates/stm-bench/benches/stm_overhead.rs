//! Micro-benchmarks of the STM substrate itself: cost of an uncontended
//! read-modify-write transaction, of a multi-object transaction, and of the
//! two read-visibility modes. These are not paper figures; they document the
//! constant factors of the substrate that the figures are built on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stm_cm::GreedyManager;
use stm_core::{ReadVisibility, Stm, TVar};

fn uncontended_rmw(c: &mut Criterion) {
    let mut group = c.benchmark_group("stm_uncontended_rmw");
    for visibility in [ReadVisibility::Visible, ReadVisibility::Invisible] {
        let stm = Stm::builder()
            .manager(GreedyManager::factory())
            .read_visibility(visibility)
            .build();
        let cell = TVar::new(0u64);
        group.bench_with_input(
            BenchmarkId::new("counter_increment", format!("{visibility:?}")),
            &visibility,
            |b, _| {
                let mut ctx = stm.thread();
                b.iter(|| ctx.atomically(|tx| tx.modify(&cell, |v| v + 1)).unwrap());
            },
        );
    }
    group.finish();
}

fn multi_object_transaction(c: &mut Criterion) {
    let mut group = c.benchmark_group("stm_multi_object");
    for objects in [2usize, 8, 32] {
        let stm = Stm::builder().manager(GreedyManager::factory()).build();
        let cells: Vec<TVar<u64>> = (0..objects).map(|_| TVar::new(0)).collect();
        group.bench_with_input(BenchmarkId::new("update_all", objects), &objects, |b, _| {
            let mut ctx = stm.thread();
            b.iter(|| {
                ctx.atomically(|tx| {
                    for cell in &cells {
                        tx.modify(cell, |v| v + 1)?;
                    }
                    Ok(())
                })
                .unwrap()
            });
        });
    }
    group.finish();
}

fn read_only_transaction(c: &mut Criterion) {
    let mut group = c.benchmark_group("stm_read_only");
    for objects in [8usize, 64] {
        let stm = Stm::builder().manager(GreedyManager::factory()).build();
        let cells: Vec<TVar<u64>> = (0..objects).map(|i| TVar::new(i as u64)).collect();
        group.bench_with_input(BenchmarkId::new("sum_all", objects), &objects, |b, _| {
            let mut ctx = stm.thread();
            b.iter(|| {
                ctx.atomically(|tx| {
                    let mut sum = 0u64;
                    for cell in &cells {
                        sum += tx.read(cell)?;
                    }
                    Ok(sum)
                })
                .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, uncontended_rmw, multi_object_transaction, read_only_transaction);
criterion_main!(benches);
