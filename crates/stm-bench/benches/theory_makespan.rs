//! Theory benches (E5/E6): the adversarial chain and random-instance
//! makespans under different contention managers, measured through the
//! discrete-time simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stm_cm::ManagerKind;
use stm_sched::{
    chain, optimal_list_schedule, random_transaction_system, simulate, RandomSystemConfig,
    SimConfig, TaskSystem,
};

fn chain_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("theory_chain");
    group.sample_size(20);
    for s in [4usize, 8, 16] {
        let instance = chain(s, 10);
        for manager in [ManagerKind::Greedy, ManagerKind::Timestamp, ManagerKind::Karma] {
            group.bench_with_input(
                BenchmarkId::new(manager.name(), s),
                &s,
                |b, _| {
                    b.iter(|| {
                        simulate(
                            &instance.transactions,
                            manager.factory(),
                            SimConfig { max_ticks: 100_000 },
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

fn optimal_schedule_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("theory_optimal_list_schedule");
    group.sample_size(10);
    for s in [4usize, 6, 8] {
        let instance = chain(s, 10);
        let tasks = TaskSystem::from_transactions(&instance.transactions);
        group.bench_with_input(BenchmarkId::new("chain", s), &s, |b, _| {
            b.iter(|| optimal_list_schedule(&tasks))
        });
    }
    group.finish();
}

fn random_instance_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("theory_random_instances");
    group.sample_size(10);
    let config = RandomSystemConfig {
        transactions: 8,
        objects: 4,
        min_duration: 4,
        max_duration: 16,
        accesses_per_transaction: 2,
        write_fraction: 1.0,
    };
    let instances: Vec<_> = (0..10u64)
        .map(|seed| random_transaction_system(&config, seed))
        .collect();
    for manager in [ManagerKind::Greedy, ManagerKind::Karma, ManagerKind::Aggressive] {
        group.bench_function(manager.name(), |b| {
            b.iter(|| {
                instances
                    .iter()
                    .map(|txns| {
                        simulate(txns, manager.factory(), SimConfig { max_ticks: 50_000 })
                            .makespan_ticks
                            .unwrap_or(u64::MAX)
                    })
                    .sum::<u64>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, chain_bench, optimal_schedule_bench, random_instance_bench);
criterion_main!(benches);
