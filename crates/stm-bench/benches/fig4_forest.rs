//! Figure 4 — the red-black forest: transactions of highly variable length
//! (one tree vs all fifty trees) under intensive contention.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use stm_bench::StructureKind;

fn fig4(c: &mut Criterion) {
    common::bench_structure(c, "fig4_rbforest", StructureKind::paper_forest(), 0);
}

criterion_group!(benches, fig4);
criterion_main!(benches);
