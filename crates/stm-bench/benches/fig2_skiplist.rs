//! Figure 2 — the skiplist application: committed update transactions on a
//! 256-key skiplist, compared across contention managers.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use stm_bench::StructureKind;

fn fig2(c: &mut Criterion) {
    common::bench_structure(c, "fig2_skiplist", StructureKind::SkipList, 0);
}

criterion_group!(benches, fig2);
criterion_main!(benches);
