//! Shared plumbing for the figure benches.
//!
//! Each paper figure gets one Criterion bench: for every contention manager
//! in the figure set it measures the time for a fixed batch of update
//! transactions on the figure's data structure. The committed-transactions-
//! per-second series of the paper (full 1–32 thread sweep) is produced by the
//! `figures` binary; the Criterion benches keep the per-manager comparison in
//! a form that integrates with `cargo bench` and its regression tracking.

use std::time::Duration;

use criterion::{BenchmarkId, Criterion};
use stm_bench::{run_fixed_ops, StructureKind, WorkloadConfig};
use stm_cm::ManagerKind;

/// Threads used by the Criterion benches (kept modest so `cargo bench`
/// remains fast; the binary sweeps the full 1–32 range).
pub const BENCH_THREADS: usize = 4;
/// Update transactions per thread in each measured batch.
pub const OPS_PER_THREAD: u64 = 300;

/// Registers one benchmark group comparing the paper's figure-set managers on
/// the given structure.
pub fn bench_structure(c: &mut Criterion, group_name: &str, structure: StructureKind, local_work: u64) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    let cfg = WorkloadConfig {
        threads: BENCH_THREADS,
        key_range: 256,
        duration: Duration::from_millis(0),
        local_work,
        seed: 0xbe9c,
        ..WorkloadConfig::default()
    };
    for manager in ManagerKind::FIGURE_SET {
        group.bench_with_input(
            BenchmarkId::new(manager.name(), BENCH_THREADS),
            &manager,
            |b, &manager| {
                b.iter(|| {
                    run_fixed_ops(manager, &structure, BENCH_THREADS, OPS_PER_THREAD, &cfg)
                });
            },
        );
    }
    group.finish();
}
