//! The starvation experiment (E7, Theorem 1).
//!
//! Theorem 1 states that under the greedy manager every transaction commits
//! within a bounded delay. The experiment stresses exactly the situation in
//! which weaker managers starve long transactions: one thread repeatedly runs
//! a *long* transaction that updates a whole block of counters while many
//! threads hammer the same counters with short transactions. We record how
//! many attempts the long transaction needed and how long its slowest commit
//! took; for the greedy manager the long transaction's priority only grows
//! older, so it is never starved indefinitely.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

use serde::Serialize;

use stm_cm::ManagerKind;
use stm_core::Stm;
use stm_structures::TxCounter;

/// Result of the starvation experiment for one manager.
#[derive(Debug, Clone, Serialize)]
pub struct StarvationResult {
    /// Contention manager exercised.
    pub manager: String,
    /// Number of short-transaction threads.
    pub short_threads: usize,
    /// Number of long transactions that committed.
    pub long_commits: u64,
    /// Worst-case number of attempts a single long transaction needed.
    pub worst_attempts: u64,
    /// Worst-case wall-clock latency of a long transaction (start of its
    /// first attempt to commit).
    pub worst_latency: Duration,
    /// Short transactions committed during the run.
    pub short_commits: u64,
    /// Whether every long transaction started during the measurement window
    /// eventually committed.
    pub no_starvation: bool,
}

/// Runs the starvation experiment for one manager.
///
/// One thread runs long transactions over `block` counters; `short_threads`
/// threads increment single random counters as fast as they can, for
/// `duration`.
pub fn starvation_experiment(
    manager: ManagerKind,
    short_threads: usize,
    block: usize,
    duration: Duration,
) -> StarvationResult {
    assert!(short_threads > 0 && block > 0);
    let stm = Arc::new(Stm::builder().manager(manager.factory()).build());
    let counters: Arc<Vec<TxCounter>> = Arc::new((0..block).map(|_| TxCounter::new()).collect());
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(short_threads + 2));

    let mut long_commits = 0u64;
    let mut worst_attempts = 0u64;
    let mut worst_latency = Duration::ZERO;
    let mut short_commits = 0u64;
    let mut no_starvation = true;

    thread::scope(|scope| {
        // Long-transaction thread.
        let long_handle = {
            let stm = Arc::clone(&stm);
            let counters = Arc::clone(&counters);
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                let mut ctx = stm.thread();
                let mut commits = 0u64;
                let mut worst_attempts = 0u64;
                let mut worst_latency = Duration::ZERO;
                let mut starved = false;
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    let started = Instant::now();
                    let mut attempts = 0u64;
                    let outcome = ctx.atomically(|tx| {
                        attempts += 1;
                        for counter in counters.iter() {
                            counter.add(tx, 1)?;
                        }
                        Ok(())
                    });
                    match outcome {
                        Ok(()) => {
                            commits += 1;
                            worst_attempts = worst_attempts.max(attempts);
                            worst_latency = worst_latency.max(started.elapsed());
                        }
                        Err(_) => {
                            starved = true;
                        }
                    }
                }
                (commits, worst_attempts, worst_latency, starved)
            })
        };
        // Short-transaction threads.
        let mut short_handles = Vec::new();
        for t in 0..short_threads {
            let stm = Arc::clone(&stm);
            let counters = Arc::clone(&counters);
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            short_handles.push(scope.spawn(move || {
                let mut ctx = stm.thread();
                let mut commits = 0u64;
                let mut index = t;
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    index = (index + 7) % counters.len();
                    if ctx
                        .atomically(|tx| counters[index].increment(tx))
                        .is_ok()
                    {
                        commits += 1;
                    }
                }
                commits
            }));
        }
        barrier.wait();
        thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
        let (lc, wa, wl, starved) = long_handle.join().expect("long thread panicked");
        long_commits = lc;
        worst_attempts = wa;
        worst_latency = wl;
        no_starvation = !starved && lc > 0;
        for handle in short_handles {
            short_commits += handle.join().expect("short thread panicked");
        }
    });

    StarvationResult {
        manager: manager.name().to_string(),
        short_threads,
        long_commits,
        worst_attempts,
        worst_latency,
        short_commits,
        no_starvation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_long_transactions_always_commit() {
        let result = starvation_experiment(
            ManagerKind::Greedy,
            3,
            16,
            Duration::from_millis(150),
        );
        assert!(result.no_starvation, "greedy must not starve: {result:?}");
        assert!(result.long_commits > 0);
        assert!(result.short_commits > 0);
        assert!(result.worst_attempts >= 1);
    }

    #[test]
    fn experiment_runs_for_timestamp_manager_too() {
        let result = starvation_experiment(
            ManagerKind::Timestamp,
            2,
            8,
            Duration::from_millis(80),
        );
        assert_eq!(result.manager, "timestamp");
        assert!(result.short_commits > 0);
    }
}
