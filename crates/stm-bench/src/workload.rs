//! The benchmark workload driver.
//!
//! Reproduces the experimental setup of Section 5: "a number of threads
//! ranging from 1 to 32 continuously insert and remove elements taken from a
//! small set of 256 integers, hence forcing contention to happen, and an
//! update rate of 100%". Each thread runs transactions back-to-back for a
//! fixed wall-clock interval; the metric is committed transactions per
//! second.
//!
//! The paper's fixed 100%-update mix is one point of an [`OpMix`]
//! distribution: every workload draws its operations from a weighted mix of
//! inserts, removes, point lookups and range queries, so the same driver also
//! produces the read-mostly and range-heavy scenarios that stress the
//! invisible-read design (see `EXPERIMENTS.md` at the repository root).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use stm_cm::{ManagerKind, ManagerParams};
use stm_core::{Stm, TxResult, Txn};
use stm_structures::forest::UpdateScope;
use stm_structures::{TxList, TxRbForest, TxRbTree, TxSet, TxSkipList};

/// Which benchmark structure a workload runs against.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum StructureKind {
    /// Sorted linked list (Figure 1).
    List,
    /// Skiplist (Figure 2).
    SkipList,
    /// Red-black tree (Figure 3).
    RbTree,
    /// Red-black forest (Figure 4).
    Forest {
        /// Number of trees (the paper uses fifty).
        trees: usize,
        /// Probability that an update touches every tree instead of one.
        all_probability: f64,
    },
}

impl StructureKind {
    /// The paper's red-black forest configuration.
    pub fn paper_forest() -> Self {
        StructureKind::Forest {
            trees: 50,
            all_probability: 0.1,
        }
    }

    /// Short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            StructureKind::List => "list",
            StructureKind::SkipList => "skiplist",
            StructureKind::RbTree => "rbtree",
            StructureKind::Forest { .. } => "rbforest",
        }
    }
}

/// The operation categories a workload mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum OpKind {
    /// Insert a random key.
    Insert,
    /// Remove a random key.
    Remove,
    /// Point membership lookup of a random key.
    Lookup,
    /// Range query over a random interval of `range_span` keys.
    Range,
}

impl OpKind {
    /// All categories, in reporting order.
    pub const ALL: [OpKind; 4] = [OpKind::Insert, OpKind::Remove, OpKind::Lookup, OpKind::Range];

    /// Label used in per-op breakdowns.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Insert => "insert",
            OpKind::Remove => "remove",
            OpKind::Lookup => "lookup",
            OpKind::Range => "range",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            OpKind::Insert => 0,
            OpKind::Remove => 1,
            OpKind::Lookup => 2,
            OpKind::Range => 3,
        }
    }
}

/// A weighted distribution over the four operation categories.
///
/// Weights need not sum to one — they are normalized when drawing. The
/// paper's Section 5 experiments use [`OpMix::update_only`]; the read-mostly
/// and range-heavy mixes extend the evaluation to the scenarios where
/// invisible reads dominate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct OpMix {
    /// Weight of insert operations.
    pub insert: f64,
    /// Weight of remove operations.
    pub remove: f64,
    /// Weight of point lookups.
    pub lookup: f64,
    /// Weight of range queries.
    pub range: f64,
}

impl OpMix {
    /// The paper's mix: 100% updates, split evenly between inserts and
    /// removes.
    pub fn update_only() -> Self {
        OpMix {
            insert: 0.5,
            remove: 0.5,
            lookup: 0.0,
            range: 0.0,
        }
    }

    /// A read-dominated mix: 90% point lookups, updates split evenly.
    pub fn read_mostly() -> Self {
        OpMix {
            insert: 0.05,
            remove: 0.05,
            lookup: 0.9,
            range: 0.0,
        }
    }

    /// A range-heavy mix: long invisible-read sets from range scans on top
    /// of a half-update base load.
    pub fn range_heavy() -> Self {
        OpMix {
            insert: 0.25,
            remove: 0.25,
            lookup: 0.2,
            range: 0.3,
        }
    }

    /// A pure read-fraction point on the lookup axis: `read` of the
    /// operations are lookups, the rest are updates split evenly.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= read <= 1.0`.
    pub fn with_read_fraction(read: f64) -> Self {
        assert!((0.0..=1.0).contains(&read), "read fraction must be in 0..=1");
        let update = (1.0 - read) / 2.0;
        OpMix {
            insert: update,
            remove: update,
            lookup: read,
            range: 0.0,
        }
    }

    /// The three mixes every workload-matrix sweep covers.
    pub fn standard_matrix() -> Vec<OpMix> {
        vec![
            OpMix::update_only(),
            OpMix::read_mostly(),
            OpMix::range_heavy(),
        ]
    }

    /// Short name used in reports (`"update-only"`, `"read-mostly-90"`,
    /// `"range-heavy"`, or the weight vector for custom mixes).
    pub fn label(&self) -> String {
        if *self == OpMix::update_only() {
            "update-only".to_string()
        } else if *self == OpMix::read_mostly() {
            "read-mostly-90".to_string()
        } else if *self == OpMix::range_heavy() {
            "range-heavy".to_string()
        } else {
            let total = self.total();
            format!(
                "i{:02.0}-r{:02.0}-l{:02.0}-g{:02.0}",
                100.0 * self.insert / total,
                100.0 * self.remove / total,
                100.0 * self.lookup / total,
                100.0 * self.range / total,
            )
        }
    }

    fn total(&self) -> f64 {
        self.insert + self.remove + self.lookup + self.range
    }

    /// Maps a uniform `roll` in `[0, 1]` to an operation category.
    ///
    /// # Panics
    ///
    /// Panics if every weight is zero (or any is negative enough to cancel
    /// the total).
    pub fn pick(&self, roll: f64) -> OpKind {
        let total = self.total();
        assert!(total > 0.0, "op mix must have positive total weight");
        let mut r = roll.clamp(0.0, 1.0) * total;
        for (weight, kind) in [
            (self.insert, OpKind::Insert),
            (self.remove, OpKind::Remove),
            (self.lookup, OpKind::Lookup),
            (self.range, OpKind::Range),
        ] {
            if r < weight {
                return kind;
            }
            r -= weight;
        }
        // roll == 1.0 lands exactly on the upper edge of the last
        // positively-weighted category.
        if self.range > 0.0 {
            OpKind::Range
        } else if self.lookup > 0.0 {
            OpKind::Lookup
        } else if self.remove > 0.0 {
            OpKind::Remove
        } else {
            OpKind::Insert
        }
    }
}

impl Default for OpMix {
    fn default() -> Self {
        OpMix::update_only()
    }
}

/// Parameters of one workload run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct WorkloadConfig {
    /// Number of worker threads.
    pub threads: usize,
    /// Keys are drawn uniformly from `0..key_range` (the paper uses 256).
    pub key_range: i64,
    /// Wall-clock measurement interval.
    pub duration: Duration,
    /// Iterations of uncontended local work appended to every transaction
    /// (used by the low-contention red-black-tree experiment, Figure 3).
    pub local_work: u64,
    /// Seed for the per-thread operation generators.
    pub seed: u64,
    /// Distribution over operation categories each thread draws from.
    pub mix: OpMix,
    /// Width of the key interval scanned by a [`OpKind::Range`] query.
    pub range_span: i64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            threads: 4,
            key_range: 256,
            duration: Duration::from_millis(200),
            local_work: 0,
            seed: 0x5eed,
            mix: OpMix::update_only(),
            range_span: 32,
        }
    }
}

/// Latency and abort accounting for one operation category of a workload
/// run (the per-op breakdown carried by [`WorkloadResult::per_op`]).
#[derive(Debug, Clone, Serialize)]
pub struct OpStats {
    /// Operation label (`"insert"`, `"lookup"`, ... — or the wire verbs
    /// `"put"`, `"get"`, `"batch"` for the network driver).
    pub op: String,
    /// Completed operations of this category.
    pub ops: u64,
    /// Aborted attempts charged to this category (0 for drivers that cannot
    /// attribute aborts per operation).
    pub aborts: u64,
    /// Mean completion latency in microseconds.
    pub mean_us: f64,
    /// Median completion latency in microseconds.
    pub p50_us: f64,
    /// 99th-percentile completion latency in microseconds.
    pub p99_us: f64,
}

/// Accumulates latency samples and abort counts for one operation category.
#[derive(Debug, Default, Clone)]
pub(crate) struct OpRecorder {
    latencies_ns: Vec<u64>,
    aborts: u64,
}

impl OpRecorder {
    pub(crate) fn record(&mut self, latency: Duration, aborts: u64) {
        self.latencies_ns.push(latency.as_nanos() as u64);
        self.aborts += aborts;
    }

    pub(crate) fn merge(&mut self, other: OpRecorder) {
        self.latencies_ns.extend(other.latencies_ns);
        self.aborts += other.aborts;
    }

    pub(crate) fn finish(mut self, op: &str) -> Option<OpStats> {
        if self.latencies_ns.is_empty() {
            return None;
        }
        self.latencies_ns.sort_unstable();
        let n = self.latencies_ns.len();
        let percentile = |p: f64| -> f64 {
            let idx = ((p / 100.0) * (n as f64 - 1.0)).round() as usize;
            self.latencies_ns[idx.min(n - 1)] as f64 / 1_000.0
        };
        let mean_us =
            self.latencies_ns.iter().sum::<u64>() as f64 / n as f64 / 1_000.0;
        Some(OpStats {
            op: op.to_string(),
            ops: n as u64,
            aborts: self.aborts,
            mean_us,
            p50_us: percentile(50.0),
            p99_us: percentile(99.0),
        })
    }
}

/// The outcome of a workload run.
#[derive(Debug, Clone, Serialize)]
pub struct WorkloadResult {
    /// Contention manager used.
    pub manager: String,
    /// Structure exercised.
    pub structure: String,
    /// Operation mix driven (label of the [`OpMix`]).
    pub mix: String,
    /// Number of worker threads.
    pub threads: usize,
    /// Committed transactions across all threads.
    pub commits: u64,
    /// Aborted attempts across all threads.
    pub aborts: u64,
    /// Wall-clock time actually spent measuring.
    pub elapsed: Duration,
    /// Committed transactions per second — the metric plotted in the paper's
    /// figures.
    pub throughput: f64,
    /// Fraction of attempts that aborted.
    pub abort_ratio: f64,
    /// Per-operation latency (p50/p99) and abort breakdown.
    pub per_op: Vec<OpStats>,
}

/// A sweep over thread counts for a set of managers (one paper figure), and —
/// for the workload matrix — over operation mixes.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Thread counts to sweep (the paper sweeps 1..=32).
    pub thread_counts: Vec<usize>,
    /// Managers to compare.
    pub managers: Vec<ManagerKind>,
    /// Operation mixes the workload matrix covers. The single-figure sweeps
    /// (Figures 1–4) use `base.mix` instead, which stays at the paper's
    /// update-only mix.
    pub mixes: Vec<OpMix>,
    /// Per-run parameters (thread count — and, in the matrix, the mix — are
    /// overridden per point).
    pub base: WorkloadConfig,
}

impl SweepConfig {
    /// The paper's configuration: Eruption, Greedy, Aggressive, Backoff and
    /// Karma swept over 1–32 threads.
    pub fn paper_defaults() -> Self {
        SweepConfig {
            thread_counts: vec![1, 2, 4, 8, 16, 32],
            managers: ManagerKind::FIGURE_SET.to_vec(),
            mixes: vec![OpMix::update_only()],
            base: WorkloadConfig::default(),
        }
    }

    /// A reduced configuration for smoke tests and `--quick` runs.
    pub fn quick() -> Self {
        SweepConfig {
            thread_counts: vec![1, 2, 4],
            managers: vec![ManagerKind::Greedy, ManagerKind::Karma, ManagerKind::Aggressive],
            mixes: vec![OpMix::update_only()],
            base: WorkloadConfig {
                duration: Duration::from_millis(60),
                ..WorkloadConfig::default()
            },
        }
    }

    /// A machine-sized sweep: thread counts from 1 up to twice the host's
    /// available parallelism (powers of two plus the `2 × cores` endpoint),
    /// the paper's figure-set managers, and the three standard mixes.
    pub fn machine() -> Self {
        let cores = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let mut thread_counts = Vec::new();
        let mut t = 1;
        while t < 2 * cores {
            thread_counts.push(t);
            t *= 2;
        }
        thread_counts.push(2 * cores);
        SweepConfig {
            thread_counts,
            managers: ManagerKind::FIGURE_SET.to_vec(),
            mixes: OpMix::standard_matrix(),
            base: WorkloadConfig {
                duration: Duration::from_millis(150),
                ..WorkloadConfig::default()
            },
        }
    }

    /// A seconds-long sanity pass over the full (structure × mix × manager)
    /// matrix, small enough to run in CI on every push.
    pub fn smoke() -> Self {
        SweepConfig {
            thread_counts: vec![1, 2],
            managers: vec![
                ManagerKind::Greedy,
                ManagerKind::Karma,
                ManagerKind::Timestamp,
                ManagerKind::Polka,
            ],
            mixes: OpMix::standard_matrix(),
            base: WorkloadConfig {
                key_range: 64,
                duration: Duration::from_millis(20),
                ..WorkloadConfig::default()
            },
        }
    }
}

enum Built {
    Set(Arc<dyn TxSet>),
    Forest {
        forest: TxRbForest,
        all_probability: f64,
    },
}

fn build_structure(kind: &StructureKind) -> Built {
    match kind {
        StructureKind::List => Built::Set(Arc::new(TxList::new())),
        StructureKind::SkipList => Built::Set(Arc::new(TxSkipList::new())),
        StructureKind::RbTree => Built::Set(Arc::new(TxRbTree::new())),
        StructureKind::Forest {
            trees,
            all_probability,
        } => Built::Forest {
            forest: TxRbForest::new(*trees),
            all_probability: *all_probability,
        },
    }
}

/// Cheap, optimizer-resistant local computation used to lengthen transactions
/// without touching shared state (Figure 3's uncontended tail).
fn local_work(iterations: u64, seed: u64) -> u64 {
    let mut acc = seed | 1;
    for _ in 0..iterations {
        acc ^= acc << 13;
        acc ^= acc >> 7;
        acc ^= acc << 17;
    }
    acc
}

/// One drawn operation: category, key, the forest's scope roll, and the seed
/// for the uncontended local-work tail.
#[derive(Debug, Clone, Copy)]
struct OpDraw {
    op: OpKind,
    key: i64,
    scope_roll: f64,
    work_seed: u64,
}

fn draw_op(rng: &mut SmallRng, cfg: &WorkloadConfig) -> OpDraw {
    OpDraw {
        key: rng.gen_range(0..cfg.key_range),
        op: cfg.mix.pick(rng.gen()),
        scope_roll: rng.gen(),
        work_seed: rng.gen(),
    }
}

fn one_op(tx: &mut Txn<'_>, built: &Built, draw: &OpDraw, cfg: &WorkloadConfig) -> TxResult<u64> {
    let hi = draw.key + cfg.range_span;
    let observed = match built {
        Built::Set(set) => match draw.op {
            OpKind::Insert => u64::from(set.insert(tx, draw.key)?),
            OpKind::Remove => u64::from(set.remove(tx, draw.key)?),
            OpKind::Lookup => u64::from(set.contains(tx, draw.key)?),
            OpKind::Range => set.range(tx, draw.key, hi)?.len() as u64,
        },
        Built::Forest {
            forest,
            all_probability,
        } => {
            let tree = (draw.key.unsigned_abs() as usize) % forest.num_trees();
            match draw.op {
                OpKind::Insert | OpKind::Remove => {
                    let scope = if draw.scope_roll < *all_probability {
                        UpdateScope::All
                    } else {
                        UpdateScope::One(tree)
                    };
                    if draw.op == OpKind::Insert {
                        forest.insert(tx, scope, draw.key)? as u64
                    } else {
                        forest.remove(tx, scope, draw.key)? as u64
                    }
                }
                OpKind::Lookup => u64::from(forest.contains_in(tx, tree, draw.key)?),
                OpKind::Range => forest.range_in(tx, tree, draw.key, hi)?.len() as u64,
            }
        }
    };
    // Fold the observation into the local-work accumulator so the optimizer
    // cannot discard read-only operations.
    Ok(local_work(cfg.local_work, draw.work_seed).wrapping_add(observed))
}

/// Runs the throughput workload: `cfg.threads` threads continuously draw
/// operations (insert, remove, lookup or range, weighted by `cfg.mix`) over
/// random keys for `cfg.duration`, under the contention manager `manager`.
pub fn run_workload(
    manager: ManagerKind,
    structure: &StructureKind,
    cfg: &WorkloadConfig,
) -> WorkloadResult {
    run_workload_with(manager, ManagerParams::default(), structure, cfg)
}

/// Like [`run_workload`], but with explicit [`ManagerParams`] — the entry
/// point of the parameter-ablation sweeps, which vary one knob at a time
/// around the historical defaults.
pub fn run_workload_with(
    manager: ManagerKind,
    params: ManagerParams,
    structure: &StructureKind,
    cfg: &WorkloadConfig,
) -> WorkloadResult {
    assert!(cfg.threads > 0, "need at least one thread");
    assert!(cfg.key_range > 0, "key range must be positive");
    let stm = Arc::new(Stm::builder().manager(manager.factory_with(params)).build());
    let built = Arc::new(build_structure(structure));
    prefill(&stm, &built, cfg.key_range);

    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(cfg.threads + 1));
    // Overwritten at the start barrier so thread-spawn time stays out of the
    // throughput denominator.
    let mut started = Instant::now();
    let mut commits_total = 0u64;
    let mut recorders: [OpRecorder; 4] = Default::default();
    thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..cfg.threads {
            let stm = Arc::clone(&stm);
            let built = Arc::clone(&built);
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            let cfg = *cfg;
            handles.push(scope.spawn(move || {
                let mut ctx = stm.thread();
                let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (t as u64).wrapping_mul(0x9e37));
                let mut commits = 0u64;
                let mut local: [OpRecorder; 4] = Default::default();
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    let draw = draw_op(&mut rng, &cfg);
                    let op_started = Instant::now();
                    let (outcome, report) =
                        ctx.atomically_traced(|tx| one_op(tx, &built, &draw, &cfg));
                    if outcome.is_ok() {
                        commits += 1;
                        local[draw.op.index()].record(op_started.elapsed(), report.aborts);
                    }
                }
                (commits, local)
            }));
        }
        barrier.wait();
        started = Instant::now();
        let deadline = started + cfg.duration;
        while Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        stop.store(true, Ordering::Relaxed);
        for handle in handles {
            let (commits, local) = handle.join().expect("worker thread panicked");
            commits_total += commits;
            for (merged, thread_local) in recorders.iter_mut().zip(local) {
                merged.merge(thread_local);
            }
        }
    });
    let elapsed = started.elapsed();
    let snapshot = stm.stats().snapshot();
    let per_op = OpKind::ALL
        .into_iter()
        .zip(recorders)
        .filter_map(|(kind, recorder)| recorder.finish(kind.label()))
        .collect();
    WorkloadResult {
        manager: manager.name().to_string(),
        structure: structure.name().to_string(),
        mix: cfg.mix.label(),
        threads: cfg.threads,
        commits: commits_total,
        aborts: snapshot.aborts,
        elapsed,
        throughput: commits_total as f64 / elapsed.as_secs_f64(),
        abort_ratio: snapshot.abort_ratio(),
        per_op,
    }
}

/// Runs a fixed number of operations per thread instead of a fixed duration;
/// used by the Criterion benches, where the measured quantity is the time to
/// complete the batch.
pub fn run_fixed_ops(
    manager: ManagerKind,
    structure: &StructureKind,
    threads: usize,
    ops_per_thread: u64,
    cfg: &WorkloadConfig,
) -> Duration {
    assert!(threads > 0 && ops_per_thread > 0);
    let stm = Arc::new(Stm::builder().manager(manager.factory()).build());
    let built = Arc::new(build_structure(structure));
    prefill(&stm, &built, cfg.key_range);
    let barrier = Arc::new(Barrier::new(threads + 1));
    let started = Instant::now();
    thread::scope(|scope| {
        for t in 0..threads {
            let stm = Arc::clone(&stm);
            let built = Arc::clone(&built);
            let barrier = Arc::clone(&barrier);
            let cfg = *cfg;
            scope.spawn(move || {
                let mut ctx = stm.thread();
                let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (t as u64).wrapping_mul(0x517c));
                barrier.wait();
                for _ in 0..ops_per_thread {
                    let draw = draw_op(&mut rng, &cfg);
                    let _ = ctx.atomically(|tx| one_op(tx, &built, &draw, &cfg));
                }
            });
        }
        barrier.wait();
    });
    started.elapsed()
}

/// Pre-populates the structure with every other key so that inserts and
/// removes both have roughly a 50% chance of modifying the structure.
fn prefill(stm: &Stm, built: &Built, key_range: i64) {
    let mut ctx = stm.thread();
    match built {
        Built::Set(set) => {
            for key in (0..key_range).step_by(2) {
                ctx.atomically(|tx| set.insert(tx, key))
                    .expect("prefill transaction must commit");
            }
        }
        Built::Forest { forest, .. } => {
            for key in (0..key_range).step_by(2) {
                ctx.atomically(|tx| forest.insert(tx, UpdateScope::All, key))
                    .expect("prefill transaction must commit");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg(threads: usize) -> WorkloadConfig {
        WorkloadConfig {
            threads,
            key_range: 32,
            duration: Duration::from_millis(40),
            local_work: 0,
            seed: 1,
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn list_workload_produces_commits() {
        let result = run_workload(ManagerKind::Greedy, &StructureKind::List, &tiny_cfg(2));
        assert!(result.commits > 0);
        assert!(result.throughput > 0.0);
        assert_eq!(result.manager, "greedy");
        assert_eq!(result.structure, "list");
        assert_eq!(result.threads, 2);
        assert!(result.abort_ratio >= 0.0 && result.abort_ratio <= 1.0);
    }

    #[test]
    fn every_structure_runs_under_karma() {
        for structure in [
            StructureKind::List,
            StructureKind::SkipList,
            StructureKind::RbTree,
            StructureKind::Forest {
                trees: 5,
                all_probability: 0.2,
            },
        ] {
            let result = run_workload(ManagerKind::Karma, &structure, &tiny_cfg(2));
            assert!(
                result.commits > 0,
                "no commits for {}",
                structure.name()
            );
        }
    }

    #[test]
    fn local_work_lowers_throughput() {
        let no_work = run_workload(
            ManagerKind::Greedy,
            &StructureKind::RbTree,
            &WorkloadConfig {
                local_work: 0,
                ..tiny_cfg(1)
            },
        );
        let heavy_work = run_workload(
            ManagerKind::Greedy,
            &StructureKind::RbTree,
            &WorkloadConfig {
                local_work: 50_000,
                ..tiny_cfg(1)
            },
        );
        assert!(
            heavy_work.throughput < no_work.throughput,
            "local work must slow transactions down ({} vs {})",
            heavy_work.throughput,
            no_work.throughput
        );
    }

    #[test]
    fn per_op_breakdown_covers_the_mix() {
        let cfg = WorkloadConfig {
            mix: OpMix::range_heavy(),
            range_span: 8,
            ..tiny_cfg(2)
        };
        let result = run_workload(ManagerKind::Greedy, &StructureKind::RbTree, &cfg);
        // All four categories appear under the range-heavy mix.
        let labels: Vec<&str> = result.per_op.iter().map(|o| o.op.as_str()).collect();
        assert_eq!(labels, vec!["insert", "remove", "lookup", "range"]);
        let total_ops: u64 = result.per_op.iter().map(|o| o.ops).sum();
        assert_eq!(total_ops, result.commits);
        for op in &result.per_op {
            assert!(op.p50_us > 0.0, "{}: zero p50", op.op);
            assert!(op.p99_us >= op.p50_us, "{}: p99 below p50", op.op);
            assert!(op.mean_us > 0.0);
        }
        // An update-only mix reports exactly the two update categories.
        let update = run_workload(ManagerKind::Greedy, &StructureKind::List, &tiny_cfg(1));
        let labels: Vec<&str> = update.per_op.iter().map(|o| o.op.as_str()).collect();
        assert_eq!(labels, vec!["insert", "remove"]);
        // Single-threaded runs never abort, and the breakdown agrees.
        assert_eq!(update.per_op.iter().map(|o| o.aborts).sum::<u64>(), 0);
    }

    #[test]
    fn op_recorder_percentiles_are_exact_on_known_samples() {
        let mut recorder = OpRecorder::default();
        for micros in 1..=100u64 {
            recorder.record(Duration::from_micros(micros), 1);
        }
        let stats = recorder.finish("lookup").unwrap();
        assert_eq!(stats.ops, 100);
        assert_eq!(stats.aborts, 100);
        assert!((stats.p50_us - 50.0).abs() < 1.01, "p50 {}", stats.p50_us);
        assert!((stats.p99_us - 99.0).abs() < 1.01, "p99 {}", stats.p99_us);
        assert!((stats.mean_us - 50.5).abs() < 0.01);
        assert!(OpRecorder::default().finish("empty").is_none());
    }

    #[test]
    fn fixed_ops_harness_completes() {
        let elapsed = run_fixed_ops(
            ManagerKind::Greedy,
            &StructureKind::SkipList,
            2,
            50,
            &tiny_cfg(2),
        );
        assert!(elapsed > Duration::ZERO);
    }

    #[test]
    fn structure_names_and_sweep_defaults() {
        assert_eq!(StructureKind::List.name(), "list");
        assert_eq!(StructureKind::paper_forest().name(), "rbforest");
        let sweep = SweepConfig::paper_defaults();
        assert_eq!(sweep.thread_counts.last(), Some(&32));
        assert_eq!(sweep.managers.len(), 5);
        assert_eq!(sweep.mixes, vec![OpMix::update_only()]);
        let quick = SweepConfig::quick();
        assert!(quick.thread_counts.len() < sweep.thread_counts.len());
    }

    #[test]
    fn op_mix_pick_respects_the_weights() {
        let update = OpMix::update_only();
        assert_eq!(update.pick(0.0), OpKind::Insert);
        assert_eq!(update.pick(0.49), OpKind::Insert);
        assert_eq!(update.pick(0.51), OpKind::Remove);
        assert_eq!(update.pick(1.0), OpKind::Remove);

        let reads = OpMix::read_mostly();
        assert_eq!(reads.pick(0.02), OpKind::Insert);
        assert_eq!(reads.pick(0.07), OpKind::Remove);
        assert_eq!(reads.pick(0.5), OpKind::Lookup);
        assert_eq!(reads.pick(1.0), OpKind::Lookup);

        let ranges = OpMix::range_heavy();
        assert_eq!(ranges.pick(0.8), OpKind::Range);
        assert_eq!(ranges.pick(1.0), OpKind::Range);

        // Unnormalized weights behave like their normalized counterparts.
        let lopsided = OpMix {
            insert: 2.0,
            remove: 0.0,
            lookup: 6.0,
            range: 0.0,
        };
        assert_eq!(lopsided.pick(0.2), OpKind::Insert);
        assert_eq!(lopsided.pick(0.3), OpKind::Lookup);
    }

    #[test]
    fn op_mix_labels_and_read_fraction() {
        assert_eq!(OpMix::update_only().label(), "update-only");
        assert_eq!(OpMix::read_mostly().label(), "read-mostly-90");
        assert_eq!(OpMix::range_heavy().label(), "range-heavy");
        assert_eq!(OpMix::standard_matrix().len(), 3);
        let half = OpMix::with_read_fraction(0.5);
        assert_eq!(half.label(), "i25-r25-l50-g00");
        assert_eq!(OpMix::with_read_fraction(0.0), OpMix::update_only());
        assert_eq!(OpMix::default(), OpMix::update_only());
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn zero_weight_mix_is_rejected() {
        let mix = OpMix {
            insert: 0.0,
            remove: 0.0,
            lookup: 0.0,
            range: 0.0,
        };
        let _ = mix.pick(0.5);
    }

    #[test]
    fn read_mostly_and_range_mixes_produce_commits_on_every_structure() {
        for mix in [OpMix::read_mostly(), OpMix::range_heavy()] {
            for structure in [
                StructureKind::List,
                StructureKind::SkipList,
                StructureKind::RbTree,
                StructureKind::Forest {
                    trees: 5,
                    all_probability: 0.2,
                },
            ] {
                let cfg = WorkloadConfig {
                    mix,
                    range_span: 8,
                    ..tiny_cfg(2)
                };
                let result = run_workload(ManagerKind::Greedy, &structure, &cfg);
                assert!(
                    result.commits > 0,
                    "no commits for {} under {}",
                    structure.name(),
                    mix.label()
                );
                assert_eq!(result.mix, mix.label());
            }
        }
    }

    #[test]
    fn machine_and_smoke_sweeps_are_well_formed() {
        let machine = SweepConfig::machine();
        assert!(!machine.thread_counts.is_empty());
        assert!(machine
            .thread_counts
            .windows(2)
            .all(|w| w[0] < w[1]));
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        assert_eq!(machine.thread_counts.last(), Some(&(2 * cores)));
        assert_eq!(machine.mixes.len(), 3);
        assert!(machine.managers.len() >= 4);

        let smoke = SweepConfig::smoke();
        assert_eq!(smoke.mixes.len(), 3);
        assert!(smoke.managers.len() >= 4);
        assert!(smoke.base.duration <= Duration::from_millis(50));
    }
}
