//! The benchmark workload driver.
//!
//! Reproduces the experimental setup of Section 5: "a number of threads
//! ranging from 1 to 32 continuously insert and remove elements taken from a
//! small set of 256 integers, hence forcing contention to happen, and an
//! update rate of 100%". Each thread runs transactions back-to-back for a
//! fixed wall-clock interval; the metric is committed transactions per
//! second.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use stm_cm::ManagerKind;
use stm_core::{Stm, TxResult, Txn};
use stm_structures::forest::UpdateScope;
use stm_structures::{TxList, TxRbForest, TxRbTree, TxSet, TxSkipList};

/// Which benchmark structure a workload runs against.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum StructureKind {
    /// Sorted linked list (Figure 1).
    List,
    /// Skiplist (Figure 2).
    SkipList,
    /// Red-black tree (Figure 3).
    RbTree,
    /// Red-black forest (Figure 4).
    Forest {
        /// Number of trees (the paper uses fifty).
        trees: usize,
        /// Probability that an update touches every tree instead of one.
        all_probability: f64,
    },
}

impl StructureKind {
    /// The paper's red-black forest configuration.
    pub fn paper_forest() -> Self {
        StructureKind::Forest {
            trees: 50,
            all_probability: 0.1,
        }
    }

    /// Short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            StructureKind::List => "list",
            StructureKind::SkipList => "skiplist",
            StructureKind::RbTree => "rbtree",
            StructureKind::Forest { .. } => "rbforest",
        }
    }
}

/// Parameters of one workload run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct WorkloadConfig {
    /// Number of worker threads.
    pub threads: usize,
    /// Keys are drawn uniformly from `0..key_range` (the paper uses 256).
    pub key_range: i64,
    /// Wall-clock measurement interval.
    pub duration: Duration,
    /// Iterations of uncontended local work appended to every transaction
    /// (used by the low-contention red-black-tree experiment, Figure 3).
    pub local_work: u64,
    /// Seed for the per-thread operation generators.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            threads: 4,
            key_range: 256,
            duration: Duration::from_millis(200),
            local_work: 0,
            seed: 0x5eed,
        }
    }
}

/// The outcome of a workload run.
#[derive(Debug, Clone, Serialize)]
pub struct WorkloadResult {
    /// Contention manager used.
    pub manager: String,
    /// Structure exercised.
    pub structure: String,
    /// Number of worker threads.
    pub threads: usize,
    /// Committed transactions across all threads.
    pub commits: u64,
    /// Aborted attempts across all threads.
    pub aborts: u64,
    /// Wall-clock time actually spent measuring.
    pub elapsed: Duration,
    /// Committed transactions per second — the metric plotted in the paper's
    /// figures.
    pub throughput: f64,
    /// Fraction of attempts that aborted.
    pub abort_ratio: f64,
}

/// A sweep over thread counts for a set of managers (one paper figure).
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Thread counts to sweep (the paper sweeps 1..=32).
    pub thread_counts: Vec<usize>,
    /// Managers to compare.
    pub managers: Vec<ManagerKind>,
    /// Per-run parameters (the thread count is overridden per point).
    pub base: WorkloadConfig,
}

impl SweepConfig {
    /// The paper's configuration: Eruption, Greedy, Aggressive, Backoff and
    /// Karma swept over 1–32 threads.
    pub fn paper_defaults() -> Self {
        SweepConfig {
            thread_counts: vec![1, 2, 4, 8, 16, 32],
            managers: ManagerKind::FIGURE_SET.to_vec(),
            base: WorkloadConfig::default(),
        }
    }

    /// A reduced configuration for smoke tests and `--quick` runs.
    pub fn quick() -> Self {
        SweepConfig {
            thread_counts: vec![1, 2, 4],
            managers: vec![ManagerKind::Greedy, ManagerKind::Karma, ManagerKind::Aggressive],
            base: WorkloadConfig {
                duration: Duration::from_millis(60),
                ..WorkloadConfig::default()
            },
        }
    }
}

enum Built {
    Set(Arc<dyn TxSet>),
    Forest {
        forest: TxRbForest,
        all_probability: f64,
    },
}

fn build_structure(kind: &StructureKind) -> Built {
    match kind {
        StructureKind::List => Built::Set(Arc::new(TxList::new())),
        StructureKind::SkipList => Built::Set(Arc::new(TxSkipList::new())),
        StructureKind::RbTree => Built::Set(Arc::new(TxRbTree::new())),
        StructureKind::Forest {
            trees,
            all_probability,
        } => Built::Forest {
            forest: TxRbForest::new(*trees),
            all_probability: *all_probability,
        },
    }
}

/// Cheap, optimizer-resistant local computation used to lengthen transactions
/// without touching shared state (Figure 3's uncontended tail).
fn local_work(iterations: u64, seed: u64) -> u64 {
    let mut acc = seed | 1;
    for _ in 0..iterations {
        acc ^= acc << 13;
        acc ^= acc >> 7;
        acc ^= acc << 17;
    }
    acc
}

fn one_op(
    tx: &mut Txn<'_>,
    built: &Built,
    rng_key: i64,
    insert: bool,
    scope_roll: f64,
    work: u64,
    seed: u64,
) -> TxResult<u64> {
    match built {
        Built::Set(set) => {
            if insert {
                set.insert(tx, rng_key)?;
            } else {
                set.remove(tx, rng_key)?;
            }
        }
        Built::Forest {
            forest,
            all_probability,
        } => {
            let scope = if scope_roll < *all_probability {
                UpdateScope::All
            } else {
                let tree = (rng_key.unsigned_abs() as usize) % forest.num_trees();
                UpdateScope::One(tree)
            };
            if insert {
                forest.insert(tx, scope, rng_key)?;
            } else {
                forest.remove(tx, scope, rng_key)?;
            }
        }
    }
    Ok(local_work(work, seed))
}

/// Runs the throughput workload: `cfg.threads` threads continuously insert
/// and remove random keys for `cfg.duration`, under the contention manager
/// `manager`.
pub fn run_workload(
    manager: ManagerKind,
    structure: &StructureKind,
    cfg: &WorkloadConfig,
) -> WorkloadResult {
    assert!(cfg.threads > 0, "need at least one thread");
    assert!(cfg.key_range > 0, "key range must be positive");
    let stm = Arc::new(Stm::builder().manager(manager.factory()).build());
    let built = Arc::new(build_structure(structure));
    prefill(&stm, &built, cfg.key_range);

    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(cfg.threads + 1));
    let started = Instant::now();
    let mut commits_total = 0u64;
    thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..cfg.threads {
            let stm = Arc::clone(&stm);
            let built = Arc::clone(&built);
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            let cfg = *cfg;
            handles.push(scope.spawn(move || {
                let mut ctx = stm.thread();
                let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (t as u64).wrapping_mul(0x9e37));
                let mut commits = 0u64;
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    let key = rng.gen_range(0..cfg.key_range);
                    let insert = rng.gen_bool(0.5);
                    let scope_roll: f64 = rng.gen();
                    let work_seed: u64 = rng.gen();
                    let outcome = ctx.atomically(|tx| {
                        one_op(tx, &built, key, insert, scope_roll, cfg.local_work, work_seed)
                    });
                    if outcome.is_ok() {
                        commits += 1;
                    }
                }
                commits
            }));
        }
        barrier.wait();
        let deadline = Instant::now() + cfg.duration;
        while Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        stop.store(true, Ordering::Relaxed);
        for handle in handles {
            commits_total += handle.join().expect("worker thread panicked");
        }
    });
    let elapsed = started.elapsed();
    let snapshot = stm.stats().snapshot();
    WorkloadResult {
        manager: manager.name().to_string(),
        structure: structure.name().to_string(),
        threads: cfg.threads,
        commits: commits_total,
        aborts: snapshot.aborts,
        elapsed,
        throughput: commits_total as f64 / elapsed.as_secs_f64(),
        abort_ratio: snapshot.abort_ratio(),
    }
}

/// Runs a fixed number of operations per thread instead of a fixed duration;
/// used by the Criterion benches, where the measured quantity is the time to
/// complete the batch.
pub fn run_fixed_ops(
    manager: ManagerKind,
    structure: &StructureKind,
    threads: usize,
    ops_per_thread: u64,
    cfg: &WorkloadConfig,
) -> Duration {
    assert!(threads > 0 && ops_per_thread > 0);
    let stm = Arc::new(Stm::builder().manager(manager.factory()).build());
    let built = Arc::new(build_structure(structure));
    prefill(&stm, &built, cfg.key_range);
    let barrier = Arc::new(Barrier::new(threads + 1));
    let started = Instant::now();
    thread::scope(|scope| {
        for t in 0..threads {
            let stm = Arc::clone(&stm);
            let built = Arc::clone(&built);
            let barrier = Arc::clone(&barrier);
            let cfg = *cfg;
            scope.spawn(move || {
                let mut ctx = stm.thread();
                let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (t as u64).wrapping_mul(0x517c));
                barrier.wait();
                for _ in 0..ops_per_thread {
                    let key = rng.gen_range(0..cfg.key_range);
                    let insert = rng.gen_bool(0.5);
                    let scope_roll: f64 = rng.gen();
                    let work_seed: u64 = rng.gen();
                    let _ = ctx.atomically(|tx| {
                        one_op(tx, &built, key, insert, scope_roll, cfg.local_work, work_seed)
                    });
                }
            });
        }
        barrier.wait();
    });
    started.elapsed()
}

/// Pre-populates the structure with every other key so that inserts and
/// removes both have roughly a 50% chance of modifying the structure.
fn prefill(stm: &Stm, built: &Built, key_range: i64) {
    let mut ctx = stm.thread();
    match built {
        Built::Set(set) => {
            for key in (0..key_range).step_by(2) {
                ctx.atomically(|tx| set.insert(tx, key))
                    .expect("prefill transaction must commit");
            }
        }
        Built::Forest { forest, .. } => {
            for key in (0..key_range).step_by(2) {
                ctx.atomically(|tx| forest.insert(tx, UpdateScope::All, key))
                    .expect("prefill transaction must commit");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg(threads: usize) -> WorkloadConfig {
        WorkloadConfig {
            threads,
            key_range: 32,
            duration: Duration::from_millis(40),
            local_work: 0,
            seed: 1,
        }
    }

    #[test]
    fn list_workload_produces_commits() {
        let result = run_workload(ManagerKind::Greedy, &StructureKind::List, &tiny_cfg(2));
        assert!(result.commits > 0);
        assert!(result.throughput > 0.0);
        assert_eq!(result.manager, "greedy");
        assert_eq!(result.structure, "list");
        assert_eq!(result.threads, 2);
        assert!(result.abort_ratio >= 0.0 && result.abort_ratio <= 1.0);
    }

    #[test]
    fn every_structure_runs_under_karma() {
        for structure in [
            StructureKind::List,
            StructureKind::SkipList,
            StructureKind::RbTree,
            StructureKind::Forest {
                trees: 5,
                all_probability: 0.2,
            },
        ] {
            let result = run_workload(ManagerKind::Karma, &structure, &tiny_cfg(2));
            assert!(
                result.commits > 0,
                "no commits for {}",
                structure.name()
            );
        }
    }

    #[test]
    fn local_work_lowers_throughput() {
        let no_work = run_workload(
            ManagerKind::Greedy,
            &StructureKind::RbTree,
            &WorkloadConfig {
                local_work: 0,
                ..tiny_cfg(1)
            },
        );
        let heavy_work = run_workload(
            ManagerKind::Greedy,
            &StructureKind::RbTree,
            &WorkloadConfig {
                local_work: 50_000,
                ..tiny_cfg(1)
            },
        );
        assert!(
            heavy_work.throughput < no_work.throughput,
            "local work must slow transactions down ({} vs {})",
            heavy_work.throughput,
            no_work.throughput
        );
    }

    #[test]
    fn fixed_ops_harness_completes() {
        let elapsed = run_fixed_ops(
            ManagerKind::Greedy,
            &StructureKind::SkipList,
            2,
            50,
            &tiny_cfg(2),
        );
        assert!(elapsed > Duration::ZERO);
    }

    #[test]
    fn structure_names_and_sweep_defaults() {
        assert_eq!(StructureKind::List.name(), "list");
        assert_eq!(StructureKind::paper_forest().name(), "rbforest");
        let sweep = SweepConfig::paper_defaults();
        assert_eq!(sweep.thread_counts.last(), Some(&32));
        assert_eq!(sweep.managers.len(), 5);
        let quick = SweepConfig::quick();
        assert!(quick.thread_counts.len() < sweep.thread_counts.len());
    }
}
