//! Closed-loop network load generator for the `stm-kv` server.
//!
//! Drives `connections` client connections against a live server, each
//! issuing operations drawn from the same [`OpMix`] distribution the
//! in-process workloads use — `insert`/`remove`/`lookup`/`range` become
//! `PUT`/`DEL`/`GET`/`RANGE` on the wire — plus an optional fraction of
//! `BEGIN`/`EXEC` transfer batches (two `ADD`s moving an amount between two
//! random keys), the multi-key serializable path.
//!
//! The generator is *closed-loop*: every connection waits for each reply
//! before issuing its next request, so throughput measures the full
//! request → transaction → reply round trip and latency percentiles are
//! per-request. Results are emitted as the same [`WorkloadResult`] cells as
//! the in-process sweeps (structure `"stm-kv"`), so over-the-wire and
//! in-process numbers for one manager land in one figure.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use stm_cm::ManagerKind;
use stm_kv::{BatchOp, KvClient, KvServer, ServerConfig};
use stm_log::FsyncPolicy;

use crate::workload::{OpKind, OpMix, OpRecorder, WorkloadResult};

/// Parameters of one network load run.
#[derive(Debug, Clone, Copy)]
pub struct NetLoadConfig {
    /// Concurrent client connections (one thread each). The server must be
    /// running with at least this many workers or connections will queue.
    pub connections: usize,
    /// Keys are drawn uniformly from `0..key_range` (must not exceed the
    /// server's capacity).
    pub key_range: i64,
    /// Wall-clock measurement interval.
    pub duration: Duration,
    /// Seed for the per-connection operation generators.
    pub seed: u64,
    /// Distribution over single-op categories.
    pub mix: OpMix,
    /// Width of the interval scanned by a `RANGE` request.
    pub range_span: i64,
    /// Fraction of iterations that issue a `BEGIN`/`EXEC` transfer batch
    /// instead of a single operation, in `[0, 1]`.
    pub batch_fraction: f64,
}

impl Default for NetLoadConfig {
    fn default() -> Self {
        NetLoadConfig {
            connections: 4,
            key_range: 256,
            duration: Duration::from_millis(200),
            seed: 0x6e65,
            mix: OpMix::update_only(),
            range_span: 32,
            batch_fraction: 0.2,
        }
    }
}

/// Runs the closed-loop load against a live server and returns one
/// [`WorkloadResult`] cell (`structure = "stm-kv"`, `threads` = client
/// connections). `manager` labels the cell — pass the manager the server
/// was started with.
///
/// Commits count client-visible completed operations; aborts and the abort
/// ratio come from the server's `STATS` delta over the run, so they include
/// retries performed on behalf of these requests.
///
/// # Errors
///
/// Propagates connection and protocol errors.
///
/// # Panics
///
/// Panics when a load connection fails mid-run (a dead server mid-benchmark
/// has no meaningful partial result).
pub fn run_netload(
    addr: SocketAddr,
    manager: &str,
    cfg: &NetLoadConfig,
) -> std::io::Result<WorkloadResult> {
    assert!(cfg.connections > 0, "need at least one connection");
    assert!(cfg.key_range > 0, "key range must be positive");
    assert!(
        (0.0..=1.0).contains(&cfg.batch_fraction),
        "batch fraction must be in 0..=1"
    );

    // Prefill every other key (mirrors the in-process harness) and snapshot
    // the server counters before the measured interval.
    let mut setup = KvClient::connect(addr)?;
    for key in (0..cfg.key_range).step_by(2) {
        setup.put(key, key)?;
    }
    let before = setup.stats()?;

    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(cfg.connections + 1));
    // Overwritten at the start barrier so spawn/connect time stays out of
    // the throughput denominator.
    let mut started = Instant::now();
    let mut commits_total = 0u64;
    // insert/remove/lookup/range single ops + the batch category.
    let mut recorders: [OpRecorder; 5] = Default::default();
    thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..cfg.connections {
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            let cfg = *cfg;
            handles.push(scope.spawn(move || {
                let mut client =
                    KvClient::connect(addr).expect("load connection must connect");
                let mut rng =
                    SmallRng::seed_from_u64(cfg.seed ^ (c as u64).wrapping_mul(0x9e37));
                let mut commits = 0u64;
                let mut local: [OpRecorder; 5] = Default::default();
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    let key = rng.gen_range(0..cfg.key_range);
                    let issued = Instant::now();
                    let slot = if rng.gen::<f64>() < cfg.batch_fraction {
                        let to = rng.gen_range(0..cfg.key_range);
                        let amount = rng.gen_range(1..16i64);
                        client
                            .batch(&[BatchOp::Add(key, -amount), BatchOp::Add(to, amount)])
                            .expect("transfer batch must execute");
                        4
                    } else {
                        let op = cfg.mix.pick(rng.gen());
                        match op {
                            OpKind::Insert => {
                                client.put(key, key).expect("PUT must execute");
                            }
                            OpKind::Remove => {
                                client.del(key).expect("DEL must execute");
                            }
                            OpKind::Lookup => {
                                client.get(key).expect("GET must execute");
                            }
                            OpKind::Range => {
                                client
                                    .range(key, key + cfg.range_span)
                                    .expect("RANGE must execute");
                            }
                        }
                        op.index()
                    };
                    local[slot].record(issued.elapsed(), 0);
                    commits += 1;
                }
                let _ = client.quit();
                (commits, local)
            }));
        }
        barrier.wait();
        started = Instant::now();
        let deadline = started + cfg.duration;
        while Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        stop.store(true, Ordering::Relaxed);
        for handle in handles {
            let (commits, local) = handle.join().expect("load connection panicked");
            commits_total += commits;
            for (merged, thread_local) in recorders.iter_mut().zip(local) {
                merged.merge(thread_local);
            }
        }
    });
    let elapsed = started.elapsed();
    let after = setup.stats()?;
    setup.quit()?;

    let aborts = after.aborts.saturating_sub(before.aborts);
    let server_commits = after.commits.saturating_sub(before.commits);
    let finished = server_commits + aborts;
    let wire_labels = ["put", "del", "get", "range", "batch"];
    let per_op = wire_labels
        .into_iter()
        .zip(recorders)
        .filter_map(|(label, recorder)| recorder.finish(label))
        .collect();
    Ok(WorkloadResult {
        manager: manager.to_string(),
        structure: "stm-kv".to_string(),
        mix: cfg.mix.label(),
        threads: cfg.connections,
        commits: commits_total,
        aborts,
        elapsed,
        throughput: commits_total as f64 / elapsed.as_secs_f64(),
        abort_ratio: if finished == 0 {
            0.0
        } else {
            aborts as f64 / finished as f64
        },
        per_op,
    })
}

/// The fsync policies the durability experiment (E11) compares: synchronous
/// durability, a 64-commit loss window, and a 5 ms loss window — plus the
/// volatile baseline (`None`).
pub fn default_durability_policies() -> Vec<Option<FsyncPolicy>> {
    vec![
        None,
        Some(FsyncPolicy::EveryCommit),
        Some(FsyncPolicy::EveryN(64)),
        Some(FsyncPolicy::EveryMs(5)),
    ]
}

/// Runs the durability netload matrix (E11): one live server per
/// (fsync policy × manager) cell — each durable server on a fresh temporary
/// WAL directory — driven by the closed-loop client. Fsync batching sits in
/// the commit path, so it stretches transaction hold times and therefore
/// conflict windows; comparing managers across policies shows how each one
/// absorbs that shift. Cells carry the policy in the structure label
/// (`stm-kv` for volatile, `stm-kv+wal[every]` etc. for durable), so the
/// JSON groups naturally next to the E10 cells.
///
/// Servers that fail to start (or runs that fail mid-load) are skipped with
/// a note on stderr; the returned cells cover everything that ran.
pub fn durability_matrix(
    policies: &[Option<FsyncPolicy>],
    managers: &[ManagerKind],
    cfg: &NetLoadConfig,
) -> Vec<WorkloadResult> {
    let mut cells = Vec::new();
    for policy in policies {
        for manager in managers {
            let wal_dir = policy.map(|p| temp_wal_dir(*manager, p));
            let mut server = match KvServer::start(ServerConfig {
                manager: *manager,
                capacity: cfg.key_range,
                shards: 8,
                workers: cfg.connections + 1,
                wal_dir: wal_dir.clone(),
                fsync: policy.unwrap_or(FsyncPolicy::EveryCommit),
                ..ServerConfig::default()
            }) {
                Ok(server) => server,
                Err(err) => {
                    eprintln!("E11: cannot start server for {manager}/{policy:?}: {err}");
                    continue;
                }
            };
            match run_netload(server.addr(), manager.name(), cfg) {
                Ok(mut cell) => {
                    cell.structure = match policy {
                        None => "stm-kv".to_string(),
                        Some(p) => format!("stm-kv+wal[{}]", p.label()),
                    };
                    cells.push(cell);
                }
                Err(err) => eprintln!("E11: netload against {manager}/{policy:?} failed: {err}"),
            }
            server.shutdown();
            if let Some(dir) = wal_dir {
                let _ = std::fs::remove_dir_all(dir);
            }
        }
    }
    cells
}

fn temp_wal_dir(manager: ManagerKind, policy: FsyncPolicy) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "stm-bench-e11-{}-{}-{}",
        manager.name(),
        policy.label().replace('=', "-"),
        std::process::id(),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netload_produces_a_cell_against_a_live_server() {
        let server = KvServer::start(ServerConfig {
            manager: ManagerKind::Greedy,
            capacity: 64,
            shards: 4,
            workers: 3,
            ..ServerConfig::default()
        })
        .unwrap();
        let cfg = NetLoadConfig {
            connections: 2,
            key_range: 64,
            duration: Duration::from_millis(60),
            mix: OpMix::read_mostly(),
            range_span: 8,
            batch_fraction: 0.3,
            ..NetLoadConfig::default()
        };
        let cell = run_netload(server.addr(), "greedy", &cfg).unwrap();
        assert_eq!(cell.structure, "stm-kv");
        assert_eq!(cell.manager, "greedy");
        assert_eq!(cell.threads, 2);
        assert!(cell.commits > 0);
        assert!(cell.throughput > 0.0);
        assert!(!cell.per_op.is_empty());
        assert!(
            cell.per_op.iter().any(|o| o.op == "batch"),
            "30% batches must register: {:?}",
            cell.per_op
        );
        for op in &cell.per_op {
            assert!(op.p99_us >= op.p50_us);
        }
        // The cells serialize with the same shape as in-process cells.
        let json = crate::report::render_rows(&vec![cell]);
        assert!(json.contains("\"structure\": \"stm-kv\""));
        assert!(json.contains("\"per_op\""));
    }

    #[test]
    fn durability_matrix_covers_policies_and_labels_cells() {
        let cfg = NetLoadConfig {
            connections: 2,
            key_range: 64,
            duration: Duration::from_millis(40),
            mix: OpMix::update_only(),
            batch_fraction: 0.3,
            ..NetLoadConfig::default()
        };
        let policies = [None, Some(FsyncPolicy::EveryN(16))];
        let cells = durability_matrix(&policies, &[ManagerKind::Greedy], &cfg);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].structure, "stm-kv");
        assert_eq!(cells[1].structure, "stm-kv+wal[n=16]");
        for cell in &cells {
            assert_eq!(cell.manager, "greedy");
            assert!(cell.commits > 0, "empty E11 cell: {cell:?}");
            assert!(cell.throughput > 0.0);
        }
        assert_eq!(default_durability_policies().len(), 4);
    }
}
