//! Closed-loop network load generator for the `stm-kv` server.
//!
//! Drives `connections` client connections against a live server — over
//! protocol v2 (typed values, binary-safe frames), which [`KvClient`]
//! negotiates by default — each issuing operations drawn from the same
//! [`OpMix`] distribution the in-process workloads use:
//! `insert`/`remove`/`lookup`/`range` become `PUT`/`DEL`/`GET`/`RANGE` on
//! the wire — plus an optional fraction of `BEGIN`/`EXEC` transfer batches
//! (two `ADD`s moving an amount between two random keys), the multi-key
//! serializable path, and an optional fraction of **string-value** `PUT`s
//! ([`NetLoadConfig::string_fraction`], the E13 workload): variable-length
//! `Str` payloads written to the negative-key half of the keyspace, so the
//! integer transfer/audit range stays arithmetically typed while the server
//! handles mixed-type traffic.
//!
//! The generator is *closed-loop*: every connection waits for each reply
//! before issuing its next request, so throughput measures the full
//! request → transaction → reply round trip and latency percentiles are
//! per-request. Results are emitted as the same [`WorkloadResult`] cells as
//! the in-process sweeps (structure `"stm-kv"`), so over-the-wire and
//! in-process numbers for one manager land in one figure.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use stm_cm::ManagerKind;
use stm_kv::{BatchOp, KvClient, KvError, KvServer, ServerConfig};
use stm_log::FsyncPolicy;

use crate::workload::{OpKind, OpMix, OpRecorder, WorkloadResult};

/// Parameters of one network load run.
#[derive(Debug, Clone, Copy)]
pub struct NetLoadConfig {
    /// Concurrent client connections (one thread each). The server must be
    /// running with at least this many workers or connections will queue.
    pub connections: usize,
    /// Integer keys are drawn uniformly from `0..key_range`; string values
    /// live on the mirrored negative keys `-key_range..0`.
    pub key_range: i64,
    /// Wall-clock measurement interval.
    pub duration: Duration,
    /// Seed for the per-connection operation generators.
    pub seed: u64,
    /// Distribution over single-op categories.
    pub mix: OpMix,
    /// Width of the interval scanned by a `RANGE` request.
    pub range_span: i64,
    /// Fraction of iterations that issue a `BEGIN`/`EXEC` transfer batch
    /// instead of a single operation, in `[0, 1]`.
    pub batch_fraction: f64,
    /// Fraction of `insert` draws that `PUT` a variable-length string value
    /// (to a negative key) instead of an integer, in `[0, 1]` — the
    /// string-value workload of E13. `0.0` reproduces the int-only load.
    pub string_fraction: f64,
}

impl Default for NetLoadConfig {
    fn default() -> Self {
        NetLoadConfig {
            connections: 4,
            key_range: 256,
            duration: Duration::from_millis(200),
            seed: 0x6e65,
            mix: OpMix::update_only(),
            range_span: 32,
            batch_fraction: 0.2,
            string_fraction: 0.0,
        }
    }
}

/// Labels of the per-op latency recorders a netload cell carries: the four
/// single-op categories, the batch path, and string-value `PUT`s.
const WIRE_LABELS: [&str; 6] = ["put", "del", "get", "range", "batch", "put_str"];

/// Index of the batch recorder in [`WIRE_LABELS`].
const SLOT_BATCH: usize = 4;
/// Index of the string-PUT recorder in [`WIRE_LABELS`].
const SLOT_PUT_STR: usize = 5;

/// Runs the closed-loop load against a live server and returns one
/// [`WorkloadResult`] cell (`structure = "stm-kv"`, `threads` = client
/// connections). `manager` labels the cell — pass the manager the server
/// was started with.
///
/// Commits count client-visible completed operations; aborts and the abort
/// ratio come from the server's `STATS` delta over the run, so they include
/// retries performed on behalf of these requests.
///
/// # Errors
///
/// Propagates connection and protocol errors.
///
/// # Panics
///
/// Panics when a load connection fails mid-run (a dead server mid-benchmark
/// has no meaningful partial result).
pub fn run_netload(
    addr: SocketAddr,
    manager: &str,
    cfg: &NetLoadConfig,
) -> Result<WorkloadResult, KvError> {
    assert!(cfg.connections > 0, "need at least one connection");
    assert!(cfg.key_range > 0, "key range must be positive");
    assert!(
        (0.0..=1.0).contains(&cfg.batch_fraction),
        "batch fraction must be in 0..=1"
    );
    assert!(
        (0.0..=1.0).contains(&cfg.string_fraction),
        "string fraction must be in 0..=1"
    );

    // Prefill every other key (mirrors the in-process harness) and snapshot
    // the server counters before the measured interval.
    let mut setup = KvClient::connect(addr)?;
    for key in (0..cfg.key_range).step_by(2) {
        setup.put(key, key)?;
    }
    let before = setup.stats()?;

    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(cfg.connections + 1));
    // Overwritten at the start barrier so spawn/connect time stays out of
    // the throughput denominator.
    let mut started = Instant::now();
    let mut commits_total = 0u64;
    let mut recorders: [OpRecorder; WIRE_LABELS.len()] = Default::default();
    thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..cfg.connections {
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            let cfg = *cfg;
            handles.push(scope.spawn(move || {
                let mut client =
                    KvClient::connect(addr).expect("load connection must connect");
                let mut rng =
                    SmallRng::seed_from_u64(cfg.seed ^ (c as u64).wrapping_mul(0x9e37));
                let mut commits = 0u64;
                let mut local: [OpRecorder; WIRE_LABELS.len()] = Default::default();
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    let key = rng.gen_range(0..cfg.key_range);
                    let issued = Instant::now();
                    let slot = if rng.gen::<f64>() < cfg.batch_fraction {
                        let to = rng.gen_range(0..cfg.key_range);
                        let amount = rng.gen_range(1..16i64);
                        client
                            .batch(&[BatchOp::Add(key, -amount), BatchOp::Add(to, amount)])
                            .expect("transfer batch must execute");
                        SLOT_BATCH
                    } else {
                        let op = cfg.mix.pick(rng.gen());
                        match op {
                            OpKind::Insert if rng.gen::<f64>() < cfg.string_fraction => {
                                // Variable-length string payloads on the
                                // mirrored negative key, so the integer
                                // audit range stays arithmetically typed.
                                let len = rng.gen_range(0..96usize);
                                let mut payload = String::with_capacity(len + 8);
                                payload.push_str("v=");
                                for _ in 0..len {
                                    payload.push(char::from(rng.gen_range(b' '..=b'~')));
                                }
                                client
                                    .put(-(key + 1), payload)
                                    .expect("string PUT must execute");
                                SLOT_PUT_STR
                            }
                            OpKind::Insert => {
                                client.put(key, key).expect("PUT must execute");
                                OpKind::Insert.index()
                            }
                            OpKind::Remove => {
                                client.del(key).expect("DEL must execute");
                                OpKind::Remove.index()
                            }
                            OpKind::Lookup => {
                                client.get(key).expect("GET must execute");
                                OpKind::Lookup.index()
                            }
                            OpKind::Range => {
                                client
                                    .range(key, key + cfg.range_span)
                                    .expect("RANGE must execute");
                                OpKind::Range.index()
                            }
                        }
                    };
                    local[slot].record(issued.elapsed(), 0);
                    commits += 1;
                }
                let _ = client.quit();
                (commits, local)
            }));
        }
        barrier.wait();
        started = Instant::now();
        let deadline = started + cfg.duration;
        while Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        stop.store(true, Ordering::Relaxed);
        for handle in handles {
            let (commits, local) = handle.join().expect("load connection panicked");
            commits_total += commits;
            for (merged, thread_local) in recorders.iter_mut().zip(local) {
                merged.merge(thread_local);
            }
        }
    });
    let elapsed = started.elapsed();
    let after = setup.stats()?;
    setup.quit()?;

    let aborts = after.aborts.saturating_sub(before.aborts);
    let server_commits = after.commits.saturating_sub(before.commits);
    let finished = server_commits + aborts;
    let per_op = WIRE_LABELS
        .into_iter()
        .zip(recorders)
        .filter_map(|(label, recorder)| recorder.finish(label))
        .collect();
    Ok(WorkloadResult {
        manager: manager.to_string(),
        structure: "stm-kv".to_string(),
        mix: cfg.mix.label(),
        threads: cfg.connections,
        commits: commits_total,
        aborts,
        elapsed,
        throughput: commits_total as f64 / elapsed.as_secs_f64(),
        abort_ratio: if finished == 0 {
            0.0
        } else {
            aborts as f64 / finished as f64
        },
        per_op,
    })
}

/// The fsync policies the durability experiment (E11) compares: synchronous
/// durability, a 64-commit loss window, and a 5 ms loss window — plus the
/// volatile baseline (`None`).
pub fn default_durability_policies() -> Vec<Option<FsyncPolicy>> {
    vec![
        None,
        Some(FsyncPolicy::EveryCommit),
        Some(FsyncPolicy::EveryN(64)),
        Some(FsyncPolicy::EveryMs(5)),
    ]
}

/// Runs the durability netload matrix (E11): one live server per
/// (fsync policy × manager) cell — each durable server on a fresh temporary
/// WAL directory — driven by the closed-loop client. Fsync batching sits in
/// the commit path, so it stretches transaction hold times and therefore
/// conflict windows; comparing managers across policies shows how each one
/// absorbs that shift. Cells carry the policy in the structure label
/// (`stm-kv` for volatile, `stm-kv+wal[every]` etc. for durable), so the
/// JSON groups naturally next to the E10 cells.
///
/// Servers that fail to start (or runs that fail mid-load) are skipped with
/// a note on stderr; the returned cells cover everything that ran.
pub fn durability_matrix(
    policies: &[Option<FsyncPolicy>],
    managers: &[ManagerKind],
    cfg: &NetLoadConfig,
) -> Vec<WorkloadResult> {
    let mut cells = Vec::new();
    for policy in policies {
        for manager in managers {
            let wal_dir = policy.map(|p| temp_wal_dir("e11", *manager, &p.label()));
            let mut server = match KvServer::start(ServerConfig {
                manager: *manager,
                capacity: cfg.key_range,
                shards: 8,
                workers: cfg.connections + 1,
                wal_dir: wal_dir.clone(),
                fsync: policy.unwrap_or(FsyncPolicy::EveryCommit),
                ..ServerConfig::default()
            }) {
                Ok(server) => server,
                Err(err) => {
                    eprintln!("E11: cannot start server for {manager}/{policy:?}: {err}");
                    continue;
                }
            };
            match run_netload(server.addr(), manager.name(), cfg) {
                Ok(mut cell) => {
                    cell.structure = match policy {
                        None => "stm-kv".to_string(),
                        Some(p) => format!("stm-kv+wal[{}]", p.label()),
                    };
                    cells.push(cell);
                }
                Err(err) => eprintln!("E11: netload against {manager}/{policy:?} failed: {err}"),
            }
            server.shutdown();
            if let Some(dir) = wal_dir {
                let _ = std::fs::remove_dir_all(dir);
            }
        }
    }
    cells
}

/// Runs the string-value netload comparison (E13): per manager, an int-only
/// baseline cell versus a 50%-string `PUT` mix — both against a **durable**
/// WAL-backed server (fresh temp directory per cell), so the typed-value
/// path is exercised end to end: v2 frames → typed store cells → v2 log
/// records. Cells are labelled `stm-kv+wal[<policy>]` (baseline) and
/// `stm-kv+str+wal[<policy>]` (string mix).
///
/// Servers that fail to start (or runs that fail mid-load) are skipped with
/// a note on stderr; the returned cells cover everything that ran.
pub fn string_value_matrix(
    managers: &[ManagerKind],
    fsync: FsyncPolicy,
    cfg: &NetLoadConfig,
) -> Vec<WorkloadResult> {
    let mut cells = Vec::new();
    for manager in managers {
        for string_fraction in [0.0, 0.5] {
            let tag = if string_fraction > 0.0 { "e13-str" } else { "e13-int" };
            let wal_dir = temp_wal_dir(tag, *manager, &fsync.label());
            let mut server = match KvServer::start(ServerConfig {
                manager: *manager,
                capacity: cfg.key_range,
                shards: 8,
                workers: cfg.connections + 1,
                wal_dir: Some(wal_dir.clone()),
                fsync,
                ..ServerConfig::default()
            }) {
                Ok(server) => server,
                Err(err) => {
                    eprintln!("E13: cannot start server for {manager}: {err}");
                    continue;
                }
            };
            let cell_cfg = NetLoadConfig {
                string_fraction,
                ..*cfg
            };
            match run_netload(server.addr(), manager.name(), &cell_cfg) {
                Ok(mut cell) => {
                    cell.structure = if string_fraction > 0.0 {
                        format!("stm-kv+str+wal[{}]", fsync.label())
                    } else {
                        format!("stm-kv+wal[{}]", fsync.label())
                    };
                    cells.push(cell);
                }
                Err(err) => eprintln!("E13: netload against {manager} failed: {err}"),
            }
            server.shutdown();
            let _ = std::fs::remove_dir_all(wal_dir);
        }
    }
    cells
}

fn temp_wal_dir(tag: &str, manager: ManagerKind, policy: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "stm-bench-{tag}-{}-{}-{}",
        manager.name(),
        policy.replace('=', "-"),
        std::process::id(),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netload_produces_a_cell_against_a_live_server() {
        let server = KvServer::start(ServerConfig {
            manager: ManagerKind::Greedy,
            capacity: 64,
            shards: 4,
            workers: 3,
            ..ServerConfig::default()
        })
        .unwrap();
        let cfg = NetLoadConfig {
            connections: 2,
            key_range: 64,
            duration: Duration::from_millis(60),
            mix: OpMix::read_mostly(),
            range_span: 8,
            batch_fraction: 0.3,
            ..NetLoadConfig::default()
        };
        let cell = run_netload(server.addr(), "greedy", &cfg).unwrap();
        assert_eq!(cell.structure, "stm-kv");
        assert_eq!(cell.manager, "greedy");
        assert_eq!(cell.threads, 2);
        assert!(cell.commits > 0);
        assert!(cell.throughput > 0.0);
        assert!(!cell.per_op.is_empty());
        assert!(
            cell.per_op.iter().any(|o| o.op == "batch"),
            "30% batches must register: {:?}",
            cell.per_op
        );
        for op in &cell.per_op {
            assert!(op.p99_us >= op.p50_us);
        }
        // The cells serialize with the same shape as in-process cells.
        let json = crate::report::render_rows(&vec![cell]);
        assert!(json.contains("\"structure\": \"stm-kv\""));
        assert!(json.contains("\"per_op\""));
    }

    #[test]
    fn string_mix_registers_typed_puts_and_conserves_the_int_range() {
        let server = KvServer::start(ServerConfig {
            manager: ManagerKind::Greedy,
            capacity: 64,
            shards: 4,
            workers: 3,
            ..ServerConfig::default()
        })
        .unwrap();
        let cfg = NetLoadConfig {
            connections: 2,
            key_range: 64,
            duration: Duration::from_millis(60),
            mix: OpMix::update_only(),
            batch_fraction: 0.2,
            string_fraction: 0.6,
            ..NetLoadConfig::default()
        };
        let cell = run_netload(server.addr(), "greedy", &cfg).unwrap();
        assert!(cell.commits > 0);
        assert!(
            cell.per_op.iter().any(|o| o.op == "put_str"),
            "60% string PUTs must register: {:?}",
            cell.per_op
        );
        // The transfers stayed on the integer half: the audit still sums.
        let mut audit = KvClient::connect(server.addr()).unwrap();
        let (_total, count) = audit.sum(0, 63).unwrap();
        assert!(count > 0, "int range must still hold typed-int keys");
        // And the negative half holds strings.
        let strings = audit.range(-64, -1).unwrap();
        assert!(
            strings.iter().any(|(_, v)| v.as_str().is_some()),
            "string keys must exist on the negative half: {strings:?}"
        );
        audit.quit().unwrap();
    }

    #[test]
    fn durability_matrix_covers_policies_and_labels_cells() {
        let cfg = NetLoadConfig {
            connections: 2,
            key_range: 64,
            duration: Duration::from_millis(40),
            mix: OpMix::update_only(),
            batch_fraction: 0.3,
            ..NetLoadConfig::default()
        };
        let policies = [None, Some(FsyncPolicy::EveryN(16))];
        let cells = durability_matrix(&policies, &[ManagerKind::Greedy], &cfg);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].structure, "stm-kv");
        assert_eq!(cells[1].structure, "stm-kv+wal[n=16]");
        for cell in &cells {
            assert_eq!(cell.manager, "greedy");
            assert!(cell.commits > 0, "empty E11 cell: {cell:?}");
            assert!(cell.throughput > 0.0);
        }
        assert_eq!(default_durability_policies().len(), 4);
    }

    #[test]
    fn string_value_matrix_emits_baseline_and_string_cells() {
        let cfg = NetLoadConfig {
            connections: 2,
            key_range: 64,
            duration: Duration::from_millis(40),
            mix: OpMix::update_only(),
            batch_fraction: 0.2,
            ..NetLoadConfig::default()
        };
        let cells = string_value_matrix(&[ManagerKind::Greedy], FsyncPolicy::EveryN(16), &cfg);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].structure, "stm-kv+wal[n=16]");
        assert_eq!(cells[1].structure, "stm-kv+str+wal[n=16]");
        for cell in &cells {
            assert!(cell.commits > 0, "empty E13 cell: {cell:?}");
        }
    }
}
