//! Closed-loop network load generator for the `stm-kv` server.
//!
//! Drives `connections` client connections against a live server — over
//! protocol v2 (typed values, binary-safe frames), which [`KvClient`]
//! negotiates by default — each issuing operations drawn from the same
//! [`OpMix`] distribution the in-process workloads use:
//! `insert`/`remove`/`lookup`/`range` become `PUT`/`DEL`/`GET`/`RANGE` on
//! the wire — plus an optional fraction of `BEGIN`/`EXEC` transfer batches
//! (two `ADD`s moving an amount between two random keys), the multi-key
//! serializable path, and an optional fraction of **string-value** `PUT`s
//! ([`NetLoadConfig::string_fraction`], the E13 workload): variable-length
//! `Str` payloads written to the negative-key half of the keyspace, so the
//! integer transfer/audit range stays arithmetically typed while the server
//! handles mixed-type traffic.
//!
//! The generator is *closed-loop*: every connection waits for each reply
//! before issuing its next request, so throughput measures the full
//! request → transaction → reply round trip and latency percentiles are
//! per-request. Results are emitted as the same [`WorkloadResult`] cells as
//! the in-process sweeps (structure `"stm-kv"`), so over-the-wire and
//! in-process numbers for one manager land in one figure.
//!
//! [`run_open_loop`] is the complementary **open-loop** driver (E16):
//! requests arrive on Poisson schedules at a configured offered load with
//! zipfian keys, latency is *sojourn* time from the scheduled arrival, and
//! optional idle-connection fleets and connection-churn schedules exercise
//! the serving layer itself — the workload that separates the event-driven
//! server from the thread-per-connection pool under overload.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

use rand::distributions::Zipf;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use stm_cm::ManagerKind;
use stm_kv::{BatchOp, KvClient, KvError, KvServer, ServerConfig};
use stm_log::FsyncPolicy;

use crate::workload::{OpKind, OpMix, OpRecorder, WorkloadResult};

/// Parameters of one network load run.
#[derive(Debug, Clone, Copy)]
pub struct NetLoadConfig {
    /// Concurrent client connections (one thread each). The server must be
    /// running with at least this many workers or connections will queue.
    pub connections: usize,
    /// Integer keys are drawn uniformly from `0..key_range`; string values
    /// live on the mirrored negative keys `-key_range..0`.
    pub key_range: i64,
    /// Wall-clock measurement interval.
    pub duration: Duration,
    /// Seed for the per-connection operation generators.
    pub seed: u64,
    /// Distribution over single-op categories.
    pub mix: OpMix,
    /// Width of the interval scanned by a `RANGE` request.
    pub range_span: i64,
    /// Fraction of iterations that issue a `BEGIN`/`EXEC` transfer batch
    /// instead of a single operation, in `[0, 1]`.
    pub batch_fraction: f64,
    /// Fraction of `insert` draws that `PUT` a variable-length string value
    /// (to a negative key) instead of an integer, in `[0, 1]` — the
    /// string-value workload of E13. `0.0` reproduces the int-only load.
    pub string_fraction: f64,
}

impl Default for NetLoadConfig {
    fn default() -> Self {
        NetLoadConfig {
            connections: 4,
            key_range: 256,
            duration: Duration::from_millis(200),
            seed: 0x6e65,
            mix: OpMix::update_only(),
            range_span: 32,
            batch_fraction: 0.2,
            string_fraction: 0.0,
        }
    }
}

/// Labels of the per-op latency recorders a netload cell carries: the four
/// single-op categories, the batch path, and string-value `PUT`s.
const WIRE_LABELS: [&str; 6] = ["put", "del", "get", "range", "batch", "put_str"];

/// Index of the batch recorder in [`WIRE_LABELS`].
const SLOT_BATCH: usize = 4;
/// Index of the string-PUT recorder in [`WIRE_LABELS`].
const SLOT_PUT_STR: usize = 5;

/// Runs the closed-loop load against a live server and returns one
/// [`WorkloadResult`] cell (`structure = "stm-kv"`, `threads` = client
/// connections). `manager` labels the cell — pass the manager the server
/// was started with.
///
/// Commits count client-visible completed operations; aborts and the abort
/// ratio come from the server's `STATS` delta over the run, so they include
/// retries performed on behalf of these requests.
///
/// # Errors
///
/// Propagates connection and protocol errors.
///
/// # Panics
///
/// Panics when a load connection fails mid-run (a dead server mid-benchmark
/// has no meaningful partial result).
pub fn run_netload(
    addr: SocketAddr,
    manager: &str,
    cfg: &NetLoadConfig,
) -> Result<WorkloadResult, KvError> {
    assert!(cfg.connections > 0, "need at least one connection");
    assert!(cfg.key_range > 0, "key range must be positive");
    assert!(
        (0.0..=1.0).contains(&cfg.batch_fraction),
        "batch fraction must be in 0..=1"
    );
    assert!(
        (0.0..=1.0).contains(&cfg.string_fraction),
        "string fraction must be in 0..=1"
    );

    // Prefill every other key (mirrors the in-process harness) and snapshot
    // the server counters before the measured interval.
    let mut setup = KvClient::connect(addr)?;
    for key in (0..cfg.key_range).step_by(2) {
        setup.put(key, key)?;
    }
    let before = setup.stats()?;

    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(cfg.connections + 1));
    // Overwritten at the start barrier so spawn/connect time stays out of
    // the throughput denominator.
    let mut started = Instant::now();
    let mut commits_total = 0u64;
    let mut recorders: [OpRecorder; WIRE_LABELS.len()] = Default::default();
    thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..cfg.connections {
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            let cfg = *cfg;
            handles.push(scope.spawn(move || {
                let mut client =
                    KvClient::connect(addr).expect("load connection must connect");
                let mut rng =
                    SmallRng::seed_from_u64(cfg.seed ^ (c as u64).wrapping_mul(0x9e37));
                let mut commits = 0u64;
                let mut local: [OpRecorder; WIRE_LABELS.len()] = Default::default();
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    let key = rng.gen_range(0..cfg.key_range);
                    let issued = Instant::now();
                    let slot = if rng.gen::<f64>() < cfg.batch_fraction {
                        let to = rng.gen_range(0..cfg.key_range);
                        let amount = rng.gen_range(1..16i64);
                        client
                            .batch(&[BatchOp::Add(key, -amount), BatchOp::Add(to, amount)])
                            .expect("transfer batch must execute");
                        SLOT_BATCH
                    } else {
                        let op = cfg.mix.pick(rng.gen());
                        match op {
                            OpKind::Insert if rng.gen::<f64>() < cfg.string_fraction => {
                                // Variable-length string payloads on the
                                // mirrored negative key, so the integer
                                // audit range stays arithmetically typed.
                                let len = rng.gen_range(0..96usize);
                                let mut payload = String::with_capacity(len + 8);
                                payload.push_str("v=");
                                for _ in 0..len {
                                    payload.push(char::from(rng.gen_range(b' '..=b'~')));
                                }
                                client
                                    .put(-(key + 1), payload)
                                    .expect("string PUT must execute");
                                SLOT_PUT_STR
                            }
                            OpKind::Insert => {
                                client.put(key, key).expect("PUT must execute");
                                OpKind::Insert.index()
                            }
                            OpKind::Remove => {
                                client.del(key).expect("DEL must execute");
                                OpKind::Remove.index()
                            }
                            OpKind::Lookup => {
                                client.get(key).expect("GET must execute");
                                OpKind::Lookup.index()
                            }
                            OpKind::Range => {
                                client
                                    .range(key, key + cfg.range_span)
                                    .expect("RANGE must execute");
                                OpKind::Range.index()
                            }
                        }
                    };
                    local[slot].record(issued.elapsed(), 0);
                    commits += 1;
                }
                let _ = client.quit();
                (commits, local)
            }));
        }
        barrier.wait();
        started = Instant::now();
        let deadline = started + cfg.duration;
        while Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        stop.store(true, Ordering::Relaxed);
        for handle in handles {
            let (commits, local) = handle.join().expect("load connection panicked");
            commits_total += commits;
            for (merged, thread_local) in recorders.iter_mut().zip(local) {
                merged.merge(thread_local);
            }
        }
    });
    let elapsed = started.elapsed();
    let after = setup.stats()?;
    setup.quit()?;

    let aborts = after.aborts.saturating_sub(before.aborts);
    let server_commits = after.commits.saturating_sub(before.commits);
    let finished = server_commits + aborts;
    let per_op = WIRE_LABELS
        .into_iter()
        .zip(recorders)
        .filter_map(|(label, recorder)| recorder.finish(label))
        .collect();
    Ok(WorkloadResult {
        manager: manager.to_string(),
        structure: "stm-kv".to_string(),
        mix: cfg.mix.label(),
        threads: cfg.connections,
        commits: commits_total,
        aborts,
        elapsed,
        throughput: commits_total as f64 / elapsed.as_secs_f64(),
        abort_ratio: if finished == 0 {
            0.0
        } else {
            aborts as f64 / finished as f64
        },
        per_op,
    })
}

/// Parameters of one **open-loop** run (E16): requests arrive on a Poisson
/// schedule at a configured offered load, independent of how fast the
/// server answers — so when the server saturates, lateness accumulates and
/// sojourn time (completion minus *scheduled* arrival) explodes instead of
/// the arrival rate silently adapting, which is exactly the overload
/// behaviour a closed-loop driver cannot show.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopConfig {
    /// Target offered load in requests/second, split evenly across the
    /// pool. Goodput below this number means the server cannot keep up.
    pub offered_load: f64,
    /// Fixed pool of generator connections. Each worker owns one
    /// connection and its own Poisson arrival schedule; a request whose
    /// scheduled arrival passed while the connection was busy is issued
    /// immediately and its wait is charged to sojourn time.
    pub pool: usize,
    /// Keys are drawn from `0..key_range`, Zipf-distributed by rank.
    pub key_range: i64,
    /// Zipfian skew over the keyspace (`0.0` = uniform, YCSB uses `0.99`).
    pub zipf_exponent: f64,
    /// Fraction of requests that `PUT` (the rest `GET`), in `[0, 1]`.
    pub put_fraction: f64,
    /// Wall-clock measurement interval.
    pub duration: Duration,
    /// Seed for the per-worker schedule and key generators.
    pub seed: u64,
    /// Extra connections opened before the run and held open, silent, for
    /// its whole duration — the mostly-idle-fleet scenario an event-driven
    /// server must absorb at fixed thread count.
    pub idle_connections: usize,
    /// Connection-churn schedule: each worker drops and re-dials its
    /// connection after this many completed requests (`0` = never), so
    /// accept-path cost shows up in the curves.
    pub churn_every: u64,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            offered_load: 2_000.0,
            pool: 4,
            key_range: 1024,
            zipf_exponent: 0.99,
            put_fraction: 0.5,
            duration: Duration::from_millis(500),
            seed: 0x0be7,
            idle_connections: 0,
            churn_every: 0,
        }
    }
}

/// One row of the open-loop overload sweep (E16).
#[derive(Debug, Clone, Serialize)]
pub struct OpenLoopResult {
    /// Serving mode the server ran (`"threads"` or `"events"`).
    pub serve_mode: String,
    /// Contention manager the server ran.
    pub manager: String,
    /// Configured offered load (requests/second).
    pub offered_load: f64,
    /// Completed requests per second of wall-clock time.
    pub goodput: f64,
    /// Requests completed inside the measurement interval.
    pub completed: u64,
    /// Mean sojourn time (scheduled arrival → reply) in microseconds.
    pub mean_sojourn_us: f64,
    /// Median sojourn time in microseconds.
    pub p50_sojourn_us: f64,
    /// 99th-percentile sojourn time in microseconds.
    pub p99_sojourn_us: f64,
    /// Measured wall-clock interval in seconds.
    pub elapsed_s: f64,
    /// Idle connections held open for the whole run.
    pub idle_connections: usize,
    /// Server-side `conns_open` sampled mid-run — with an idle fleet this
    /// proves the server is actually *holding* the connections, not
    /// timing them out or wedging the pool.
    pub conns_open_observed: u64,
    /// Worker reconnects performed by the churn schedule.
    pub reconnects: u64,
    /// Server-side `conns_accepted` delta over the run.
    pub conns_accepted: u64,
    /// Server-side `partial_writes` delta over the run (events mode only;
    /// always 0 under the thread pool).
    pub partial_writes: u64,
}

/// Draws an exponential inter-arrival gap for a Poisson process of `rate`
/// events/second.
fn exp_gap(rng: &mut SmallRng, rate: f64) -> Duration {
    // 1 - u is in (0, 1], so ln is finite and the gap non-negative.
    let u: f64 = rng.gen();
    Duration::from_secs_f64(-(1.0 - u).ln() / rate)
}

/// Runs the open-loop generator against a live server.
///
/// Workers issue zipfian `PUT`/`GET` singles on independent Poisson
/// schedules; `idle_connections` silent connections are held open
/// throughout; sojourn latency is measured from the *scheduled* arrival, so
/// queueing delay under overload is visible. `serve_mode` labels the row —
/// pass the mode the server was started with.
///
/// # Errors
///
/// Propagates connection and protocol errors from setup.
///
/// # Panics
///
/// Panics when a generator connection fails mid-run.
pub fn run_open_loop(
    addr: SocketAddr,
    manager: &str,
    serve_mode: &str,
    cfg: &OpenLoopConfig,
) -> Result<OpenLoopResult, KvError> {
    assert!(cfg.pool > 0, "need at least one generator connection");
    assert!(
        cfg.offered_load > 0.0 && cfg.offered_load.is_finite(),
        "offered load must be positive"
    );
    assert!(cfg.key_range > 0, "key range must be positive");
    assert!(
        (0.0..=1.0).contains(&cfg.put_fraction),
        "put fraction must be in 0..=1"
    );

    // Prefill so GETs mostly hit, and snapshot the server counters.
    let mut control = KvClient::connect(addr)?;
    for key in (0..cfg.key_range).step_by(2) {
        control.put(key, key)?;
    }
    let before = control.stats()?;

    // The mostly-idle fleet: dialled before the measured interval, held
    // silent until after it. HELLO negotiation in `connect` guarantees the
    // server has fully accepted each one before we count it.
    let idle_pool: Vec<KvClient> = (0..cfg.idle_connections)
        .map(|_| KvClient::connect(addr))
        .collect::<Result<_, _>>()?;

    let per_worker_rate = cfg.offered_load / cfg.pool as f64;
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(cfg.pool + 1));
    let reconnects = AtomicU64::new(0);
    let mut started = Instant::now();
    let mut sojourns = OpRecorder::default();
    let mut conns_open_observed = 0u64;
    thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..cfg.pool {
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            let reconnects = &reconnects;
            let cfg = *cfg;
            handles.push(scope.spawn(move || {
                let mut client =
                    KvClient::connect(addr).expect("open-loop connection must connect");
                let mut rng =
                    SmallRng::seed_from_u64(cfg.seed ^ (w as u64).wrapping_mul(0x9e37_79b9));
                let zipf = Zipf::new(cfg.key_range as u64, cfg.zipf_exponent);
                let mut local = OpRecorder::default();
                let mut since_churn = 0u64;
                barrier.wait();
                let anchor = Instant::now();
                let mut offset = Duration::ZERO;
                while !stop.load(Ordering::Relaxed) {
                    offset += exp_gap(&mut rng, per_worker_rate);
                    let scheduled = anchor + offset;
                    let now = Instant::now();
                    if scheduled > now {
                        thread::sleep(scheduled - now);
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                    let key = zipf.sample(&mut rng) as i64;
                    if rng.gen::<f64>() < cfg.put_fraction {
                        client.put(key, key).expect("open-loop PUT must execute");
                    } else {
                        client.get(key).expect("open-loop GET must execute");
                    }
                    local.record(scheduled.elapsed(), 0);
                    since_churn += 1;
                    if cfg.churn_every > 0 && since_churn >= cfg.churn_every {
                        since_churn = 0;
                        let _ = client.quit();
                        client = KvClient::connect(addr)
                            .expect("open-loop reconnect must succeed");
                        reconnects.fetch_add(1, Ordering::Relaxed);
                    }
                }
                let _ = client.quit();
                local
            }));
        }
        barrier.wait();
        started = Instant::now();
        let deadline = started + cfg.duration;
        // Sample conns_open mid-run, while the idle fleet and the workers
        // are all connected.
        thread::sleep(cfg.duration / 2);
        if let Ok(stats) = control.stats() {
            conns_open_observed = stats.conns_open;
        }
        while Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        stop.store(true, Ordering::Relaxed);
        for handle in handles {
            sojourns.merge(handle.join().expect("open-loop worker panicked"));
        }
    });
    let elapsed = started.elapsed();
    let after = control.stats()?;
    for idle in idle_pool {
        let _ = idle.quit();
    }
    control.quit()?;

    let stats = sojourns
        .finish("sojourn")
        .expect("open-loop run completed zero requests");
    Ok(OpenLoopResult {
        serve_mode: serve_mode.to_string(),
        manager: manager.to_string(),
        offered_load: cfg.offered_load,
        goodput: stats.ops as f64 / elapsed.as_secs_f64(),
        completed: stats.ops,
        mean_sojourn_us: stats.mean_us,
        p50_sojourn_us: stats.p50_us,
        p99_sojourn_us: stats.p99_us,
        elapsed_s: elapsed.as_secs_f64(),
        idle_connections: cfg.idle_connections,
        conns_open_observed,
        reconnects: reconnects.into_inner(),
        conns_accepted: after.conns_accepted.saturating_sub(before.conns_accepted),
        partial_writes: after.partial_writes.saturating_sub(before.partial_writes),
    })
}

/// The fsync policies the durability experiment (E11) compares: synchronous
/// durability, a 64-commit loss window, and a 5 ms loss window — plus the
/// volatile baseline (`None`).
pub fn default_durability_policies() -> Vec<Option<FsyncPolicy>> {
    vec![
        None,
        Some(FsyncPolicy::EveryCommit),
        Some(FsyncPolicy::EveryN(64)),
        Some(FsyncPolicy::EveryMs(5)),
    ]
}

/// Runs the durability netload matrix (E11): one live server per
/// (fsync policy × manager) cell — each durable server on a fresh temporary
/// WAL directory — driven by the closed-loop client. Fsync batching sits in
/// the commit path, so it stretches transaction hold times and therefore
/// conflict windows; comparing managers across policies shows how each one
/// absorbs that shift. Cells carry the policy in the structure label
/// (`stm-kv` for volatile, `stm-kv+wal[every]` etc. for durable), so the
/// JSON groups naturally next to the E10 cells.
///
/// Servers that fail to start (or runs that fail mid-load) are skipped with
/// a note on stderr; the returned cells cover everything that ran.
pub fn durability_matrix(
    policies: &[Option<FsyncPolicy>],
    managers: &[ManagerKind],
    cfg: &NetLoadConfig,
) -> Vec<WorkloadResult> {
    let mut cells = Vec::new();
    for policy in policies {
        for manager in managers {
            let wal_dir = policy.map(|p| temp_wal_dir("e11", *manager, &p.label()));
            let mut server = match KvServer::start(ServerConfig {
                manager: *manager,
                capacity: cfg.key_range,
                shards: 8,
                workers: cfg.connections + 1,
                wal_dir: wal_dir.clone(),
                fsync: policy.unwrap_or(FsyncPolicy::EveryCommit),
                ..ServerConfig::default()
            }) {
                Ok(server) => server,
                Err(err) => {
                    eprintln!("E11: cannot start server for {manager}/{policy:?}: {err}");
                    continue;
                }
            };
            match run_netload(server.addr(), manager.name(), cfg) {
                Ok(mut cell) => {
                    cell.structure = match policy {
                        None => "stm-kv".to_string(),
                        Some(p) => format!("stm-kv+wal[{}]", p.label()),
                    };
                    cells.push(cell);
                }
                Err(err) => eprintln!("E11: netload against {manager}/{policy:?} failed: {err}"),
            }
            server.shutdown();
            if let Some(dir) = wal_dir {
                let _ = std::fs::remove_dir_all(dir);
            }
        }
    }
    cells
}

/// Runs the string-value netload comparison (E13): per manager, an int-only
/// baseline cell versus a 50%-string `PUT` mix — both against a **durable**
/// WAL-backed server (fresh temp directory per cell), so the typed-value
/// path is exercised end to end: v2 frames → typed store cells → v2 log
/// records. Cells are labelled `stm-kv+wal[<policy>]` (baseline) and
/// `stm-kv+str+wal[<policy>]` (string mix).
///
/// Servers that fail to start (or runs that fail mid-load) are skipped with
/// a note on stderr; the returned cells cover everything that ran.
pub fn string_value_matrix(
    managers: &[ManagerKind],
    fsync: FsyncPolicy,
    cfg: &NetLoadConfig,
) -> Vec<WorkloadResult> {
    let mut cells = Vec::new();
    for manager in managers {
        for string_fraction in [0.0, 0.5] {
            let tag = if string_fraction > 0.0 { "e13-str" } else { "e13-int" };
            let wal_dir = temp_wal_dir(tag, *manager, &fsync.label());
            let mut server = match KvServer::start(ServerConfig {
                manager: *manager,
                capacity: cfg.key_range,
                shards: 8,
                workers: cfg.connections + 1,
                wal_dir: Some(wal_dir.clone()),
                fsync,
                ..ServerConfig::default()
            }) {
                Ok(server) => server,
                Err(err) => {
                    eprintln!("E13: cannot start server for {manager}: {err}");
                    continue;
                }
            };
            let cell_cfg = NetLoadConfig {
                string_fraction,
                ..*cfg
            };
            match run_netload(server.addr(), manager.name(), &cell_cfg) {
                Ok(mut cell) => {
                    cell.structure = if string_fraction > 0.0 {
                        format!("stm-kv+str+wal[{}]", fsync.label())
                    } else {
                        format!("stm-kv+wal[{}]", fsync.label())
                    };
                    cells.push(cell);
                }
                Err(err) => eprintln!("E13: netload against {manager} failed: {err}"),
            }
            server.shutdown();
            let _ = std::fs::remove_dir_all(wal_dir);
        }
    }
    cells
}

fn temp_wal_dir(tag: &str, manager: ManagerKind, policy: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "stm-bench-{tag}-{}-{}-{}",
        manager.name(),
        policy.replace('=', "-"),
        std::process::id(),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netload_produces_a_cell_against_a_live_server() {
        let server = KvServer::start(ServerConfig {
            manager: ManagerKind::Greedy,
            capacity: 64,
            shards: 4,
            workers: 3,
            ..ServerConfig::default()
        })
        .unwrap();
        let cfg = NetLoadConfig {
            connections: 2,
            key_range: 64,
            duration: Duration::from_millis(60),
            mix: OpMix::read_mostly(),
            range_span: 8,
            batch_fraction: 0.3,
            ..NetLoadConfig::default()
        };
        let cell = run_netload(server.addr(), "greedy", &cfg).unwrap();
        assert_eq!(cell.structure, "stm-kv");
        assert_eq!(cell.manager, "greedy");
        assert_eq!(cell.threads, 2);
        assert!(cell.commits > 0);
        assert!(cell.throughput > 0.0);
        assert!(!cell.per_op.is_empty());
        assert!(
            cell.per_op.iter().any(|o| o.op == "batch"),
            "30% batches must register: {:?}",
            cell.per_op
        );
        for op in &cell.per_op {
            assert!(op.p99_us >= op.p50_us);
        }
        // The cells serialize with the same shape as in-process cells.
        let json = crate::report::render_rows(&vec![cell]);
        assert!(json.contains("\"structure\": \"stm-kv\""));
        assert!(json.contains("\"per_op\""));
    }

    #[test]
    fn string_mix_registers_typed_puts_and_conserves_the_int_range() {
        let server = KvServer::start(ServerConfig {
            manager: ManagerKind::Greedy,
            capacity: 64,
            shards: 4,
            workers: 3,
            ..ServerConfig::default()
        })
        .unwrap();
        let cfg = NetLoadConfig {
            connections: 2,
            key_range: 64,
            duration: Duration::from_millis(60),
            mix: OpMix::update_only(),
            batch_fraction: 0.2,
            string_fraction: 0.6,
            ..NetLoadConfig::default()
        };
        let cell = run_netload(server.addr(), "greedy", &cfg).unwrap();
        assert!(cell.commits > 0);
        assert!(
            cell.per_op.iter().any(|o| o.op == "put_str"),
            "60% string PUTs must register: {:?}",
            cell.per_op
        );
        // The transfers stayed on the integer half: the audit still sums.
        let mut audit = KvClient::connect(server.addr()).unwrap();
        let (_total, count) = audit.sum(0, 63).unwrap();
        assert!(count > 0, "int range must still hold typed-int keys");
        // And the negative half holds strings.
        let strings = audit.range(-64, -1).unwrap();
        assert!(
            strings.iter().any(|(_, v)| v.as_str().is_some()),
            "string keys must exist on the negative half: {strings:?}"
        );
        audit.quit().unwrap();
    }

    #[test]
    fn durability_matrix_covers_policies_and_labels_cells() {
        let cfg = NetLoadConfig {
            connections: 2,
            key_range: 64,
            duration: Duration::from_millis(40),
            mix: OpMix::update_only(),
            batch_fraction: 0.3,
            ..NetLoadConfig::default()
        };
        let policies = [None, Some(FsyncPolicy::EveryN(16))];
        let cells = durability_matrix(&policies, &[ManagerKind::Greedy], &cfg);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].structure, "stm-kv");
        assert_eq!(cells[1].structure, "stm-kv+wal[n=16]");
        for cell in &cells {
            assert_eq!(cell.manager, "greedy");
            assert!(cell.commits > 0, "empty E11 cell: {cell:?}");
            assert!(cell.throughput > 0.0);
        }
        assert_eq!(default_durability_policies().len(), 4);
    }

    #[test]
    fn open_loop_reports_goodput_sojourn_and_idle_fleet() {
        let server = KvServer::start(ServerConfig {
            manager: ManagerKind::Greedy,
            capacity: 128,
            shards: 4,
            workers: 4,
            serve_mode: stm_kv::ServeMode::Events,
            event_shards: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        let cfg = OpenLoopConfig {
            offered_load: 400.0,
            pool: 2,
            key_range: 128,
            zipf_exponent: 0.99,
            duration: Duration::from_millis(150),
            idle_connections: 16,
            churn_every: 25,
            ..OpenLoopConfig::default()
        };
        let row = run_open_loop(server.addr(), "greedy", "events", &cfg).unwrap();
        assert_eq!(row.serve_mode, "events");
        assert!(row.completed > 0, "no requests completed: {row:?}");
        assert!(row.goodput > 0.0);
        assert!(row.p99_sojourn_us >= row.p50_sojourn_us);
        assert!(
            row.conns_open_observed >= 16,
            "idle fleet not held open: {row:?}"
        );
        assert!(row.reconnects > 0, "churn schedule never fired: {row:?}");
        // The row serializes for the BENCH_serve.json report.
        let json = crate::report::render_rows(&vec![row]);
        assert!(json.contains("\"serve_mode\": \"events\""));
        assert!(json.contains("\"p99_sojourn_us\""));
    }

    #[test]
    fn string_value_matrix_emits_baseline_and_string_cells() {
        let cfg = NetLoadConfig {
            connections: 2,
            key_range: 64,
            duration: Duration::from_millis(40),
            mix: OpMix::update_only(),
            batch_fraction: 0.2,
            ..NetLoadConfig::default()
        };
        let cells = string_value_matrix(&[ManagerKind::Greedy], FsyncPolicy::EveryN(16), &cfg);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].structure, "stm-kv+wal[n=16]");
        assert_eq!(cells[1].structure, "stm-kv+str+wal[n=16]");
        for cell in &cells {
            assert!(cell.commits > 0, "empty E13 cell: {cell:?}");
        }
    }
}
