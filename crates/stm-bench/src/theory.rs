//! Theory experiments: the adversarial chain (E5) and the Theorem 9
//! competitive-ratio check on random instances (E6).

use serde::Serialize;

use stm_cm::ManagerKind;
use stm_sched::{
    chain, optimal_list_schedule, random_transaction_system, simulate, theorem9_bound,
    RandomSystemConfig, SimConfig, TaskSystem,
};

/// One row of the adversarial-chain experiment (E5).
#[derive(Debug, Clone, Serialize)]
pub struct ChainRow {
    /// Number of shared objects `s`.
    pub s: usize,
    /// Contention manager simulated.
    pub manager: String,
    /// Simulated makespan in time units (`f64::INFINITY` if the manager
    /// never finished within the tick budget).
    pub makespan: f64,
    /// Makespan of the optimal off-line list schedule.
    pub optimal: f64,
    /// The ratio of the two.
    pub ratio: f64,
    /// Theorem 9's bound `s(s+1)+2`.
    pub bound: f64,
    /// Whether the pending-commit property held throughout the simulation.
    pub pending_commit: bool,
}

/// Runs the paper's chain construction for each `s` in `sizes` under each of
/// `managers`, and compares against the optimal list schedule.
pub fn chain_experiment(sizes: &[usize], managers: &[ManagerKind]) -> Vec<ChainRow> {
    let ticks = 10u64;
    let mut rows = Vec::new();
    for &s in sizes {
        let instance = chain(s, ticks);
        let tasks = TaskSystem::from_transactions(&instance.transactions);
        let optimal = optimal_list_schedule(&tasks).makespan / ticks as f64;
        for manager in managers {
            let outcome = simulate(
                &instance.transactions,
                manager.factory(),
                SimConfig { max_ticks: 200_000 },
            );
            let makespan = outcome.makespan_units(ticks as f64);
            rows.push(ChainRow {
                s,
                manager: manager.name().to_string(),
                makespan,
                optimal,
                ratio: makespan / optimal,
                bound: theorem9_bound(s),
                pending_commit: outcome.pending_commit_held,
            });
        }
    }
    rows
}

/// One row of the random-instance competitive-ratio experiment (E6).
#[derive(Debug, Clone, Serialize)]
pub struct BoundRow {
    /// Number of transactions `n`.
    pub n: usize,
    /// Number of shared objects `s`.
    pub s: usize,
    /// Contention manager simulated.
    pub manager: String,
    /// Number of random instances simulated.
    pub instances: usize,
    /// Number of instances that finished within the tick budget.
    pub finished: usize,
    /// Mean makespan / optimal-list-schedule ratio over finished instances.
    pub mean_ratio: f64,
    /// Worst observed ratio.
    pub max_ratio: f64,
    /// Theorem 9's bound for this `s`.
    pub bound: f64,
    /// Fraction of finished instances on which the pending-commit property
    /// held.
    pub pending_commit_fraction: f64,
}

/// Sweeps random transaction systems and reports the observed competitive
/// ratios against Theorem 9's bound.
pub fn bound_experiment(
    sizes: &[(usize, usize)],
    managers: &[ManagerKind],
    instances: usize,
    seed: u64,
) -> Vec<BoundRow> {
    let mut rows = Vec::new();
    for &(n, s) in sizes {
        let config = RandomSystemConfig {
            transactions: n,
            objects: s,
            min_duration: 4,
            max_duration: 16,
            accesses_per_transaction: 2.min(s),
            write_fraction: 1.0,
        };
        for manager in managers {
            let mut ratios = Vec::new();
            let mut pending = 0usize;
            for i in 0..instances {
                let txns = random_transaction_system(&config, seed.wrapping_add(i as u64));
                let tasks = TaskSystem::from_transactions(&txns);
                let optimal = optimal_list_schedule(&tasks).makespan;
                let outcome = simulate(
                    &txns,
                    manager.factory(),
                    SimConfig { max_ticks: 100_000 },
                );
                if let Some(ticks) = outcome.makespan_ticks {
                    if optimal > 0.0 {
                        ratios.push(ticks as f64 / optimal);
                    }
                    if outcome.pending_commit_held {
                        pending += 1;
                    }
                }
            }
            let finished = ratios.len();
            let mean_ratio = if finished > 0 {
                ratios.iter().sum::<f64>() / finished as f64
            } else {
                f64::INFINITY
            };
            let max_ratio = ratios.iter().copied().fold(0.0, f64::max);
            rows.push(BoundRow {
                n,
                s,
                manager: manager.name().to_string(),
                instances,
                finished,
                mean_ratio,
                max_ratio,
                bound: theorem9_bound(s),
                pending_commit_fraction: if finished > 0 {
                    pending as f64 / finished as f64
                } else {
                    0.0
                },
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_experiment_reproduces_the_paper_scenario() {
        let rows = chain_experiment(&[2, 4], &[ManagerKind::Greedy]);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!((row.optimal - 2.0).abs() < 1e-6, "optimal is 2 time units");
            assert!(
                (row.makespan - (row.s as f64 + 1.0)).abs() < 0.2,
                "greedy needs s+1 units, got {} for s = {}",
                row.makespan,
                row.s
            );
            assert!(row.ratio <= row.bound);
            assert!(row.pending_commit);
        }
    }

    #[test]
    fn bound_experiment_stays_under_theorem9_for_greedy() {
        let rows = bound_experiment(&[(5, 3)], &[ManagerKind::Greedy], 5, 42);
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.finished, row.instances);
        assert!(row.max_ratio <= row.bound + 1e-6);
        // The transactional execution may legitimately beat the task-model
        // optimum (a transaction only holds an object from its access point
        // onwards, while the task model reserves it for the whole duration),
        // so the ratio is only bounded above, not below, by 1.
        assert!(row.mean_ratio.is_finite() && row.mean_ratio > 0.0);
        assert!(row.pending_commit_fraction > 0.99);
    }

    #[test]
    fn bound_experiment_handles_multiple_managers() {
        let rows = bound_experiment(
            &[(4, 2)],
            &[ManagerKind::Greedy, ManagerKind::Timestamp],
            3,
            7,
        );
        assert_eq!(rows.len(), 2);
        for row in rows {
            assert!(row.finished <= row.instances);
        }
    }
}
