//! E17 — cross-validation of the telemetry subsystem itself, plus the
//! scrape-overhead budget.
//!
//! The `METRICS` exposition is only trustworthy if an *independent*
//! accounting of the same traffic agrees with it. This probe drives a
//! live server with wide `SUM` requests — deliberately asymmetric work:
//! the client sends one request line and parses one reply line while the
//! server reads tens of thousands of cells in one transaction — so the
//! server-side service time *is* the client-observed sojourn up to wire
//! and scheduling overhead that one log2 bucket absorbs. stm-bench keeps
//! its own books and then checks them against the scrape:
//!
//! * **mass** — every completed probe request is exactly one
//!   `stm_kv_op_latency_us{op="SUM"}` sample, so the scraped count delta
//!   across the run must equal the client-side completion count
//!   *exactly*;
//! * **p99** — the client feeds its sojourn samples into the same
//!   vendored log2 [`Histogram`] the server records into; the scraped
//!   delta histogram's p99 bucket must land within ± one bucket of the
//!   client's.
//!
//! The second phase measures what the instrumentation costs: paired
//! open-loop runs at the E16 saturation knee, alternating a quiet run
//! with one scraped continuously (`METRICS` + `SLOWLOG` in a loop),
//! comparing median goodput. The budget is <1% — telemetry that taxes
//! the hot path is telemetry that gets turned off.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

use metrics::{Histogram, HistogramSnapshot};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use stm_kv::{KvClient, KvError};

use crate::netload::{run_open_loop, OpenLoopConfig};

/// Parameters of one E17 telemetry probe.
#[derive(Debug, Clone, Copy)]
pub struct MetricsProbeConfig {
    /// Width of each probe `SUM` — sized so one server-side transaction
    /// takes milliseconds and dwarfs wire/scheduling overhead.
    pub sum_span: i64,
    /// Offered probe rate (requests/second, Poisson schedule).
    pub probe_rate: f64,
    /// Wall-clock length of the probe phase.
    pub probe_duration: Duration,
    /// Keyspace of the overhead phase (zipfian GET/PUT singles).
    pub key_range: i64,
    /// Offered load of each overhead trial (the E16 knee).
    pub overhead_load: f64,
    /// Generator pool of each overhead trial.
    pub overhead_pool: usize,
    /// Wall-clock length of each overhead trial.
    pub overhead_duration: Duration,
    /// Paired (quiet, scraped) overhead trials; medians are compared.
    pub overhead_trials: usize,
    /// Delay between scrapes in the scraped trials (the scraper also
    /// issues a `SLOWLOG` per iteration).
    pub scrape_interval: Duration,
    /// Seed for the schedules and key draws.
    pub seed: u64,
}

impl MetricsProbeConfig {
    /// Paper-scale probe: long enough to measure a sub-1% goodput delta.
    #[must_use]
    pub fn paper() -> MetricsProbeConfig {
        MetricsProbeConfig {
            sum_span: 16_384,
            probe_rate: 30.0,
            probe_duration: Duration::from_millis(3000),
            key_range: 1024,
            overhead_load: 64_000.0,
            overhead_pool: 4,
            overhead_duration: Duration::from_millis(1000),
            overhead_trials: 5,
            scrape_interval: Duration::from_millis(25),
            seed: 0xe17,
        }
    }

    /// Seconds-long variant for local iteration.
    #[must_use]
    pub fn quick() -> MetricsProbeConfig {
        MetricsProbeConfig {
            probe_duration: Duration::from_millis(1000),
            overhead_duration: Duration::from_millis(400),
            overhead_trials: 2,
            ..MetricsProbeConfig::paper()
        }
    }

    /// CI smoke variant: validates mass/p99 agreement and the scrape
    /// machinery, too short to resolve the 1% overhead budget.
    #[must_use]
    pub fn smoke() -> MetricsProbeConfig {
        MetricsProbeConfig {
            sum_span: 8_192,
            probe_rate: 40.0,
            probe_duration: Duration::from_millis(700),
            overhead_load: 8_000.0,
            overhead_duration: Duration::from_millis(200),
            overhead_trials: 1,
            scrape_interval: Duration::from_millis(5),
            ..MetricsProbeConfig::paper()
        }
    }
}

/// One row of the E17 probe (serialized into `BENCH_metrics.json`).
#[derive(Debug, Clone, Serialize)]
pub struct MetricsProbeResult {
    /// Contention manager the server ran.
    pub manager: String,
    /// Serving mode the server ran (`"threads"` or `"events"`).
    pub serve_mode: String,
    /// Probe `SUM` requests completed by the cross-validation phase.
    pub probes_completed: u64,
    /// Scraped `stm_kv_op_latency_us{op="SUM"}` count delta over the
    /// phase — must equal `probes_completed` exactly.
    pub server_sum_count_delta: u64,
    /// Whether the two counts above agree.
    pub mass_matches: bool,
    /// Exact client-side sojourn p99 (microseconds, from raw samples).
    pub client_p99_us: f64,
    /// Log2 bucket index of the client sojourn p99 (vendored histogram).
    pub client_p99_bucket: usize,
    /// Log2 bucket index of the scraped server-side `SUM` p99.
    pub server_p99_bucket: usize,
    /// `|client_p99_bucket - server_p99_bucket|`.
    pub p99_bucket_distance: usize,
    /// Whether the p99 buckets agree within ± one bucket.
    pub p99_agrees: bool,
    /// Median goodput of the quiet overhead trials (requests/second).
    pub baseline_goodput: f64,
    /// Median goodput of the continuously scraped trials.
    pub scraped_goodput: f64,
    /// Total `METRICS` scrapes issued across the scraped trials.
    pub scrapes: u64,
    /// `1 - scraped/baseline` — negative means the scraped runs were
    /// faster (measurement noise floor).
    pub scrape_overhead_frac: f64,
}

/// Subtracts scrape `before` from scrape `after` bucket-wise — the
/// histogram mass the server accumulated between the two scrapes.
fn histogram_delta(after: &HistogramSnapshot, before: &HistogramSnapshot) -> HistogramSnapshot {
    let mut buckets = after.buckets;
    for (b, prior) in buckets.iter_mut().zip(before.buckets.iter()) {
        *b = b.saturating_sub(*prior);
    }
    HistogramSnapshot {
        buckets,
        count: after.count.saturating_sub(before.count),
        sum: after.sum.saturating_sub(before.sum),
    }
}

fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("goodput is finite"));
    values[values.len() / 2]
}

/// Draws an exponential inter-arrival gap for a Poisson process.
fn exp_gap(rng: &mut SmallRng, rate: f64) -> Duration {
    let u: f64 = rng.gen();
    Duration::from_secs_f64(-(1.0 - u).ln() / rate)
}

/// Runs the full E17 probe against a live server.
///
/// # Errors
///
/// Propagates connection and protocol errors from the control clients.
///
/// # Panics
///
/// Panics when a generator or scraper connection fails mid-run.
pub fn run_metrics_probe(
    addr: SocketAddr,
    manager: &str,
    serve_mode: &str,
    cfg: &MetricsProbeConfig,
) -> Result<MetricsProbeResult, KvError> {
    assert!(cfg.sum_span > 0);
    assert!(cfg.probe_rate > 0.0 && cfg.probe_rate.is_finite());
    assert!(cfg.overhead_trials > 0);

    // Materialise the summed keyspace in EXEC batches (one-by-one PUTs
    // would cost a round trip per key). Batches land in the EXEC/PUT
    // histograms, which the SUM-based accounting below never reads.
    let mut control = KvClient::connect(addr)?;
    let mut key = 0i64;
    while key < cfg.sum_span {
        let mut batch = control.batch_builder();
        for _ in 0..512.min(cfg.sum_span - key) {
            batch = batch.put(key, 1);
            key += 1;
        }
        batch.run()?;
    }
    for key in 0..cfg.key_range {
        control.put(key, 0)?;
    }

    // ---- Phase 1: histogram-mass and p99 cross-validation. ----
    let before = control.metrics()?;
    let sum_series = "stm_kv_op_latency_us{op=\"SUM\"}";
    let sum_before = before
        .histogram(sum_series)
        .expect("SUM latency series must exist before load");

    let sojourn_hist = Histogram::new();
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(2));
    let mut sojourns_us: Vec<u64> = Vec::new();
    thread::scope(|scope| {
        let worker = {
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            let sojourn_hist = &sojourn_hist;
            let cfg = *cfg;
            scope.spawn(move || {
                let mut client =
                    KvClient::connect(addr).expect("probe connection must connect");
                let mut rng = SmallRng::seed_from_u64(cfg.seed);
                let mut local = Vec::new();
                barrier.wait();
                let anchor = Instant::now();
                let mut offset = Duration::ZERO;
                while !stop.load(Ordering::Relaxed) {
                    offset += exp_gap(&mut rng, cfg.probe_rate);
                    let scheduled = anchor + offset;
                    let now = Instant::now();
                    if scheduled > now {
                        thread::sleep(scheduled - now);
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                    let (_, counted) = client
                        .sum(0, cfg.sum_span - 1)
                        .expect("probe SUM must execute");
                    assert_eq!(counted as i64, cfg.sum_span, "probe keyspace lost keys");
                    let us = u64::try_from(scheduled.elapsed().as_micros())
                        .unwrap_or(u64::MAX);
                    sojourn_hist.record(us);
                    local.push(us);
                }
                let _ = client.quit();
                local
            })
        };
        barrier.wait();
        thread::sleep(cfg.probe_duration);
        stop.store(true, Ordering::Relaxed);
        sojourns_us = worker.join().expect("probe worker panicked");
    });

    let after = control.metrics()?;
    let sum_after = after
        .histogram(sum_series)
        .expect("SUM latency series must exist after load");
    let sum_delta = histogram_delta(&sum_after, &sum_before);

    let probes_completed = sojourns_us.len() as u64;
    assert!(probes_completed > 0, "probe completed zero requests");
    sojourns_us.sort_unstable();
    let client_p99_us = sojourns_us[(sojourns_us.len() - 1) * 99 / 100] as f64;

    let client_snapshot = sojourn_hist.snapshot();
    let client_p99_bucket = client_snapshot
        .quantile_bucket(0.99)
        .expect("client sojourn histogram has mass");
    let server_p99_bucket = sum_delta.quantile_bucket(0.99).unwrap_or(usize::MAX);
    let p99_bucket_distance = client_p99_bucket.abs_diff(server_p99_bucket);

    // ---- Phase 2: scrape overhead at the saturation knee. ----
    let mut quiet = Vec::new();
    let mut scraped = Vec::new();
    let scrapes = AtomicU64::new(0);
    for trial in 0..cfg.overhead_trials {
        let open_loop = OpenLoopConfig {
            offered_load: cfg.overhead_load,
            pool: cfg.overhead_pool,
            key_range: cfg.key_range,
            duration: cfg.overhead_duration,
            seed: cfg.seed ^ (trial as u64) << 8,
            ..OpenLoopConfig::default()
        };
        let row = run_open_loop(addr, manager, serve_mode, &open_loop)?;
        quiet.push(row.goodput);

        let scraper_stop = Arc::new(AtomicBool::new(false));
        let row = thread::scope(|scope| {
            let stop = Arc::clone(&scraper_stop);
            let scrapes = &scrapes;
            let interval = cfg.scrape_interval;
            let scraper = scope.spawn(move || {
                let mut client = KvClient::connect(addr).expect("scraper must connect");
                while !stop.load(Ordering::Relaxed) {
                    let snapshot = client.metrics().expect("scrape must parse");
                    assert!(
                        snapshot.value("stm_commits_total").is_some(),
                        "scrape lost the commit counter mid-load"
                    );
                    let _ = client.slowlog(8).expect("slowlog must parse");
                    scrapes.fetch_add(1, Ordering::Relaxed);
                    thread::sleep(interval);
                }
                let _ = client.quit();
            });
            let row = run_open_loop(addr, manager, serve_mode, &open_loop);
            scraper_stop.store(true, Ordering::Relaxed);
            scraper.join().expect("scraper panicked");
            row
        })?;
        scraped.push(row.goodput);
    }
    control.quit()?;

    let baseline_goodput = median(&mut quiet);
    let scraped_goodput = median(&mut scraped);
    Ok(MetricsProbeResult {
        manager: manager.to_string(),
        serve_mode: serve_mode.to_string(),
        probes_completed,
        server_sum_count_delta: sum_delta.count,
        mass_matches: sum_delta.count == probes_completed,
        client_p99_us,
        client_p99_bucket,
        server_p99_bucket,
        p99_bucket_distance,
        p99_agrees: p99_bucket_distance <= 1,
        baseline_goodput,
        scraped_goodput,
        scrapes: scrapes.into_inner(),
        scrape_overhead_frac: 1.0 - scraped_goodput / baseline_goodput,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_cm::ManagerKind;
    use stm_kv::{KvServer, ServeMode, ServerConfig};

    #[test]
    fn histogram_delta_subtracts_bucketwise() {
        let h = Histogram::new();
        h.record(3);
        h.record(100);
        let before = h.snapshot();
        h.record(3);
        h.record(5000);
        let delta = histogram_delta(&h.snapshot(), &before);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.buckets.iter().sum::<u64>(), 2);
        assert_eq!(delta.sum, 5003);
    }

    #[test]
    fn probe_cross_validates_against_a_live_server() {
        let mut server = KvServer::start(ServerConfig {
            manager: ManagerKind::Greedy,
            capacity: 256,
            shards: 4,
            workers: 4,
            serve_mode: ServeMode::Events,
            ..ServerConfig::default()
        })
        .expect("server must start");
        let cfg = MetricsProbeConfig {
            sum_span: 4_096,
            probe_rate: 60.0,
            probe_duration: Duration::from_millis(300),
            key_range: 128,
            overhead_load: 2_000.0,
            overhead_duration: Duration::from_millis(120),
            overhead_trials: 1,
            ..MetricsProbeConfig::smoke()
        };
        let row = run_metrics_probe(server.addr(), "greedy", "events", &cfg)
            .expect("probe must complete");
        assert!(row.probes_completed > 0);
        assert!(
            row.mass_matches,
            "scraped SUM count {} != client probes {}",
            row.server_sum_count_delta, row.probes_completed
        );
        assert!(row.scrapes > 0);
        assert!(row.baseline_goodput > 0.0 && row.scraped_goodput > 0.0);
        // p99 agreement is asserted loosely here (the smoke run is too
        // short for tight percentiles); the figures gate enforces ±1.
        assert!(row.p99_bucket_distance <= 3, "{row:?}");
        server.shutdown();
    }
}
