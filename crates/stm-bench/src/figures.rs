//! Figure generators: one function per figure of the paper's Section 5, plus
//! the machine-sized workload matrix over (structure × mix × manager ×
//! threads) cells.

use serde::Serialize;

use crate::workload::{run_workload, StructureKind, SweepConfig, WorkloadResult};

/// One manager's throughput curve: committed transactions per second as a
/// function of the thread count.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// Contention manager name.
    pub manager: String,
    /// `(threads, committed transactions per second)` points.
    pub points: Vec<(usize, f64)>,
}

/// All the data behind one figure.
#[derive(Debug, Clone, Serialize)]
pub struct FigureData {
    /// Figure identifier, e.g. `"fig1-list"`.
    pub name: String,
    /// Human-readable description of the workload.
    pub description: String,
    /// Benchmark structure exercised.
    pub structure: String,
    /// One series per contention manager.
    pub series: Vec<Series>,
    /// The raw per-run results (useful for JSON output and post-processing).
    pub raw: Vec<WorkloadResult>,
}

impl FigureData {
    /// The manager with the highest throughput at the largest thread count.
    pub fn winner_at_max_threads(&self) -> Option<&str> {
        let max_threads = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .max()?;
        self.series
            .iter()
            .filter_map(|s| {
                s.points
                    .iter()
                    .find(|p| p.0 == max_threads)
                    .map(|p| (s.manager.as_str(), p.1))
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite throughput"))
            .map(|(name, _)| name)
    }
}

fn sweep(name: &str, description: &str, structure: StructureKind, cfg: &SweepConfig) -> FigureData {
    let mut raw = Vec::new();
    let mut series: Vec<Series> = cfg
        .managers
        .iter()
        .map(|m| Series {
            manager: m.name().to_string(),
            points: Vec::new(),
        })
        .collect();
    for &threads in &cfg.thread_counts {
        for (idx, manager) in cfg.managers.iter().enumerate() {
            let mut run_cfg = cfg.base;
            run_cfg.threads = threads;
            let result = run_workload(*manager, &structure, &run_cfg);
            series[idx].points.push((threads, result.throughput));
            raw.push(result);
        }
    }
    FigureData {
        name: name.to_string(),
        description: description.to_string(),
        structure: structure.name().to_string(),
        series,
        raw,
    }
}

/// Figure 1: the list application under high contention.
pub fn fig1_list(cfg: &SweepConfig) -> FigureData {
    sweep(
        "fig1-list",
        "Sorted linked list, 256 keys, 100% updates (high contention)",
        StructureKind::List,
        cfg,
    )
}

/// Figure 2: the skiplist application.
pub fn fig2_skiplist(cfg: &SweepConfig) -> FigureData {
    sweep(
        "fig2-skiplist",
        "Skiplist, 256 keys, 100% updates",
        StructureKind::SkipList,
        cfg,
    )
}

/// Figure 3: the red-black tree with an uncontended tail of local work per
/// transaction (low contention).
pub fn fig3_rbtree(cfg: &SweepConfig) -> FigureData {
    let mut cfg = cfg.clone();
    if cfg.base.local_work == 0 {
        cfg.base.local_work = 2_000;
    }
    sweep(
        "fig3-rbtree",
        "Red-black tree, 256 keys, 100% updates plus uncontended local work (low contention)",
        StructureKind::RbTree,
        &cfg,
    )
}

/// Figure 4: the red-black forest — transactions of highly variable length
/// under intensive contention.
pub fn fig4_forest(cfg: &SweepConfig) -> FigureData {
    sweep(
        "fig4-forest",
        "Red-black forest: 50 trees, updates touch one or all trees (irregular transaction lengths)",
        StructureKind::paper_forest(),
        cfg,
    )
}

/// One manager's throughput curve over the read-fraction axis.
#[derive(Debug, Clone, Serialize)]
pub struct FractionSeries {
    /// Contention manager name.
    pub manager: String,
    /// `(read fraction, committed transactions per second)` points.
    pub points: Vec<(f64, f64)>,
}

/// The data behind the read-fraction sweep figure: throughput as the lookup
/// share of the mix moves from 0% (the paper's update-only mix) to 100%.
#[derive(Debug, Clone, Serialize)]
pub struct ReadFractionSweep {
    /// Benchmark structure exercised.
    pub structure: String,
    /// Thread count every point runs at.
    pub threads: usize,
    /// The swept read fractions, ascending.
    pub fractions: Vec<f64>,
    /// One series per contention manager.
    pub series: Vec<FractionSeries>,
    /// The raw per-run results (per-op breakdowns included).
    pub raw: Vec<WorkloadResult>,
}

/// The read fractions the default sweep covers.
pub fn default_read_fractions() -> Vec<f64> {
    vec![0.0, 0.25, 0.5, 0.75, 0.9, 1.0]
}

/// Runs the read-fraction sweep: for every manager in `cfg.managers` and
/// every fraction, an [`OpMix::with_read_fraction`] workload on `structure`
/// at the largest thread count of `cfg` (the most contended point of the
/// sweep, where the managers separate).
pub fn read_fraction_sweep(
    structure: StructureKind,
    fractions: &[f64],
    cfg: &SweepConfig,
) -> ReadFractionSweep {
    let threads = cfg.thread_counts.iter().copied().max().unwrap_or(1);
    let mut raw = Vec::new();
    let mut series: Vec<FractionSeries> = cfg
        .managers
        .iter()
        .map(|m| FractionSeries {
            manager: m.name().to_string(),
            points: Vec::new(),
        })
        .collect();
    for &fraction in fractions {
        for (idx, manager) in cfg.managers.iter().enumerate() {
            let mut run_cfg = cfg.base;
            run_cfg.threads = threads;
            run_cfg.mix = crate::workload::OpMix::with_read_fraction(fraction);
            let result = run_workload(*manager, &structure, &run_cfg);
            series[idx].points.push((fraction, result.throughput));
            raw.push(result);
        }
    }
    ReadFractionSweep {
        structure: structure.name().to_string(),
        threads,
        fractions: fractions.to_vec(),
        series,
        raw,
    }
}

/// The structures the workload matrix sweeps. The forest is excluded: its
/// irregular transaction lengths already have a dedicated figure and would
/// dominate the matrix's wall-clock budget.
pub fn matrix_structures() -> Vec<StructureKind> {
    vec![
        StructureKind::List,
        StructureKind::SkipList,
        StructureKind::RbTree,
    ]
}

/// Runs the full workload matrix: one [`WorkloadResult`] cell per
/// (structure × mix × thread count × manager) combination, in that nesting
/// order. `cfg.mixes` supplies the mix axis; `cfg.base.mix` is overridden
/// per cell.
pub fn workload_matrix(structures: &[StructureKind], cfg: &SweepConfig) -> Vec<WorkloadResult> {
    let mut cells = Vec::new();
    for structure in structures {
        for mix in &cfg.mixes {
            for &threads in &cfg.thread_counts {
                for manager in &cfg.managers {
                    let mut run_cfg = cfg.base;
                    run_cfg.threads = threads;
                    run_cfg.mix = *mix;
                    cells.push(run_workload(*manager, structure, &run_cfg));
                }
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{OpMix, WorkloadConfig};
    use std::time::Duration;
    use stm_cm::ManagerKind;

    fn smoke_cfg() -> SweepConfig {
        SweepConfig {
            thread_counts: vec![1, 2],
            managers: vec![ManagerKind::Greedy, ManagerKind::Karma],
            mixes: vec![OpMix::update_only()],
            base: WorkloadConfig {
                key_range: 32,
                duration: Duration::from_millis(30),
                ..WorkloadConfig::default()
            },
        }
    }

    #[test]
    fn fig1_produces_a_full_grid() {
        let data = fig1_list(&smoke_cfg());
        assert_eq!(data.series.len(), 2);
        for series in &data.series {
            assert_eq!(series.points.len(), 2);
            assert!(series.points.iter().all(|p| p.1 > 0.0));
        }
        assert_eq!(data.raw.len(), 4);
        assert!(data.winner_at_max_threads().is_some());
        assert_eq!(data.structure, "list");
    }

    #[test]
    fn fig3_injects_local_work_by_default() {
        let cfg = smoke_cfg();
        let data = fig3_rbtree(&cfg);
        assert_eq!(data.structure, "rbtree");
        assert!(!data.raw.is_empty());
    }

    #[test]
    fn fig4_uses_the_forest() {
        let mut cfg = smoke_cfg();
        cfg.thread_counts = vec![2];
        cfg.managers = vec![ManagerKind::Greedy];
        let data = fig4_forest(&cfg);
        assert_eq!(data.structure, "rbforest");
        assert_eq!(data.series.len(), 1);
        assert!(data.series[0].points[0].1 > 0.0);
    }

    #[test]
    fn workload_matrix_covers_every_cell() {
        let mut cfg = smoke_cfg();
        cfg.thread_counts = vec![1];
        cfg.mixes = vec![OpMix::update_only(), OpMix::range_heavy()];
        cfg.base.duration = Duration::from_millis(15);
        let structures = [StructureKind::List, StructureKind::SkipList];
        let cells = workload_matrix(&structures, &cfg);
        // 2 structures × 2 mixes × 1 thread count × 2 managers.
        assert_eq!(cells.len(), 8);
        for cell in &cells {
            assert!(cell.commits > 0, "empty cell: {cell:?}");
        }
        let mixes: std::collections::BTreeSet<&str> =
            cells.iter().map(|c| c.mix.as_str()).collect();
        assert_eq!(mixes.len(), 2);
        let structures_seen: std::collections::BTreeSet<&str> =
            cells.iter().map(|c| c.structure.as_str()).collect();
        assert_eq!(structures_seen.len(), 2);
    }

    #[test]
    fn read_fraction_sweep_covers_every_fraction_and_manager() {
        let mut cfg = smoke_cfg();
        cfg.thread_counts = vec![1, 2];
        cfg.base.duration = Duration::from_millis(15);
        let fractions = [0.0, 1.0];
        let sweep = read_fraction_sweep(StructureKind::RbTree, &fractions, &cfg);
        assert_eq!(sweep.structure, "rbtree");
        assert_eq!(sweep.threads, 2, "sweep runs at the largest thread count");
        assert_eq!(sweep.fractions, vec![0.0, 1.0]);
        assert_eq!(sweep.series.len(), 2);
        for series in &sweep.series {
            assert_eq!(series.points.len(), 2);
            assert!(series.points.iter().all(|p| p.1 > 0.0));
        }
        assert_eq!(sweep.raw.len(), 4);
        // fraction 0 is the update-only mix; fraction 1 is pure lookups.
        assert!(sweep.raw[0].mix.contains("update-only"));
        let pure_reads = &sweep.raw[sweep.raw.len() - 1];
        assert!(
            pure_reads.per_op.iter().all(|o| o.op == "lookup"),
            "fraction 1.0 must be lookups only: {:?}",
            pure_reads.per_op
        );
        assert!(!default_read_fractions().is_empty());
    }

    #[test]
    fn matrix_structures_exclude_the_forest() {
        let names: Vec<&str> = matrix_structures().iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["list", "skiplist", "rbtree"]);
    }

    #[test]
    fn fig2_runs_on_the_skiplist() {
        let mut cfg = smoke_cfg();
        cfg.thread_counts = vec![1];
        cfg.managers = vec![ManagerKind::Aggressive];
        let data = fig2_skiplist(&cfg);
        assert_eq!(data.structure, "skiplist");
        assert_eq!(data.raw.len(), 1);
    }
}
