//! Figure generators: one function per figure of the paper's Section 5, plus
//! the machine-sized workload matrix over (structure × mix × manager ×
//! threads) cells and the manager-parameter ablation sweep.

use std::time::Duration;

use serde::Serialize;
use stm_cm::{ManagerKind, ManagerParams};

use crate::workload::{run_workload, run_workload_with, StructureKind, SweepConfig, WorkloadResult};

/// One manager's throughput curve: committed transactions per second as a
/// function of the thread count.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// Contention manager name.
    pub manager: String,
    /// `(threads, committed transactions per second)` points.
    pub points: Vec<(usize, f64)>,
}

/// All the data behind one figure.
#[derive(Debug, Clone, Serialize)]
pub struct FigureData {
    /// Figure identifier, e.g. `"fig1-list"`.
    pub name: String,
    /// Human-readable description of the workload.
    pub description: String,
    /// Benchmark structure exercised.
    pub structure: String,
    /// One series per contention manager.
    pub series: Vec<Series>,
    /// The raw per-run results (useful for JSON output and post-processing).
    pub raw: Vec<WorkloadResult>,
}

impl FigureData {
    /// The manager with the highest throughput at the largest thread count.
    pub fn winner_at_max_threads(&self) -> Option<&str> {
        let max_threads = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .max()?;
        self.series
            .iter()
            .filter_map(|s| {
                s.points
                    .iter()
                    .find(|p| p.0 == max_threads)
                    .map(|p| (s.manager.as_str(), p.1))
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite throughput"))
            .map(|(name, _)| name)
    }
}

fn sweep(name: &str, description: &str, structure: StructureKind, cfg: &SweepConfig) -> FigureData {
    let mut raw = Vec::new();
    let mut series: Vec<Series> = cfg
        .managers
        .iter()
        .map(|m| Series {
            manager: m.name().to_string(),
            points: Vec::new(),
        })
        .collect();
    for &threads in &cfg.thread_counts {
        for (idx, manager) in cfg.managers.iter().enumerate() {
            let mut run_cfg = cfg.base;
            run_cfg.threads = threads;
            let result = run_workload(*manager, &structure, &run_cfg);
            series[idx].points.push((threads, result.throughput));
            raw.push(result);
        }
    }
    FigureData {
        name: name.to_string(),
        description: description.to_string(),
        structure: structure.name().to_string(),
        series,
        raw,
    }
}

/// Figure 1: the list application under high contention.
pub fn fig1_list(cfg: &SweepConfig) -> FigureData {
    sweep(
        "fig1-list",
        "Sorted linked list, 256 keys, 100% updates (high contention)",
        StructureKind::List,
        cfg,
    )
}

/// Figure 2: the skiplist application.
pub fn fig2_skiplist(cfg: &SweepConfig) -> FigureData {
    sweep(
        "fig2-skiplist",
        "Skiplist, 256 keys, 100% updates",
        StructureKind::SkipList,
        cfg,
    )
}

/// Figure 3: the red-black tree with an uncontended tail of local work per
/// transaction (low contention).
pub fn fig3_rbtree(cfg: &SweepConfig) -> FigureData {
    let mut cfg = cfg.clone();
    if cfg.base.local_work == 0 {
        cfg.base.local_work = 2_000;
    }
    sweep(
        "fig3-rbtree",
        "Red-black tree, 256 keys, 100% updates plus uncontended local work (low contention)",
        StructureKind::RbTree,
        &cfg,
    )
}

/// Figure 4: the red-black forest — transactions of highly variable length
/// under intensive contention.
pub fn fig4_forest(cfg: &SweepConfig) -> FigureData {
    sweep(
        "fig4-forest",
        "Red-black forest: 50 trees, updates touch one or all trees (irregular transaction lengths)",
        StructureKind::paper_forest(),
        cfg,
    )
}

/// One manager's throughput curve over the read-fraction axis.
#[derive(Debug, Clone, Serialize)]
pub struct FractionSeries {
    /// Contention manager name.
    pub manager: String,
    /// `(read fraction, committed transactions per second)` points.
    pub points: Vec<(f64, f64)>,
}

/// The data behind the read-fraction sweep figure: throughput as the lookup
/// share of the mix moves from 0% (the paper's update-only mix) to 100%.
#[derive(Debug, Clone, Serialize)]
pub struct ReadFractionSweep {
    /// Benchmark structure exercised.
    pub structure: String,
    /// Thread count every point runs at.
    pub threads: usize,
    /// The swept read fractions, ascending.
    pub fractions: Vec<f64>,
    /// One series per contention manager.
    pub series: Vec<FractionSeries>,
    /// The raw per-run results (per-op breakdowns included).
    pub raw: Vec<WorkloadResult>,
}

/// The read fractions the default sweep covers.
pub fn default_read_fractions() -> Vec<f64> {
    vec![0.0, 0.25, 0.5, 0.75, 0.9, 1.0]
}

/// Runs the read-fraction sweep: for every manager in `cfg.managers` and
/// every fraction, an [`OpMix::with_read_fraction`] workload on `structure`
/// at the largest thread count of `cfg` (the most contended point of the
/// sweep, where the managers separate).
pub fn read_fraction_sweep(
    structure: StructureKind,
    fractions: &[f64],
    cfg: &SweepConfig,
) -> ReadFractionSweep {
    let threads = cfg.thread_counts.iter().copied().max().unwrap_or(1);
    let mut raw = Vec::new();
    let mut series: Vec<FractionSeries> = cfg
        .managers
        .iter()
        .map(|m| FractionSeries {
            manager: m.name().to_string(),
            points: Vec::new(),
        })
        .collect();
    for &fraction in fractions {
        for (idx, manager) in cfg.managers.iter().enumerate() {
            let mut run_cfg = cfg.base;
            run_cfg.threads = threads;
            run_cfg.mix = crate::workload::OpMix::with_read_fraction(fraction);
            let result = run_workload(*manager, &structure, &run_cfg);
            series[idx].points.push((fraction, result.throughput));
            raw.push(result);
        }
    }
    ReadFractionSweep {
        structure: structure.name().to_string(),
        threads,
        fractions: fractions.to_vec(),
        series,
        raw,
    }
}

/// The structures the workload matrix sweeps. The forest is excluded: its
/// irregular transaction lengths already have a dedicated figure and would
/// dominate the matrix's wall-clock budget.
pub fn matrix_structures() -> Vec<StructureKind> {
    vec![
        StructureKind::List,
        StructureKind::SkipList,
        StructureKind::RbTree,
    ]
}

/// Runs the full workload matrix: one [`WorkloadResult`] cell per
/// (structure × mix × thread count × manager) combination, in that nesting
/// order. `cfg.mixes` supplies the mix axis; `cfg.base.mix` is overridden
/// per cell.
pub fn workload_matrix(structures: &[StructureKind], cfg: &SweepConfig) -> Vec<WorkloadResult> {
    let mut cells = Vec::new();
    for structure in structures {
        for mix in &cfg.mixes {
            for &threads in &cfg.thread_counts {
                for manager in &cfg.managers {
                    let mut run_cfg = cfg.base;
                    run_cfg.threads = threads;
                    run_cfg.mix = *mix;
                    cells.push(run_workload(*manager, structure, &run_cfg));
                }
            }
        }
    }
    cells
}

/// One knob of the [`ManagerParams`] ablation: which manager it applies to,
/// the knob's name, and the values to sweep (defaults included).
#[derive(Debug, Clone)]
pub struct AblationKnob {
    /// Manager whose behaviour the knob changes.
    pub manager: ManagerKind,
    /// Stable knob name (used in the cell's manager label).
    pub knob: &'static str,
    /// `(value label, params)` points, ascending by value.
    pub points: Vec<(String, ManagerParams)>,
}

/// The default ablation: one figure per knob, each varying a single
/// [`ManagerParams`] field around its historical default — the knobs the
/// paper's Section 6 discussion predicts crossovers for.
///
/// * `greedy_timeout` (greedy-timeout): the initial presumed-halt time-out.
///   Too short kills healthy enemies spuriously; too long stalls behind
///   genuinely dead ones.
/// * `karma_increment` (karma): priority earned per object opened. Larger
///   increments separate long transactions from short ones faster, at the
///   cost of starving newcomers longer.
/// * `backoff_cap` (backoff): the exponential-backoff ceiling. A small cap
///   degenerates toward aggressive retry; a large cap toward politeness.
pub fn default_ablation_knobs() -> Vec<AblationKnob> {
    let us = Duration::from_micros;
    let timeout_values = [us(10), us(50), us(250), us(1_000)];
    let increment_values = [1u64, 4, 16, 64];
    let cap_values = [us(100), us(1_000), us(10_000)];
    vec![
        AblationKnob {
            manager: ManagerKind::GreedyTimeout,
            knob: "greedy_timeout",
            points: timeout_values
                .iter()
                .map(|&value| {
                    (
                        format!("{}us", value.as_micros()),
                        ManagerParams {
                            greedy_timeout: value,
                            ..ManagerParams::default()
                        },
                    )
                })
                .collect(),
        },
        AblationKnob {
            manager: ManagerKind::Karma,
            knob: "karma_increment",
            points: increment_values
                .iter()
                .map(|&value| {
                    (
                        value.to_string(),
                        ManagerParams {
                            karma_increment: value,
                            ..ManagerParams::default()
                        },
                    )
                })
                .collect(),
        },
        AblationKnob {
            manager: ManagerKind::Backoff,
            knob: "backoff_cap",
            points: cap_values
                .iter()
                .map(|&value| {
                    (
                        format!("{}us", value.as_micros()),
                        ManagerParams {
                            backoff_cap: value,
                            ..ManagerParams::default()
                        },
                    )
                })
                .collect(),
        },
    ]
}

/// Runs the parameter-ablation sweep: for every knob and every value, one
/// workload at the largest thread count of `cfg` (the contended point where
/// the knobs matter). Cells are the standard [`WorkloadResult`] JSON rows;
/// the manager field carries the knob setting, e.g.
/// `karma[karma_increment=16]`, so one figure groups by knob value.
pub fn ablation_sweep(
    structure: StructureKind,
    knobs: &[AblationKnob],
    cfg: &SweepConfig,
) -> Vec<WorkloadResult> {
    let threads = cfg.thread_counts.iter().copied().max().unwrap_or(1);
    let mut cells = Vec::new();
    for knob in knobs {
        for (label, params) in &knob.points {
            let mut run_cfg = cfg.base;
            run_cfg.threads = threads;
            let mut cell = run_workload_with(knob.manager, *params, &structure, &run_cfg);
            cell.manager = format!("{}[{}={}]", knob.manager.name(), knob.knob, label);
            cells.push(cell);
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{OpMix, WorkloadConfig};
    use stm_cm::ManagerKind;

    fn smoke_cfg() -> SweepConfig {
        SweepConfig {
            thread_counts: vec![1, 2],
            managers: vec![ManagerKind::Greedy, ManagerKind::Karma],
            mixes: vec![OpMix::update_only()],
            base: WorkloadConfig {
                key_range: 32,
                duration: Duration::from_millis(30),
                ..WorkloadConfig::default()
            },
        }
    }

    #[test]
    fn fig1_produces_a_full_grid() {
        let data = fig1_list(&smoke_cfg());
        assert_eq!(data.series.len(), 2);
        for series in &data.series {
            assert_eq!(series.points.len(), 2);
            assert!(series.points.iter().all(|p| p.1 > 0.0));
        }
        assert_eq!(data.raw.len(), 4);
        assert!(data.winner_at_max_threads().is_some());
        assert_eq!(data.structure, "list");
    }

    #[test]
    fn fig3_injects_local_work_by_default() {
        let cfg = smoke_cfg();
        let data = fig3_rbtree(&cfg);
        assert_eq!(data.structure, "rbtree");
        assert!(!data.raw.is_empty());
    }

    #[test]
    fn fig4_uses_the_forest() {
        let mut cfg = smoke_cfg();
        cfg.thread_counts = vec![2];
        cfg.managers = vec![ManagerKind::Greedy];
        let data = fig4_forest(&cfg);
        assert_eq!(data.structure, "rbforest");
        assert_eq!(data.series.len(), 1);
        assert!(data.series[0].points[0].1 > 0.0);
    }

    #[test]
    fn workload_matrix_covers_every_cell() {
        let mut cfg = smoke_cfg();
        cfg.thread_counts = vec![1];
        cfg.mixes = vec![OpMix::update_only(), OpMix::range_heavy()];
        cfg.base.duration = Duration::from_millis(15);
        let structures = [StructureKind::List, StructureKind::SkipList];
        let cells = workload_matrix(&structures, &cfg);
        // 2 structures × 2 mixes × 1 thread count × 2 managers.
        assert_eq!(cells.len(), 8);
        for cell in &cells {
            assert!(cell.commits > 0, "empty cell: {cell:?}");
        }
        let mixes: std::collections::BTreeSet<&str> =
            cells.iter().map(|c| c.mix.as_str()).collect();
        assert_eq!(mixes.len(), 2);
        let structures_seen: std::collections::BTreeSet<&str> =
            cells.iter().map(|c| c.structure.as_str()).collect();
        assert_eq!(structures_seen.len(), 2);
    }

    #[test]
    fn read_fraction_sweep_covers_every_fraction_and_manager() {
        let mut cfg = smoke_cfg();
        cfg.thread_counts = vec![1, 2];
        cfg.base.duration = Duration::from_millis(15);
        let fractions = [0.0, 1.0];
        let sweep = read_fraction_sweep(StructureKind::RbTree, &fractions, &cfg);
        assert_eq!(sweep.structure, "rbtree");
        assert_eq!(sweep.threads, 2, "sweep runs at the largest thread count");
        assert_eq!(sweep.fractions, vec![0.0, 1.0]);
        assert_eq!(sweep.series.len(), 2);
        for series in &sweep.series {
            assert_eq!(series.points.len(), 2);
            assert!(series.points.iter().all(|p| p.1 > 0.0));
        }
        assert_eq!(sweep.raw.len(), 4);
        // fraction 0 is the update-only mix; fraction 1 is pure lookups.
        assert!(sweep.raw[0].mix.contains("update-only"));
        let pure_reads = &sweep.raw[sweep.raw.len() - 1];
        assert!(
            pure_reads.per_op.iter().all(|o| o.op == "lookup"),
            "fraction 1.0 must be lookups only: {:?}",
            pure_reads.per_op
        );
        assert!(!default_read_fractions().is_empty());
    }

    #[test]
    fn matrix_structures_exclude_the_forest() {
        let names: Vec<&str> = matrix_structures().iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["list", "skiplist", "rbtree"]);
    }

    #[test]
    fn ablation_sweep_labels_every_knob_value() {
        let mut cfg = smoke_cfg();
        cfg.thread_counts = vec![2];
        cfg.base.duration = Duration::from_millis(15);
        cfg.base.key_range = 32;
        // One two-point knob keeps the test fast; the default knob set is
        // validated structurally below.
        let knob = AblationKnob {
            manager: ManagerKind::Karma,
            knob: "karma_increment",
            points: [1u64, 8]
                .iter()
                .map(|&v| {
                    (
                        v.to_string(),
                        ManagerParams {
                            karma_increment: v,
                            ..ManagerParams::default()
                        },
                    )
                })
                .collect(),
        };
        let cells = ablation_sweep(StructureKind::List, &[knob], &cfg);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].manager, "karma[karma_increment=1]");
        assert_eq!(cells[1].manager, "karma[karma_increment=8]");
        for cell in &cells {
            assert!(cell.commits > 0, "empty ablation cell: {cell:?}");
            assert_eq!(cell.threads, 2);
        }
        let defaults = default_ablation_knobs();
        assert_eq!(defaults.len(), 3, "greedy_timeout, karma_increment, backoff_cap");
        for knob in &defaults {
            assert!(knob.points.len() >= 3, "{}: too few points", knob.knob);
            // Every knob set must include the historical default value.
            assert!(
                knob.points.iter().any(|(_, p)| *p == ManagerParams::default()),
                "{}: default value missing from sweep",
                knob.knob
            );
        }
    }

    #[test]
    fn fig2_runs_on_the_skiplist() {
        let mut cfg = smoke_cfg();
        cfg.thread_counts = vec![1];
        cfg.managers = vec![ManagerKind::Aggressive];
        let data = fig2_skiplist(&cfg);
        assert_eq!(data.structure, "skiplist");
        assert_eq!(data.raw.len(), 1);
    }
}
