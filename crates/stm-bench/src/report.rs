//! Plain-text rendering of benchmark results (the tables printed by the
//! `figures` binary and recorded in the repository's `EXPERIMENTS.md`).

use crate::figures::FigureData;
use crate::workload::WorkloadResult;

/// Renders a figure as a text table: one row per thread count, one column per
/// contention manager, values in committed transactions per second.
pub fn render_figure_table(figure: &FigureData) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {} — {}\n", figure.name, figure.description));
    let managers: Vec<&str> = figure.series.iter().map(|s| s.manager.as_str()).collect();
    let mut threads: Vec<usize> = figure
        .series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.0))
        .collect();
    threads.sort_unstable();
    threads.dedup();
    out.push_str(&format!("{:>8}", "threads"));
    for manager in &managers {
        out.push_str(&format!("{manager:>14}"));
    }
    out.push('\n');
    for t in threads {
        out.push_str(&format!("{t:>8}"));
        for series in &figure.series {
            let value = series
                .points
                .iter()
                .find(|p| p.0 == t)
                .map(|p| p.1)
                .unwrap_or(f64::NAN);
            out.push_str(&format!("{value:>14.0}"));
        }
        out.push('\n');
    }
    if let Some(winner) = figure.winner_at_max_threads() {
        out.push_str(&format!("best at max threads: {winner}\n"));
    }
    out
}

/// Renders workload-matrix cells as text tables: one block per
/// (structure, mix) pair, one row per thread count, one column per manager,
/// values in committed transactions per second.
pub fn render_matrix_table(cells: &[WorkloadResult]) -> String {
    // Group keys in first-appearance order (the matrix emits cells grouped
    // already; this keeps the renderer independent of that ordering).
    let mut groups: Vec<(String, String)> = Vec::new();
    for cell in cells {
        let key = (cell.structure.clone(), cell.mix.clone());
        if !groups.contains(&key) {
            groups.push(key);
        }
    }
    let mut out = String::new();
    for (structure, mix) in groups {
        let block: Vec<&WorkloadResult> = cells
            .iter()
            .filter(|c| c.structure == structure && c.mix == mix)
            .collect();
        let mut managers: Vec<&str> = Vec::new();
        let mut threads: Vec<usize> = Vec::new();
        for cell in &block {
            if !managers.contains(&cell.manager.as_str()) {
                managers.push(cell.manager.as_str());
            }
            if !threads.contains(&cell.threads) {
                threads.push(cell.threads);
            }
        }
        threads.sort_unstable();
        out.push_str(&format!("# matrix — {structure} / {mix} (commits/sec)\n"));
        out.push_str(&format!("{:>8}", "threads"));
        for manager in &managers {
            out.push_str(&format!("{manager:>14}"));
        }
        out.push('\n');
        for t in threads {
            out.push_str(&format!("{t:>8}"));
            for manager in &managers {
                let value = block
                    .iter()
                    .find(|c| c.threads == t && c.manager == *manager)
                    .map(|c| c.throughput)
                    .unwrap_or(f64::NAN);
                out.push_str(&format!("{value:>14.0}"));
            }
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

/// Renders the per-op latency/abort breakdown of a set of workload cells:
/// one block per cell, one row per operation category, with completed-op
/// counts, attributed aborts, and mean/p50/p99 latency in microseconds.
pub fn render_op_breakdown(cells: &[WorkloadResult]) -> String {
    let mut out = String::new();
    for cell in cells {
        if cell.per_op.is_empty() {
            continue;
        }
        out.push_str(&format!(
            "# per-op — {} / {} / {} @ {} threads\n",
            cell.structure, cell.mix, cell.manager, cell.threads
        ));
        out.push_str(&format!(
            "{:>8} {:>10} {:>8} {:>10} {:>10} {:>10}\n",
            "op", "ops", "aborts", "mean-us", "p50-us", "p99-us"
        ));
        for op in &cell.per_op {
            out.push_str(&format!(
                "{:>8} {:>10} {:>8} {:>10.1} {:>10.1} {:>10.1}\n",
                op.op, op.ops, op.aborts, op.mean_us, op.p50_us, op.p99_us
            ));
        }
        out.push('\n');
    }
    out
}

/// Renders a read-fraction sweep as a text table: one row per fraction, one
/// column per manager, values in committed transactions per second.
pub fn render_read_fraction_table(sweep: &crate::figures::ReadFractionSweep) -> String {
    let mut out = format!(
        "# read-fraction sweep — {} @ {} threads (commits/sec)\n",
        sweep.structure, sweep.threads
    );
    out.push_str(&format!("{:>10}", "read-frac"));
    for series in &sweep.series {
        out.push_str(&format!("{:>14}", series.manager));
    }
    out.push('\n');
    for &fraction in &sweep.fractions {
        out.push_str(&format!("{fraction:>10.2}"));
        for series in &sweep.series {
            let value = series
                .points
                .iter()
                .find(|p| (p.0 - fraction).abs() < 1e-9)
                .map(|p| p.1)
                .unwrap_or(f64::NAN);
            out.push_str(&format!("{value:>14.0}"));
        }
        out.push('\n');
    }
    out
}

/// Renders a list of serializable rows as pretty JSON (used by the binary's
/// `--json` mode so results can be post-processed or plotted elsewhere).
pub fn render_rows<T: serde::Serialize>(rows: &T) -> String {
    serde_json::to_string_pretty(rows).expect("benchmark rows serialize to JSON")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::Series;

    fn sample_figure() -> FigureData {
        FigureData {
            name: "fig-test".to_string(),
            description: "sample".to_string(),
            structure: "list".to_string(),
            series: vec![
                Series {
                    manager: "greedy".to_string(),
                    points: vec![(1, 1000.0), (2, 1800.0)],
                },
                Series {
                    manager: "karma".to_string(),
                    points: vec![(1, 900.0), (2, 2000.0)],
                },
            ],
            raw: Vec::new(),
        }
    }

    #[test]
    fn table_contains_headers_rows_and_winner() {
        let table = render_figure_table(&sample_figure());
        assert!(table.contains("threads"));
        assert!(table.contains("greedy"));
        assert!(table.contains("karma"));
        assert!(table.contains("1000"));
        assert!(table.contains("best at max threads: karma"));
    }

    #[test]
    fn matrix_table_groups_by_structure_and_mix() {
        use std::time::Duration;
        let cell = |structure: &str, mix: &str, manager: &str, threads: usize, tput: f64| {
            WorkloadResult {
                manager: manager.to_string(),
                structure: structure.to_string(),
                mix: mix.to_string(),
                threads,
                commits: (tput as u64) / 10,
                aborts: 3,
                elapsed: Duration::from_millis(100),
                throughput: tput,
                abort_ratio: 0.1,
                per_op: Vec::new(),
            }
        };
        let cells = vec![
            cell("list", "update-only", "greedy", 1, 1000.0),
            cell("list", "update-only", "karma", 1, 900.0),
            cell("list", "update-only", "greedy", 2, 1500.0),
            cell("list", "update-only", "karma", 2, 1600.0),
            cell("list", "read-mostly-90", "greedy", 1, 4000.0),
            cell("list", "read-mostly-90", "karma", 1, 3900.0),
        ];
        let table = render_matrix_table(&cells);
        assert!(table.contains("list / update-only"));
        assert!(table.contains("list / read-mostly-90"));
        assert!(table.contains("greedy"));
        assert!(table.contains("4000"));
        // Two blocks, each with a header + manager row + thread rows.
        assert_eq!(table.matches("# matrix —").count(), 2);
    }

    #[test]
    fn op_breakdown_renders_rows_and_skips_empty_cells() {
        use crate::workload::OpStats;
        use std::time::Duration;
        let mut cell = WorkloadResult {
            manager: "greedy".to_string(),
            structure: "list".to_string(),
            mix: "update-only".to_string(),
            threads: 2,
            commits: 10,
            aborts: 2,
            elapsed: Duration::from_millis(100),
            throughput: 100.0,
            abort_ratio: 0.2,
            per_op: vec![OpStats {
                op: "insert".to_string(),
                ops: 10,
                aborts: 2,
                mean_us: 11.5,
                p50_us: 10.0,
                p99_us: 31.0,
            }],
        };
        let table = render_op_breakdown(std::slice::from_ref(&cell));
        assert!(table.contains("per-op — list / update-only / greedy @ 2 threads"));
        assert!(table.contains("insert"));
        assert!(table.contains("31.0"));
        cell.per_op.clear();
        assert!(render_op_breakdown(&[cell]).is_empty());
    }

    #[test]
    fn read_fraction_table_has_one_row_per_fraction() {
        use crate::figures::{FractionSeries, ReadFractionSweep};
        let sweep = ReadFractionSweep {
            structure: "rbtree".to_string(),
            threads: 4,
            fractions: vec![0.0, 0.5, 1.0],
            series: vec![
                FractionSeries {
                    manager: "greedy".to_string(),
                    points: vec![(0.0, 100.0), (0.5, 200.0), (1.0, 400.0)],
                },
                FractionSeries {
                    manager: "karma".to_string(),
                    points: vec![(0.0, 90.0), (0.5, 210.0), (1.0, 390.0)],
                },
            ],
            raw: Vec::new(),
        };
        let table = render_read_fraction_table(&sweep);
        assert!(table.contains("rbtree @ 4 threads"));
        assert_eq!(table.lines().count(), 2 + 3, "header + manager row + 3 fractions");
        assert!(table.contains("0.50"));
        assert!(table.contains("400"));
    }

    #[test]
    fn rows_render_as_json() {
        let json = render_rows(&vec![1, 2, 3]);
        assert_eq!(json.trim(), "[\n  1,\n  2,\n  3\n]");
        let figure_json = render_rows(&sample_figure());
        assert!(figure_json.contains("\"manager\": \"greedy\""));
    }
}
