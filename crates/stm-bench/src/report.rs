//! Plain-text rendering of benchmark results (the tables printed by the
//! `figures` binary and recorded in `EXPERIMENTS.md`).

use crate::figures::FigureData;

/// Renders a figure as a text table: one row per thread count, one column per
/// contention manager, values in committed transactions per second.
pub fn render_figure_table(figure: &FigureData) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {} — {}\n", figure.name, figure.description));
    let managers: Vec<&str> = figure.series.iter().map(|s| s.manager.as_str()).collect();
    let mut threads: Vec<usize> = figure
        .series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.0))
        .collect();
    threads.sort_unstable();
    threads.dedup();
    out.push_str(&format!("{:>8}", "threads"));
    for manager in &managers {
        out.push_str(&format!("{manager:>14}"));
    }
    out.push('\n');
    for t in threads {
        out.push_str(&format!("{t:>8}"));
        for series in &figure.series {
            let value = series
                .points
                .iter()
                .find(|p| p.0 == t)
                .map(|p| p.1)
                .unwrap_or(f64::NAN);
            out.push_str(&format!("{value:>14.0}"));
        }
        out.push('\n');
    }
    if let Some(winner) = figure.winner_at_max_threads() {
        out.push_str(&format!("best at max threads: {winner}\n"));
    }
    out
}

/// Renders a list of serializable rows as pretty JSON (used by the binary's
/// `--json` mode so results can be post-processed or plotted elsewhere).
pub fn render_rows<T: serde::Serialize>(rows: &T) -> String {
    serde_json::to_string_pretty(rows).expect("benchmark rows serialize to JSON")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::Series;

    fn sample_figure() -> FigureData {
        FigureData {
            name: "fig-test".to_string(),
            description: "sample".to_string(),
            structure: "list".to_string(),
            series: vec![
                Series {
                    manager: "greedy".to_string(),
                    points: vec![(1, 1000.0), (2, 1800.0)],
                },
                Series {
                    manager: "karma".to_string(),
                    points: vec![(1, 900.0), (2, 2000.0)],
                },
            ],
            raw: Vec::new(),
        }
    }

    #[test]
    fn table_contains_headers_rows_and_winner() {
        let table = render_figure_table(&sample_figure());
        assert!(table.contains("threads"));
        assert!(table.contains("greedy"));
        assert!(table.contains("karma"));
        assert!(table.contains("1000"));
        assert!(table.contains("best at max threads: karma"));
    }

    #[test]
    fn rows_render_as_json() {
        let json = render_rows(&vec![1, 2, 3]);
        assert_eq!(json.trim(), "[\n  1,\n  2,\n  3\n]");
        let figure_json = render_rows(&sample_figure());
        assert!(figure_json.contains("\"manager\": \"greedy\""));
    }
}
