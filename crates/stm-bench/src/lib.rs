//! # stm-bench
//!
//! The benchmark harness that regenerates the evaluation of *"Toward a
//! Theory of Transactional Contention Managers"*:
//!
//! | Experiment | Paper reference | Module |
//! |------------|-----------------|--------|
//! | E1 | Figure 1 — list, high contention | [`figures::fig1_list`] |
//! | E2 | Figure 2 — skiplist | [`figures::fig2_skiplist`] |
//! | E3 | Figure 3 — red-black tree, low contention | [`figures::fig3_rbtree`] |
//! | E4 | Figure 4 — red-black forest, irregular lengths | [`figures::fig4_forest`] |
//! | E5 | Section 4 adversarial chain | [`theory::chain_experiment`] |
//! | E6 | Theorem 9 competitive-ratio check | [`theory::bound_experiment`] |
//! | E7 | Theorem 1 starvation / bounded commit delay | [`starvation::starvation_experiment`] |
//! | E8 | Workload matrix — mixes × structures × managers × threads | [`figures::workload_matrix`] |
//! | E9 | Read-fraction sweep — throughput vs lookup share 0..=1 | [`figures::read_fraction_sweep`] |
//! | E10 | Served load — closed-loop TCP clients vs a live `stm-kv` server | [`netload::run_netload`] |
//! | E11 | Durability overhead — fsync policy × manager over a WAL-backed server | [`netload::durability_matrix`] |
//! | E13 | String-value serving — typed `PUT` mix vs int baseline over a durable server | [`netload::string_value_matrix`] |
//! | E12 | Manager-parameter ablation — one `ManagerParams` knob per figure | [`figures::ablation_sweep`] |
//! | E14 | Keyspace churn — commit-time cell GC boundedness and cost | [`churn::churn_experiment`] |
//! | E15 | Commit-path microbenchmark — before/after p50/p99 + throughput | [`hotpath::hotpath_experiment`] |
//! | E16 | Overload serving — open-loop Poisson/zipfian load vs serve mode | [`netload::run_open_loop`] |
//!
//! The paper measures committed transactions per second as a function of the
//! number of threads (1–32) on a 256-key integer set with a 100% update mix;
//! [`workload`] implements that driver generically over the benchmark
//! structure, the contention manager, and an [`workload::OpMix`] operation
//! distribution (update-only, read-mostly, range-heavy, or any custom
//! weighting), so the same harness also covers the read-dominated and
//! range-query scenarios beyond the paper's Section 5.
//!
//! Throughput numbers depend on the host; what is expected to reproduce is
//! the *shape* of the comparison (which manager wins under which contention
//! pattern), recorded in `EXPERIMENTS.md` at the repository root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod churn;
pub mod figures;
pub mod hotpath;
pub mod metricsprobe;
pub mod netload;
pub mod report;
pub mod starvation;
pub mod theory;
pub mod workload;

pub use churn::{churn_experiment, ChurnConfig, ChurnRow};
pub use hotpath::{
    check_against_baseline, hotpath_experiment, hotpath_matrix, HotpathConfig, HotpathMix,
    HotpathRow, BASELINE_P50_SLACK, HOTPATH_MIXES,
};
pub use figures::{
    ablation_sweep, default_ablation_knobs, default_read_fractions, fig1_list, fig2_skiplist,
    fig3_rbtree, fig4_forest, matrix_structures, read_fraction_sweep, workload_matrix,
    AblationKnob, FigureData, FractionSeries, ReadFractionSweep, Series,
};
pub use metricsprobe::{run_metrics_probe, MetricsProbeConfig, MetricsProbeResult};
pub use netload::{
    default_durability_policies, durability_matrix, run_netload, run_open_loop,
    string_value_matrix, NetLoadConfig, OpenLoopConfig, OpenLoopResult,
};
pub use report::{
    render_figure_table, render_matrix_table, render_op_breakdown, render_read_fraction_table,
    render_rows,
};
pub use starvation::{starvation_experiment, StarvationResult};
pub use theory::{bound_experiment, chain_experiment, BoundRow, ChainRow};
pub use workload::{
    run_fixed_ops, run_workload, run_workload_with, OpKind, OpMix, OpStats, StructureKind,
    SweepConfig, WorkloadConfig, WorkloadResult,
};
