//! E15 — commit-path microbenchmark: the perf trajectory for the hot path.
//!
//! Tiny transactions (one read or one increment of a random cell from a
//! small `TVar<i64>` array) so that per-transaction runtime cost — locator
//! publication, visible-reader registration, commit — dominates the
//! measurement instead of workload logic. This is the workload that exposes
//! the serialization points ROADMAP's "Speed" item names: under the old
//! design every read and every acquire crossed a per-TVar `Mutex`, so the
//! read-mostly cells convoyed hard at 8 threads.
//!
//! Each cell reports committed throughput plus per-transaction p50/p99
//! wall-clock latency, tagged with a `phase` (`"before"` / `"after"`) so a
//! single committed `BENCH_hotpath.json` can carry the comparison measured
//! within one PR. The `figures -- hotpath --baseline BENCH_hotpath.json`
//! invocation is the CI regression gate: it re-runs the smoke sweep and
//! fails the process when any cell's **p50** exceeds the committed
//! `"after"` baseline by more than [`BASELINE_P50_SLACK`]. Throughput is
//! too host-dependent to gate on, and the short smoke sweep's p99 is
//! dominated by scheduler preemption spikes; the median is the statistic
//! that tracks the commit path itself.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use serde_json::Value;
use stm_cm::ManagerKind;
use stm_core::{Stm, TVar};

/// Allowed p50 inflation over the committed baseline before the CI gate
/// fails: measured `p50 > baseline_p50 × 1.5` in any matching cell. The
/// slack absorbs the warm-up bias of the short smoke cells (the first cell
/// per mix pays cold caches and allocator warm-up in its median) while
/// still catching a reintroduced serialization point, which inflates the
/// contended medians by integer factors.
pub const BASELINE_P50_SLACK: f64 = 1.5;

/// The two operation mixes every hot-path sweep covers.
pub const HOTPATH_MIXES: [HotpathMix; 2] = [HotpathMix::ReadMostly, HotpathMix::UpdateOnly];

/// Operation mix of a hot-path cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HotpathMix {
    /// 90% single-cell reads, 10% single-cell increments — the convoy case
    /// the ≥1.5× acceptance bar is measured on (8 threads, read-mostly).
    ReadMostly,
    /// 100% single-cell increments — pure acquire/commit cost.
    UpdateOnly,
}

impl HotpathMix {
    /// Stable label used in rows and baseline matching.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            HotpathMix::ReadMostly => "read90",
            HotpathMix::UpdateOnly => "update",
        }
    }

    /// Probability that an operation is a read.
    #[must_use]
    pub fn read_fraction(self) -> f64 {
        match self {
            HotpathMix::ReadMostly => 0.9,
            HotpathMix::UpdateOnly => 0.0,
        }
    }
}

/// Parameters of one hot-path sweep.
#[derive(Debug, Clone)]
pub struct HotpathConfig {
    /// Cells in the shared `TVar<i64>` array.
    pub cells: usize,
    /// Committed transactions each thread performs (fixed-ops, not timed,
    /// so latency vectors have a deterministic length).
    pub ops_per_thread: u64,
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
    /// Managers to sweep.
    pub managers: Vec<ManagerKind>,
    /// PRNG seed; each (manager, mix, thread-count, thread) cell derives
    /// its own stream from this.
    pub seed: u64,
}

impl Default for HotpathConfig {
    fn default() -> Self {
        HotpathConfig {
            cells: 64,
            ops_per_thread: 40_000,
            threads: vec![1, 4, 8],
            managers: vec![ManagerKind::Greedy, ManagerKind::Karma],
            seed: 0x407_9a7,
        }
    }
}

impl HotpathConfig {
    /// The seconds-long CI smoke size (also what the baseline gate runs).
    #[must_use]
    pub fn smoke() -> Self {
        HotpathConfig {
            ops_per_thread: 4_000,
            ..HotpathConfig::default()
        }
    }

    /// The sub-minute quick size.
    #[must_use]
    pub fn quick() -> Self {
        HotpathConfig {
            ops_per_thread: 15_000,
            ..HotpathConfig::default()
        }
    }
}

/// One hot-path measurement cell.
#[derive(Debug, Clone, Serialize)]
pub struct HotpathRow {
    /// Which side of the optimization this row measures: `"before"` or
    /// `"after"` (committed artifacts carry both; gates match `"after"`).
    pub phase: String,
    /// Contention manager label.
    pub manager: String,
    /// Mix label (`"read90"` / `"update"`).
    pub mix: String,
    /// Worker threads.
    pub threads: usize,
    /// Cells in the shared array.
    pub cells: usize,
    /// Committed transactions across all threads.
    pub ops: u64,
    /// Wall-clock of the measured phase, milliseconds.
    pub elapsed_ms: f64,
    /// Committed transactions per second.
    pub throughput: f64,
    /// Mean per-transaction latency, nanoseconds.
    pub mean_ns: f64,
    /// Median per-transaction latency, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile per-transaction latency, nanoseconds.
    pub p99_ns: u64,
}

fn percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (pct / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Runs one hot-path cell: `threads` workers each committing
/// `cfg.ops_per_thread` single-cell transactions under `kind` and `mix`.
///
/// # Panics
///
/// Panics when `threads == 0`, `cfg.cells == 0`, or a transaction exhausts
/// its retry budget (the workload never does by construction).
#[must_use]
pub fn hotpath_experiment(
    phase: &str,
    kind: ManagerKind,
    mix: HotpathMix,
    threads: usize,
    cfg: &HotpathConfig,
) -> HotpathRow {
    assert!(threads > 0, "need at least one thread");
    assert!(cfg.cells > 0, "need at least one cell");
    let stm = Arc::new(Stm::builder().manager(kind.factory()).build());
    let cells: Arc<Vec<TVar<i64>>> = Arc::new((0..cfg.cells).map(|_| TVar::new(0)).collect());
    let barrier = Arc::new(Barrier::new(threads + 1));
    let commits_total = AtomicU64::new(0);

    let mut latencies: Vec<u64> = Vec::with_capacity(threads * cfg.ops_per_thread as usize);
    let (per_thread, elapsed) = thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        {
            for t in 0..threads {
                let stm = Arc::clone(&stm);
                let cells = Arc::clone(&cells);
                let barrier = Arc::clone(&barrier);
                let commits_total = &commits_total;
                handles.push(scope.spawn(move || {
                    let mut ctx = stm.thread();
                    // Decorrelate every cell of the sweep: same seed only
                    // when (config seed, manager, mix, threads, t) match.
                    let mut rng = SmallRng::seed_from_u64(
                        cfg.seed
                            ^ (kind as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
                            ^ (mix.read_fraction().to_bits()).rotate_left(17)
                            ^ (threads as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9)
                            ^ (t as u64).wrapping_mul(0x94d0_49bb_1331_11eb),
                    );
                    let mut lat = Vec::with_capacity(cfg.ops_per_thread as usize);
                    let mut commits = 0u64;
                    barrier.wait();
                    for _ in 0..cfg.ops_per_thread {
                        let idx = rng.gen_range(0..cfg.cells);
                        let is_read = rng.gen_bool(mix.read_fraction());
                        let begin = Instant::now();
                        if is_read {
                            let _ = ctx.atomically(|tx| tx.read(&cells[idx])).unwrap();
                        } else {
                            ctx.atomically(|tx| tx.modify(&cells[idx], |v| v + 1))
                                .unwrap();
                        }
                        lat.push(begin.elapsed().as_nanos() as u64);
                        commits += 1;
                    }
                    commits_total.fetch_add(commits, Ordering::Relaxed);
                    lat
                }));
            }
        }
        barrier.wait();
        let started = Instant::now();
        let mut per_thread: Vec<Vec<u64>> = Vec::with_capacity(threads);
        for h in handles {
            per_thread.push(h.join().unwrap());
        }
        (per_thread, started.elapsed())
    });
    for mut lat in per_thread {
        latencies.append(&mut lat);
    }
    latencies.sort_unstable();

    let ops = commits_total.load(Ordering::Relaxed);
    let mean_ns = latencies.iter().sum::<u64>() as f64 / latencies.len().max(1) as f64;
    HotpathRow {
        phase: phase.to_string(),
        manager: kind.name().to_string(),
        mix: mix.name().to_string(),
        threads,
        cells: cfg.cells,
        ops,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        throughput: ops as f64 / elapsed.as_secs_f64().max(1e-9),
        mean_ns,
        p50_ns: percentile(&latencies, 50.0),
        p99_ns: percentile(&latencies, 99.0),
    }
}

/// Runs the full managers × mixes × thread-counts sweep, tagging every row
/// with `phase`.
#[must_use]
pub fn hotpath_matrix(phase: &str, cfg: &HotpathConfig) -> Vec<HotpathRow> {
    let mut rows = Vec::new();
    for &kind in &cfg.managers {
        for &mix in &HOTPATH_MIXES {
            for &threads in &cfg.threads {
                rows.push(hotpath_experiment(phase, kind, mix, threads, cfg));
            }
        }
    }
    rows
}

/// Checks freshly measured rows against a committed `BENCH_hotpath.json`
/// document: for every measured cell with a matching `"after"` baseline
/// cell (same manager, mix, threads), the measured p50 must not exceed the
/// baseline p50 by more than [`BASELINE_P50_SLACK`].
///
/// Returns the list of violations (empty = gate passes). Cells without a
/// baseline counterpart are ignored, so the gate tolerates sweep-shape
/// drift.
///
/// # Errors
///
/// Returns `Err` when `baseline_json` is not a JSON array of row objects.
pub fn check_against_baseline(
    rows: &[HotpathRow],
    baseline_json: &str,
) -> Result<Vec<String>, String> {
    let doc = serde_json::from_str(baseline_json)
        .map_err(|e| format!("baseline is not valid JSON: {e}"))?;
    let cells = doc
        .as_array()
        .ok_or_else(|| "baseline root must be a JSON array".to_string())?;
    let mut baseline: Vec<(String, String, u64, u64)> = Vec::new();
    for cell in cells {
        let phase = cell.get("phase").and_then(Value::as_str).unwrap_or("");
        if phase != "after" {
            continue;
        }
        let (Some(manager), Some(mix), Some(threads), Some(p50)) = (
            cell.get("manager").and_then(Value::as_str),
            cell.get("mix").and_then(Value::as_str),
            cell.get("threads").and_then(Value::as_u64),
            cell.get("p50_ns").and_then(Value::as_u64),
        ) else {
            return Err("baseline row is missing manager/mix/threads/p50_ns".to_string());
        };
        baseline.push((manager.to_string(), mix.to_string(), threads, p50));
    }
    if baseline.is_empty() {
        return Err("baseline has no \"after\" rows to gate against".to_string());
    }
    let mut violations = Vec::new();
    for row in rows {
        let Some((_, _, _, base_p50)) = baseline
            .iter()
            .find(|(m, x, t, _)| *m == row.manager && *x == row.mix && *t as usize == row.threads)
        else {
            continue;
        };
        let limit = (*base_p50 as f64 * BASELINE_P50_SLACK).ceil() as u64;
        if row.p50_ns > limit {
            violations.push(format!(
                "{} {} {}t: p50 {}ns exceeds baseline {}ns × {} = {}ns",
                row.manager, row.mix, row.threads, row.p50_ns, base_p50, BASELINE_P50_SLACK, limit
            ));
        }
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> HotpathConfig {
        HotpathConfig {
            cells: 8,
            ops_per_thread: 300,
            threads: vec![2],
            managers: vec![ManagerKind::Greedy],
            seed: 7,
        }
    }

    #[test]
    fn smoke_cell_commits_every_op_and_measures_latency() {
        let cfg = tiny();
        let row = hotpath_experiment("before", ManagerKind::Greedy, HotpathMix::ReadMostly, 2, &cfg);
        assert_eq!(row.ops, 600, "{row:?}");
        assert_eq!(row.mix, "read90");
        assert_eq!(row.phase, "before");
        assert!(row.p50_ns > 0 && row.p99_ns >= row.p50_ns, "{row:?}");
        assert!(row.throughput > 0.0, "{row:?}");
    }

    #[test]
    fn update_mix_commits_every_increment() {
        let cfg = tiny();
        let row = hotpath_experiment("after", ManagerKind::Karma, HotpathMix::UpdateOnly, 2, &cfg);
        assert_eq!(row.ops, 600, "{row:?}");
        assert_eq!(row.mix, "update");
    }

    #[test]
    fn matrix_covers_managers_by_mixes_by_threads() {
        let mut cfg = tiny();
        cfg.managers = vec![ManagerKind::Greedy, ManagerKind::Karma];
        cfg.threads = vec![1, 2];
        let rows = hotpath_matrix("before", &cfg);
        assert_eq!(rows.len(), 2 * 2 * 2);
        let json = crate::render_rows(&rows);
        assert!(json.contains("\"p99_ns\""), "{json}");
        assert!(json.contains("\"phase\""), "{json}");
    }

    #[test]
    fn baseline_gate_flags_only_regressions() {
        let cfg = tiny();
        let row = hotpath_experiment("after", ManagerKind::Greedy, HotpathMix::ReadMostly, 2, &cfg);
        let mut generous = row.clone();
        generous.p50_ns = row.p50_ns.saturating_mul(100).max(1_000_000);
        let baseline = crate::render_rows(&vec![generous]);
        let violations = check_against_baseline(std::slice::from_ref(&row), &baseline).unwrap();
        assert!(violations.is_empty(), "{violations:?}");

        let mut tight = row.clone();
        tight.p50_ns = 1; // any real measurement regresses against this
        let baseline = crate::render_rows(&vec![tight]);
        let violations = check_against_baseline(std::slice::from_ref(&row), &baseline).unwrap();
        assert_eq!(violations.len(), 1, "{violations:?}");

        // "before" rows never gate; unmatched cells are skipped.
        let mut before = row.clone();
        before.phase = "before".to_string();
        let baseline = crate::render_rows(&vec![before]);
        assert!(check_against_baseline(std::slice::from_ref(&row), &baseline).is_err());
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50.0), 51);
        assert_eq!(percentile(&sorted, 99.0), 99);
        assert_eq!(percentile(&sorted, 100.0), 100);
        assert_eq!(percentile(&[], 50.0), 0);
    }
}
