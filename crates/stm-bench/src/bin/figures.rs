//! `figures` — regenerates the paper's evaluation from the command line.
//!
//! ```text
//! cargo run --release -p stm-bench --bin figures -- all
//! cargo run --release -p stm-bench --bin figures -- fig1 --quick
//! cargo run --release -p stm-bench --bin figures -- chain bound starvation
//! cargo run --release -p stm-bench --bin figures -- fig2 --json
//! cargo run --release -p stm-bench --bin figures -- --sweep machine
//! cargo run --release -p stm-bench --bin figures -- --sweep smoke
//! ```
//!
//! Available experiments: `fig1` `fig2` `fig3` `fig4` (throughput sweeps),
//! `matrix` (the workload matrix: structures × op mixes × managers ×
//! threads), `readfrac` (throughput vs. read fraction 0..=1), `server`
//! (over-the-wire `stm-kv` cells: one live server per manager, driven by
//! the closed-loop network client), `durability` (E11: fsync policy ×
//! manager over a WAL-backed server, volatile baseline included), `strings`
//! (E13: 50%-string-value PUT mix vs the int baseline over a durable
//! server), `ablate`
//! (E12: one `ManagerParams` knob per figure — greedy timeout, karma
//! increment, backoff cap), `churn` (E14: rolling PUT+DEL keyspace churn —
//! cell-GC boundedness and commit-path cost; exits non-zero when the
//! resident-cell bound is violated, which is the CI leak gate),
//! `hotpath` (E15: commit-path microbenchmark — single-cell read/increment
//! transactions, threads × manager × mix, p50/p99 + throughput; with
//! `--baseline BENCH_hotpath.json` it becomes the CI perf gate and exits
//! non-zero when any cell's p99 regresses >25% against the committed
//! `"after"` rows; `--phase before|after` tags the emitted rows),
//! `overload` (E16: open-loop Poisson/zipfian offered-load sweep against a
//! live server per serve mode — threads vs events — with an idle-connection
//! fleet held under events; `--idle N` overrides the fleet size; exits
//! non-zero on zero goodput or a dropped fleet, which is the CI serving
//! gate), `metrics` (E17: telemetry cross-validation — wide `SUM`
//! probes against a live events server, asserting the scraped `METRICS`
//! histogram's mass and p99 bucket agree with stm-bench's own sojourn
//! accounting, plus the goodput cost of continuous scraping at the E16
//! knee; the CI metrics smoke gate), `chain` (the Section 4 adversarial chain),
//! `bound` (Theorem 9 ratio sweep), `starvation` (Theorem 1),
//! `ablation-reads` (visible vs invisible reads), `all` (everything except
//! `matrix`, `readfrac`, `server`, `durability`, `strings` and `ablate`).
//!
//! Flags: `--sweep paper|quick|smoke|machine` selects the sweep size —
//! `machine` sizes the thread axis to the host (1..=2× available
//! parallelism) and emits one JSON record per matrix cell; `smoke` is the
//! seconds-long CI sanity pass. `--quick` is shorthand for `--sweep quick`;
//! `--json` prints raw JSON instead of tables. With `--sweep machine` or
//! `--sweep smoke` and no experiment named, the workload matrix runs.

use std::time::Duration;

use stm_bench::{
    ablation_sweep, bound_experiment, chain_experiment, check_against_baseline, churn_experiment,
    default_ablation_knobs, default_durability_policies, default_read_fractions,
    durability_matrix, fig1_list, fig2_skiplist, fig3_rbtree, fig4_forest, hotpath_matrix,
    matrix_structures, read_fraction_sweep, render_figure_table, render_matrix_table,
    render_op_breakdown, render_read_fraction_table, render_rows, run_metrics_probe,
    run_netload, run_open_loop, run_workload, starvation_experiment, string_value_matrix,
    workload_matrix, ChurnConfig, HotpathConfig, MetricsProbeConfig, NetLoadConfig, OpMix,
    OpenLoopConfig, StructureKind, SweepConfig, WorkloadConfig,
};
use stm_cm::ManagerKind;
use stm_core::{ReadVisibility, Stm};
use stm_kv::{KvClient, KvServer, ServeMode, ServerConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let mut sweep_mode: Option<String> = None;
    let mut experiments: Vec<String> = Vec::new();
    let mut baseline: Option<String> = None;
    let mut phase = "after".to_string();
    let mut idle_override: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {}
            "--quick" => {
                sweep_mode.get_or_insert_with(|| "quick".to_string());
            }
            "--sweep" => {
                i += 1;
                let Some(mode) = args.get(i) else {
                    eprintln!("--sweep needs a mode: paper, quick, smoke or machine");
                    std::process::exit(2);
                };
                sweep_mode = Some(mode.clone());
            }
            "--baseline" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    eprintln!("--baseline needs a path to a committed BENCH_hotpath.json");
                    std::process::exit(2);
                };
                baseline = Some(path.clone());
            }
            "--phase" => {
                i += 1;
                let Some(tag) = args.get(i) else {
                    eprintln!("--phase needs a tag: before or after");
                    std::process::exit(2);
                };
                phase = tag.clone();
            }
            "--idle" => {
                i += 1;
                let parsed = args.get(i).and_then(|v| v.parse().ok());
                let Some(count) = parsed else {
                    eprintln!("--idle needs a connection count");
                    std::process::exit(2);
                };
                idle_override = Some(count);
            }
            flag if flag.starts_with("--") => {
                eprintln!("ignoring unknown flag '{flag}'");
            }
            name => experiments.push(name.to_string()),
        }
        i += 1;
    }
    let mode = sweep_mode.unwrap_or_else(|| "paper".to_string());
    let sweep = match mode.as_str() {
        "paper" => SweepConfig::paper_defaults(),
        "quick" => SweepConfig::quick(),
        "smoke" => SweepConfig::smoke(),
        "machine" => SweepConfig::machine(),
        other => {
            eprintln!("unknown sweep mode '{other}'; expected paper, quick, smoke or machine");
            std::process::exit(2);
        }
    };
    let quick = matches!(mode.as_str(), "quick" | "smoke");
    if experiments.is_empty() {
        experiments = if matches!(mode.as_str(), "machine" | "smoke") {
            vec!["matrix".into()]
        } else {
            vec!["all".into()]
        };
    }
    if experiments.iter().any(|e| e == "all") {
        experiments = vec![
            "fig1".into(),
            "fig2".into(),
            "fig3".into(),
            "fig4".into(),
            "chain".into(),
            "bound".into(),
            "starvation".into(),
            "ablation-reads".into(),
        ];
    }
    for experiment in experiments {
        match experiment.as_str() {
            "fig1" => emit_figure(fig1_list(&sweep), json),
            "fig2" => emit_figure(fig2_skiplist(&sweep), json),
            "fig3" => emit_figure(fig3_rbtree(&sweep), json),
            "fig4" => emit_figure(fig4_forest(&sweep), json),
            "matrix" => {
                // The matrix always covers the three standard mixes, even
                // under the single-mix paper/quick sweeps.
                let mut matrix_sweep = sweep.clone();
                if matrix_sweep.mixes.len() < 2 {
                    matrix_sweep.mixes = OpMix::standard_matrix();
                }
                let cells = workload_matrix(&matrix_structures(), &matrix_sweep);
                // `--sweep machine` exists to feed post-processing, so it
                // always emits one JSON record per cell.
                if json || mode == "machine" {
                    println!("{}", render_rows(&cells));
                } else {
                    println!("{}", render_matrix_table(&cells));
                }
            }
            "readfrac" => {
                let fractions = if quick {
                    vec![0.0, 0.5, 1.0]
                } else {
                    default_read_fractions()
                };
                let data = read_fraction_sweep(StructureKind::RbTree, &fractions, &sweep);
                if json {
                    println!("{}", render_rows(&data));
                } else {
                    println!("{}", render_read_fraction_table(&data));
                }
            }
            "server" => {
                // One live stm-kv server per manager, driven over loopback by
                // the closed-loop client; cells mirror the in-process sweeps.
                let connections = 4usize;
                let cfg = NetLoadConfig {
                    connections,
                    key_range: sweep.base.key_range.min(4096),
                    duration: if quick {
                        Duration::from_millis(80)
                    } else {
                        sweep.base.duration.max(Duration::from_millis(150))
                    },
                    mix: OpMix::read_mostly(),
                    range_span: sweep.base.range_span,
                    ..NetLoadConfig::default()
                };
                let mut cells = Vec::new();
                for manager in &sweep.managers {
                    let mut server = match KvServer::start(ServerConfig {
                        manager: *manager,
                        capacity: cfg.key_range,
                        shards: 8,
                        workers: connections + 1,
                        ..ServerConfig::default()
                    }) {
                        Ok(server) => server,
                        Err(err) => {
                            eprintln!("cannot start server for {manager}: {err}");
                            continue;
                        }
                    };
                    match run_netload(server.addr(), manager.name(), &cfg) {
                        Ok(cell) => cells.push(cell),
                        Err(err) => eprintln!("netload against {manager} failed: {err}"),
                    }
                    server.shutdown();
                }
                if json {
                    println!("{}", render_rows(&cells));
                } else {
                    println!("{}", render_matrix_table(&cells));
                    println!("{}", render_op_breakdown(&cells));
                }
            }
            "durability" => {
                // E11: fsync policy × manager over a live WAL-backed server
                // (plus the volatile baseline), temp dirs per cell.
                let connections = 4usize;
                let cfg = NetLoadConfig {
                    connections,
                    key_range: sweep.base.key_range.min(4096),
                    duration: if quick {
                        Duration::from_millis(80)
                    } else {
                        sweep.base.duration.max(Duration::from_millis(150))
                    },
                    mix: OpMix::update_only(), // every op logs: worst case
                    range_span: sweep.base.range_span,
                    batch_fraction: 0.2,
                    ..NetLoadConfig::default()
                };
                let policies = default_durability_policies();
                let managers: Vec<_> = if quick {
                    vec![stm_cm::ManagerKind::Greedy, stm_cm::ManagerKind::Karma]
                } else {
                    sweep.managers.clone()
                };
                let cells = durability_matrix(&policies, &managers, &cfg);
                if json {
                    println!("{}", render_rows(&cells));
                } else {
                    println!("{}", render_matrix_table(&cells));
                    println!("{}", render_op_breakdown(&cells));
                }
            }
            "strings" => {
                // E13: string-value PUT mix vs the int baseline, per
                // manager, over a durable (WAL-backed) server. String
                // payloads stress value cloning, frame encoding and log
                // record size; the baseline cell isolates the delta.
                let connections = 4usize;
                let cfg = NetLoadConfig {
                    connections,
                    key_range: sweep.base.key_range.min(4096),
                    duration: if quick {
                        Duration::from_millis(80)
                    } else {
                        sweep.base.duration.max(Duration::from_millis(150))
                    },
                    mix: OpMix::update_only(), // every op writes: worst case
                    range_span: sweep.base.range_span,
                    batch_fraction: 0.2,
                    ..NetLoadConfig::default()
                };
                let managers: Vec<_> = if quick {
                    vec![stm_cm::ManagerKind::Greedy, stm_cm::ManagerKind::Karma]
                } else {
                    sweep.managers.clone()
                };
                let cells =
                    string_value_matrix(&managers, stm_log::FsyncPolicy::EveryN(64), &cfg);
                if json {
                    println!("{}", render_rows(&cells));
                } else {
                    println!("{}", render_matrix_table(&cells));
                    println!("{}", render_op_breakdown(&cells));
                }
            }
            "overload" => {
                // E16: open-loop overload sweep — offered load vs goodput vs
                // p99 sojourn, per serve mode. The events server additionally
                // holds a mostly-idle connection fleet at fixed thread count
                // (the scenario a thread-per-connection pool cannot absorb).
                // Doubles as the CI serving gate: zero goodput, a lost idle
                // fleet, or a non-finite percentile fails the process.
                let (loads, duration, idle_events) = match mode.as_str() {
                    "smoke" => (
                        vec![500.0, 4_000.0],
                        Duration::from_millis(200),
                        idle_override.unwrap_or(128),
                    ),
                    "quick" => (
                        vec![1_000.0, 4_000.0, 16_000.0, 64_000.0, 256_000.0],
                        Duration::from_millis(400),
                        idle_override.unwrap_or(2_000),
                    ),
                    _ => (
                        vec![
                            1_000.0, 4_000.0, 16_000.0, 32_000.0, 64_000.0, 128_000.0,
                            256_000.0,
                        ],
                        Duration::from_secs(1),
                        idle_override.unwrap_or(2_000),
                    ),
                };
                let pool = 4usize;
                let mut rows = Vec::new();
                let mut gate_failed = false;
                for serve_mode in [ServeMode::Threads, ServeMode::Events] {
                    // Only the event loop can hold an idle fleet at fixed
                    // thread count; under the pool every idle connection
                    // would occupy a worker, which is the point of E16.
                    let idle = match serve_mode {
                        ServeMode::Events => idle_events,
                        ServeMode::Threads => 0,
                    };
                    let mut server = match KvServer::start(ServerConfig {
                        manager: ManagerKind::Greedy,
                        capacity: 4096,
                        shards: 8,
                        workers: pool + 2,
                        serve_mode,
                        ..ServerConfig::default()
                    }) {
                        Ok(server) => server,
                        Err(err) => {
                            eprintln!("cannot start {} server: {err}", serve_mode.label());
                            gate_failed = true;
                            continue;
                        }
                    };
                    for &offered_load in &loads {
                        let cfg = OpenLoopConfig {
                            offered_load,
                            pool,
                            key_range: 1024,
                            zipf_exponent: 0.99,
                            put_fraction: 0.5,
                            duration,
                            idle_connections: idle,
                            churn_every: 256,
                            ..OpenLoopConfig::default()
                        };
                        match run_open_loop(
                            server.addr(),
                            "greedy",
                            serve_mode.label(),
                            &cfg,
                        ) {
                            Ok(row) => {
                                if row.goodput <= 0.0 || !row.p99_sojourn_us.is_finite() {
                                    eprintln!(
                                        "E16 gate: degenerate row under {}: {row:?}",
                                        serve_mode.label()
                                    );
                                    gate_failed = true;
                                }
                                if idle > 0 && (row.conns_open_observed as usize) < idle {
                                    eprintln!(
                                        "E16 gate: events server held only {} of {} idle \
                                         connections",
                                        row.conns_open_observed, idle
                                    );
                                    gate_failed = true;
                                }
                                rows.push(row);
                            }
                            Err(err) => {
                                eprintln!(
                                    "E16: open-loop at {offered_load} req/s against {} \
                                     failed: {err}",
                                    serve_mode.label()
                                );
                                gate_failed = true;
                            }
                        }
                    }
                    server.shutdown();
                }
                if json {
                    println!("{}", render_rows(&rows));
                } else {
                    println!(
                        "# E16 — open-loop overload sweep (greedy, {pool} generator conns, \
                         zipf 0.99, {idle_events} idle conns under events)"
                    );
                    println!(
                        "{:>8} {:>10} {:>10} {:>10} {:>12} {:>12} {:>8} {:>10} {:>8}",
                        "mode", "offered/s", "goodput/s", "completed", "p50-us", "p99-us",
                        "idle", "conns-open", "reconn"
                    );
                    for r in &rows {
                        println!(
                            "{:>8} {:>10.0} {:>10.0} {:>10} {:>12.0} {:>12.0} {:>8} {:>10} {:>8}",
                            r.serve_mode,
                            r.offered_load,
                            r.goodput,
                            r.completed,
                            r.p50_sojourn_us,
                            r.p99_sojourn_us,
                            r.idle_connections,
                            r.conns_open_observed,
                            r.reconnects
                        );
                    }
                }
                if gate_failed {
                    std::process::exit(1);
                }
            }
            "metrics" => {
                // E17: telemetry cross-validation + scrape overhead. One
                // events-mode server; phase 1 drives wide SUM probes and
                // asserts the scraped per-op histogram's mass and p99 agree
                // with stm-bench's own sojourn accounting; phase 2 measures
                // the goodput cost of continuous METRICS+SLOWLOG scraping
                // at the E16 knee. Doubles as the CI metrics smoke gate:
                // missing/all-zero series, mass mismatch, a p99 bucket more
                // than one off, or causeless SLOWLOG entries fail the
                // process (the <1% overhead budget is enforced on the
                // paper-scale run that produces BENCH_metrics.json).
                let cfg = match mode.as_str() {
                    "smoke" => MetricsProbeConfig::smoke(),
                    "quick" => MetricsProbeConfig::quick(),
                    _ => MetricsProbeConfig::paper(),
                };
                let mut server = match KvServer::start(ServerConfig {
                    manager: ManagerKind::Greedy,
                    capacity: cfg.sum_span,
                    shards: 8,
                    workers: cfg.overhead_pool + 2,
                    serve_mode: ServeMode::Events,
                    ..ServerConfig::default()
                }) {
                    Ok(server) => server,
                    Err(err) => {
                        eprintln!("cannot start events server for E17: {err}");
                        std::process::exit(1);
                    }
                };
                let mut gate_failed = false;
                let row = match run_metrics_probe(server.addr(), "greedy", "events", &cfg) {
                    Ok(row) => row,
                    Err(err) => {
                        eprintln!("E17 probe failed: {err}");
                        std::process::exit(1);
                    }
                };
                if !row.mass_matches {
                    eprintln!(
                        "E17 gate: scraped SUM histogram count {} disagrees with the \
                         client's {} completed probes",
                        row.server_sum_count_delta, row.probes_completed
                    );
                    gate_failed = true;
                }
                if !row.p99_agrees {
                    eprintln!(
                        "E17 gate: scraped p99 bucket {} vs sojourn p99 bucket {} \
                         (client p99 {:.0} us) — more than one log2 bucket apart",
                        row.server_p99_bucket, row.client_p99_bucket, row.client_p99_us
                    );
                    gate_failed = true;
                }
                if mode == "paper" && row.scrape_overhead_frac >= 0.01 {
                    eprintln!(
                        "E17 gate: scraping cost {:.2}% goodput at the knee \
                         ({:.0} -> {:.0} req/s) — budget is <1%",
                        row.scrape_overhead_frac * 100.0,
                        row.baseline_goodput,
                        row.scraped_goodput
                    );
                    gate_failed = true;
                }
                // Post-load smoke checks: the series a dashboard depends on
                // must exist and carry mass, and SLOWLOG must explain
                // aborts, not just time them.
                match KvClient::connect(server.addr()) {
                    Ok(mut scraper) => {
                        match scraper.metrics() {
                            Ok(snapshot) => {
                                for series in ["stm_commits_total", "stm_transactions_total"] {
                                    if snapshot.value(series).unwrap_or(0) == 0 {
                                        eprintln!("E17 gate: {series} missing or zero");
                                        gate_failed = true;
                                    }
                                }
                                if snapshot.counter("stm_kv_requests_total") == 0 {
                                    eprintln!("E17 gate: stm_kv_requests_total missing or zero");
                                    gate_failed = true;
                                }
                                let op_mass = snapshot
                                    .histogram("stm_kv_op_latency_us")
                                    .map_or(0, |h| h.count);
                                if op_mass == 0 {
                                    eprintln!(
                                        "E17 gate: stm_kv_op_latency_us missing or empty"
                                    );
                                    gate_failed = true;
                                }
                            }
                            Err(err) => {
                                eprintln!("E17 gate: METRICS scrape failed: {err}");
                                gate_failed = true;
                            }
                        }
                        match scraper.slowlog(16) {
                            Ok(entries) if entries.is_empty() => {
                                eprintln!("E17 gate: SLOWLOG empty after sustained load");
                                gate_failed = true;
                            }
                            Ok(entries) => {
                                for entry in &entries {
                                    if !entry.contains("causes=") || !entry.contains("wall_us=")
                                    {
                                        eprintln!(
                                            "E17 gate: SLOWLOG entry lacks abort-cause \
                                             accounting: {entry}"
                                        );
                                        gate_failed = true;
                                    }
                                }
                            }
                            Err(err) => {
                                eprintln!("E17 gate: SLOWLOG failed: {err}");
                                gate_failed = true;
                            }
                        }
                        let _ = scraper.quit();
                    }
                    Err(err) => {
                        eprintln!("E17 gate: cannot connect smoke scraper: {err}");
                        gate_failed = true;
                    }
                }
                server.shutdown();
                if json {
                    println!("{}", render_rows(&[row]));
                } else {
                    println!(
                        "# E17 — telemetry cross-validation ({} SUM probes spanning {} keys) \
                         + scrape overhead at {:.0} req/s",
                        row.probes_completed, cfg.sum_span, cfg.overhead_load
                    );
                    println!(
                        "mass: client {} == scraped {} ({})",
                        row.probes_completed,
                        row.server_sum_count_delta,
                        if row.mass_matches { "ok" } else { "MISMATCH" }
                    );
                    println!(
                        "p99:  sojourn bucket {} vs scraped bucket {} (client p99 {:.0} us, \
                         distance {}, {})",
                        row.client_p99_bucket,
                        row.server_p99_bucket,
                        row.client_p99_us,
                        row.p99_bucket_distance,
                        if row.p99_agrees { "ok" } else { "DISAGREE" }
                    );
                    println!(
                        "cost: {:.0} req/s quiet vs {:.0} req/s scraped ({} scrapes) \
                         -> {:.2}% overhead",
                        row.baseline_goodput,
                        row.scraped_goodput,
                        row.scrapes,
                        row.scrape_overhead_frac * 100.0
                    );
                }
                if gate_failed {
                    std::process::exit(1);
                }
            }
            "ablate" => {
                // E12: one ManagerParams knob per figure, varied around the
                // historical default at the most contended thread count.
                let mut ablate_sweep = sweep.clone();
                if quick {
                    ablate_sweep.base.duration = Duration::from_millis(40);
                }
                let cells =
                    ablation_sweep(StructureKind::List, &default_ablation_knobs(), &ablate_sweep);
                if json {
                    println!("{}", render_rows(&cells));
                } else {
                    println!("{}", render_matrix_table(&cells));
                }
            }
            "chain" => {
                let sizes: Vec<usize> = if quick { vec![2, 4] } else { vec![2, 4, 8, 16] };
                let managers = [
                    ManagerKind::Greedy,
                    ManagerKind::Aggressive,
                    ManagerKind::Karma,
                    ManagerKind::Timestamp,
                ];
                let rows = chain_experiment(&sizes, &managers);
                if json {
                    println!("{}", render_rows(&rows));
                } else {
                    println!("# E5 — adversarial chain (greedy expected ~s+1, optimal 2)");
                    println!(
                        "{:>4} {:>12} {:>10} {:>9} {:>8} {:>10} {:>8}",
                        "s", "manager", "makespan", "optimal", "ratio", "bound", "pc"
                    );
                    for r in rows {
                        println!(
                            "{:>4} {:>12} {:>10.2} {:>9.2} {:>8.2} {:>10.0} {:>8}",
                            r.s, r.manager, r.makespan, r.optimal, r.ratio, r.bound, r.pending_commit
                        );
                    }
                }
            }
            "bound" => {
                let sizes: Vec<(usize, usize)> = if quick {
                    vec![(4, 2), (6, 3)]
                } else {
                    vec![(4, 2), (6, 3), (8, 4), (12, 6)]
                };
                let instances = if quick { 5 } else { 20 };
                let managers = [ManagerKind::Greedy, ManagerKind::Timestamp, ManagerKind::Karma];
                let rows = bound_experiment(&sizes, &managers, instances, 0xbeef);
                if json {
                    println!("{}", render_rows(&rows));
                } else {
                    println!("# E6 — Theorem 9 competitive-ratio sweep (random instances)");
                    println!(
                        "{:>4} {:>4} {:>12} {:>6} {:>9} {:>9} {:>8} {:>6}",
                        "n", "s", "manager", "done", "mean", "worst", "bound", "pc%"
                    );
                    for r in rows {
                        println!(
                            "{:>4} {:>4} {:>12} {:>3}/{:<3} {:>9.2} {:>9.2} {:>8.0} {:>6.0}",
                            r.n,
                            r.s,
                            r.manager,
                            r.finished,
                            r.instances,
                            r.mean_ratio,
                            r.max_ratio,
                            r.bound,
                            r.pending_commit_fraction * 100.0
                        );
                    }
                }
            }
            "starvation" => {
                let duration = if quick {
                    Duration::from_millis(150)
                } else {
                    Duration::from_millis(500)
                };
                let managers = [
                    ManagerKind::Greedy,
                    ManagerKind::Karma,
                    ManagerKind::Aggressive,
                    ManagerKind::Backoff,
                ];
                let rows: Vec<_> = managers
                    .iter()
                    .map(|m| starvation_experiment(*m, 4, 32, duration))
                    .collect();
                if json {
                    println!("{}", render_rows(&rows));
                } else {
                    println!("# E7 — Theorem 1 starvation check (1 long writer vs 4 short writers)");
                    println!(
                        "{:>12} {:>12} {:>14} {:>16} {:>14} {:>14}",
                        "manager", "long-commits", "worst-attempts", "worst-latency", "short-commits", "no-starvation"
                    );
                    for r in rows {
                        println!(
                            "{:>12} {:>12} {:>14} {:>14.1?} {:>14} {:>14}",
                            r.manager,
                            r.long_commits,
                            r.worst_attempts,
                            r.worst_latency,
                            r.short_commits,
                            r.no_starvation
                        );
                    }
                }
            }
            "churn" => {
                // E14: rolling PUT+DEL over fresh keys — the workload that
                // used to leak a cell per key. Doubles as the CI leak gate:
                // any unbounded row fails the process.
                let cfg = match mode.as_str() {
                    "smoke" => ChurnConfig::smoke(),
                    "quick" => ChurnConfig::quick(),
                    _ => ChurnConfig::default(),
                };
                let managers: Vec<ManagerKind> = if quick {
                    vec![ManagerKind::Greedy, ManagerKind::Karma]
                } else {
                    vec![
                        ManagerKind::Greedy,
                        ManagerKind::Karma,
                        ManagerKind::Timestamp,
                        ManagerKind::Polka,
                    ]
                };
                let rows: Vec<_> = managers
                    .iter()
                    .map(|m| churn_experiment(*m, &cfg))
                    .collect();
                if json {
                    println!("{}", render_rows(&rows));
                } else {
                    println!(
                        "# E14 — keyspace churn: commit-time cell GC ({} threads, window {})",
                        cfg.threads, cfg.window
                    );
                    println!(
                        "{:>12} {:>10} {:>10} {:>9} {:>9} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8}",
                        "manager", "ops", "ops/s", "put-ns", "del-ns", "alloc", "freed",
                        "linked^", "bound", "limbo^", "bounded"
                    );
                    for r in &rows {
                        println!(
                            "{:>12} {:>10} {:>10.0} {:>9.0} {:>9.0} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8}",
                            r.manager,
                            r.ops,
                            r.throughput,
                            r.put_ns,
                            r.del_ns,
                            r.cells_allocated,
                            r.cells_freed,
                            r.linked_peak,
                            r.linked_bound,
                            r.limbo_watermark,
                            r.bounded
                        );
                    }
                }
                if let Some(bad) = rows.iter().find(|r| !r.bounded) {
                    eprintln!(
                        "churn bound violated under {}: peak {} linked cells exceeds \
                         the bound {} for {} live keys (allocated {}, freed {}, \
                         limbo watermark {})",
                        bad.manager,
                        bad.linked_peak,
                        bad.linked_bound,
                        bad.live_keys,
                        bad.cells_allocated,
                        bad.cells_freed,
                        bad.limbo_watermark
                    );
                    std::process::exit(1);
                }
            }
            "hotpath" => {
                // E15: commit-path microbenchmark. With --baseline this is
                // the CI perf gate: any p50 more than 50% over the
                // committed "after" row for the same cell fails the build.
                let cfg = match mode.as_str() {
                    "smoke" => HotpathConfig::smoke(),
                    "quick" => HotpathConfig::quick(),
                    _ => HotpathConfig::default(),
                };
                let rows = hotpath_matrix(&phase, &cfg);
                if json {
                    println!("{}", render_rows(&rows));
                } else {
                    println!(
                        "# E15 — commit-path microbenchmark ({} cells, {} ops/thread, phase {})",
                        cfg.cells, cfg.ops_per_thread, phase
                    );
                    println!(
                        "{:>12} {:>8} {:>8} {:>12} {:>12} {:>10} {:>10} {:>10}",
                        "manager", "mix", "threads", "ops", "ops/s", "mean-ns", "p50-ns", "p99-ns"
                    );
                    for r in &rows {
                        println!(
                            "{:>12} {:>8} {:>8} {:>12} {:>12.0} {:>10.0} {:>10} {:>10}",
                            r.manager, r.mix, r.threads, r.ops, r.throughput, r.mean_ns,
                            r.p50_ns, r.p99_ns
                        );
                    }
                }
                if let Some(path) = &baseline {
                    let text = match std::fs::read_to_string(path) {
                        Ok(text) => text,
                        Err(err) => {
                            eprintln!("cannot read baseline {path}: {err}");
                            std::process::exit(2);
                        }
                    };
                    match check_against_baseline(&rows, &text) {
                        Ok(violations) if violations.is_empty() => {
                            println!("hotpath baseline gate passed ({path})");
                        }
                        Ok(violations) => {
                            for v in &violations {
                                eprintln!("hotpath p50 regression: {v}");
                            }
                            std::process::exit(1);
                        }
                        Err(err) => {
                            eprintln!("hotpath baseline {path} unusable: {err}");
                            std::process::exit(2);
                        }
                    }
                }
            }
            "ablation-reads" => ablation_reads(quick, json),
            other => eprintln!("unknown experiment '{other}', skipping"),
        }
        println!();
    }
}

fn emit_figure(data: stm_bench::FigureData, json: bool) {
    if json {
        println!("{}", render_rows(&data));
    } else {
        println!("{}", render_figure_table(&data));
    }
}

/// Visible vs invisible reads under the greedy manager on the list
/// benchmark (the read-visibility ablation called out in DESIGN.md).
fn ablation_reads(quick: bool, json: bool) {
    let cfg = WorkloadConfig {
        threads: 4,
        key_range: 256,
        duration: if quick {
            Duration::from_millis(80)
        } else {
            Duration::from_millis(300)
        },
        local_work: 0,
        seed: 0xab1a,
        ..WorkloadConfig::default()
    };
    // run_workload always uses the default (visible) mode; for the ablation we
    // drive the list directly with both visibilities.
    let mut rows = Vec::new();
    for visibility in [ReadVisibility::Visible, ReadVisibility::Invisible] {
        let stm = Stm::builder()
            .manager(ManagerKind::Greedy.factory())
            .read_visibility(visibility)
            .build();
        let commits = ablation_run(&stm, &cfg);
        rows.push((format!("{visibility:?}"), commits, cfg.duration));
    }
    if json {
        let as_json: Vec<_> = rows
            .iter()
            .map(|(mode, commits, d)| {
                serde_json::json!({
                    "mode": mode,
                    "commits": commits,
                    "throughput": *commits as f64 / d.as_secs_f64(),
                })
            })
            .collect();
        println!("{}", render_rows(&as_json));
    } else {
        println!("# Ablation — read visibility (greedy, list, 4 threads)");
        println!("{:>12} {:>12} {:>16}", "mode", "commits", "commits/sec");
        for (mode, commits, d) in rows {
            println!(
                "{:>12} {:>12} {:>16.0}",
                mode,
                commits,
                commits as f64 / d.as_secs_f64()
            );
        }
    }
    // Also print the standard harness numbers for context.
    let standard = run_workload(ManagerKind::Greedy, &StructureKind::List, &cfg);
    if !json {
        println!(
            "(standard harness, visible reads: {:.0} commits/sec)",
            standard.throughput
        );
    }
}

fn ablation_run(stm: &Stm, cfg: &WorkloadConfig) -> u64 {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Barrier};
    use stm_structures::{TxList, TxSet};

    let list = TxList::new();
    {
        let mut ctx = stm.thread();
        for key in (0..cfg.key_range).step_by(2) {
            ctx.atomically(|tx| list.insert(tx, key)).unwrap();
        }
    }
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(cfg.threads + 1));
    let mut total = 0u64;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..cfg.threads {
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            let list = list.clone();
            let cfg = *cfg;
            let stm = &*stm;
            handles.push(scope.spawn(move || {
                let mut ctx = stm.thread();
                let mut rng = SmallRng::seed_from_u64(cfg.seed ^ t as u64);
                let mut commits = 0u64;
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    let key = rng.gen_range(0..cfg.key_range);
                    let insert = rng.gen_bool(0.5);
                    let ok = ctx
                        .atomically(|tx| {
                            if insert {
                                list.insert(tx, key)
                            } else {
                                list.remove(tx, key)
                            }
                        })
                        .is_ok();
                    if ok {
                        commits += 1;
                    }
                }
                commits
            }));
        }
        barrier.wait();
        std::thread::sleep(cfg.duration);
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            total += h.join().unwrap();
        }
    });
    total
}
