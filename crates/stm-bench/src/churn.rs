//! E14 — keyspace churn and commit-time cell GC.
//!
//! The workload that used to leak: every thread PUTs a stream of **fresh**
//! keys and DELs them a fixed window later, so the set of live keys stays
//! small and constant while the set of keys *ever touched* grows without
//! bound. Before commit-time reclamation, each of those keys left a live
//! value cell in the store's overflow tables forever; with the epoch GC, a
//! committed DEL unlinks its cell and retires it to the limbo, and the
//! resident footprint must stay bounded by the live window plus whatever
//! is still waiting out its grace period.
//!
//! Each run reports the two sides of the trade:
//!
//! - **Boundedness** — the peak count of cells still *linked* in the store
//!   (`allocated − retired`, sampled while the churn runs) against the
//!   hard bound `threads × (window + 4)` (the live window plus a few
//!   in-flight cells per thread), and the exact quiescent identity
//!   `allocated − freed = live keys` after a final collect. Both gauges
//!   are monotone counters incremented one entry at a time (allocation
//!   read first), so concurrent progress between the reads can only
//!   *under*-estimate the linked count — a real leak still blows past the
//!   bound, but sampling races never fail a healthy run. (`limbo + freed`
//!   would not do: a concurrent collect moves whole batches from limbo to
//!   freed between the two reads, making hundreds of retired cells look
//!   linked.) The [`ChurnRow::bounded`] flag is the CI gate: the `figures`
//!   binary exits non-zero when it is false.
//! - **Commit-path cost** — mean wall-clock latency of the PUT and DEL
//!   transactions separately. A DEL carries the GC work (tombstone write,
//!   deferred unlink, retire, amortised collect), so `del_ns − put_ns`
//!   approximates what reclamation costs per freed key.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use serde::Serialize;
use stm_cm::ManagerKind;
use stm_core::Stm;
use stm_kv::KvStore;

/// Parameters of one churn run.
#[derive(Debug, Clone, Copy)]
pub struct ChurnConfig {
    /// Churning threads, each with a private fresh-key stream.
    pub threads: usize,
    /// Fresh keys each thread creates (the thread performs this many PUTs
    /// and, trailing `window` behind, almost as many DELs).
    pub ops_per_thread: u64,
    /// Distance between a key's PUT and its DEL: the per-thread live set.
    pub window: i64,
    /// Sample the resident-cell gauges every this many PUTs.
    pub sample_every: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            threads: 4,
            ops_per_thread: 125_000,
            window: 64,
            sample_every: 512,
        }
    }
}

impl ChurnConfig {
    /// The seconds-long CI smoke size.
    #[must_use]
    pub fn smoke() -> Self {
        ChurnConfig {
            threads: 2,
            ops_per_thread: 5_000,
            window: 32,
            sample_every: 128,
        }
    }

    /// The sub-minute quick size.
    #[must_use]
    pub fn quick() -> Self {
        ChurnConfig {
            threads: 4,
            ops_per_thread: 20_000,
            window: 64,
            sample_every: 256,
        }
    }
}

/// One churn measurement cell.
#[derive(Debug, Clone, Serialize)]
pub struct ChurnRow {
    /// Contention manager label.
    pub manager: String,
    /// Churning threads.
    pub threads: usize,
    /// Total committed operations (PUTs + DELs) across threads.
    pub ops: u64,
    /// Per-thread PUT→DEL distance.
    pub window: i64,
    /// Wall-clock of the churn phase, milliseconds.
    pub elapsed_ms: f64,
    /// Committed operations per second.
    pub throughput: f64,
    /// Mean PUT transaction latency, nanoseconds.
    pub put_ns: f64,
    /// Mean DEL transaction latency, nanoseconds — carries the GC work, so
    /// `del_ns - put_ns` approximates the reclamation cost per freed key.
    pub del_ns: f64,
    /// Value cells ever materialised (monotone).
    pub cells_allocated: u64,
    /// Cells reclaimed by the epoch GC (after the final collect).
    pub cells_freed: u64,
    /// Peak resident cells (`allocated − freed`) observed at any sample —
    /// linked cells plus whatever sat in limbo at that instant.
    pub resident_peak: u64,
    /// Deepest limbo observed at any sample.
    pub limbo_watermark: u64,
    /// Peak *linked* cells (`allocated − retired`) observed at any sample;
    /// the gauges are read in an order that can only under-estimate, so
    /// this never overshoots from sampling races.
    pub linked_peak: u64,
    /// The bound [`linked_peak`](Self::linked_peak) is held to:
    /// `threads × (window + 4)` — the live window plus a few in-flight
    /// cells per thread.
    pub linked_bound: u64,
    /// Keys still present at the end (= `threads × window`).
    pub live_keys: u64,
    /// Cells still linked in the store at quiescence.
    pub cells_live: u64,
    /// The pass/fail verdict: peak under the bound **and** the quiescent
    /// books balance exactly (`allocated − freed = live cells = live keys`,
    /// limbo drained). The CI churn smoke fails the build on `false`.
    pub bounded: bool,
}

/// Runs the rolling PUT+DEL churn under `kind` and measures boundedness and
/// commit-path cost.
///
/// # Panics
///
/// Panics when `cfg.threads == 0`, `cfg.ops_per_thread <= cfg.window`, or a
/// churn transaction fails (the workload never aborts by construction).
#[must_use]
pub fn churn_experiment(kind: ManagerKind, cfg: &ChurnConfig) -> ChurnRow {
    assert!(cfg.threads > 0, "need at least one thread");
    assert!(
        cfg.ops_per_thread > cfg.window.unsigned_abs(),
        "each thread must outlive its window"
    );
    let stm = Arc::new(Stm::builder().manager(kind.factory()).build());
    // No pre-allocated range: every key is a reclaimable overflow cell, so
    // the GC is on the hook for the whole keyspace.
    let store = Arc::new(KvStore::new(8));
    let resident_peak = AtomicU64::new(0);
    let limbo_watermark = AtomicU64::new(0);
    let linked_peak = AtomicU64::new(0);
    let put_ns_total = AtomicU64::new(0);
    let del_ns_total = AtomicU64::new(0);
    let dels_total = AtomicU64::new(0);

    let started = Instant::now();
    thread::scope(|scope| {
        for t in 0..cfg.threads {
            let stm = Arc::clone(&stm);
            let store = Arc::clone(&store);
            let resident_peak = &resident_peak;
            let limbo_watermark = &limbo_watermark;
            let linked_peak = &linked_peak;
            let put_ns_total = &put_ns_total;
            let del_ns_total = &del_ns_total;
            let dels_total = &dels_total;
            scope.spawn(move || {
                let mut ctx = stm.thread();
                let base = 1 + (t as i64) * (i64::MAX / cfg.threads as i64);
                let mut put_ns = 0u64;
                let mut del_ns = 0u64;
                let mut dels = 0u64;
                for i in 0..cfg.ops_per_thread as i64 {
                    let begin = Instant::now();
                    ctx.atomically(|tx| store.put(tx, base + i, i)).unwrap();
                    put_ns += begin.elapsed().as_nanos() as u64;
                    if i >= cfg.window {
                        let begin = Instant::now();
                        ctx.atomically(|tx| store.del(tx, base + i - cfg.window)).unwrap();
                        del_ns += begin.elapsed().as_nanos() as u64;
                        dels += 1;
                    }
                    if (i as u64).is_multiple_of(cfg.sample_every) {
                        // Allocation before retired: both counters are
                        // monotone and bumped one entry at a time, so the
                        // difference can only *under*-estimate the linked
                        // count — no sampling race ever fails a healthy run.
                        let gc = stm.epoch();
                        let allocated = store.cells_allocated() as u64;
                        let retired = gc.retired_total();
                        linked_peak
                            .fetch_max(allocated.saturating_sub(retired), Ordering::Relaxed);
                        resident_peak.fetch_max(
                            allocated.saturating_sub(gc.reclaimed_total()),
                            Ordering::Relaxed,
                        );
                        limbo_watermark.fetch_max(gc.limbo_len() as u64, Ordering::Relaxed);
                    }
                }
                put_ns_total.fetch_add(put_ns, Ordering::Relaxed);
                del_ns_total.fetch_add(del_ns, Ordering::Relaxed);
                dels_total.fetch_add(dels, Ordering::Relaxed);
            });
        }
    });
    let elapsed = started.elapsed();

    // Quiescence: all threads unpinned, so the limbo must drain completely.
    let gc = stm.epoch();
    gc.collect();
    gc.collect();

    let puts = cfg.threads as u64 * cfg.ops_per_thread;
    let dels = dels_total.load(Ordering::Relaxed);
    let ops = puts + dels;
    let live_keys = cfg.threads as u64 * cfg.window.unsigned_abs();
    let cells_allocated = store.cells_allocated() as u64;
    let cells_freed = gc.reclaimed_total();
    let cells_live = store.cells_live() as u64;
    let peak = resident_peak.load(Ordering::Relaxed);
    let watermark = limbo_watermark.load(Ordering::Relaxed);
    let linked = linked_peak.load(Ordering::Relaxed);
    // Each thread holds at most `window` live keys, plus the key it is
    // creating and a couple of commit/unlink in-flight transients.
    let linked_bound = cfg.threads as u64 * (cfg.window.unsigned_abs() + 4);
    let bounded = linked <= linked_bound
        && gc.limbo_len() == 0
        && cells_allocated - cells_freed == cells_live
        && cells_live == live_keys;

    ChurnRow {
        manager: kind.name().to_string(),
        threads: cfg.threads,
        ops,
        window: cfg.window,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        throughput: ops as f64 / elapsed.as_secs_f64().max(1e-9),
        put_ns: put_ns_total.load(Ordering::Relaxed) as f64 / puts.max(1) as f64,
        del_ns: del_ns_total.load(Ordering::Relaxed) as f64 / dels.max(1) as f64,
        cells_allocated,
        cells_freed,
        resident_peak: peak,
        limbo_watermark: watermark,
        linked_peak: linked,
        linked_bound,
        live_keys,
        cells_live,
        bounded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_churn_is_bounded_and_balances_the_books() {
        let cfg = ChurnConfig {
            threads: 2,
            ops_per_thread: 400,
            window: 16,
            sample_every: 64,
        };
        let row = churn_experiment(ManagerKind::Greedy, &cfg);
        assert!(row.bounded, "{row:?}");
        assert_eq!(row.live_keys, 32, "{row:?}");
        assert_eq!(row.cells_allocated, 800, "one cell per fresh key: {row:?}");
        assert_eq!(row.cells_freed, 800 - 32, "{row:?}");
        assert!(row.ops >= 800, "{row:?}");
    }

    #[test]
    fn rows_serialize_for_the_json_report() {
        let row = churn_experiment(
            ManagerKind::Karma,
            &ChurnConfig {
                threads: 1,
                ops_per_thread: 100,
                window: 8,
                sample_every: 32,
            },
        );
        let json = crate::render_rows(&vec![row]);
        assert!(json.contains("\"cells_freed\""), "{json}");
        assert!(json.contains("\"resident_peak\""), "{json}");
    }
}
