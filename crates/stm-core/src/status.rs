//! Transaction status word.
//!
//! The paper (Section 3) requires that each transaction carry a *status*
//! field that is "active, committed, or aborted", and that transitions out of
//! the active state are performed with a compare-and-swap instruction: a
//! transaction commits by CAS-ing its own status from `Active` to
//! `Committed`, and an enemy aborts it by CAS-ing the status from `Active` to
//! `Aborted`. The CAS is what makes the two transitions mutually exclusive —
//! exactly one of them can win.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

/// The externally visible state of a transaction attempt.
///
/// A transaction starts `Active`, and exactly one CAS moves it to either
/// `Committed` (performed by the owning thread) or `Aborted` (performed by
/// the owning thread *or* by an enemy transaction that won a conflict).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum TxStatus {
    /// The transaction is running and has neither committed nor aborted.
    Active = 0,
    /// The transaction committed; its writes are the current versions.
    Committed = 1,
    /// The transaction aborted; its writes are discarded.
    Aborted = 2,
}

impl TxStatus {
    /// Returns `true` if the status is [`TxStatus::Active`].
    #[inline]
    pub fn is_active(self) -> bool {
        self == TxStatus::Active
    }

    /// Returns `true` if the status is [`TxStatus::Committed`].
    #[inline]
    pub fn is_committed(self) -> bool {
        self == TxStatus::Committed
    }

    /// Returns `true` if the status is [`TxStatus::Aborted`].
    #[inline]
    pub fn is_aborted(self) -> bool {
        self == TxStatus::Aborted
    }
}

impl fmt::Display for TxStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TxStatus::Active => "active",
            TxStatus::Committed => "committed",
            TxStatus::Aborted => "aborted",
        };
        f.write_str(s)
    }
}

/// A lock-free, CAS-able status word.
///
/// This is the one piece of per-transaction state that other threads mutate:
/// an enemy transaction that wins a conflict aborts this transaction by
/// CAS-ing `Active -> Aborted` here.
#[derive(Debug)]
pub(crate) struct AtomicStatus(AtomicU8);

impl AtomicStatus {
    /// Creates a new status word in the [`TxStatus::Active`] state.
    pub(crate) fn new_active() -> Self {
        AtomicStatus(AtomicU8::new(TxStatus::Active as u8))
    }

    /// Loads the current status.
    #[inline]
    pub(crate) fn load(&self) -> TxStatus {
        // ordering: acquire pairs with the AcqRel transitions below — a
        // reader that observes Committed also observes everything the
        // committer wrote before its CAS (the locator's new value).
        match self.0.load(Ordering::Acquire) {
            0 => TxStatus::Active,
            1 => TxStatus::Committed,
            _ => TxStatus::Aborted,
        }
    }

    /// Attempts the `Active -> Committed` transition.
    ///
    /// Returns `true` if this call performed the transition; `false` if the
    /// transaction was no longer active (typically because an enemy aborted
    /// it first).
    #[inline]
    pub(crate) fn try_commit(&self) -> bool {
        // ordering: AcqRel — the release half publishes the transaction's
        // writes to status readers (see `load`); the acquire half orders
        // the decided status against this thread's subsequent cleanup.
        self.0
            .compare_exchange(
                TxStatus::Active as u8,
                TxStatus::Committed as u8,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// Attempts the `Active -> Aborted` transition.
    ///
    /// Returns `true` if this call performed the transition; `false` if the
    /// transaction already committed or was already aborted.
    #[inline]
    pub(crate) fn try_abort(&self) -> bool {
        // ordering: AcqRel for symmetry with `try_commit` — an enemy that
        // aborts a victim publishes the decision to the victim's own
        // status checks and to every locator reader.
        self.0
            .compare_exchange(
                TxStatus::Active as u8,
                TxStatus::Aborted as u8,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn new_status_is_active() {
        let s = AtomicStatus::new_active();
        assert_eq!(s.load(), TxStatus::Active);
        assert!(s.load().is_active());
        assert!(!s.load().is_committed());
        assert!(!s.load().is_aborted());
    }

    #[test]
    fn commit_transition_succeeds_once() {
        let s = AtomicStatus::new_active();
        assert!(s.try_commit());
        assert_eq!(s.load(), TxStatus::Committed);
        assert!(!s.try_commit());
        assert!(!s.try_abort());
        assert_eq!(s.load(), TxStatus::Committed);
    }

    #[test]
    fn abort_transition_succeeds_once() {
        let s = AtomicStatus::new_active();
        assert!(s.try_abort());
        assert_eq!(s.load(), TxStatus::Aborted);
        assert!(!s.try_abort());
        assert!(!s.try_commit());
        assert_eq!(s.load(), TxStatus::Aborted);
    }

    #[test]
    fn commit_and_abort_are_mutually_exclusive_under_contention() {
        // Many racing committers and aborters: exactly one CAS may win.
        for _ in 0..64 {
            let s = Arc::new(AtomicStatus::new_active());
            let mut handles = Vec::new();
            for i in 0..8 {
                let s = Arc::clone(&s);
                handles.push(thread::spawn(move || {
                    if i % 2 == 0 {
                        s.try_commit()
                    } else {
                        s.try_abort()
                    }
                }));
            }
            let wins: usize = handles
                .into_iter()
                .map(|h| usize::from(h.join().unwrap()))
                .sum();
            assert_eq!(wins, 1, "exactly one transition must win");
            assert_ne!(s.load(), TxStatus::Active);
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(TxStatus::Active.to_string(), "active");
        assert_eq!(TxStatus::Committed.to_string(), "committed");
        assert_eq!(TxStatus::Aborted.to_string(), "aborted");
    }
}
