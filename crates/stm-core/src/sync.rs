//! Synchronization facade: the single import point for every atomic, mutex,
//! and condvar used on the runtime's concurrent hot paths.
//!
//! Normally this re-exports `std::sync::atomic` and the vendored
//! `parking_lot` shim. Under `--features model-check` the same names resolve
//! to [`loomlite`] modeled types instead, so the epoch reclaimer, the reader
//! registry, and (via their own facades) `arcswap` and the `stm-log`
//! slot-ring can be driven by the deterministic interleaving checker — see
//! the "Correctness tooling" section of the repository README.
//!
//! **Rule:** new concurrent code in this crate (and in `stm-log`) must take
//! its `Atomic*`, `Mutex`, and `Condvar` from this module, not from
//! `std::sync` or `parking_lot` directly, or it silently escapes the model
//! checker (and trips the `lint_concurrency` test for mutexes). `Arc` stays
//! `std::sync::Arc` in both configurations: reference counting itself is not
//! under test and keeping the type stable preserves public signatures.

/// Atomic integer/bool/pointer types plus [`Ordering`].
///
/// [`Ordering`]: std::sync::atomic::Ordering
pub mod atomic {
    #[cfg(not(feature = "model-check"))]
    pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize};

    #[cfg(feature = "model-check")]
    pub use loomlite::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize};

    pub use std::sync::atomic::Ordering;
}

#[cfg(not(feature = "model-check"))]
pub use parking_lot::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};

#[cfg(feature = "model-check")]
pub use loomlite::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};

pub use std::sync::Arc;

/// Yields to the scheduler: a modeled schedule point under `model-check`,
/// `std::thread::yield_now` otherwise. Spin-wait loops on the hot paths
/// should use this so the checker can preempt them deterministically.
pub fn yield_now() {
    #[cfg(feature = "model-check")]
    loomlite::thread::yield_now();
    #[cfg(not(feature = "model-check"))]
    std::thread::yield_now();
}
