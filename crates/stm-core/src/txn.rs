//! Transaction descriptors and the per-attempt transaction handle.
//!
//! Three layers of state make up a transaction:
//!
//! * [`TxLineage`] — state that survives aborts and restarts: the identity of
//!   the logical transaction, the **timestamp** assigned when it first began
//!   (the greedy manager's priority), and accumulated bookkeeping (karma,
//!   abort counts) that managers such as Karma, Eruption and Polka consult.
//! * [`TxShared`] — the descriptor of one *attempt*, visible to every other
//!   thread: a CAS-able status word, the public `waiting` flag of the greedy
//!   manager, and per-attempt counters. Enemy transactions hold `Arc`s to
//!   this descriptor (through object locators or reader lists) and may abort
//!   the attempt by CAS-ing its status.
//! * [`Txn`] — the handle passed to the user's transactional closure. It
//!   performs reads and writes, detects conflicts eagerly, and consults the
//!   thread's contention manager to resolve them.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::epoch::EpochGc;
use crate::error::{AbortCause, StmError, TxResult};
use crate::hook::CommitOp;
use crate::manager::{ConflictKind, ContentionManager, Resolution, TxView};
use crate::stats::TxnStats;
use crate::status::{AtomicStatus, TxStatus};
use crate::stm::{ReadVisibility, Stm};
use crate::tvar::{InvisibleRead, Locator, OwnedWrite, TVar, TrackedRead, TrackedWrite};
use crate::wait::SpinWait;

/// State of a logical transaction that persists across aborts and retries.
///
/// The paper's greedy manager requires that "when a transaction begins, it is
/// given a timestamp which it retains even if it aborts and restarts"; the
/// lineage is where that timestamp lives. Managers that accumulate priority
/// over a transaction's lifetime (Karma, Eruption, Polka) store their
/// accumulated priority here as well.
#[derive(Debug)]
pub struct TxLineage {
    id: u64,
    timestamp: u64,
    karma: AtomicU64,
    aborts: AtomicU64,
    opened_total: AtomicU64,
    born: Instant,
}

impl TxLineage {
    /// Creates a new lineage with the given identity and timestamp.
    pub fn new(id: u64, timestamp: u64) -> Self {
        TxLineage {
            id,
            timestamp,
            karma: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
            opened_total: AtomicU64::new(0),
            born: Instant::now(),
        }
    }

    /// Identity of the logical transaction (unique per [`Stm`]).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The timestamp assigned when the transaction first began. Smaller
    /// timestamps mean higher priority for the greedy manager.
    pub fn timestamp(&self) -> u64 {
        self.timestamp
    }

    /// Accumulated manager-defined priority ("karma").
    pub fn karma(&self) -> u64 {
        self.karma.load(Ordering::Relaxed)
    }

    /// Adds to the accumulated priority. Used by Karma/Eruption/Polka.
    pub fn add_karma(&self, delta: u64) {
        self.karma.fetch_add(delta, Ordering::Relaxed);
    }

    /// Resets the accumulated priority to zero (Karma does this on commit).
    pub fn reset_karma(&self) {
        self.karma.store(0, Ordering::Relaxed);
    }

    /// Number of aborted attempts so far.
    pub fn aborts(&self) -> u64 {
        self.aborts.load(Ordering::Relaxed)
    }

    /// Number of attempts so far (aborts + the current/last attempt).
    pub fn attempts(&self) -> u64 {
        self.aborts() + 1
    }

    pub(crate) fn note_abort(&self) {
        self.aborts.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of objects opened across all attempts.
    pub fn opened_total(&self) -> u64 {
        self.opened_total.load(Ordering::Relaxed)
    }

    pub(crate) fn note_open(&self) {
        self.opened_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Wall-clock age of the transaction since it first began.
    pub fn age(&self) -> Duration {
        self.born.elapsed()
    }
}

/// The shared descriptor of one transaction attempt.
///
/// Other threads interact with a transaction exclusively through this
/// structure: they inspect its priority and `waiting` flag, and they may
/// abort it by CAS-ing the status word.
#[derive(Debug)]
pub struct TxShared {
    lineage: Arc<TxLineage>,
    attempt: u64,
    status: AtomicStatus,
    waiting: AtomicBool,
    opened_this_attempt: AtomicU64,
}

impl TxShared {
    /// Creates a descriptor for attempt number `attempt` of `lineage`.
    pub fn new(lineage: Arc<TxLineage>, attempt: u64) -> Self {
        TxShared {
            lineage,
            attempt,
            status: AtomicStatus::new_active(),
            waiting: AtomicBool::new(false),
            opened_this_attempt: AtomicU64::new(0),
        }
    }

    /// The persistent lineage of this attempt.
    pub fn lineage(&self) -> &Arc<TxLineage> {
        &self.lineage
    }

    /// Identity of the logical transaction.
    pub fn id(&self) -> u64 {
        self.lineage.id()
    }

    /// Attempt number, starting at 1.
    pub fn attempt(&self) -> u64 {
        self.attempt
    }

    /// The greedy-priority timestamp (smaller = older = higher priority).
    pub fn timestamp(&self) -> u64 {
        self.lineage.timestamp()
    }

    /// Current status of this attempt.
    pub fn status(&self) -> TxStatus {
        self.status.load()
    }

    /// Whether this attempt is still active.
    pub fn is_active(&self) -> bool {
        self.status().is_active()
    }

    /// Whether this attempt committed.
    pub fn is_committed(&self) -> bool {
        self.status().is_committed()
    }

    /// Whether this attempt aborted.
    pub fn is_aborted(&self) -> bool {
        self.status().is_aborted()
    }

    /// Attempts to abort this transaction attempt (CAS `Active -> Aborted`).
    ///
    /// This is the operation an enemy transaction performs when its
    /// contention manager returns [`Resolution::AbortOther`]. Returns `true`
    /// if this call performed the abort.
    pub fn try_abort(&self) -> bool {
        self.status.try_abort()
    }

    /// Attempts to commit this transaction attempt (CAS `Active ->
    /// Committed`). Inside the STM runtime only the owning thread calls this
    /// (after validating its reads); it is exposed publicly for execution
    /// simulators that drive descriptors directly.
    pub fn try_commit(&self) -> bool {
        self.status.try_commit()
    }

    /// Whether the transaction is currently waiting for another transaction.
    /// This is the public `waiting` field of the greedy manager's Rule 1.
    pub fn is_waiting(&self) -> bool {
        // ordering: acquire pairs with `set_waiting`'s release so an enemy
        // inspecting the flag sees the state the waiter published before it.
        self.waiting.load(Ordering::Acquire)
    }

    /// Sets the public `waiting` flag. The runtime flips this around every
    /// contention-manager wait; it is exposed publicly for contention-manager
    /// unit tests and for execution simulators that drive descriptors
    /// directly.
    pub fn set_waiting(&self, value: bool) {
        // ordering: release — see `is_waiting`.
        self.waiting.store(value, Ordering::Release);
    }

    /// Number of objects opened during this attempt.
    pub fn opened_in_attempt(&self) -> u64 {
        self.opened_this_attempt.load(Ordering::Relaxed)
    }

    pub(crate) fn note_open(&self) {
        self.opened_this_attempt.fetch_add(1, Ordering::Relaxed);
        self.lineage.note_open();
    }
}

/// The handle through which a transactional closure reads and writes
/// [`TVar`]s.
///
/// Obtained from [`crate::ThreadCtx::atomically`]; all operations may fail
/// with [`StmError::Aborted`], in which case the error should simply be
/// An action registered with [`Txn::defer_on_commit`], run only if the
/// transaction commits.
type DeferredAction = Box<dyn FnOnce(&EpochGc) + Send>;

/// Per-thread transaction scratch space: the read/write/publish sets of the
/// attempt currently running on a [`crate::ThreadCtx`]. Owned by the thread
/// context and lent to each [`Txn`], so the backing vectors' capacity is
/// reused across transactions instead of being reallocated per attempt —
/// the tiny-transaction hot path performs no `Vec` spine allocation after
/// warm-up.
#[derive(Default)]
pub(crate) struct TxScratch {
    reads: Vec<Arc<dyn TrackedRead>>,
    writes: Vec<Box<dyn TrackedWrite>>,
    published: Vec<CommitOp>,
    deferred: Vec<DeferredAction>,
}

impl TxScratch {
    fn clear(&mut self) {
        self.reads.clear();
        self.writes.clear();
        self.published.clear();
        self.deferred.clear();
    }
}

/// propagated with `?` — the runtime will retry the closure.
pub struct Txn<'ctx> {
    stm: &'ctx Stm,
    shared: Arc<TxShared>,
    manager: &'ctx mut dyn ContentionManager,
    scratch: &'ctx mut TxScratch,
    stats: TxnStats,
    publish_forced: bool,
    commit_seq: Option<u64>,
    validation_failed: bool,
    finished: bool,
}

impl<'ctx> std::fmt::Debug for Txn<'ctx> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Txn")
            .field("id", &self.shared.id())
            .field("attempt", &self.shared.attempt())
            .field("timestamp", &self.shared.timestamp())
            .field("status", &self.shared.status())
            .finish()
    }
}

impl<'ctx> Txn<'ctx> {
    pub(crate) fn new(
        stm: &'ctx Stm,
        shared: Arc<TxShared>,
        manager: &'ctx mut dyn ContentionManager,
        scratch: &'ctx mut TxScratch,
    ) -> Self {
        // Defensive: a panic that unwound through a previous attempt may
        // have left entries behind; they belong to that attempt, not this
        // one. No-op on the normal path (finish paths clear the scratch).
        scratch.clear();
        Txn {
            stm,
            shared,
            manager,
            scratch,
            stats: TxnStats::new(),
            publish_forced: false,
            commit_seq: None,
            validation_failed: false,
            finished: false,
        }
    }

    /// Identity of the logical transaction.
    pub fn id(&self) -> u64 {
        self.shared.id()
    }

    /// The greedy-priority timestamp of this transaction.
    pub fn timestamp(&self) -> u64 {
        self.shared.timestamp()
    }

    /// Attempt number, starting at 1.
    pub fn attempt(&self) -> u64 {
        self.shared.attempt()
    }

    /// Per-attempt statistics collected so far.
    pub fn stats(&self) -> &TxnStats {
        &self.stats
    }

    /// The shared descriptor of this attempt (mostly useful in tests and
    /// instrumentation).
    pub fn shared(&self) -> &Arc<TxShared> {
        &self.shared
    }

    /// Explicitly aborts the transaction. The error returned must be
    /// propagated out of the closure; [`crate::ThreadCtx::atomically`] then
    /// reports it to the caller without retrying.
    pub fn abort<T>(&mut self) -> TxResult<T> {
        Err(StmError::Aborted(AbortCause::Explicit))
    }

    /// Publishes one [`CommitOp`] to the [`crate::CommitHook`] installed on
    /// the [`Stm`]. Ops accumulate in publish order and are handed to the
    /// hook atomically at this attempt's commit point; an aborted attempt
    /// publishes nothing (the retry starts with an empty set). A no-op when
    /// no hook is installed.
    pub fn publish(&mut self, op: CommitOp) {
        self.scratch.published.push(op);
    }

    /// Forces this transaction through the commit hook even when nothing
    /// was published, so its commit receives a sequence number — the
    /// consistent-cut marker [`crate::ThreadCtx::atomically_logged`] uses.
    pub fn publish_marker(&mut self) {
        self.publish_forced = true;
    }

    /// The sequence number the commit hook assigned to this transaction's
    /// published write-set (`None` before commit, without a hook, or when
    /// nothing was published and no marker was requested).
    pub fn commit_seq(&self) -> Option<u64> {
        self.commit_seq
    }

    /// Registers an action to run **after** this attempt's commit point (the
    /// status CAS), receiving the [`Stm`]'s reclamation domain. An aborted
    /// attempt discards its actions — a retry starts with an empty list.
    ///
    /// This is the hook commit-time garbage collection hangs off: a store
    /// that deletes a key registers the unlink-and-retire of the key's cell
    /// here, so the unlink happens exactly once, and only for the attempt
    /// that actually committed the delete.
    pub fn defer_on_commit(&mut self, action: impl FnOnce(&EpochGc) + Send + 'static) {
        self.scratch.deferred.push(Box::new(action));
    }

    /// Whether this transaction currently owns `tvar` for writing (it has an
    /// uncommitted write to it in this attempt). Lets callers distinguish
    /// "I wrote this tombstone myself" from "another transaction committed
    /// it" without consulting their own bookkeeping.
    pub fn owns<T>(&self, tvar: &TVar<T>) -> bool
    where
        T: Send + Sync + 'static,
    {
        tvar.inner()
            .peek_locator()
            .owner()
            .is_some_and(|owner| Arc::ptr_eq(owner, &self.shared))
    }

    /// The epoch-based reclamation domain of the [`Stm`] this transaction
    /// runs on (see [`crate::epoch`]).
    pub fn epoch(&self) -> &'ctx EpochGc {
        self.stm.epoch()
    }

    /// Reads the value of `tvar`, returning a clone.
    pub fn read<T>(&mut self, tvar: &TVar<T>) -> TxResult<T>
    where
        T: Clone + Send + Sync + 'static,
    {
        self.read_arc(tvar).map(|arc| (*arc).clone())
    }

    /// Reads the value of `tvar`, returning a shared handle to the version
    /// observed (cheaper than [`Txn::read`] for large values).
    pub fn read_arc<T>(&mut self, tvar: &TVar<T>) -> TxResult<Arc<T>>
    where
        T: Send + Sync + 'static,
    {
        self.ensure_active()?;
        let visible = self.stm.config().read_visibility == ReadVisibility::Visible;
        if visible {
            let newly_registered = tvar.inner().register_reader(&self.shared);
            if newly_registered {
                // The object itself is the tracked read (see the
                // `TrackedRead` impl on `TVarInner`): an `Arc` clone, no
                // per-read heap allocation.
                self.scratch.reads.push(Arc::clone(tvar.inner()) as _);
            }
        }
        loop {
            self.ensure_active()?;
            // Guard-based load: the locator is only inspected, never
            // retained, so the read path skips the locator's own
            // refcount traffic (see `TVarInner::peek_locator`).
            let loc = tvar.inner().peek_locator();
            if let Some(owner) = loc.owner() {
                if Arc::ptr_eq(owner, &self.shared) {
                    // Read-your-own-write.
                    let value = loc.new_value();
                    self.note_read(tvar.id());
                    return Ok(value);
                }
                if owner.is_active() {
                    let owner = Arc::clone(owner);
                    drop(loc);
                    self.resolve_conflict(&owner, ConflictKind::ReadWrite)?;
                    continue;
                }
            }
            let value = loc.stable_value();
            drop(loc);
            // Opacity: re-check our own status *after* loading the value. An
            // enemy that invalidates our earlier reads must abort us before it
            // commits; if its commit preceded our load, its abort of us did
            // too, so this check guarantees we never hand user code a value
            // that is inconsistent with what it already read.
            self.ensure_active()?;
            if !visible {
                self.scratch.reads.push(Arc::new(InvisibleRead::new(
                    Arc::clone(tvar.inner()),
                    Arc::clone(&value),
                )));
                if self.stm.config().validate_on_open {
                    self.validate_or_abort()?;
                }
            }
            self.note_read(tvar.id());
            return Ok(value);
        }
    }

    /// Writes `value` into `tvar`.
    pub fn write<T>(&mut self, tvar: &TVar<T>, value: T) -> TxResult<()>
    where
        T: Clone + Send + Sync + 'static,
    {
        self.update(tvar, move |_| value)
    }

    /// Replaces the value of `tvar` with `f(current)`.
    pub fn modify<T>(&mut self, tvar: &TVar<T>, f: impl FnOnce(&T) -> T) -> TxResult<()>
    where
        T: Clone + Send + Sync + 'static,
    {
        self.update(tvar, f)
    }

    /// Reads `tvar` and acquires it for writing in one step, returning the
    /// current value. Subsequent [`Txn::write`]s to the same `tvar` by this
    /// transaction will not conflict with it again.
    pub fn read_for_update<T>(&mut self, tvar: &TVar<T>) -> TxResult<T>
    where
        T: Clone + Send + Sync + 'static,
    {
        let mut out: Option<T> = None;
        self.update(tvar, |current| {
            out = Some(current.clone());
            current.clone()
        })?;
        Ok(out.expect("update closure must run on success"))
    }

    fn update<T, F>(&mut self, tvar: &TVar<T>, f: F) -> TxResult<()>
    where
        T: Clone + Send + Sync + 'static,
        F: FnOnce(&T) -> T,
    {
        self.ensure_active()?;
        let visible = self.stm.config().read_visibility == ReadVisibility::Visible;
        let mut f = Some(f);
        loop {
            self.ensure_active()?;
            let loc = tvar.inner().load_locator();
            if let Some(owner) = loc.owner() {
                if Arc::ptr_eq(owner, &self.shared) {
                    // Already acquired by this transaction: update in place.
                    let func = f.take().expect("update closure already consumed");
                    let current = loc.new_value();
                    loc.set_new_value(Arc::new(func(&current)));
                    self.note_write(tvar.id());
                    return Ok(());
                }
                if owner.is_active() {
                    let owner = Arc::clone(owner);
                    self.resolve_conflict(&owner, ConflictKind::WriteWrite)?;
                    continue;
                }
            }
            // The object is unowned (or owned by a finished transaction):
            // try to acquire it by installing a locator that names us.
            let current = loc.stable_value();
            // Same opacity re-check as in `read_arc`: never expose a value
            // committed by an enemy that has already aborted us.
            self.ensure_active()?;
            let new_loc = Arc::new(Locator::owned(
                Arc::clone(&self.shared),
                Arc::clone(&current),
                Arc::clone(&current),
            ));
            if !tvar.inner().try_replace_locator(&loc, Arc::clone(&new_loc)) {
                continue;
            }
            self.scratch.writes.push(Box::new(OwnedWrite::new(
                Arc::clone(tvar.inner()),
                Arc::clone(&new_loc),
            )));
            if visible {
                let readers = tvar.inner().active_readers(&self.shared);
                self.arbitrate_readers(readers)?;
            } else if self.stm.config().validate_on_open {
                self.validate_or_abort()?;
            }
            let func = f.take().expect("update closure already consumed");
            let base = new_loc.new_value();
            new_loc.set_new_value(Arc::new(func(&base)));
            self.note_write(tvar.id());
            return Ok(());
        }
    }

    /// A writer that just acquired an object must come to an arrangement with
    /// every transaction currently reading it (visible-read mode): each
    /// reader is either aborted or allowed to finish first, as decided by the
    /// contention manager.
    fn arbitrate_readers(&mut self, readers: Vec<Arc<TxShared>>) -> TxResult<()> {
        for reader in readers {
            loop {
                if !reader.is_active() {
                    break;
                }
                self.ensure_active()?;
                self.resolve_conflict(&reader, ConflictKind::WriteRead)?;
            }
        }
        Ok(())
    }

    fn ensure_active(&self) -> TxResult<()> {
        if self.shared.is_aborted() {
            Err(StmError::Aborted(AbortCause::KilledByEnemy))
        } else {
            Ok(())
        }
    }

    /// Asks the contention manager what to do about a conflict with `other`,
    /// then carries out its decision.
    fn resolve_conflict(&mut self, other: &Arc<TxShared>, kind: ConflictKind) -> TxResult<()> {
        self.stats.conflicts += 1;
        let resolution =
            self.manager
                .resolve(TxView::new(&self.shared), TxView::new(other), kind);
        match resolution {
            Resolution::AbortOther => {
                self.stats.enemy_aborts += 1;
                other.try_abort();
                Ok(())
            }
            Resolution::AbortSelf => Err(StmError::Aborted(AbortCause::ManagerSelfAbort)),
            Resolution::Wait(spec) => {
                self.stats.waits += 1;
                self.shared.set_waiting(true);
                let deadline = spec.max.map(|d| Instant::now() + d);
                let mut spin = SpinWait::new();
                loop {
                    if !other.is_active() || other.is_waiting() {
                        break;
                    }
                    if self.shared.is_aborted() {
                        break;
                    }
                    if let Some(deadline) = deadline {
                        if Instant::now() >= deadline {
                            break;
                        }
                    }
                    spin.snooze();
                }
                self.shared.set_waiting(false);
                if self.shared.is_aborted() {
                    Err(StmError::Aborted(AbortCause::KilledByEnemy))
                } else {
                    Ok(())
                }
            }
        }
    }

    fn validate(&mut self) -> bool {
        if self.shared.is_aborted() {
            return false;
        }
        let ok = self.scratch.reads.iter().all(|r| r.still_valid());
        if !ok {
            self.validation_failed = true;
        }
        ok
    }

    fn validate_or_abort(&mut self) -> TxResult<()> {
        if self.validate() {
            Ok(())
        } else {
            Err(StmError::Aborted(AbortCause::ValidationFailed))
        }
    }

    fn note_read(&mut self, object_id: u64) {
        self.stats.reads += 1;
        self.shared.note_open();
        self.manager.opened(TxView::new(&self.shared), object_id);
    }

    fn note_write(&mut self, object_id: u64) {
        self.stats.writes += 1;
        self.shared.note_open();
        self.manager.opened(TxView::new(&self.shared), object_id);
    }

    /// Whether the most recent validation failure caused the abort.
    pub(crate) fn validation_failed(&self) -> bool {
        self.validation_failed
    }

    /// Validates the read set and attempts to commit. Returns `true` when
    /// the attempt committed.
    pub(crate) fn finish_commit(&mut self) -> bool {
        debug_assert!(!self.finished, "finish_commit called twice");
        if !self.validate() {
            return false;
        }
        // Only clone the hook handle when this commit actually goes through
        // it — transactions that published nothing skip the refcount
        // traffic entirely.
        let hook = if self.publish_forced || !self.scratch.published.is_empty() {
            self.stm.config().commit_hook.clone()
        } else {
            None
        };
        let committed = match hook {
            Some(hook) => {
                // The hook wraps the linearization point: it performs the
                // status CAS under its own ordering lock and records the
                // published ops only when the CAS succeeds, so log order
                // matches serialization order (see `crate::hook`).
                let shared = Arc::clone(&self.shared);
                let seq = hook.on_commit(&self.scratch.published, &mut || shared.try_commit());
                self.commit_seq = seq;
                seq.is_some()
            }
            None => self.shared.try_commit(),
        };
        if !committed {
            return false;
        }
        for write in &self.scratch.writes {
            write.detach_committed();
        }
        for read in &self.scratch.reads {
            read.release(&self.shared);
        }
        // Deferred actions run after the commit point and after the writes
        // are detached, so they observe the committed values they test for.
        for action in self.scratch.deferred.drain(..) {
            action(self.stm.epoch());
        }
        self.manager.committed(TxView::new(&self.shared));
        self.stm.stats().note_commit(&self.stats);
        self.scratch.clear();
        self.finished = true;
        true
    }

    /// Marks the attempt aborted (attributing it to `cause`) and performs
    /// cleanup.
    pub(crate) fn finish_abort(&mut self, cause: AbortCause) {
        if self.finished {
            return;
        }
        self.shared.try_abort();
        for read in &self.scratch.reads {
            read.release(&self.shared);
        }
        self.manager.aborted(TxView::new(&self.shared));
        self.shared.lineage().note_abort();
        self.stm.stats().note_abort(
            &self.stats,
            cause,
            cause == AbortCause::ValidationFailed || self.validation_failed,
        );
        self.scratch.clear();
        self.finished = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineage_counters() {
        let lineage = TxLineage::new(7, 42);
        assert_eq!(lineage.id(), 7);
        assert_eq!(lineage.timestamp(), 42);
        assert_eq!(lineage.attempts(), 1);
        lineage.note_abort();
        lineage.note_abort();
        assert_eq!(lineage.aborts(), 2);
        assert_eq!(lineage.attempts(), 3);
        lineage.add_karma(5);
        lineage.add_karma(3);
        assert_eq!(lineage.karma(), 8);
        lineage.reset_karma();
        assert_eq!(lineage.karma(), 0);
        lineage.note_open();
        assert_eq!(lineage.opened_total(), 1);
        assert!(lineage.age() >= Duration::from_secs(0));
    }

    #[test]
    fn shared_status_transitions() {
        let lineage = Arc::new(TxLineage::new(1, 10));
        let shared = TxShared::new(Arc::clone(&lineage), 1);
        assert!(shared.is_active());
        assert!(!shared.is_waiting());
        shared.set_waiting(true);
        assert!(shared.is_waiting());
        shared.set_waiting(false);
        assert!(shared.try_commit());
        assert!(shared.is_committed());
        assert!(!shared.try_abort());
    }

    #[test]
    fn shared_abort_wins_over_commit() {
        let lineage = Arc::new(TxLineage::new(2, 11));
        let shared = TxShared::new(lineage, 1);
        assert!(shared.try_abort());
        assert!(shared.is_aborted());
        assert!(!shared.try_commit());
        assert_eq!(shared.timestamp(), 11);
        assert_eq!(shared.id(), 2);
        assert_eq!(shared.attempt(), 1);
    }

    #[test]
    fn shared_open_counters() {
        let lineage = Arc::new(TxLineage::new(3, 12));
        let shared = TxShared::new(Arc::clone(&lineage), 2);
        shared.note_open();
        shared.note_open();
        assert_eq!(shared.opened_in_attempt(), 2);
        assert_eq!(lineage.opened_total(), 2);
    }
}
