//! Sharded visible-reader registry.
//!
//! Visible readers register in a small per-object *sharded* registry
//! (shard = reader id modulo [`READER_SHARDS`]) so that concurrent
//! read-mostly transactions don't convoy on one list mutex, and each
//! registration only scans its own short shard. Finished readers are pruned
//! lazily: registration prunes only when its shard has grown past
//! [`READER_PRUNE_THRESHOLD`], so the uncontended register/unregister pair
//! is O(1); writers ([`ReaderRegistry::active_readers`]) still prune every
//! shard they scan, which they traverse anyway to arbitrate.
//!
//! The registry is generic over the reader record (anything implementing
//! [`RegisteredReader`]) so the bounded concurrency models in
//! [`crate::models`] can drive the *same* code with a two-field test reader
//! instead of a full transaction descriptor. The runtime instantiates it
//! with `TxShared` inside every `TVar`.
//!
//! All locking goes through [`crate::sync`], so under
//! `--features model-check` the shard mutexes are loomlite modeled mutexes
//! and the registry's interleavings are explored exhaustively.

use crate::sync::{Arc, Mutex};

/// Visible-reader registry shards per object. Eight shards of a few
/// entries each cover the realistic visible-reader population (readers
/// unregister on commit); the shard index is the reader's id modulo this,
/// so one transaction always lands in the same shard.
pub const READER_SHARDS: usize = 8;

/// Shard occupancy past which registration prunes finished readers before
/// pushing. Below it, registration is append-only (amortized O(1)); the
/// stale-entry population per object is bounded by
/// `READER_SHARDS × READER_PRUNE_THRESHOLD`.
pub const READER_PRUNE_THRESHOLD: usize = 8;

/// What the registry needs to know about a reader record.
pub trait RegisteredReader {
    /// A stable identity; selects the reader's shard.
    fn reader_id(&self) -> u64;
    /// Whether the reader is still running (finished readers are pruned).
    fn is_running(&self) -> bool;
}

/// A sharded set of visible readers attached to one object.
#[derive(Debug)]
pub struct ReaderRegistry<R> {
    shards: [Mutex<Vec<Arc<R>>>; READER_SHARDS],
}

impl<R> Default for ReaderRegistry<R> {
    fn default() -> Self {
        ReaderRegistry {
            shards: std::array::from_fn(|_| Mutex::new(Vec::new())),
        }
    }
}

impl<R: RegisteredReader> ReaderRegistry<R> {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn shard_of(&self, reader: &R) -> &Mutex<Vec<Arc<R>>> {
        &self.shards[(reader.reader_id() % READER_SHARDS as u64) as usize]
    }

    /// Registers `reader` as a visible reader. Returns `true` if it was not
    /// already registered. Only the reader's own shard is touched, and
    /// finished entries are pruned only once the shard has grown past
    /// [`READER_PRUNE_THRESHOLD`], so the uncontended call is O(1).
    pub fn register(&self, reader: &Arc<R>) -> bool {
        let mut shard = self.shard_of(reader).lock();
        if shard.iter().any(|r| Arc::ptr_eq(r, reader)) {
            return false;
        }
        if shard.len() >= READER_PRUNE_THRESHOLD {
            shard.retain(|r| r.is_running());
        }
        shard.push(Arc::clone(reader));
        true
    }

    /// Removes `reader` from its shard. Removes only the caller's entry —
    /// no full-list rescan on the release path.
    pub fn unregister(&self, reader: &R) {
        let mut shard = self.shard_of(reader).lock();
        if let Some(pos) = shard
            .iter()
            .position(|r| std::ptr::eq(Arc::as_ptr(r), reader))
        {
            shard.swap_remove(pos);
        }
    }

    /// Returns the currently registered running readers other than `me`,
    /// pruning finished readers from every shard on the way (the writer
    /// pays an O(readers) walk here regardless — it must arbitrate with
    /// each of them).
    pub fn active_readers(&self, me: &Arc<R>) -> Vec<Arc<R>> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let mut shard = shard.lock();
            shard.retain(|r| r.is_running());
            out.extend(shard.iter().filter(|r| !Arc::ptr_eq(r, me)).cloned());
        }
        out
    }

    /// Number of registered readers, stale entries included (tests and
    /// instrumentation).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|shard| shard.lock().len()).sum()
    }

    /// Whether no reader (stale entries included) is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl RegisteredReader for crate::txn::TxShared {
    fn reader_id(&self) -> u64 {
        self.id()
    }

    fn is_running(&self) -> bool {
        self.is_active()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FakeReader {
        id: u64,
        running: std::sync::atomic::AtomicBool,
    }

    impl FakeReader {
        fn new(id: u64) -> Arc<Self> {
            Arc::new(FakeReader {
                id,
                running: std::sync::atomic::AtomicBool::new(true),
            })
        }

        fn finish(&self) {
            self.running
                .store(false, std::sync::atomic::Ordering::Relaxed);
        }
    }

    impl RegisteredReader for FakeReader {
        fn reader_id(&self) -> u64 {
            self.id
        }

        fn is_running(&self) -> bool {
            self.running.load(std::sync::atomic::Ordering::Relaxed)
        }
    }

    #[test]
    fn same_id_lands_in_same_shard_and_dedupes() {
        let reg: ReaderRegistry<FakeReader> = ReaderRegistry::new();
        let r = FakeReader::new(3);
        assert!(reg.register(&r));
        assert!(!reg.register(&r));
        // A distinct reader with the same id is a distinct registration.
        let r2 = FakeReader::new(3);
        assert!(reg.register(&r2));
        assert_eq!(reg.len(), 2);
        reg.unregister(&r);
        assert_eq!(reg.len(), 1);
        assert!(!reg.is_empty());
    }

    #[test]
    fn prune_on_register_keeps_running_readers() {
        let reg: ReaderRegistry<FakeReader> = ReaderRegistry::new();
        let keep = FakeReader::new(0);
        assert!(reg.register(&keep));
        // Pile finished readers into shard 0 until the threshold prunes.
        for i in 0..(2 * READER_PRUNE_THRESHOLD as u64) {
            let r = FakeReader::new(i * READER_SHARDS as u64);
            reg.register(&r);
            r.finish();
        }
        assert!(reg.len() <= READER_PRUNE_THRESHOLD + 1);
        let me = FakeReader::new(7);
        let active = reg.active_readers(&me);
        assert_eq!(active.len(), 1);
        assert!(Arc::ptr_eq(&active[0], &keep));
        // The writer scan physically pruned every shard.
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn active_readers_excludes_me_and_prunes() {
        let reg: ReaderRegistry<FakeReader> = ReaderRegistry::new();
        let me = FakeReader::new(1);
        let other = FakeReader::new(2);
        let gone = FakeReader::new(3);
        reg.register(&me);
        reg.register(&other);
        reg.register(&gone);
        gone.finish();
        let active = reg.active_readers(&me);
        assert_eq!(active.len(), 1);
        assert!(Arc::ptr_eq(&active[0], &other));
        assert_eq!(reg.len(), 2);
    }
}
