//! Commit observation: publishing a transaction's write-set atomically at
//! commit time.
//!
//! A durable service built on the STM (the `stm-kv` server with its
//! `stm-log` write-ahead log) needs every committed transaction to hand its
//! write-set to a logger **in serialization order** — otherwise a replay of
//! the log could apply two writes to the same object in the wrong order and
//! recover a state no serial execution produced.
//!
//! The runtime makes that possible with a [`CommitHook`]: a closure running
//! inside [`crate::ThreadCtx::atomically`] calls [`crate::Txn::publish`]
//! with [`CommitOp`]s describing the application-level effect of its writes,
//! and the hook installed via [`crate::StmBuilder::commit_hook`] is handed
//! those ops **wrapped around the commit linearization point**: the hook
//! receives a `commit` closure that performs the attempt's status CAS and
//! must invoke it exactly once, recording the ops only when it returns
//! `true`. Because the hook's body brackets the CAS, a hook can recover
//! serialization order without any process-wide lock: it *reserves* a
//! sequence number (one `fetch_add`) before invoking `commit()`, tags the
//! record with it, and lets a consumer merge records back into reserved
//! order. That is sufficient because reservation happens inside the commit
//! window:
//!
//! * if transaction `B` reads or overwrites an object `A` wrote, `B` can
//!   only acquire the object after `A`'s status CAS — and `A` reserved its
//!   sequence number before that CAS, while `B` reserves after it — so
//!   `seq(A) < seq(B)` whenever `B` depends on `A`;
//! * transactions that never conflict may be numbered in either order, and
//!   either order is a correct serialization;
//! * a reservation whose `commit()` returns `false` leaves a gap in the
//!   sequence stream; the hook must account for it (the `stm-log` WAL
//!   publishes such tickets as *abandoned* so its in-order consumer never
//!   stalls, and its recovery is gap-tolerant).
//!
//! The older discipline — one internal lock held across the `commit()`
//! call and the recording — remains correct and is what a simple in-memory
//! hook (like the test hook below) should do; reservation is how a hook on
//! the hot path avoids serializing every commit in the process through one
//! mutex.
//!
//! Transactions that publish nothing bypass the hook entirely (their commit
//! is the plain uncontended CAS), so a read-only request costs nothing
//! extra. [`crate::ThreadCtx::atomically_logged`] forces even an empty
//! write-set through the hook — that is how a snapshotter obtains a
//! sequence number marking a consistent cut of the log.

/// The typed payload of a published write: the value an object holds after
/// a committed transaction.
///
/// The runtime does not interpret values — it only carries them, in
/// serialization order, to the installed [`CommitHook`]. The `stm-kv`
/// service re-exports this enum as its `Value` type, so the same three
/// variants flow from the wire protocol through the store into the
/// write-ahead log without conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitValue {
    /// A signed 64-bit integer (the only value kind protocol v1 carries).
    Int(i64),
    /// A UTF-8 string, arbitrary bytes included (newlines, NULs).
    Str(String),
    /// An opaque byte blob.
    Bytes(Vec<u8>),
}

impl CommitValue {
    /// Stable lower-case name of this value's kind (`int`, `str`, `bytes`)
    /// — used in typed error messages and wire-level type reporting.
    pub fn type_name(&self) -> &'static str {
        match self {
            CommitValue::Int(_) => "int",
            CommitValue::Str(_) => "str",
            CommitValue::Bytes(_) => "bytes",
        }
    }

    /// The integer payload, when this value is an [`CommitValue::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            CommitValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The string payload, when this value is a [`CommitValue::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            CommitValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The blob payload, when this value is a [`CommitValue::Bytes`].
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            CommitValue::Bytes(b) => Some(b),
            _ => None,
        }
    }
}

impl From<i64> for CommitValue {
    fn from(v: i64) -> Self {
        CommitValue::Int(v)
    }
}

impl From<String> for CommitValue {
    fn from(s: String) -> Self {
        CommitValue::Str(s)
    }
}

impl From<&str> for CommitValue {
    fn from(s: &str) -> Self {
        CommitValue::Str(s.to_string())
    }
}

impl From<Vec<u8>> for CommitValue {
    fn from(b: Vec<u8>) -> Self {
        CommitValue::Bytes(b)
    }
}

/// One entry of a committed transaction's published write-set: an
/// application-defined object id and its new state.
///
/// The ids are chosen by the publisher (the `stm-kv` store publishes its
/// keys), not by the runtime; the runtime only guarantees ordering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitOp {
    /// Object `id` now holds `value`.
    Put {
        /// Application-defined object id.
        id: i64,
        /// The committed value.
        value: CommitValue,
    },
    /// Object `id` was removed.
    Del {
        /// Application-defined object id.
        id: i64,
    },
}

impl CommitOp {
    /// A `Put` of any value kind (`CommitOp::put(3, 42)`,
    /// `CommitOp::put(3, "text")`, `CommitOp::put(3, vec![0u8, 1])`).
    pub fn put(id: i64, value: impl Into<CommitValue>) -> CommitOp {
        CommitOp::Put {
            id,
            value: value.into(),
        }
    }

    /// A `Del` of object `id`.
    pub fn del(id: i64) -> CommitOp {
        CommitOp::Del { id }
    }

    /// The object id this op touches.
    pub fn id(&self) -> i64 {
        match *self {
            CommitOp::Put { id, .. } | CommitOp::Del { id } => id,
        }
    }
}

/// A commit observer installed on an [`crate::Stm`] via
/// [`crate::StmBuilder::commit_hook`].
///
/// See the [module documentation](self) for the ordering contract.
pub trait CommitHook: Send + Sync {
    /// Wraps the linearization point of one attempt's commit.
    ///
    /// `ops` is the write-set the transaction published (possibly empty when
    /// the caller used [`crate::ThreadCtx::atomically_logged`]); `commit`
    /// performs the attempt's `Active → Committed` status CAS.
    /// Implementations **must call `commit` exactly once**. When it returns
    /// `true` the implementation records `ops`, assigns them a sequence
    /// number and returns it; sequence order must match serialization
    /// order, either by holding one internal lock across the `commit()`
    /// call and the recording, or by reserving the sequence number before
    /// the `commit()` call and merging records in reserved order (see the
    /// [module documentation](self)). When `commit` returns `false` (an
    /// enemy aborted the attempt first) the implementation records nothing
    /// and returns `None`.
    fn on_commit(&self, ops: &[CommitOp], commit: &mut dyn FnMut() -> bool) -> Option<u64>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Stm, TVar};
    use std::sync::{Arc, Mutex};

    /// One `(seq, write-set)` record a test hook captured.
    type Recorded = (u64, Vec<CommitOp>);

    /// A hook that implements the intended locking discipline and remembers
    /// every record in order.
    #[derive(Default)]
    struct RecordingHook {
        log: Mutex<(u64, Vec<Recorded>)>,
    }

    impl CommitHook for RecordingHook {
        fn on_commit(&self, ops: &[CommitOp], commit: &mut dyn FnMut() -> bool) -> Option<u64> {
            let mut log = self.log.lock().unwrap();
            if !commit() {
                return None;
            }
            log.0 += 1;
            let seq = log.0;
            log.1.push((seq, ops.to_vec()));
            Some(seq)
        }
    }

    #[test]
    fn published_ops_reach_the_hook_in_commit_order() {
        let hook = Arc::new(RecordingHook::default());
        let stm = Stm::builder().commit_hook(hook.clone()).build();
        let v = TVar::new(0i64);
        let mut ctx = stm.thread();
        for i in 1..=3i64 {
            let (result, report) = ctx.atomically_traced(|tx| {
                tx.write(&v, i)?;
                tx.publish(CommitOp::put(7, i));
                Ok(())
            });
            result.unwrap();
            assert_eq!(report.commit_seq, Some(i as u64));
        }
        let log = hook.log.lock().unwrap();
        assert_eq!(
            log.1,
            vec![
                (1, vec![CommitOp::put(7, 1)]),
                (2, vec![CommitOp::put(7, 2)]),
                (3, vec![CommitOp::put(7, 3)]),
            ]
        );
    }

    #[test]
    fn unpublished_transactions_bypass_the_hook() {
        let hook = Arc::new(RecordingHook::default());
        let stm = Stm::builder().commit_hook(hook.clone()).build();
        let v = TVar::new(0i64);
        let mut ctx = stm.thread();
        let (result, report) = ctx.atomically_traced(|tx| tx.read(&v));
        assert_eq!(result.unwrap(), 0);
        assert_eq!(report.commit_seq, None);
        assert!(hook.log.lock().unwrap().1.is_empty());
    }

    #[test]
    fn atomically_logged_forces_an_empty_record_through() {
        let hook = Arc::new(RecordingHook::default());
        let stm = Stm::builder().commit_hook(hook.clone()).build();
        let v = TVar::new(5i64);
        let mut ctx = stm.thread();
        let (result, report) = ctx.atomically_logged(|tx| tx.read(&v));
        assert_eq!(result.unwrap(), 5);
        assert_eq!(report.commit_seq, Some(1));
        assert_eq!(hook.log.lock().unwrap().1, vec![(1, Vec::new())]);
    }

    #[test]
    fn only_the_committing_attempt_is_logged() {
        use crate::error::{AbortCause, StmError};
        use std::sync::atomic::{AtomicU64, Ordering};
        let hook = Arc::new(RecordingHook::default());
        let stm = Stm::builder().commit_hook(hook.clone()).build();
        let v = TVar::new(0i64);
        let failures = AtomicU64::new(2);
        let mut ctx = stm.thread();
        let (result, report) = ctx.atomically_traced(|tx| {
            let next = tx.read(&v)? + 1;
            tx.write(&v, next)?;
            tx.publish(CommitOp::put(0, next));
            if failures.load(Ordering::Relaxed) > 0 {
                failures.fetch_sub(1, Ordering::Relaxed);
                return Err(StmError::Aborted(AbortCause::ValidationFailed));
            }
            Ok(())
        });
        result.unwrap();
        assert_eq!(report.attempts, 3);
        assert_eq!(report.commit_seq, Some(1));
        // The two aborted attempts published too, but never reached the hook.
        assert_eq!(
            hook.log.lock().unwrap().1,
            vec![(1, vec![CommitOp::put(0, 1)])]
        );
        assert_eq!(stm.read_atomic(&v), 1);
    }

    #[test]
    fn replaying_the_log_reproduces_contended_final_state() {
        use std::thread;
        let hook = Arc::new(RecordingHook::default());
        let stm = Arc::new(Stm::builder().commit_hook(hook.clone()).build());
        let cells: Vec<TVar<i64>> = (0..4).map(|_| TVar::new(0)).collect();
        thread::scope(|scope| {
            for t in 0..4usize {
                let stm = Arc::clone(&stm);
                let cells = cells.clone();
                scope.spawn(move || {
                    let mut ctx = stm.thread();
                    for i in 0..100u64 {
                        let id = ((t as u64 + i) % 4) as usize;
                        ctx.atomically(|tx| {
                            let next = tx.read(&cells[id])? + 1;
                            tx.write(&cells[id], next)?;
                            tx.publish(CommitOp::put(id as i64, next));
                            Ok(())
                        })
                        .unwrap();
                    }
                });
            }
        });
        // Replay: the last Put per id in log order must equal the final
        // committed state — the property WAL recovery depends on.
        let log = hook.log.lock().unwrap();
        assert_eq!(log.1.len(), 400);
        let mut replayed = [0i64; 4];
        for (_, ops) in &log.1 {
            for op in ops {
                if let CommitOp::Put { id, value } = op {
                    replayed[*id as usize] = value.as_int().expect("int was published");
                }
            }
        }
        for (id, cell) in cells.iter().enumerate() {
            assert_eq!(replayed[id], stm.read_atomic(cell), "object {id} diverged");
        }
    }
}
