//! Transactional objects.
//!
//! A [`TVar<T>`] is an object-granularity transactional cell in the style of
//! DSTM: its current state is described by a *locator* that records the
//! transaction that most recently acquired the object for writing together
//! with the object's value before (`old`) and after (`new`) that
//! transaction. The logically current value is therefore a function of the
//! owner's status word:
//!
//! | owner status | current value |
//! |--------------|---------------|
//! | none         | `new` (baseline) |
//! | `Active`     | `old` (the writer has not committed yet) |
//! | `Committed`  | `new` |
//! | `Aborted`    | `old` |
//!
//! Acquiring an object means atomically replacing its locator with one that
//! names the acquiring transaction; committing or aborting the transaction
//! then flips the meaning of every locator it installed at once, via the
//! single status-word CAS. This is what makes the design obstruction-free at
//! the transaction level: no transaction ever holds a lock across user code.
//!
//! *Implementation note (documented substitution in DESIGN.md):* DSTM
//! publishes locators with a raw pointer CAS and relies on garbage
//! collection. Locator publication here is the same single pointer CAS,
//! through the vendored `arcswap` atomic-`Arc` cell; the garbage collector
//! is substituted by `arcswap`'s counter-deferred reclamation (a displaced
//! locator is dropped only once no in-flight load can still dereference
//! it — see `vendor/arcswap`'s crate docs for the grace protocol). The
//! `unsafe` that DSTM's pointer games require lives entirely in that
//! vendored crate; this crate stays `forbid(unsafe_code)`. The transaction
//! status word — the CAS the contention-management protocol actually
//! relies on — was always a true lock-free CAS.
//!
//! Visible readers register in a small per-object *sharded* registry — see
//! [`crate::readers`] for the sharding and lazy-pruning discipline. The
//! registry code itself is generic and model-checked in isolation; this
//! module instantiates it with `TxShared`.

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::Arc;

use arcswap::ArcSwap;

use crate::readers::ReaderRegistry;
use crate::txn::TxShared;

static OBJECT_IDS: AtomicU64 = AtomicU64::new(1);

/// A locator names the last writer of an object together with the object
/// value before and after that writer.
#[derive(Debug)]
pub(crate) struct Locator<T> {
    owner: Option<Arc<TxShared>>,
    old: Arc<T>,
    new: ArcSwap<T>,
}

impl<T> Locator<T> {
    /// A locator for an object with no pending writer.
    pub(crate) fn baseline(value: Arc<T>) -> Self {
        Locator {
            owner: None,
            old: Arc::clone(&value),
            new: ArcSwap::new(value),
        }
    }

    /// A locator installed by `owner`, recording the pre-state `old` and the
    /// tentative post-state `new`.
    pub(crate) fn owned(owner: Arc<TxShared>, old: Arc<T>, new: Arc<T>) -> Self {
        Locator {
            owner: Some(owner),
            old,
            new: ArcSwap::new(new),
        }
    }

    /// The transaction that installed this locator, if any.
    pub(crate) fn owner(&self) -> Option<&Arc<TxShared>> {
        self.owner.as_ref()
    }

    /// The tentative new value written by the owner.
    pub(crate) fn new_value(&self) -> Arc<T> {
        self.new.load_full()
    }

    /// Replaces the tentative new value (only the owner does this, while it
    /// is still active).
    pub(crate) fn set_new_value(&self, value: Arc<T>) {
        self.new.store(value);
    }

    /// The logically current (most recently committed) value described by
    /// this locator.
    pub(crate) fn stable_value(&self) -> Arc<T> {
        match &self.owner {
            // A baseline locator has no owner and therefore no one who may
            // call `set_new_value`: `new` still holds the `Arc` it was
            // constructed with, which is the same one `old` holds. Cloning
            // `old` skips the atomic load of the `new` cell on the
            // read-mostly hot path.
            None => Arc::clone(&self.old),
            Some(owner) => {
                if owner.is_committed() {
                    self.new_value()
                } else {
                    Arc::clone(&self.old)
                }
            }
        }
    }
}

/// Shared interior of a [`TVar`].
#[derive(Debug)]
pub(crate) struct TVarInner<T> {
    id: u64,
    locator: ArcSwap<Locator<T>>,
    readers: ReaderRegistry<TxShared>,
}

impl<T> TVarInner<T> {
    fn new(value: T) -> Self {
        TVarInner {
            id: OBJECT_IDS.fetch_add(1, Ordering::Relaxed),
            locator: ArcSwap::from_value(Locator::baseline(Arc::new(value))),
            readers: ReaderRegistry::new(),
        }
    }

    pub(crate) fn id(&self) -> u64 {
        self.id
    }

    /// Loads the current locator.
    pub(crate) fn load_locator(&self) -> Arc<Locator<T>> {
        self.locator.load_full()
    }

    /// Borrows the current locator without taking a reference count on it —
    /// the read path's load. The returned guard pins the locator against
    /// reclamation (readers counter, see `vendor/arcswap`) but skips the
    /// `Arc` clone/drop pair `load_locator` pays; use it whenever the
    /// locator is only inspected transiently and never retained.
    pub(crate) fn peek_locator(&self) -> arcswap::Guard<'_, Locator<T>> {
        self.locator.load()
    }

    /// Replaces the locator with `new` if the current locator is still
    /// (pointer-)equal to `expected`. Returns `true` on success. This is
    /// DSTM's acquisition step: a single pointer compare-exchange, no lock.
    pub(crate) fn try_replace_locator(
        &self,
        expected: &Arc<Locator<T>>,
        new: Arc<Locator<T>>,
    ) -> bool {
        self.locator.compare_and_swap(expected, new)
    }

    /// Registers `reader` as a visible reader. Returns `true` if it was not
    /// already registered. See [`ReaderRegistry::register`].
    pub(crate) fn register_reader(&self, reader: &Arc<TxShared>) -> bool {
        self.readers.register(reader)
    }

    /// Removes `reader` from its visible-reader shard. See
    /// [`ReaderRegistry::unregister`].
    pub(crate) fn unregister_reader(&self, reader: &TxShared) {
        self.readers.unregister(reader)
    }

    /// Returns the currently registered active readers other than `me`,
    /// pruning finished readers on the way. See
    /// [`ReaderRegistry::active_readers`].
    pub(crate) fn active_readers(&self, me: &Arc<TxShared>) -> Vec<Arc<TxShared>> {
        self.readers.active_readers(me)
    }

    /// Number of registered readers, stale entries included (tests).
    #[cfg(test)]
    pub(crate) fn reader_count(&self) -> usize {
        self.readers.len()
    }
}

/// A transactional memory cell holding a value of type `T`.
///
/// `TVar`s are cheap to clone (clones share the same underlying object) and
/// are accessed inside transactions through [`crate::Txn::read`],
/// [`crate::Txn::write`] and [`crate::Txn::modify`].
///
/// ```
/// use stm_core::{Stm, TVar};
/// let stm = Stm::default();
/// let v = TVar::new(1u32);
/// let mut ctx = stm.thread();
/// ctx.atomically(|tx| tx.modify(&v, |x| x + 1)).unwrap();
/// assert_eq!(stm.read_atomic(&v), 2);
/// ```
#[derive(Debug)]
pub struct TVar<T> {
    inner: Arc<TVarInner<T>>,
}

impl<T> Clone for TVar<T> {
    fn clone(&self) -> Self {
        TVar {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Send + Sync> TVar<T> {
    /// Creates a new transactional cell holding `value`.
    pub fn new(value: T) -> Self {
        TVar {
            inner: Arc::new(TVarInner::new(value)),
        }
    }

    /// A unique identity for this object (used by contention managers and
    /// instrumentation).
    pub fn id(&self) -> u64 {
        self.inner.id()
    }

    /// Returns `true` if `self` and `other` refer to the same object.
    pub fn same_object(&self, other: &TVar<T>) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    pub(crate) fn inner(&self) -> &Arc<TVarInner<T>> {
        &self.inner
    }
}

impl<T: Send + Sync> TVar<T> {
    /// Reads the most recently committed value outside of any transaction.
    ///
    /// This is a single-object snapshot; it is linearizable for the one
    /// object but offers no consistency across objects. Use a transaction
    /// for multi-object reads.
    pub fn load_committed_arc(&self) -> Arc<T> {
        self.inner.peek_locator().stable_value()
    }
}

impl<T: Clone + Send + Sync> TVar<T> {
    /// Like [`TVar::load_committed_arc`] but returns a clone of the value.
    pub fn load_committed(&self) -> T {
        (*self.load_committed_arc()).clone()
    }
}

impl<T: Default + Send + Sync> Default for TVar<T> {
    fn default() -> Self {
        TVar::new(T::default())
    }
}

/// A read tracked by a transaction, for validation and cleanup. Stored as
/// `Arc<dyn TrackedRead>` so the visible-read path can reuse the object's
/// own `Arc` (`Sync` is required for that sharing).
pub(crate) trait TrackedRead: Send + Sync {
    /// Identity of the object read.
    #[allow(dead_code)]
    fn object_id(&self) -> u64;
    /// Whether the value observed by the read is still the current value.
    fn still_valid(&self) -> bool;
    /// Releases any registration this read holds (visible-reader lists).
    fn release(&self, me: &TxShared);
}

/// An invisible read: revalidated by comparing the current stable value with
/// the value observed at read time.
pub(crate) struct InvisibleRead<T> {
    inner: Arc<TVarInner<T>>,
    seen: Arc<T>,
}

impl<T> InvisibleRead<T> {
    pub(crate) fn new(inner: Arc<TVarInner<T>>, seen: Arc<T>) -> Self {
        InvisibleRead { inner, seen }
    }
}

impl<T: Send + Sync> TrackedRead for InvisibleRead<T> {
    fn object_id(&self) -> u64 {
        self.inner.id()
    }

    fn still_valid(&self) -> bool {
        Arc::ptr_eq(&self.inner.peek_locator().stable_value(), &self.seen)
    }

    fn release(&self, _me: &TxShared) {}
}

/// A visible read is tracked by the object itself: the registration lives
/// in the object's reader shards, validation is trivially true (writers
/// must arbitrate with registered readers before acquiring), and release
/// unregisters. The read set stores the object directly (an `Arc` clone of
/// `TVarInner`) rather than boxing a wrapper, which keeps the visible-read
/// fast path free of per-read heap allocation.
impl<T: Send + Sync> TrackedRead for TVarInner<T> {
    fn object_id(&self) -> u64 {
        self.id
    }

    fn still_valid(&self) -> bool {
        true
    }

    fn release(&self, me: &TxShared) {
        self.unregister_reader(me);
    }
}

/// A write (acquisition) performed by a transaction.
pub(crate) trait TrackedWrite: Send {
    /// Identity of the object written.
    #[allow(dead_code)]
    fn object_id(&self) -> u64;
    /// After commit, collapses the locator chain so later readers do not need
    /// to chase the (now committed) owner's status.
    fn detach_committed(&self);
}

/// The record of an object acquisition.
pub(crate) struct OwnedWrite<T> {
    inner: Arc<TVarInner<T>>,
    locator: Arc<Locator<T>>,
}

impl<T> OwnedWrite<T> {
    pub(crate) fn new(inner: Arc<TVarInner<T>>, locator: Arc<Locator<T>>) -> Self {
        OwnedWrite { inner, locator }
    }
}

impl<T: Send + Sync> TrackedWrite for OwnedWrite<T> {
    fn object_id(&self) -> u64 {
        self.inner.id()
    }

    fn detach_committed(&self) {
        let value = self.locator.new_value();
        let baseline = Arc::new(Locator::baseline(value));
        // If another transaction already replaced our locator this is a no-op.
        self.inner.try_replace_locator(&self.locator, baseline);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::readers::{READER_PRUNE_THRESHOLD, READER_SHARDS};
    use crate::txn::TxLineage;

    fn fresh_shared() -> Arc<TxShared> {
        let lineage = Arc::new(TxLineage::new(1, 1));
        Arc::new(TxShared::new(lineage, 1))
    }

    #[test]
    fn tvar_ids_are_unique() {
        let a = TVar::new(0u8);
        let b = TVar::new(0u8);
        assert_ne!(a.id(), b.id());
        assert!(a.same_object(&a.clone()));
        assert!(!a.same_object(&b));
    }

    #[test]
    fn baseline_locator_exposes_value() {
        let v = TVar::new(41u32);
        assert_eq!(v.load_committed(), 41);
        assert_eq!(*v.load_committed_arc(), 41);
    }

    #[test]
    fn default_tvar_uses_default_value() {
        let v: TVar<u64> = TVar::default();
        assert_eq!(v.load_committed(), 0);
    }

    #[test]
    fn stable_value_follows_owner_status() {
        let old = Arc::new(1u32);
        let new = Arc::new(2u32);
        let owner = fresh_shared();
        let loc = Locator::owned(Arc::clone(&owner), Arc::clone(&old), Arc::clone(&new));
        // Active owner: the old value is current.
        assert_eq!(*loc.stable_value(), 1);
        assert!(owner.try_commit());
        assert_eq!(*loc.stable_value(), 2);

        let owner2 = fresh_shared();
        let loc2 = Locator::owned(Arc::clone(&owner2), old, new);
        assert!(owner2.try_abort());
        assert_eq!(*loc2.stable_value(), 1);
    }

    #[test]
    fn set_new_value_changes_committed_result() {
        let owner = fresh_shared();
        let loc = Locator::owned(Arc::clone(&owner), Arc::new(1u32), Arc::new(1u32));
        loc.set_new_value(Arc::new(99));
        owner.try_commit();
        assert_eq!(*loc.stable_value(), 99);
    }

    #[test]
    fn try_replace_locator_is_conditional() {
        let inner = TVarInner::new(5u32);
        let current = inner.load_locator();
        let replacement = Arc::new(Locator::baseline(Arc::new(6u32)));
        assert!(inner.try_replace_locator(&current, Arc::clone(&replacement)));
        // The original expectation is now stale.
        let stale = Arc::new(Locator::baseline(Arc::new(7u32)));
        assert!(!inner.try_replace_locator(&current, stale));
        assert_eq!(*inner.load_locator().stable_value(), 6);
    }

    #[test]
    fn reader_registration_dedupes_and_prunes() {
        let inner = TVarInner::new(0u32);
        let r1 = fresh_shared();
        let r2 = fresh_shared();
        assert!(inner.register_reader(&r1));
        assert!(!inner.register_reader(&r1));
        assert!(inner.register_reader(&r2));
        assert_eq!(inner.reader_count(), 2);
        assert_eq!(inner.active_readers(&r1).len(), 1);
        // Finished readers are skipped by active_readers (and physically
        // pruned by it, or by registration past the shard threshold).
        r2.try_abort();
        let r3 = fresh_shared();
        assert!(inner.register_reader(&r3));
        assert!(inner
            .active_readers(&r3)
            .iter()
            .all(|r| Arc::ptr_eq(r, &r1)));
        inner.unregister_reader(&r1);
        assert!(inner.active_readers(&r3).is_empty());
    }

    #[test]
    fn reader_list_stays_bounded_under_register_churn() {
        let inner = TVarInner::new(0u32);
        for i in 0..10_000u32 {
            let r = fresh_shared();
            inner.register_reader(&r);
            if i % 2 == 0 {
                r.try_commit();
            } else {
                r.try_abort();
            }
            // Only every fourth reader explicitly unregisters — the rest
            // rely on threshold pruning at registration time.
            if i % 4 == 0 {
                inner.unregister_reader(&r);
            }
        }
        // Lazy pruning leaves at most a threshold's worth of finished
        // entries per shard — a constant, not a function of churn volume.
        assert!(
            inner.reader_count() <= READER_SHARDS * READER_PRUNE_THRESHOLD,
            "reader list leaked: {} entries",
            inner.reader_count()
        );
        // A writer's arbitration scan prunes every shard it walks.
        let me = fresh_shared();
        assert!(inner.active_readers(&me).is_empty());
        assert_eq!(inner.reader_count(), 0);
    }

    #[test]
    fn register_past_threshold_prunes_only_finished_entries() {
        let inner = TVarInner::new(0u32);
        let keep = fresh_shared();
        assert!(inner.register_reader(&keep));
        // Pile finished readers into the same shard (all test lineages use
        // id 1) until the threshold forces a prune.
        for _ in 0..(2 * READER_PRUNE_THRESHOLD) {
            let r = fresh_shared();
            inner.register_reader(&r);
            r.try_abort();
        }
        assert!(inner.reader_count() <= READER_PRUNE_THRESHOLD + 1);
        // The live registration survived every prune.
        let me = fresh_shared();
        let active = inner.active_readers(&me);
        assert_eq!(active.len(), 1);
        assert!(Arc::ptr_eq(&active[0], &keep));
    }

    #[test]
    fn detach_committed_collapses_locator() {
        let inner = Arc::new(TVarInner::new(1u32));
        let owner = fresh_shared();
        let current = inner.load_locator();
        let owned = Arc::new(Locator::owned(
            Arc::clone(&owner),
            current.stable_value(),
            Arc::new(10u32),
        ));
        assert!(inner.try_replace_locator(&current, Arc::clone(&owned)));
        owner.try_commit();
        let write = OwnedWrite::new(Arc::clone(&inner), owned);
        write.detach_committed();
        let loc = inner.load_locator();
        assert!(loc.owner().is_none());
        assert_eq!(*loc.stable_value(), 10);
    }

    #[test]
    fn invisible_read_validation() {
        let inner = Arc::new(TVarInner::new(1u32));
        let seen = inner.load_locator().stable_value();
        let read = InvisibleRead::new(Arc::clone(&inner), seen);
        assert!(read.still_valid());
        // Another transaction commits a new value.
        let owner = fresh_shared();
        let current = inner.load_locator();
        let owned = Arc::new(Locator::owned(
            Arc::clone(&owner),
            current.stable_value(),
            Arc::new(2u32),
        ));
        inner.try_replace_locator(&current, owned);
        // While the writer is active the read is still valid...
        assert!(read.still_valid());
        owner.try_commit();
        // ...but once it commits, the read is stale.
        assert!(!read.still_valid());
    }
}
