//! # stm-core
//!
//! An object-based, eagerly-acquiring software transactional memory (STM)
//! runtime in the style of DSTM/SXM, built as the substrate for the
//! reproduction of *"Toward a Theory of Transactional Contention Managers"*
//! (Guerraoui, Herlihy, Pochon — PODC 2005).
//!
//! The runtime separates **safety** (serializability of transactions,
//! enforced by the runtime itself) from **progress** (which transaction gets
//! to proceed when two of them conflict), exactly as the paper advocates.
//! Progress is delegated to a pluggable, fully decentralised
//! [`ContentionManager`]: whenever a transaction `A` is about to perform an
//! access that conflicts with a live transaction `B`, `A` asks *its own*
//! contention manager whether to abort `B`, wait for `B`, or abort itself.
//!
//! ## Model
//!
//! * Shared state lives in [`TVar<T>`] cells ("transactional objects").
//! * A [`Stm`] value owns the global timestamp clock and configuration.
//! * Each thread obtains a [`ThreadCtx`] from the [`Stm`] and runs closures
//!   atomically with [`ThreadCtx::atomically`]. Inside the closure a
//!   [`Txn`] handle provides `read`, `write`, and `modify` operations.
//! * A transaction's externally visible state is a [`TxShared`] descriptor:
//!   a CAS-able status word ([`TxStatus`]), a public `waiting` flag, and the
//!   persistent [`TxLineage`] (timestamp, karma, abort count) that survives
//!   retries — the three ingredients the greedy manager needs.
//!
//! ## Quick example
//!
//! ```
//! use stm_core::{Stm, TVar};
//!
//! let stm = Stm::default();
//! let account = TVar::new(100i64);
//!
//! let mut ctx = stm.thread();
//! ctx.atomically(|tx| {
//!     let balance = tx.read(&account)?;
//!     tx.write(&account, balance + 42)?;
//!     Ok(())
//! })
//! .unwrap();
//!
//! assert_eq!(stm.read_atomic(&account), 142);
//! ```
//!
//! ## Relationship to the paper
//!
//! The contention-manager interface ([`ContentionManager`], [`Resolution`],
//! [`ConflictKind`]) mirrors the interface of SXM / DSTM as described by
//! Scherer & Scott and used by the paper's experiments. The greedy manager
//! itself and the other managers from the literature live in the `stm-cm`
//! crate; `stm-core` ships only the trivial [`manager::AggressiveManager`]
//! and [`manager::PoliteManager`] used as defaults and in unit tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod epoch;
pub mod error;
pub mod hook;
pub mod manager;
#[cfg(feature = "model-check")]
pub mod models;
pub mod readers;
pub mod stats;
pub mod status;
pub mod stm;
pub mod sync;
pub mod tvar;
pub mod txn;
pub mod wait;

pub use clock::TimestampClock;
pub use epoch::{EpochGc, EpochStats, PinSlot};
pub use error::{AbortCause, StmError, TxResult};
pub use hook::{CommitHook, CommitOp, CommitValue};
pub use manager::{ConflictKind, ContentionManager, ManagerFactory, Resolution, TxView};
pub use stats::{StmStats, TxRunReport, TxnStats, ABORT_CAUSES};
pub use status::TxStatus;
pub use stm::{ReadVisibility, Stm, StmBuilder, ThreadCtx};
pub use tvar::TVar;
pub use txn::{Txn, TxLineage, TxShared};
pub use wait::WaitSpec;
