//! The contention-manager interface.
//!
//! A contention manager is the module "responsible for ensuring that the
//! system as a whole makes progress" (paper, abstract). It is consulted by a
//! transaction the moment that transaction discovers it is about to perform
//! an access that conflicts with another live transaction, and it answers
//! with one of three decisions: abort the enemy, wait, or abort yourself.
//!
//! Managers are **decentralised**: every thread owns its manager instance,
//! and a decision is made purely from a comparison of the two transactions'
//! publicly visible state (their [`TxView`]s) plus whatever local state the
//! manager keeps. No global data structure or cross-transaction protocol is
//! involved, matching the scoping discussion in Section 2 of the paper.
//!
//! Managers also receive notification hooks (`begin`, `opened`, `committed`,
//! `aborted`) that the Karma/Eruption/Polka family uses to accumulate
//! priority proportional to the work a transaction has performed.
//!
//! The greedy manager and the full set of managers from the literature live
//! in the `stm-cm` crate; this module defines the interface plus the two
//! trivial managers ([`AggressiveManager`], [`PoliteManager`]) that the core
//! crate uses as defaults and in its own tests.

use std::sync::Arc;
use std::time::Duration;

use crate::status::TxStatus;
use crate::txn::TxShared;
use crate::wait::WaitSpec;

/// The kind of conflict being arbitrated, from the perspective of the
/// transaction consulting its manager ("me").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConflictKind {
    /// I want to write an object currently acquired for writing by the enemy.
    WriteWrite,
    /// I want to read an object currently acquired for writing by the enemy.
    ReadWrite,
    /// I have acquired an object for writing and the enemy is a visible
    /// reader of it.
    WriteRead,
}

/// A contention manager's decision about a conflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Abort the enemy transaction (the runtime CASes its status word).
    AbortOther,
    /// Wait, as described by the [`WaitSpec`], then ask again.
    Wait(WaitSpec),
    /// Abort the current transaction; it will be retried with the same
    /// timestamp and lineage.
    AbortSelf,
}

impl Resolution {
    /// Convenience constructor: wait until the enemy commits, aborts, or
    /// starts waiting (the greedy manager's Rule 2).
    pub const fn wait_for_enemy() -> Self {
        Resolution::Wait(WaitSpec::until_enemy_quiesces())
    }

    /// Convenience constructor: bounded wait.
    pub const fn backoff(duration: Duration) -> Self {
        Resolution::Wait(WaitSpec::bounded(duration))
    }
}

/// A read-only view of a transaction's publicly visible state, handed to
/// contention managers.
///
/// The view exposes exactly the three components the paper's Section 3 calls
/// out — the timestamp, the status word, and the `waiting` flag — plus the
/// bookkeeping counters (karma, attempts, objects opened, age) that the
/// literature managers ported by Scherer & Scott rely on.
#[derive(Debug, Clone, Copy)]
pub struct TxView<'a> {
    shared: &'a Arc<TxShared>,
}

impl<'a> TxView<'a> {
    /// Wraps a shared transaction descriptor.
    pub fn new(shared: &'a Arc<TxShared>) -> Self {
        TxView { shared }
    }

    /// Identity of the logical transaction.
    pub fn id(&self) -> u64 {
        self.shared.id()
    }

    /// Attempt number (1 for the first attempt).
    pub fn attempt(&self) -> u64 {
        self.shared.attempt()
    }

    /// The timestamp taken when the transaction first began; retained across
    /// restarts. Smaller is older is higher priority.
    pub fn timestamp(&self) -> u64 {
        self.shared.timestamp()
    }

    /// Current status of the attempt.
    pub fn status(&self) -> TxStatus {
        self.shared.status()
    }

    /// Whether the transaction is currently waiting for another transaction
    /// (the public `waiting` flag of the greedy manager).
    pub fn is_waiting(&self) -> bool {
        self.shared.is_waiting()
    }

    /// Manager-maintained accumulated priority.
    pub fn karma(&self) -> u64 {
        self.shared.lineage().karma()
    }

    /// Adds to the transaction's accumulated priority (Eruption transfers its
    /// own priority to the transaction it is blocked behind).
    pub fn add_karma(&self, delta: u64) {
        self.shared.lineage().add_karma(delta);
    }

    /// Resets the accumulated priority (Karma does this when a transaction
    /// commits).
    pub fn reset_karma(&self) {
        self.shared.lineage().reset_karma();
    }

    /// Number of aborted attempts of this transaction so far.
    pub fn aborts(&self) -> u64 {
        self.shared.lineage().aborts()
    }

    /// Number of attempts of this transaction so far (aborts + 1).
    pub fn attempts(&self) -> u64 {
        self.shared.lineage().attempts()
    }

    /// Objects opened during the current attempt.
    pub fn opened_in_attempt(&self) -> u64 {
        self.shared.opened_in_attempt()
    }

    /// Objects opened across all attempts of this transaction.
    pub fn opened_total(&self) -> u64 {
        self.shared.lineage().opened_total()
    }

    /// Wall-clock age since the transaction first began.
    pub fn age(&self) -> Duration {
        self.shared.lineage().age()
    }

    /// Attempts to abort this transaction directly. Exposed for managers that
    /// preemptively kill enemies outside the normal resolution return path
    /// (none of the built-in managers need it, but SXM's interface offers the
    /// equivalent).
    pub fn try_abort(&self) -> bool {
        self.shared.try_abort()
    }
}

/// A pluggable contention manager.
///
/// One instance exists per thread (created through the [`ManagerFactory`]
/// installed in the [`crate::Stm`]), so implementations are free to keep
/// mutable local state without synchronisation.
pub trait ContentionManager: Send {
    /// A short human-readable name used in reports and benchmarks.
    fn name(&self) -> &'static str {
        "unnamed"
    }

    /// Called when an attempt begins (including each retry).
    fn begin(&mut self, _me: TxView<'_>) {}

    /// Called after the transaction successfully opens (reads or writes) an
    /// object.
    fn opened(&mut self, _me: TxView<'_>, _object_id: u64) {}

    /// Called when the transaction commits.
    fn committed(&mut self, _me: TxView<'_>) {}

    /// Called when an attempt aborts.
    fn aborted(&mut self, _me: TxView<'_>) {}

    /// Called when the transaction `me` discovers a conflict with the live
    /// transaction `other`. Must decide whether to abort the enemy, wait, or
    /// abort itself.
    fn resolve(&mut self, me: TxView<'_>, other: TxView<'_>, kind: ConflictKind) -> Resolution;
}

/// Factory that builds one contention-manager instance per thread.
pub type ManagerFactory = Arc<dyn Fn() -> Box<dyn ContentionManager> + Send + Sync>;

/// Builds a [`ManagerFactory`] from a plain constructor function.
///
/// ```
/// use stm_core::manager::{factory, AggressiveManager};
/// let f = factory(AggressiveManager::new);
/// let manager = f();
/// assert_eq!(manager.name(), "aggressive");
/// ```
pub fn factory<M, F>(make: F) -> ManagerFactory
where
    M: ContentionManager + 'static,
    F: Fn() -> M + Send + Sync + 'static,
{
    Arc::new(move || Box::new(make()) as Box<dyn ContentionManager>)
}

/// The *aggressive* manager: always aborts the enemy.
///
/// Trivially satisfies the pending-commit property in the write path (the
/// acquiring transaction always proceeds), but is prone to livelock when two
/// transactions repeatedly abort each other, as the paper notes.
#[derive(Debug, Default, Clone)]
pub struct AggressiveManager;

impl AggressiveManager {
    /// Creates an aggressive manager.
    pub fn new() -> Self {
        AggressiveManager
    }
}

impl ContentionManager for AggressiveManager {
    fn name(&self) -> &'static str {
        "aggressive"
    }

    fn resolve(&mut self, _me: TxView<'_>, _other: TxView<'_>, _kind: ConflictKind) -> Resolution {
        Resolution::AbortOther
    }
}

/// Default backoff rounds of [`PoliteManager`] before aborting the enemy.
pub const DEFAULT_POLITE_MAX_ROUNDS: u32 = 8;
/// Default base backoff interval of [`PoliteManager`].
pub const DEFAULT_POLITE_BASE: Duration = Duration::from_micros(4);

/// The *polite* manager: exponential backoff for a bounded number of rounds,
/// then abort the enemy.
#[derive(Debug, Clone)]
pub struct PoliteManager {
    /// Number of backoff rounds before giving up and aborting the enemy.
    max_rounds: u32,
    /// Base backoff interval.
    base: Duration,
    round: u32,
    conflict_with: Option<u64>,
}

impl Default for PoliteManager {
    fn default() -> Self {
        PoliteManager::new(DEFAULT_POLITE_MAX_ROUNDS, DEFAULT_POLITE_BASE)
    }
}

impl PoliteManager {
    /// Creates a polite manager that backs off `max_rounds` times with
    /// exponentially growing intervals starting at `base`.
    pub fn new(max_rounds: u32, base: Duration) -> Self {
        PoliteManager {
            max_rounds,
            base,
            round: 0,
            conflict_with: None,
        }
    }
}

impl ContentionManager for PoliteManager {
    fn name(&self) -> &'static str {
        "polite"
    }

    fn begin(&mut self, _me: TxView<'_>) {
        self.round = 0;
        self.conflict_with = None;
    }

    fn resolve(&mut self, _me: TxView<'_>, other: TxView<'_>, _kind: ConflictKind) -> Resolution {
        // Restart the backoff series when the enemy changes.
        if self.conflict_with != Some(other.id()) {
            self.conflict_with = Some(other.id());
            self.round = 0;
        }
        if self.round >= self.max_rounds {
            self.round = 0;
            return Resolution::AbortOther;
        }
        let factor = 1u32 << self.round.min(16);
        self.round += 1;
        Resolution::backoff(self.base * factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::TxLineage;

    fn view_pair() -> (Arc<TxShared>, Arc<TxShared>) {
        let a = Arc::new(TxShared::new(Arc::new(TxLineage::new(1, 1)), 1));
        let b = Arc::new(TxShared::new(Arc::new(TxLineage::new(2, 2)), 1));
        (a, b)
    }

    #[test]
    fn aggressive_always_aborts_other() {
        let (a, b) = view_pair();
        let mut m = AggressiveManager::new();
        assert_eq!(m.name(), "aggressive");
        for kind in [
            ConflictKind::WriteWrite,
            ConflictKind::ReadWrite,
            ConflictKind::WriteRead,
        ] {
            assert_eq!(
                m.resolve(TxView::new(&a), TxView::new(&b), kind),
                Resolution::AbortOther
            );
        }
    }

    #[test]
    fn polite_backs_off_then_aborts() {
        let (a, b) = view_pair();
        let mut m = PoliteManager::new(3, Duration::from_micros(1));
        let mut waits = 0;
        loop {
            match m.resolve(TxView::new(&a), TxView::new(&b), ConflictKind::WriteWrite) {
                Resolution::Wait(spec) => {
                    assert!(spec.max.is_some());
                    waits += 1;
                }
                Resolution::AbortOther => break,
                Resolution::AbortSelf => panic!("polite never aborts itself"),
            }
        }
        assert_eq!(waits, 3);
    }

    #[test]
    fn polite_resets_series_for_new_enemy() {
        let (a, b) = view_pair();
        let c = Arc::new(TxShared::new(Arc::new(TxLineage::new(3, 3)), 1));
        let mut m = PoliteManager::new(2, Duration::from_micros(1));
        // Two waits against b.
        assert!(matches!(
            m.resolve(TxView::new(&a), TxView::new(&b), ConflictKind::WriteWrite),
            Resolution::Wait(_)
        ));
        assert!(matches!(
            m.resolve(TxView::new(&a), TxView::new(&b), ConflictKind::WriteWrite),
            Resolution::Wait(_)
        ));
        // A new enemy restarts the series.
        assert!(matches!(
            m.resolve(TxView::new(&a), TxView::new(&c), ConflictKind::WriteWrite),
            Resolution::Wait(_)
        ));
    }

    #[test]
    fn tx_view_exposes_shared_state() {
        let (a, _) = view_pair();
        let view = TxView::new(&a);
        assert_eq!(view.id(), 1);
        assert_eq!(view.timestamp(), 1);
        assert_eq!(view.attempt(), 1);
        assert_eq!(view.attempts(), 1);
        assert!(!view.is_waiting());
        view.add_karma(4);
        assert_eq!(view.karma(), 4);
        view.reset_karma();
        assert_eq!(view.karma(), 0);
        assert!(view.status().is_active());
        assert!(view.try_abort());
        assert!(view.status().is_aborted());
    }

    #[test]
    fn factory_builds_boxed_managers() {
        let f = factory(AggressiveManager::new);
        assert_eq!(f().name(), "aggressive");
        let f = factory(PoliteManager::default);
        assert_eq!(f().name(), "polite");
    }

    #[test]
    fn resolution_helpers() {
        assert_eq!(
            Resolution::wait_for_enemy(),
            Resolution::Wait(WaitSpec::until_enemy_quiesces())
        );
        assert_eq!(
            Resolution::backoff(Duration::from_millis(1)),
            Resolution::Wait(WaitSpec::bounded(Duration::from_millis(1)))
        );
    }
}
