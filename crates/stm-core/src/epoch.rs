//! Epoch-based reclamation for objects unlinked at commit time.
//!
//! The keyspace layers above the runtime (the `stm-kv` store) unlink
//! transactional cells from their lookup tables when a transaction commits a
//! delete. The unlink is non-transactional — a racing transaction may have
//! fetched the cell from the table a moment earlier and still hold a
//! reference — so an unlinked cell cannot be dropped immediately: its value
//! must stay observable until every transaction that could have found it
//! through the table has finished. This module provides that grace period.
//!
//! The scheme is classic epoch-based reclamation (EBR), scoped per
//! [`crate::Stm`] instance:
//!
//! * A global epoch counter advances one step at a time.
//! * Every thread context owns a [`PinSlot`]; the runtime **pins** the slot
//!   to the current epoch for the duration of each transaction attempt and
//!   unpins it when the attempt commits or aborts. While a slot is pinned at
//!   epoch `e`, the global epoch cannot advance past `e + 1`.
//! * Unlinked objects are [`EpochGc::retire`]d into a limbo list stamped
//!   with the epoch current at retire time. An entry retired at epoch `r`
//!   is dropped only once the global epoch reaches `r + 2`: by then every
//!   pin taken before the unlink has been released, so no transaction can
//!   still be using the object *through the table*. (References held in
//!   `Arc`s keep the memory itself alive regardless — epochs govern when
//!   the limbo list lets go of a retired object, not memory safety, which
//!   is why this file stays inside `forbid(unsafe_code)`.)
//!
//! Reclamation is cooperative: [`EpochGc::retire`] and explicit
//! [`EpochGc::collect`] calls both try to advance the epoch and drain the
//! limbo list, so no background thread is needed and an idle instance holds
//! no garbage once every transaction has unpinned.

use std::any::Any;

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{Arc, Mutex};

/// A slot is unpinned when it holds this sentinel epoch.
const UNPINNED: u64 = u64::MAX;

/// Entries retired at epoch `r` are reclaimable once the global epoch
/// reaches `r + GRACE`.
const GRACE: u64 = 2;

/// A retired object awaiting reclamation. The only thing limbo does with it
/// is drop it once its grace period has passed.
pub type Retired = Box<dyn Any + Send>;

/// One thread's pin state: the epoch the thread is currently pinned at, or
/// [`UNPINNED`]. Obtained from [`EpochGc::register`] and pinned/unpinned by
/// the transaction retry loop around every attempt.
#[derive(Debug)]
pub struct PinSlot {
    epoch: AtomicU64,
}

impl PinSlot {
    fn new() -> Self {
        PinSlot {
            epoch: AtomicU64::new(UNPINNED),
        }
    }

    /// Whether the owning thread is currently inside a transaction attempt.
    pub fn is_pinned(&self) -> bool {
        // ordering: SeqCst keeps observer reads in the single total order of
        // the pin/advance handshake (see `pin`); this is a cold path.
        self.epoch.load(Ordering::SeqCst) != UNPINNED
    }

    /// The epoch this slot is pinned at, if pinned.
    pub fn pinned_epoch(&self) -> Option<u64> {
        // ordering: see `is_pinned`.
        match self.epoch.load(Ordering::SeqCst) {
            UNPINNED => None,
            e => Some(e),
        }
    }
}

/// Unpins a [`PinSlot`] when dropped; returned by [`EpochGc::enter`] so the
/// retry loop cannot leak a pin on any exit path (including panics).
#[derive(Debug)]
pub struct PinGuard<'a> {
    gc: &'a EpochGc,
    slot: &'a PinSlot,
}

impl Drop for PinGuard<'_> {
    fn drop(&mut self) {
        self.gc.unpin(self.slot);
        // With this pin out of the way, sweep whatever became eligible: the
        // retire-time collect alone stalls behind the retirer's own pin (it
        // can advance the epoch at most once per pin), letting the limbo
        // grow deep under sustained churn. The counter probe keeps the
        // no-garbage fast path lock-free.
        if self.gc.retired.load(Ordering::Relaxed) != self.gc.reclaimed.load(Ordering::Relaxed) {
            self.gc.collect();
        }
    }
}

/// A point-in-time snapshot of the reclamation state, for stats surfaces
/// and invariant checks in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EpochStats {
    /// The current global epoch.
    pub global: u64,
    /// Objects retired into limbo so far (cumulative).
    pub retired: u64,
    /// Objects whose grace period passed and that were dropped (cumulative).
    pub reclaimed: u64,
    /// Objects currently waiting in limbo (`retired - reclaimed`).
    pub limbo: u64,
    /// The oldest epoch any registered slot is currently pinned at.
    pub min_pinned: Option<u64>,
}

/// The per-[`crate::Stm`] reclamation domain.
pub struct EpochGc {
    global: AtomicU64,
    slots: Mutex<Vec<Arc<PinSlot>>>,
    limbo: Mutex<Vec<(u64, Retired)>>,
    retired: AtomicU64,
    reclaimed: AtomicU64,
}

impl std::fmt::Debug for EpochGc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochGc")
            .field("global", &self.global_epoch())
            .field("retired", &self.retired_total())
            .field("reclaimed", &self.reclaimed_total())
            .field("limbo", &self.limbo_len())
            .finish()
    }
}

impl Default for EpochGc {
    fn default() -> Self {
        EpochGc::new()
    }
}

impl EpochGc {
    /// Creates an empty reclamation domain at epoch 0.
    pub fn new() -> Self {
        EpochGc {
            global: AtomicU64::new(0),
            slots: Mutex::new(Vec::new()),
            limbo: Mutex::new(Vec::new()),
            retired: AtomicU64::new(0),
            reclaimed: AtomicU64::new(0),
        }
    }

    /// Registers a new pin slot. Thread contexts call this once at creation
    /// and keep the `Arc`; a slot whose context is gone (the registry holds
    /// the only reference) is removed during the next epoch advance.
    pub fn register(&self) -> Arc<PinSlot> {
        let slot = Arc::new(PinSlot::new());
        self.slots.lock().push(Arc::clone(&slot));
        slot
    }

    /// Pins `slot` to the current epoch. Re-publishes until the published
    /// epoch is confirmed against the global counter, which bounds the
    /// global epoch to `pinned + 1` for as long as the pin is held — the
    /// invariant the grace period relies on.
    pub fn pin(&self, slot: &PinSlot) {
        loop {
            // ordering: the pin/advance handshake is a store-buffering
            // pattern — we publish `slot.epoch` then re-read `global`, while
            // `try_advance` reads the slots then CASes `global`. With
            // anything weaker than SeqCst both sides can miss each other's
            // store and a pinned slot gets double-stepped past (proven by
            // `models::epoch_pin_requires_seqcst`).
            let e = self.global.load(Ordering::SeqCst);
            slot.epoch.store(e, Ordering::SeqCst);
            if self.global.load(Ordering::SeqCst) == e {
                return;
            }
            // The epoch advanced while we were publishing; the advancing
            // thread may not have seen the slot, so re-pin at the new epoch.
        }
    }

    /// Unpins `slot`.
    pub fn unpin(&self, slot: &PinSlot) {
        // ordering: SeqCst orders the unpin after every access the pinned
        // section made, so an advance that observes UNPINNED cannot reclaim
        // an object the section is still reading.
        slot.epoch.store(UNPINNED, Ordering::SeqCst);
    }

    /// Pins `slot` and returns a guard that unpins it when dropped.
    pub fn enter<'a>(&'a self, slot: &'a PinSlot) -> PinGuard<'a> {
        self.pin(slot);
        PinGuard { gc: self, slot }
    }

    /// Moves an unlinked object into limbo, stamped with the current epoch,
    /// and opportunistically collects. The caller must have unlinked the
    /// object from every shared lookup structure *before* retiring it, so
    /// transactions pinned after this call cannot reach it.
    pub fn retire(&self, garbage: Retired) {
        // ordering: the retire stamp must not be stale — an old stamp `r`
        // with the real epoch already at `r + 2` would make the entry
        // immediately reclaimable while a reader pinned at the real epoch
        // still holds it. SeqCst reads the true current epoch.
        let e = self.global.load(Ordering::SeqCst);
        self.limbo.lock().push((e, garbage));
        self.retired.fetch_add(1, Ordering::Relaxed);
        self.collect();
    }

    /// Drops every limbo entry whose grace period has passed, advancing the
    /// epoch as far as the currently pinned slots allow. Returns the number
    /// of objects reclaimed by this call.
    pub fn collect(&self) -> u64 {
        let mut freed_total = 0u64;
        loop {
            // ordering: must see the newest epoch so the grace comparison
            // never uses a value older than a concurrent retire's stamp.
            let global = self.global.load(Ordering::SeqCst);
            let mut limbo = self.limbo.lock();
            let before = limbo.len();
            limbo.retain(|(retired_at, _)| retired_at + GRACE > global);
            let freed = (before - limbo.len()) as u64;
            let drained = limbo.is_empty();
            drop(limbo);
            if freed > 0 {
                self.reclaimed.fetch_add(freed, Ordering::Relaxed);
                freed_total += freed;
            }
            if drained || !self.try_advance() {
                return freed_total;
            }
        }
    }

    /// Advances the global epoch by one step if every pinned slot has
    /// caught up with it. Slots whose owning context is gone are removed
    /// here. Returns whether the epoch advanced.
    fn try_advance(&self) -> bool {
        // ordering: counterpart of `pin` — see the handshake note there.
        let e = self.global.load(Ordering::SeqCst);
        let mut slots = self.slots.lock();
        // A slot whose thread context was dropped is only referenced by this
        // registry; contexts always unpin before dropping, so it is inert.
        slots.retain(|slot| Arc::strong_count(slot) > 1);
        for slot in slots.iter() {
            // ordering: see the handshake note in `pin`.
            match slot.epoch.load(Ordering::SeqCst) {
                UNPINNED => {}
                pinned if pinned == e => {}
                // A straggler is still pinned at an older epoch.
                _ => return false,
            }
        }
        // Hold the slots lock across the CAS so a concurrent advance cannot
        // double-step past a slot that pins between the scan and the CAS:
        // such a pin lands at `e` or `e + 1` and blocks the *next* advance.
        // ordering: see the handshake note in `pin`.
        self.global
            .compare_exchange(e, e + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// The current global epoch.
    pub fn global_epoch(&self) -> u64 {
        // ordering: observer read in the handshake's total order (cold path).
        self.global.load(Ordering::SeqCst)
    }

    /// Number of objects currently waiting in limbo.
    pub fn limbo_len(&self) -> usize {
        self.limbo.lock().len()
    }

    /// Objects retired so far (cumulative).
    pub fn retired_total(&self) -> u64 {
        self.retired.load(Ordering::Relaxed)
    }

    /// Objects reclaimed (dropped out of limbo) so far (cumulative).
    pub fn reclaimed_total(&self) -> u64 {
        self.reclaimed.load(Ordering::Relaxed)
    }

    /// The oldest epoch any registered slot is pinned at, if any.
    pub fn min_pinned(&self) -> Option<u64> {
        self.slots
            .lock()
            .iter()
            .filter_map(|slot| slot.pinned_epoch())
            .min()
    }

    /// A consistent-enough snapshot of the reclamation counters.
    pub fn stats(&self) -> EpochStats {
        EpochStats {
            global: self.global_epoch(),
            retired: self.retired_total(),
            reclaimed: self.reclaimed_total(),
            limbo: self.limbo_len() as u64,
            min_pinned: self.min_pinned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A drop witness: sets its flag when reclaimed.
    struct Witness(Arc<std::sync::atomic::AtomicBool>);

    impl Drop for Witness {
        fn drop(&mut self) {
            self.0.store(true, Ordering::SeqCst);
        }
    }

    fn witness() -> (Retired, Arc<std::sync::atomic::AtomicBool>) {
        let flag = Arc::new(std::sync::atomic::AtomicBool::new(false));
        (Box::new(Witness(Arc::clone(&flag))), flag)
    }

    #[test]
    fn unpinned_domain_reclaims_after_the_grace_period() {
        let gc = EpochGc::new();
        let (garbage, dropped) = witness();
        gc.retire(garbage);
        // retire() already collects; with no pins the epoch is free to
        // advance through the grace period immediately.
        assert_eq!(gc.limbo_len(), 0, "{:?}", gc.stats());
        assert!(dropped.load(Ordering::SeqCst));
        assert_eq!(gc.retired_total(), 1);
        assert_eq!(gc.reclaimed_total(), 1);
    }

    #[test]
    fn limbo_never_reclaims_while_a_pin_holds_the_epoch_back() {
        let gc = EpochGc::new();
        let slot = gc.register();
        gc.pin(&slot);
        let pinned_at = slot.pinned_epoch().unwrap();
        let (garbage, dropped) = witness();
        gc.retire(garbage);
        for _ in 0..10 {
            gc.collect();
        }
        // The pin caps the epoch at pinned + 1, which is below the grace
        // threshold for an entry retired at >= pinned.
        assert_eq!(gc.limbo_len(), 1, "{:?}", gc.stats());
        assert!(!dropped.load(Ordering::SeqCst));
        assert!(gc.global_epoch() <= pinned_at + 1);
        assert_eq!(gc.min_pinned(), Some(pinned_at));
        // Once the pin is released the entry becomes reclaimable.
        gc.unpin(&slot);
        gc.collect();
        assert_eq!(gc.limbo_len(), 0, "{:?}", gc.stats());
        assert!(dropped.load(Ordering::SeqCst));
    }

    #[test]
    fn a_fresh_pin_does_not_block_older_garbage() {
        let gc = EpochGc::new();
        let slot = gc.register();
        let (garbage, dropped) = witness();
        {
            let _pin = gc.enter(&slot);
            gc.retire(garbage);
        }
        // Pin/unpin cycles after the retire: each new pin is at the current
        // epoch and never reaches back below the retire epoch's grace line.
        for _ in 0..4 {
            let _pin = gc.enter(&slot);
            gc.collect();
        }
        gc.collect();
        assert_eq!(gc.limbo_len(), 0, "{:?}", gc.stats());
        assert!(dropped.load(Ordering::SeqCst));
    }

    #[test]
    fn pin_guard_unpins_on_drop() {
        let gc = EpochGc::new();
        let slot = gc.register();
        {
            let _pin = gc.enter(&slot);
            assert!(slot.is_pinned());
        }
        assert!(!slot.is_pinned());
        assert_eq!(gc.min_pinned(), None);
    }

    #[test]
    fn dropped_contexts_do_not_block_the_epoch_forever() {
        let gc = EpochGc::new();
        let slot = gc.register();
        drop(slot); // the context is gone; only the registry holds the slot
        let (garbage, dropped) = witness();
        gc.retire(garbage);
        assert_eq!(gc.limbo_len(), 0);
        assert!(dropped.load(Ordering::SeqCst));
    }

    #[test]
    fn concurrent_pin_unpin_with_retires_keeps_counters_conserved() {
        let gc = Arc::new(EpochGc::new());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let gc = Arc::clone(&gc);
                scope.spawn(move || {
                    let slot = gc.register();
                    for i in 0..500u64 {
                        let _pin = gc.enter(&slot);
                        if (i + t) % 3 == 0 {
                            gc.retire(Box::new(i));
                        }
                    }
                });
            }
        });
        gc.collect();
        let stats = gc.stats();
        assert_eq!(stats.retired, stats.reclaimed + stats.limbo, "{stats:?}");
        assert_eq!(stats.min_pinned, None);
        // Every thread unpinned, so a final collect drains limbo entirely.
        gc.collect();
        gc.collect();
        assert_eq!(gc.limbo_len(), 0, "{:?}", gc.stats());
        assert_eq!(gc.retired_total(), gc.reclaimed_total());
    }
}
