//! Bounded loomlite models of this crate's lock-free hot paths.
//!
//! Compiled only under `--features model-check`, where the [`crate::sync`]
//! facade resolves to loomlite modeled primitives — the models below drive
//! the *shipped* [`EpochGc`] and [`ReaderRegistry`] code, not a copy.
//!
//! Alongside the real-code models, [`epoch_pin_requires_seqcst`] transcribes
//! the pin/advance handshake with bare atomics so its orderings can be
//! weakened on purpose; the test suite asserts the checker catches the
//! resulting use-after-free, which is the evidence that the `SeqCst`
//! annotations in [`crate::epoch`] are load-bearing (see the `// ordering:`
//! comments there).
//!
//! Every function returns the checker's [`Report`] so callers (unit tests
//! here and the workspace-level `tests/model_check.rs`) can assert
//! exhaustiveness and schedule counts.

use std::sync::atomic::Ordering::Relaxed;
use std::sync::atomic::AtomicBool as StdAtomicBool;

use loomlite::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use loomlite::{Builder, Failure, Report};

use crate::epoch::EpochGc;
use crate::readers::{ReaderRegistry, RegisteredReader, READER_PRUNE_THRESHOLD};
use crate::sync::Arc;

/// Default builder: bounded-exhaustive (preemption bound 2) plus the seeded
/// random phase — right for the real-code models, which have tens of
/// schedule points per run.
fn builder() -> Builder {
    Builder::default()
}

/// Unbounded builder for the transcribed handshake: few enough operations
/// that the full schedule tree is explored (`report.complete`).
fn unbounded() -> Builder {
    Builder {
        preemption_bound: None,
        ..Builder::default()
    }
}

/// Sets a flag when the retired object is dropped, so the model knows the
/// ground-truth reclamation point (modeled operations serialize under the
/// scheduler token, so a plain flag records the interleaving order).
struct DropFlag(Arc<StdAtomicBool>);

impl Drop for DropFlag {
    fn drop(&mut self) {
        self.0.store(true, Relaxed);
    }
}

/// Real-code model: a reader pins, looks up an object through a published
/// pointer, and dereferences it; a writer unlinks the object, retires it
/// through the real [`EpochGc`], and collects. Asserts on every
/// interleaving that the reader never dereferences reclaimed memory and
/// that the retired object is reclaimed exactly once in the end.
pub fn epoch_reclamation_no_uaf() -> Report {
    builder().check(|| {
        let gc = Arc::new(EpochGc::new());
        let freed = Arc::new(StdAtomicBool::new(false));
        // 0 = the retire-bound object is still linked, 1 = unlinked.
        let published = Arc::new(AtomicUsize::new(0));

        let reader = {
            let gc = Arc::clone(&gc);
            let freed = Arc::clone(&freed);
            let published = Arc::clone(&published);
            loomlite::thread::spawn(move || {
                let slot = gc.register();
                gc.pin(&slot);
                // ordering: lookup must read the latest published pointer
                // relative to the unlink, mirroring the retire contract.
                if published.load(Ordering::SeqCst) == 0 {
                    // The object was still linked when we looked it up;
                    // dereference it: it must not have been reclaimed.
                    assert!(
                        !freed.load(Relaxed),
                        "UAF: epoch GC reclaimed an object a pinned reader holds"
                    );
                }
                gc.unpin(&slot);
            })
        };

        // Writer (this thread): unlink, then retire through the real GC
        // (retire collects opportunistically).
        published.store(1, Ordering::SeqCst);
        gc.retire(Box::new(DropFlag(Arc::clone(&freed))));

        reader.join().unwrap();
        // With the reader gone the grace period can always run out.
        gc.collect();
        assert!(freed.load(Relaxed), "retired object was never reclaimed");
        assert_eq!(gc.retired_total(), 1);
        assert_eq!(gc.reclaimed_total(), 1);
        assert_eq!(gc.limbo_len(), 0);
    })
}

const UNPINNED: u64 = u64::MAX;

/// Transcription of the pin/advance store-buffering handshake with
/// parameterizable orderings (the real code is in [`EpochGc::pin`] /
/// `try_advance`).
///
/// The `unlinked`/`freed` flags are plain (not modeled): modeled operations
/// serialize under the scheduler token, so they record the ground-truth
/// interleaving order. The reader's critical section — "found the object
/// before the unlink, dereferences it later" — is a real-flag check, a
/// modeled yield (the window where the collector may run), then the
/// dereference assert. The only modeled staleness in the whole model is
/// therefore the pin/scan handshake itself.
///
/// With `weaken = false` every handshake operation is `SeqCst` and the
/// model is safe. With `true` the pin publishes with `Release` and
/// re-checks with `Acquire`, and the collector scans the slot with
/// `Acquire`: both sides can then miss each other's store — the collector
/// double-steps the epoch past a pinned reader and reclaims an object the
/// reader still holds. The checker reports the use-after-free.
pub fn epoch_pin_requires_seqcst(weaken: bool) -> Result<Report, Failure> {
    let (pin_ld, pin_st, scan) = if weaken {
        (Ordering::Acquire, Ordering::Release, Ordering::Acquire)
    } else {
        (Ordering::SeqCst, Ordering::SeqCst, Ordering::SeqCst)
    };
    unbounded().check_quiet(move || {
        let global = Arc::new(AtomicU64::new(0));
        let slot = Arc::new(AtomicU64::new(UNPINNED));
        let unlinked = Arc::new(StdAtomicBool::new(false));
        let freed = Arc::new(StdAtomicBool::new(false));

        let reader = {
            let (global, slot) = (Arc::clone(&global), Arc::clone(&slot));
            let (unlinked, freed) = (Arc::clone(&unlinked), Arc::clone(&freed));
            loomlite::thread::spawn(move || {
                // Pin: publish the observed epoch, confirm it did not move.
                loop {
                    let e = global.load(pin_ld);
                    slot.store(e, pin_st);
                    if global.load(pin_ld) == e {
                        break;
                    }
                }
                if !unlinked.load(Relaxed) {
                    // Found the object while it was still linked. Hold it
                    // across a schedule point, then dereference: the grace
                    // period must keep it alive for as long as we are pinned.
                    loomlite::thread::yield_now();
                    assert!(
                        !freed.load(Relaxed),
                        "UAF: collector double-stepped past a pinned reader"
                    );
                }
                slot.store(UNPINNED, Ordering::SeqCst);
            })
        };

        // Collector (this thread): unlink, stamp, try to advance twice,
        // reclaim once the grace period has passed. The yield is the
        // schedule point that lets the reader pin *before* the unlink
        // (plain flag writes execute inside the current token slice, so
        // without it the unlink would always precede the reader's lookup).
        loomlite::thread::yield_now();
        unlinked.store(true, Relaxed);
        let r = global.load(Ordering::SeqCst);
        for _ in 0..2 {
            let e = global.load(Ordering::SeqCst);
            let s = slot.load(scan);
            if s == UNPINNED || s == e {
                let _ = global.compare_exchange(e, e + 1, Ordering::SeqCst, Ordering::SeqCst);
            } else {
                break;
            }
        }
        if global.load(Ordering::SeqCst) >= r + 2 {
            freed.store(true, Relaxed);
        }
        reader.join().unwrap();
    })
}

/// A two-field reader record for the registry model. The `running` flag is
/// plain (not modeled): it is flipped before the reader's modeled
/// unregister/registration traffic and read under the shard lock, and using
/// a real flag keeps the model's schedule space focused on the shard locks
/// themselves.
struct ModelReader {
    id: u64,
    running: StdAtomicBool,
}

impl ModelReader {
    fn new(id: u64) -> Arc<Self> {
        Arc::new(ModelReader {
            id,
            running: StdAtomicBool::new(true),
        })
    }
}

impl RegisteredReader for ModelReader {
    fn reader_id(&self) -> u64 {
        self.id
    }

    fn is_running(&self) -> bool {
        self.running.load(Relaxed)
    }
}

/// Real-code model: two readers register in the same shard — one of them
/// past the prune threshold, forcing a prune on the way in — while a writer
/// scans with [`ReaderRegistry::active_readers`]. Asserts that a visible
/// (running, registration-completed) reader is never lost: the scan returns
/// only running readers, and both registrants are present afterwards.
pub fn reader_registry_never_loses_a_visible_reader() -> Report {
    builder().check(|| {
        let reg: Arc<ReaderRegistry<ModelReader>> = Arc::new(ReaderRegistry::new());
        // Pre-fill the shard to the prune threshold with finished readers
        // so one of the concurrent registrations prunes on the way in.
        for i in 0..READER_PRUNE_THRESHOLD as u64 {
            let stale = ModelReader::new(1000 + i * 8);
            assert!(reg.register(&stale));
            stale.running.store(false, Relaxed);
        }

        let a = ModelReader::new(0); // shard 0
        let b = ModelReader::new(8); // same shard
        let scanner_me = ModelReader::new(16); // same shard, never registered

        let t1 = {
            let (reg, a) = (Arc::clone(&reg), Arc::clone(&a));
            loomlite::thread::spawn(move || assert!(reg.register(&a)))
        };
        let t2 = {
            let (reg, b) = (Arc::clone(&reg), Arc::clone(&b));
            loomlite::thread::spawn(move || assert!(reg.register(&b)))
        };

        // Writer (this thread): arbitration scan racing both registrations.
        let seen = reg.active_readers(&scanner_me);
        for r in &seen {
            assert!(r.is_running(), "scan returned a finished reader");
        }

        t1.join().unwrap();
        t2.join().unwrap();

        // Both registrations completed: neither the concurrent scan's prune
        // nor the threshold prune may have evicted a running reader.
        let after = reg.active_readers(&scanner_me);
        assert!(
            after.iter().any(|r| Arc::ptr_eq(r, &a)),
            "reader a lost after concurrent register/scan"
        );
        assert!(
            after.iter().any(|r| Arc::ptr_eq(r, &b)),
            "reader b lost after concurrent register/scan"
        );
        assert_eq!(after.len(), 2, "stale readers survived the writer scan");
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_reclamation_is_safe() {
        let report = epoch_reclamation_no_uaf();
        eprintln!("epoch no-UAF: {report}");
        assert!(report.schedules() > 100, "{report}");
    }

    #[test]
    fn pin_handshake_is_safe_at_seqcst() {
        let report = epoch_pin_requires_seqcst(false).expect("SeqCst handshake must be safe");
        eprintln!("epoch pin handshake: {report}");
        assert!(report.complete, "tiny model should be explored completely");
    }

    #[test]
    fn weakened_pin_handshake_is_caught_as_uaf() {
        let failure = epoch_pin_requires_seqcst(true)
            .expect_err("Release/Acquire pin handshake must be caught");
        eprintln!("caught as expected:\n{failure}");
        assert!(failure.message.contains("UAF"), "{failure}");
        assert!(!failure.trace.is_empty());
    }

    #[test]
    fn reader_registry_is_safe() {
        let report = reader_registry_never_loses_a_visible_reader();
        eprintln!("reader registry: {report}");
        assert!(report.schedules() > 100, "{report}");
    }
}
