//! Error and abort-cause types.

use std::fmt;

/// Why a transaction attempt was aborted.
///
/// Abort causes are reported in [`StmError::Aborted`] and recorded in the
/// runtime statistics; contention-manager experiments use them to
/// distinguish aborts forced by enemies from self-aborts requested by the
/// manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortCause {
    /// An enemy transaction won a conflict and CAS-ed our status to aborted.
    KilledByEnemy,
    /// The contention manager advised this transaction to abort itself.
    ManagerSelfAbort,
    /// Read-set validation failed (an object read earlier changed under us).
    ValidationFailed,
    /// The commit-time CAS from `Active` to `Committed` failed.
    CommitFailed,
    /// The user code called [`crate::Txn::abort`] explicitly.
    Explicit,
}

impl fmt::Display for AbortCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AbortCause::KilledByEnemy => "killed by an enemy transaction",
            AbortCause::ManagerSelfAbort => "contention manager requested self-abort",
            AbortCause::ValidationFailed => "read-set validation failed",
            AbortCause::CommitFailed => "commit-time status CAS failed",
            AbortCause::Explicit => "explicitly aborted by user code",
        };
        f.write_str(s)
    }
}

/// Errors surfaced by the STM runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmError {
    /// The current attempt aborted. Inside [`crate::ThreadCtx::atomically`]
    /// this is control flow: the attempt is retried (the lineage keeps its
    /// timestamp and priority). It only escapes to the caller when the
    /// cause is [`AbortCause::Explicit`].
    Aborted(AbortCause),
    /// The configured retry limit was exhausted without a successful commit.
    RetryLimitExceeded {
        /// Number of attempts that were made.
        attempts: u64,
    },
}

impl StmError {
    /// Returns the abort cause if this error is an abort.
    pub fn abort_cause(&self) -> Option<AbortCause> {
        match self {
            StmError::Aborted(cause) => Some(*cause),
            _ => None,
        }
    }
}

impl fmt::Display for StmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StmError::Aborted(cause) => write!(f, "transaction aborted: {cause}"),
            StmError::RetryLimitExceeded { attempts } => {
                write!(f, "transaction retry limit exceeded after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for StmError {}

/// Result alias used by transactional closures and [`crate::Txn`] methods.
pub type TxResult<T> = Result<T, StmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_cause_accessor() {
        let e = StmError::Aborted(AbortCause::KilledByEnemy);
        assert_eq!(e.abort_cause(), Some(AbortCause::KilledByEnemy));
        let e = StmError::RetryLimitExceeded { attempts: 3 };
        assert_eq!(e.abort_cause(), None);
    }

    #[test]
    fn display_is_informative() {
        let e = StmError::Aborted(AbortCause::ValidationFailed);
        assert!(e.to_string().contains("validation"));
        let e = StmError::RetryLimitExceeded { attempts: 7 };
        assert!(e.to_string().contains('7'));
        for cause in [
            AbortCause::KilledByEnemy,
            AbortCause::ManagerSelfAbort,
            AbortCause::ValidationFailed,
            AbortCause::CommitFailed,
            AbortCause::Explicit,
        ] {
            assert!(!cause.to_string().is_empty());
        }
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(StmError::Aborted(AbortCause::Explicit));
        assert!(e.to_string().contains("aborted"));
    }
}
