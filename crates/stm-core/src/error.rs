//! Error and abort-cause types.

use std::fmt;

/// Why a transaction attempt was aborted.
///
/// Abort causes are reported in [`StmError::Aborted`] and recorded in the
/// runtime statistics; contention-manager experiments use them to
/// distinguish aborts forced by enemies from self-aborts requested by the
/// manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortCause {
    /// An enemy transaction won a conflict and CAS-ed our status to aborted.
    KilledByEnemy,
    /// The contention manager advised this transaction to abort itself.
    ManagerSelfAbort,
    /// Read-set validation failed (an object read earlier changed under us).
    ValidationFailed,
    /// The commit-time CAS from `Active` to `Committed` failed.
    CommitFailed,
    /// The user code called [`crate::Txn::abort`] explicitly.
    Explicit,
}

impl AbortCause {
    /// Every cause, in [`AbortCause::index`] order. Telemetry iterates this
    /// to emit one counter series per cause.
    pub const ALL: [AbortCause; 5] = [
        AbortCause::KilledByEnemy,
        AbortCause::ManagerSelfAbort,
        AbortCause::ValidationFailed,
        AbortCause::CommitFailed,
        AbortCause::Explicit,
    ];

    /// A stable machine-readable label (metric label values; renaming one
    /// is a deliberate exposition change).
    pub fn label(self) -> &'static str {
        match self {
            AbortCause::KilledByEnemy => "killed_by_enemy",
            AbortCause::ManagerSelfAbort => "manager_self_abort",
            AbortCause::ValidationFailed => "validation_failed",
            AbortCause::CommitFailed => "commit_failed",
            AbortCause::Explicit => "explicit",
        }
    }

    /// Position of this cause in [`AbortCause::ALL`] (dense array index for
    /// per-cause counters).
    pub fn index(self) -> usize {
        match self {
            AbortCause::KilledByEnemy => 0,
            AbortCause::ManagerSelfAbort => 1,
            AbortCause::ValidationFailed => 2,
            AbortCause::CommitFailed => 3,
            AbortCause::Explicit => 4,
        }
    }
}

impl fmt::Display for AbortCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AbortCause::KilledByEnemy => "killed by an enemy transaction",
            AbortCause::ManagerSelfAbort => "contention manager requested self-abort",
            AbortCause::ValidationFailed => "read-set validation failed",
            AbortCause::CommitFailed => "commit-time status CAS failed",
            AbortCause::Explicit => "explicitly aborted by user code",
        };
        f.write_str(s)
    }
}

/// Errors surfaced by the STM runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmError {
    /// The current attempt aborted. Inside [`crate::ThreadCtx::atomically`]
    /// this is control flow: the attempt is retried (the lineage keeps its
    /// timestamp and priority). It only escapes to the caller when the
    /// cause is [`AbortCause::Explicit`].
    Aborted(AbortCause),
    /// The configured retry limit was exhausted without a successful commit.
    RetryLimitExceeded {
        /// Number of attempts that were made.
        attempts: u64,
    },
}

impl StmError {
    /// Returns the abort cause if this error is an abort.
    pub fn abort_cause(&self) -> Option<AbortCause> {
        match self {
            StmError::Aborted(cause) => Some(*cause),
            _ => None,
        }
    }
}

impl fmt::Display for StmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StmError::Aborted(cause) => write!(f, "transaction aborted: {cause}"),
            StmError::RetryLimitExceeded { attempts } => {
                write!(f, "transaction retry limit exceeded after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for StmError {}

/// Result alias used by transactional closures and [`crate::Txn`] methods.
pub type TxResult<T> = Result<T, StmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_cause_accessor() {
        let e = StmError::Aborted(AbortCause::KilledByEnemy);
        assert_eq!(e.abort_cause(), Some(AbortCause::KilledByEnemy));
        let e = StmError::RetryLimitExceeded { attempts: 3 };
        assert_eq!(e.abort_cause(), None);
    }

    #[test]
    fn display_is_informative() {
        let e = StmError::Aborted(AbortCause::ValidationFailed);
        assert!(e.to_string().contains("validation"));
        let e = StmError::RetryLimitExceeded { attempts: 7 };
        assert!(e.to_string().contains('7'));
        for cause in [
            AbortCause::KilledByEnemy,
            AbortCause::ManagerSelfAbort,
            AbortCause::ValidationFailed,
            AbortCause::CommitFailed,
            AbortCause::Explicit,
        ] {
            assert!(!cause.to_string().is_empty());
        }
    }

    #[test]
    fn labels_and_indices_are_dense_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for (i, cause) in AbortCause::ALL.iter().enumerate() {
            assert_eq!(cause.index(), i);
            assert!(seen.insert(cause.label()), "duplicate label {}", cause.label());
            assert!(cause.label().chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(StmError::Aborted(AbortCause::Explicit));
        assert!(e.to_string().contains("aborted"));
    }
}
