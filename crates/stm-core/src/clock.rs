//! Timestamp generation.
//!
//! The greedy contention manager assigns each transaction a timestamp when it
//! *first* begins; the timestamp is retained across aborts and restarts and
//! determines priority (earlier timestamp = higher priority). The paper notes
//! that timestamps can be generated "by a variety of methods, including
//! logical clocks"; the key property is that once a transaction takes
//! timestamp `t`, there is a fixed bound on the number of transactions that
//! will ever run with an earlier timestamp.
//!
//! Two generators are provided:
//!
//! * [`TimestampClock`] — a single shared atomic counter (the scheme used in
//!   the paper's rules).
//! * [`ThreadStripedClock`] — a striped logical clock that embeds a thread
//!   tag in the low bits so different threads never produce equal
//!   timestamps, while only periodically touching shared state. It satisfies
//!   the same boundedness property and serves as the ablation for the
//!   "priority assignment source" design choice in DESIGN.md.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotone timestamp source shared by all transactions of one [`crate::Stm`].
///
/// Each call to [`TimestampClock::next`] returns a strictly increasing value.
#[derive(Debug, Default)]
pub struct TimestampClock {
    counter: AtomicU64,
}

impl TimestampClock {
    /// Creates a new clock starting at zero.
    pub fn new() -> Self {
        TimestampClock {
            counter: AtomicU64::new(0),
        }
    }

    /// Returns the next timestamp. Values are unique and strictly increasing
    /// across all threads sharing this clock.
    #[inline]
    pub fn next(&self) -> u64 {
        self.counter.fetch_add(1, Ordering::Relaxed)
    }

    /// Returns the number of timestamps handed out so far.
    pub fn issued(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }
}

/// Maximum number of threads distinguishable by [`ThreadStripedClock`].
pub const STRIPED_CLOCK_THREAD_BITS: u32 = 10;

/// A striped logical clock: timestamps are `(epoch << THREAD_BITS) | thread_tag`.
///
/// Threads draw an epoch from a shared counter only once per
/// `epoch_batch` local timestamps, reducing contention on the shared counter
/// while preserving the property the greedy manager needs: after a
/// transaction takes a timestamp, only boundedly many transactions can ever
/// take a smaller one (at most `n - 1` concurrent ones plus one batch per
/// thread).
#[derive(Debug)]
pub struct ThreadStripedClock {
    epoch: AtomicU64,
}

impl Default for ThreadStripedClock {
    fn default() -> Self {
        Self::new()
    }
}

impl ThreadStripedClock {
    /// Creates a new striped clock.
    pub fn new() -> Self {
        ThreadStripedClock {
            epoch: AtomicU64::new(0),
        }
    }

    /// Returns the next timestamp for the thread identified by `thread_tag`.
    ///
    /// `thread_tag` must be smaller than `2^STRIPED_CLOCK_THREAD_BITS`; it is
    /// masked otherwise.
    #[inline]
    pub fn next(&self, thread_tag: u64) -> u64 {
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed);
        (epoch << STRIPED_CLOCK_THREAD_BITS)
            | (thread_tag & ((1 << STRIPED_CLOCK_THREAD_BITS) - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn clock_is_strictly_increasing() {
        let c = TimestampClock::new();
        let a = c.next();
        let b = c.next();
        let d = c.next();
        assert!(a < b && b < d);
        assert_eq!(c.issued(), 3);
    }

    #[test]
    fn clock_values_are_unique_across_threads() {
        let c = Arc::new(TimestampClock::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(thread::spawn(move || {
                (0..1000).map(|_| c.next()).collect::<Vec<u64>>()
            }));
        }
        let mut seen = HashSet::new();
        for h in handles {
            for v in h.join().unwrap() {
                assert!(seen.insert(v), "duplicate timestamp {v}");
            }
        }
        assert_eq!(seen.len(), 8000);
    }

    #[test]
    fn striped_clock_distinguishes_threads() {
        let c = ThreadStripedClock::new();
        let a = c.next(1);
        let b = c.next(2);
        assert_ne!(a, b);
        assert_eq!(a & ((1 << STRIPED_CLOCK_THREAD_BITS) - 1), 1);
        assert_eq!(b & ((1 << STRIPED_CLOCK_THREAD_BITS) - 1), 2);
    }

    #[test]
    fn striped_clock_is_unique_across_threads() {
        let c = Arc::new(ThreadStripedClock::new());
        let mut handles = Vec::new();
        for tag in 0..8u64 {
            let c = Arc::clone(&c);
            handles.push(thread::spawn(move || {
                (0..500).map(|_| c.next(tag)).collect::<Vec<u64>>()
            }));
        }
        let mut seen = HashSet::new();
        for h in handles {
            for v in h.join().unwrap() {
                assert!(seen.insert(v), "duplicate striped timestamp {v}");
            }
        }
    }
}
