//! Runtime statistics.
//!
//! Two levels of counters are maintained:
//!
//! * [`TxnStats`] — plain counters local to a single transaction attempt
//!   (reads, writes, conflicts, waits). They cost nothing to update.
//! * [`StmStats`] — atomic counters shared by every thread of an [`crate::Stm`].
//!   Attempt-level counters are folded into them when the attempt commits or
//!   aborts, so shared cache lines are touched once per attempt rather than
//!   once per operation.
//!
//! The benchmark harness (`stm-bench`) derives committed-transactions-per-
//! second figures — the metric of Figures 1–4 of the paper — from
//! [`StmStats::snapshot`].

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::AbortCause;

/// Number of distinct [`AbortCause`] values — the length of every
/// per-cause counter array ([`TxRunReport::abort_causes`],
/// [`StatsSnapshot::aborts_by_cause`]), indexed by [`AbortCause::index`].
pub const ABORT_CAUSES: usize = AbortCause::ALL.len();

/// Counters local to one transaction attempt.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TxnStats {
    /// Number of transactional reads performed.
    pub reads: u64,
    /// Number of transactional writes performed.
    pub writes: u64,
    /// Number of conflicts encountered (each conflict may be resolved by
    /// several contention-manager consultations).
    pub conflicts: u64,
    /// Number of times this attempt waited for an enemy.
    pub waits: u64,
    /// Number of times this attempt requested that an enemy be aborted.
    pub enemy_aborts: u64,
}

impl TxnStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        TxnStats::default()
    }

    /// Total number of object opens (reads plus writes).
    pub fn opens(&self) -> u64 {
        self.reads + self.writes
    }
}

/// The accounting of one complete [`crate::ThreadCtx::atomically`] call —
/// every attempt of one logical transaction, folded together.
///
/// Returned by [`crate::ThreadCtx::atomically_traced`] so callers that serve
/// independent requests (the `stm-kv` server, the benchmark drivers) can
/// attribute retries, conflicts and waits to the request that caused them
/// instead of reading the process-wide [`StmStats`] aggregate.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TxRunReport {
    /// Attempts made (1 = committed first try).
    pub attempts: u64,
    /// Aborted attempts (`attempts - 1` when the call ultimately committed).
    pub aborts: u64,
    /// Conflicts encountered across all attempts.
    pub conflicts: u64,
    /// Contention-manager waits performed across all attempts.
    pub waits: u64,
    /// Enemy aborts requested across all attempts.
    pub enemy_aborts: u64,
    /// Transactional reads across all attempts.
    pub reads: u64,
    /// Transactional writes across all attempts.
    pub writes: u64,
    /// Aborted attempts broken down by [`AbortCause`], indexed by
    /// [`AbortCause::index`]. Sums to [`TxRunReport::aborts`].
    pub abort_causes: [u64; ABORT_CAUSES],
    /// Sequence number the [`crate::CommitHook`] assigned to the committed
    /// attempt's published write-set (`None` without a hook, when nothing
    /// was published, or when the call did not commit). Durable callers
    /// wait on this to know their log record reached stable storage.
    pub commit_seq: Option<u64>,
}

impl TxRunReport {
    /// Folds one attempt's local counters into the report.
    pub(crate) fn absorb_attempt(&mut self, local: &TxnStats) {
        self.conflicts += local.conflicts;
        self.waits += local.waits;
        self.enemy_aborts += local.enemy_aborts;
        self.reads += local.reads;
        self.writes += local.writes;
    }
}

/// Snapshot of the shared counters of an [`crate::Stm`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Transactions (lineages) started.
    pub transactions: u64,
    /// Attempts started (each retry is a new attempt).
    pub attempts: u64,
    /// Attempts that committed.
    pub commits: u64,
    /// Attempts that aborted.
    pub aborts: u64,
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Waits performed on behalf of contention managers.
    pub waits: u64,
    /// Enemy aborts requested by contention managers.
    pub enemy_aborts: u64,
    /// Aborts caused by read-set validation failures.
    pub validation_failures: u64,
    /// Transactional reads.
    pub reads: u64,
    /// Transactional writes.
    pub writes: u64,
    /// Aborts broken down by [`AbortCause`], indexed by
    /// [`AbortCause::index`]. Sums to [`StatsSnapshot::aborts`].
    ///
    /// Note `validation_failures` is broader than
    /// `aborts_by_cause[ValidationFailed]`: an attempt killed by an enemy
    /// may *also* have observed a validation failure, and the legacy flag
    /// counts that; the cause array records only the primary cause.
    pub aborts_by_cause: [u64; ABORT_CAUSES],
}

impl StatsSnapshot {
    /// Ratio of aborted attempts to all finished attempts, in `[0, 1]`.
    pub fn abort_ratio(&self) -> f64 {
        let finished = self.commits + self.aborts;
        if finished == 0 {
            0.0
        } else {
            self.aborts as f64 / finished as f64
        }
    }

    /// Average number of attempts needed per committed transaction.
    pub fn attempts_per_commit(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.attempts as f64 / self.commits as f64
        }
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "txns={} attempts={} commits={} aborts={} (ratio {:.2}) conflicts={} waits={} enemy-aborts={}",
            self.transactions,
            self.attempts,
            self.commits,
            self.aborts,
            self.abort_ratio(),
            self.conflicts,
            self.waits,
            self.enemy_aborts,
        )
    }
}

/// Shared, thread-safe counters for one [`crate::Stm`] instance.
#[derive(Debug, Default)]
pub struct StmStats {
    transactions: AtomicU64,
    attempts: AtomicU64,
    commits: AtomicU64,
    aborts: AtomicU64,
    conflicts: AtomicU64,
    waits: AtomicU64,
    enemy_aborts: AtomicU64,
    validation_failures: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
    aborts_by_cause: [AtomicU64; ABORT_CAUSES],
}

impl StmStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        StmStats::default()
    }

    pub(crate) fn note_transaction(&self) {
        self.transactions.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_attempt(&self) {
        self.attempts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_commit(&self, local: &TxnStats) {
        // ordering: release pairs with `snapshot`'s acquire load of
        // `commits` — observing this commit makes the attempt increment
        // that preceded it (program order) visible too, so a snapshot can
        // never report `commits + aborts > attempts`.
        self.commits.fetch_add(1, Ordering::Release);
        self.fold(local);
    }

    pub(crate) fn note_abort(&self, local: &TxnStats, cause: AbortCause, validation_failure: bool) {
        // ordering: release for the same attempts identity as `note_commit`.
        self.aborts.fetch_add(1, Ordering::Release);
        // ordering: release pairs with `snapshot` loading the cause array
        // *before* `aborts` — observing the cause increment makes the
        // `aborts` increment above visible, so a snapshot can never report
        // `sum(aborts_by_cause) > aborts`.
        self.aborts_by_cause[cause.index()].fetch_add(1, Ordering::Release);
        if validation_failure {
            // ordering: release, same shape — `validation_failures` never
            // exceeds `aborts` in a snapshot.
            self.validation_failures.fetch_add(1, Ordering::Release);
        }
        self.fold(local);
    }

    fn fold(&self, local: &TxnStats) {
        self.conflicts.fetch_add(local.conflicts, Ordering::Relaxed);
        self.waits.fetch_add(local.waits, Ordering::Relaxed);
        self.enemy_aborts
            .fetch_add(local.enemy_aborts, Ordering::Relaxed);
        self.reads.fetch_add(local.reads, Ordering::Relaxed);
        self.writes.fetch_add(local.writes, Ordering::Relaxed);
    }

    /// Takes a snapshot of all counters that is *directionally* consistent
    /// under concurrent updates: the identities
    ///
    /// * `commits + aborts <= attempts`,
    /// * `sum(aborts_by_cause) <= aborts`, and
    /// * `validation_failures <= aborts`
    ///
    /// hold in every snapshot, because derived counters are loaded before
    /// the counters they derive from (acquire loads pairing with the
    /// release increments in `note_commit` / `note_abort`: observing a
    /// derived increment makes the base increment that preceded it
    /// visible). A previous version loaded everything relaxed in
    /// declaration order, and a snapshot racing `note_attempt` +
    /// `note_commit` could report more finished attempts than started ones
    /// — a torn read that `abort_ratio` turned into nonsense.
    pub fn snapshot(&self) -> StatsSnapshot {
        // ordering: acquire loads, most-derived counters first — see above.
        let aborts_by_cause =
            std::array::from_fn(|i| self.aborts_by_cause[i].load(Ordering::Acquire));
        let validation_failures = self.validation_failures.load(Ordering::Acquire);
        let aborts = self.aborts.load(Ordering::Acquire);
        let commits = self.commits.load(Ordering::Acquire);
        let attempts = self.attempts.load(Ordering::Relaxed);
        StatsSnapshot {
            transactions: self.transactions.load(Ordering::Relaxed),
            attempts,
            commits,
            aborts,
            conflicts: self.conflicts.load(Ordering::Relaxed),
            waits: self.waits.load(Ordering::Relaxed),
            enemy_aborts: self.enemy_aborts.load(Ordering::Relaxed),
            validation_failures,
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            aborts_by_cause,
        }
    }

    /// Number of committed attempts so far.
    pub fn commits(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }

    /// Number of aborted attempts so far.
    pub fn aborts(&self) -> u64 {
        self.aborts.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_stats_opens() {
        let s = TxnStats {
            reads: 3,
            writes: 2,
            ..TxnStats::new()
        };
        assert_eq!(s.opens(), 5);
    }

    #[test]
    fn snapshot_reflects_folds() {
        let stats = StmStats::new();
        stats.note_transaction();
        stats.note_attempt();
        let local = TxnStats {
            reads: 4,
            writes: 1,
            conflicts: 2,
            waits: 1,
            enemy_aborts: 1,
        };
        stats.note_abort(&local, AbortCause::ValidationFailed, true);
        stats.note_attempt();
        stats.note_commit(&local);
        let snap = stats.snapshot();
        assert_eq!(snap.transactions, 1);
        assert_eq!(snap.attempts, 2);
        assert_eq!(snap.commits, 1);
        assert_eq!(snap.aborts, 1);
        assert_eq!(snap.validation_failures, 1);
        assert_eq!(snap.aborts_by_cause[AbortCause::ValidationFailed.index()], 1);
        assert_eq!(snap.aborts_by_cause.iter().sum::<u64>(), snap.aborts);
        assert_eq!(snap.reads, 8);
        assert_eq!(snap.writes, 2);
        assert_eq!(snap.conflicts, 4);
        assert!((snap.abort_ratio() - 0.5).abs() < 1e-9);
        assert!((snap.attempts_per_commit() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_snapshot_ratios_are_zero() {
        let snap = StmStats::new().snapshot();
        assert_eq!(snap.abort_ratio(), 0.0);
        assert_eq!(snap.attempts_per_commit(), 0.0);
        assert!(snap.to_string().contains("commits=0"));
    }
}
