//! The STM runtime: configuration, thread contexts, and the retry loop.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::clock::TimestampClock;
use crate::epoch::{EpochGc, PinSlot};
use crate::error::{AbortCause, StmError, TxResult};
use crate::hook::CommitHook;
use crate::manager::{factory, ContentionManager, ManagerFactory, PoliteManager, TxView};
use crate::stats::{StmStats, TxRunReport};
use crate::tvar::TVar;
use crate::txn::{TxLineage, TxScratch, TxShared, Txn};

/// How transactional reads are made visible to conflicting writers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReadVisibility {
    /// Readers register themselves on the object; a writer that acquires the
    /// object must arbitrate with every active reader through the contention
    /// manager. This matches the model of the paper (a conflict exists as
    /// soon as two transactions access the same object and one access is a
    /// write) and gives full serializability. This is the default.
    Visible,
    /// Readers are invisible; they record the version they observed and
    /// re-validate their read set on each subsequent open and at commit.
    /// Cheaper per read, but writers cannot be asked to wait for readers and
    /// concurrently committing read/write transactions may exhibit
    /// write-skew (as in validation-based STMs). Provided for the read-
    /// visibility ablation study.
    Invisible,
}

/// Configuration of an [`Stm`] instance, assembled by [`StmBuilder`].
#[derive(Clone)]
pub(crate) struct StmConfig {
    pub(crate) read_visibility: ReadVisibility,
    pub(crate) validate_on_open: bool,
    pub(crate) max_retries: Option<u64>,
    pub(crate) manager_factory: ManagerFactory,
    pub(crate) commit_hook: Option<Arc<dyn CommitHook>>,
}

impl std::fmt::Debug for StmConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StmConfig")
            .field("read_visibility", &self.read_visibility)
            .field("validate_on_open", &self.validate_on_open)
            .field("max_retries", &self.max_retries)
            .field("commit_hook", &self.commit_hook.is_some())
            .finish()
    }
}

impl Default for StmConfig {
    fn default() -> Self {
        StmConfig {
            read_visibility: ReadVisibility::Visible,
            validate_on_open: true,
            max_retries: None,
            manager_factory: factory(PoliteManager::default),
            commit_hook: None,
        }
    }
}

/// Builder for [`Stm`].
///
/// ```
/// use stm_core::{ReadVisibility, Stm};
/// use stm_core::manager::{factory, AggressiveManager};
///
/// let stm = Stm::builder()
///     .read_visibility(ReadVisibility::Invisible)
///     .validate_on_open(true)
///     .max_retries(Some(1_000))
///     .manager(factory(AggressiveManager::new))
///     .build();
/// assert_eq!(stm.stats().snapshot().commits, 0);
/// ```
#[derive(Debug, Default)]
pub struct StmBuilder {
    config: StmConfig,
}

impl StmBuilder {
    /// Sets the read-visibility mode (default: [`ReadVisibility::Visible`]).
    pub fn read_visibility(mut self, mode: ReadVisibility) -> Self {
        self.config.read_visibility = mode;
        self
    }

    /// Enables or disables read-set validation after every open in invisible
    /// mode (default: enabled, which provides opacity — transactions never
    /// observe inconsistent snapshots mid-flight).
    pub fn validate_on_open(mut self, enabled: bool) -> Self {
        self.config.validate_on_open = enabled;
        self
    }

    /// Limits the number of attempts per transaction. `None` (the default)
    /// retries until the transaction commits.
    pub fn max_retries(mut self, limit: Option<u64>) -> Self {
        self.config.max_retries = limit;
        self
    }

    /// Installs the contention-manager factory used for every thread context
    /// created from this STM (default: [`PoliteManager`]).
    pub fn manager(mut self, factory: ManagerFactory) -> Self {
        self.config.manager_factory = factory;
        self
    }

    /// Installs a [`CommitHook`] observing every committed transaction that
    /// published a write-set (default: none). See [`crate::hook`] for the
    /// ordering contract the runtime provides.
    pub fn commit_hook(mut self, hook: Arc<dyn CommitHook>) -> Self {
        self.config.commit_hook = Some(hook);
        self
    }

    /// Builds the [`Stm`].
    pub fn build(self) -> Stm {
        Stm {
            clock: TimestampClock::new(),
            next_tx_id: AtomicU64::new(1),
            config: self.config,
            stats: StmStats::new(),
            epoch: EpochGc::new(),
        }
    }
}

/// A software-transactional-memory instance: timestamp clock, configuration
/// and shared statistics.
///
/// `Stm` is `Sync`; share it by reference (or `Arc`) among the threads that
/// participate in transactions, and give each thread its own [`ThreadCtx`].
#[derive(Debug)]
pub struct Stm {
    clock: TimestampClock,
    next_tx_id: AtomicU64,
    config: StmConfig,
    stats: StmStats,
    epoch: EpochGc,
}

impl Default for Stm {
    fn default() -> Self {
        Stm::builder().build()
    }
}

impl Stm {
    /// Starts building an [`Stm`] with non-default configuration.
    pub fn builder() -> StmBuilder {
        StmBuilder::default()
    }

    /// Creates a per-thread execution context using the configured
    /// contention-manager factory.
    pub fn thread(&self) -> ThreadCtx<'_> {
        ThreadCtx {
            stm: self,
            manager: (self.config.manager_factory)(),
            pin: self.epoch.register(),
            scratch: TxScratch::default(),
        }
    }

    /// Creates a per-thread execution context with an explicit contention
    /// manager, overriding the configured factory. Useful for comparing
    /// managers within one program (see the `manager_showdown` example).
    pub fn thread_with(&self, manager: Box<dyn ContentionManager>) -> ThreadCtx<'_> {
        ThreadCtx {
            stm: self,
            manager,
            pin: self.epoch.register(),
            scratch: TxScratch::default(),
        }
    }

    /// Reads the latest committed value of a single [`TVar`] outside any
    /// transaction.
    pub fn read_atomic<T: Clone + Send + Sync>(&self, tvar: &TVar<T>) -> T {
        tvar.load_committed()
    }

    /// The shared statistics of this STM instance.
    pub fn stats(&self) -> &StmStats {
        &self.stats
    }

    /// The timestamp clock (exposed for instrumentation and tests).
    pub fn clock(&self) -> &TimestampClock {
        &self.clock
    }

    /// The epoch-based reclamation domain of this STM instance. Layers that
    /// unlink transactional objects from shared lookup structures at commit
    /// time retire them here; see [`crate::epoch`].
    pub fn epoch(&self) -> &EpochGc {
        &self.epoch
    }

    pub(crate) fn config(&self) -> &StmConfig {
        &self.config
    }

    fn next_tx_id(&self) -> u64 {
        self.next_tx_id.fetch_add(1, Ordering::Relaxed)
    }
}

/// A per-thread handle used to run transactions against an [`Stm`].
///
/// The context owns the thread's contention-manager instance; managers are
/// decentralised and never shared between threads.
pub struct ThreadCtx<'stm> {
    stm: &'stm Stm,
    manager: Box<dyn ContentionManager>,
    /// This thread's epoch pin; pinned for the duration of every attempt so
    /// retired objects outlive any transaction that could still reach them.
    pin: Arc<PinSlot>,
    /// Reusable read/write/publish-set storage lent to each attempt, so the
    /// tiny-transaction hot path does not reallocate its vectors per run.
    scratch: TxScratch,
}

impl<'stm> std::fmt::Debug for ThreadCtx<'stm> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadCtx")
            .field("manager", &self.manager.name())
            .finish()
    }
}

impl<'stm> ThreadCtx<'stm> {
    /// The name of the contention manager driving this context.
    pub fn manager_name(&self) -> &'static str {
        self.manager.name()
    }

    /// The [`Stm`] this context belongs to.
    pub fn stm(&self) -> &'stm Stm {
        self.stm
    }

    /// Runs `body` atomically, retrying on conflict-induced aborts until it
    /// commits (or until the configured retry limit is exhausted).
    ///
    /// The closure receives a [`Txn`] handle; every transactional operation
    /// returns a [`TxResult`] whose error must be propagated (with `?`) so
    /// the runtime can restart the attempt. The transaction keeps its
    /// timestamp — and therefore its greedy priority — across restarts.
    ///
    /// # Errors
    ///
    /// * [`StmError::Aborted`] with [`AbortCause::Explicit`] if the closure
    ///   called [`Txn::abort`].
    /// * [`StmError::RetryLimitExceeded`] if a retry limit was configured and
    ///   exhausted.
    pub fn atomically<T, F>(&mut self, body: F) -> Result<T, StmError>
    where
        F: FnMut(&mut Txn<'_>) -> TxResult<T>,
    {
        self.atomically_traced(body).0
    }

    /// Like [`ThreadCtx::atomically`], but also returns a [`TxRunReport`]
    /// accounting for every attempt of this one call: attempts, aborts,
    /// conflicts, waits. Request-serving callers (the `stm-kv` server, the
    /// benchmark drivers) use this to attribute contention to the individual
    /// request instead of the process-wide [`crate::StmStats`] aggregate.
    pub fn atomically_traced<T, F>(&mut self, body: F) -> (Result<T, StmError>, TxRunReport)
    where
        F: FnMut(&mut Txn<'_>) -> TxResult<T>,
    {
        self.run(body, false)
    }

    /// Like [`ThreadCtx::atomically_traced`], but every committed attempt
    /// passes through the [`crate::StmBuilder::commit_hook`] even when the
    /// closure published no [`crate::CommitOp`]s, and the sequence number
    /// the hook assigned lands in [`TxRunReport::commit_seq`].
    ///
    /// Durable request-serving callers use this for two things: waiting for
    /// a write to become durable (`commit_seq` names the log record to wait
    /// for) and obtaining a *consistent cut* — a read-only transaction run
    /// through `atomically_logged` gets a sequence number `S` such that the
    /// state it observed is exactly the replay of log records `1..=S`, which
    /// is what makes point-in-time snapshots of a live keyspace correct.
    pub fn atomically_logged<T, F>(&mut self, body: F) -> (Result<T, StmError>, TxRunReport)
    where
        F: FnMut(&mut Txn<'_>) -> TxResult<T>,
    {
        self.run(body, true)
    }

    fn run<T, F>(&mut self, mut body: F, force_publish: bool) -> (Result<T, StmError>, TxRunReport)
    where
        F: FnMut(&mut Txn<'_>) -> TxResult<T>,
    {
        let stm = self.stm;
        let lineage = Arc::new(TxLineage::new(stm.next_tx_id(), stm.clock.next()));
        stm.stats.note_transaction();
        let mut report = TxRunReport::default();
        let mut attempt: u64 = 0;
        loop {
            attempt += 1;
            report.attempts = attempt;
            stm.stats.note_attempt();
            // Pin this thread's epoch for the attempt: any object another
            // transaction unlinks and retires while we run stays in limbo
            // until we unpin, so references we picked up from shared lookup
            // tables remain valid for the whole attempt.
            let _pin = stm.epoch.enter(&self.pin);
            let shared = Arc::new(TxShared::new(Arc::clone(&lineage), attempt));
            let manager: &mut dyn ContentionManager = self.manager.as_mut();
            manager.begin(TxView::new(&shared));
            let mut txn = Txn::new(stm, Arc::clone(&shared), manager, &mut self.scratch);
            if force_publish {
                txn.publish_marker();
            }
            let outcome = body(&mut txn);
            report.absorb_attempt(txn.stats());
            match outcome {
                Ok(value) => {
                    if txn.finish_commit() {
                        report.commit_seq = txn.commit_seq();
                        return (Ok(value), report);
                    }
                    // Commit failed: a validation failure if one was
                    // observed, otherwise the status CAS itself lost.
                    let cause = if txn.validation_failed() {
                        AbortCause::ValidationFailed
                    } else {
                        AbortCause::CommitFailed
                    };
                    txn.finish_abort(cause);
                    report.abort_causes[cause.index()] += 1;
                }
                Err(StmError::Aborted(AbortCause::Explicit)) => {
                    txn.finish_abort(AbortCause::Explicit);
                    report.abort_causes[AbortCause::Explicit.index()] += 1;
                    report.aborts = attempt;
                    return (Err(StmError::Aborted(AbortCause::Explicit)), report);
                }
                Err(StmError::Aborted(cause)) => {
                    txn.finish_abort(cause);
                    report.abort_causes[cause.index()] += 1;
                }
                Err(other) => {
                    // The closure surfaced a non-abort error (e.g. a nested
                    // retry-limit); account it as an explicit caller abort.
                    txn.finish_abort(AbortCause::Explicit);
                    report.abort_causes[AbortCause::Explicit.index()] += 1;
                    report.aborts = attempt;
                    return (Err(other), report);
                }
            }
            report.aborts = attempt;
            if let Some(limit) = stm.config.max_retries {
                if attempt >= limit {
                    return (Err(StmError::RetryLimitExceeded { attempts: attempt }), report);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::AggressiveManager;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    #[test]
    fn single_threaded_read_write() {
        let stm = Stm::default();
        let v = TVar::new(10i32);
        let mut ctx = stm.thread();
        let out = ctx
            .atomically(|tx| {
                let x = tx.read(&v)?;
                tx.write(&v, x + 5)?;
                tx.read(&v)
            })
            .unwrap();
        assert_eq!(out, 15);
        assert_eq!(stm.read_atomic(&v), 15);
        let snap = stm.stats().snapshot();
        assert_eq!(snap.commits, 1);
        assert_eq!(snap.aborts, 0);
    }

    #[test]
    fn modify_and_read_for_update() {
        let stm = Stm::default();
        let v = TVar::new(3u64);
        let mut ctx = stm.thread();
        ctx.atomically(|tx| tx.modify(&v, |x| x * 2)).unwrap();
        assert_eq!(stm.read_atomic(&v), 6);
        let prev = ctx
            .atomically(|tx| {
                let prev = tx.read_for_update(&v)?;
                tx.write(&v, prev + 1)?;
                Ok(prev)
            })
            .unwrap();
        assert_eq!(prev, 6);
        assert_eq!(stm.read_atomic(&v), 7);
    }

    #[test]
    fn multi_object_transaction_is_atomic() {
        let stm = Stm::default();
        let a = TVar::new(100i64);
        let b = TVar::new(0i64);
        let mut ctx = stm.thread();
        ctx.atomically(|tx| {
            let x = tx.read(&a)?;
            tx.write(&a, x - 40)?;
            tx.modify(&b, |y| y + 40)?;
            Ok(())
        })
        .unwrap();
        assert_eq!(stm.read_atomic(&a), 60);
        assert_eq!(stm.read_atomic(&b), 40);
    }

    #[test]
    fn explicit_abort_escapes_and_has_no_effect() {
        let stm = Stm::default();
        let v = TVar::new(1u32);
        let mut ctx = stm.thread();
        let err = ctx
            .atomically(|tx| {
                tx.write(&v, 999)?;
                tx.abort::<()>()
            })
            .unwrap_err();
        assert_eq!(err.abort_cause(), Some(AbortCause::Explicit));
        assert_eq!(stm.read_atomic(&v), 1);
    }

    #[test]
    fn aborted_writes_are_invisible() {
        let stm = Stm::default();
        let v = TVar::new(5u32);
        let mut ctx = stm.thread();
        let _ = ctx.atomically(|tx| {
            tx.write(&v, 50)?;
            tx.abort::<()>()
        });
        assert_eq!(stm.read_atomic(&v), 5);
        // A later transaction sees the original value and can update it.
        ctx.atomically(|tx| tx.modify(&v, |x| x + 1)).unwrap();
        assert_eq!(stm.read_atomic(&v), 6);
    }

    #[test]
    fn read_your_own_writes() {
        let stm = Stm::default();
        let v = TVar::new(0u32);
        let mut ctx = stm.thread();
        ctx.atomically(|tx| {
            tx.write(&v, 7)?;
            assert_eq!(tx.read(&v)?, 7);
            tx.modify(&v, |x| x + 1)?;
            assert_eq!(tx.read(&v)?, 8);
            Ok(())
        })
        .unwrap();
        assert_eq!(stm.read_atomic(&v), 8);
    }

    #[test]
    fn counter_increments_are_not_lost_across_threads() {
        for visibility in [ReadVisibility::Visible, ReadVisibility::Invisible] {
            let stm = Arc::new(
                Stm::builder()
                    .read_visibility(visibility)
                    .manager(factory(AggressiveManager::new))
                    .build(),
            );
            let counter = TVar::new(0u64);
            let threads = 4;
            let per_thread = 500u64;
            thread::scope(|scope| {
                for _ in 0..threads {
                    let stm = Arc::clone(&stm);
                    let counter = counter.clone();
                    scope.spawn(move || {
                        let mut ctx = stm.thread();
                        for _ in 0..per_thread {
                            ctx.atomically(|tx| tx.modify(&counter, |x| x + 1)).unwrap();
                        }
                    });
                }
            });
            assert_eq!(stm.read_atomic(&counter), threads * per_thread);
        }
    }

    #[test]
    fn bank_invariant_preserved_under_contention() {
        let stm = Arc::new(Stm::default());
        let accounts: Vec<TVar<i64>> = (0..8).map(|_| TVar::new(1000)).collect();
        let total: i64 = 8 * 1000;
        thread::scope(|scope| {
            for t in 0..4usize {
                let stm = Arc::clone(&stm);
                let accounts = accounts.clone();
                scope.spawn(move || {
                    let mut ctx = stm.thread();
                    for i in 0..400usize {
                        let from = (t + i) % accounts.len();
                        let to = (t + i * 7 + 1) % accounts.len();
                        if from == to {
                            continue;
                        }
                        ctx.atomically(|tx| {
                            let a = tx.read(&accounts[from])?;
                            let b = tx.read(&accounts[to])?;
                            tx.write(&accounts[from], a - 10)?;
                            tx.write(&accounts[to], b + 10)?;
                            Ok(())
                        })
                        .unwrap();
                    }
                });
            }
        });
        let sum: i64 = accounts.iter().map(|a| stm.read_atomic(a)).sum();
        assert_eq!(sum, total);
    }

    #[test]
    fn retry_limit_is_enforced() {
        let stm = Stm::builder().max_retries(Some(3)).build();
        let v = TVar::new(0u32);
        let mut ctx = stm.thread();
        let calls = AtomicUsize::new(0);
        // A body that always claims validation failure.
        let err = ctx
            .atomically(|tx| -> TxResult<()> {
                calls.fetch_add(1, Ordering::Relaxed);
                tx.write(&v, 1)?;
                Err(StmError::Aborted(AbortCause::ValidationFailed))
            })
            .unwrap_err();
        assert_eq!(err, StmError::RetryLimitExceeded { attempts: 3 });
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        assert_eq!(stm.read_atomic(&v), 0);
    }

    #[test]
    fn traced_run_accounts_attempts_and_aborts() {
        let stm = Stm::default();
        let v = TVar::new(0u32);
        let mut ctx = stm.thread();
        // First-try commit: one attempt, no aborts, one read + one write.
        let (result, report) = ctx.atomically_traced(|tx| tx.modify(&v, |x| x + 1));
        assert!(result.is_ok());
        assert_eq!(report.attempts, 1);
        assert_eq!(report.aborts, 0);
        assert_eq!(report.writes, 1);
        // A body that fails twice before committing: three attempts, two
        // aborts, and the per-attempt counters folded across all attempts.
        let failures = AtomicUsize::new(2);
        let (result, report) = ctx.atomically_traced(|tx| {
            tx.modify(&v, |x| x + 1)?;
            if failures.load(Ordering::Relaxed) > 0 {
                failures.fetch_sub(1, Ordering::Relaxed);
                return Err(StmError::Aborted(AbortCause::ValidationFailed));
            }
            Ok(())
        });
        assert!(result.is_ok());
        assert_eq!(report.attempts, 3);
        assert_eq!(report.aborts, 2);
        assert_eq!(report.writes, 3);
        assert_eq!(stm.read_atomic(&v), 2);
        // Retry-limit exhaustion reports every attempt as aborted.
        let stm = Stm::builder().max_retries(Some(2)).build();
        let mut ctx = stm.thread();
        let (result, report) =
            ctx.atomically_traced(|_tx| -> TxResult<()> {
                Err(StmError::Aborted(AbortCause::ValidationFailed))
            });
        assert_eq!(result, Err(StmError::RetryLimitExceeded { attempts: 2 }));
        assert_eq!(report.attempts, 2);
        assert_eq!(report.aborts, 2);
    }

    #[test]
    fn attempts_pin_and_unpin_the_epoch() {
        let stm = Stm::default();
        let v = TVar::new(0u32);
        let mut ctx = stm.thread();
        ctx.atomically(|tx| {
            assert!(
                tx.epoch().min_pinned().is_some(),
                "an attempt must hold an epoch pin"
            );
            tx.read(&v)
        })
        .unwrap();
        assert_eq!(
            stm.epoch().min_pinned(),
            None,
            "the pin must be released once the attempt finishes"
        );
    }

    #[test]
    fn read_heavy_loop_keeps_visible_reader_list_bounded() {
        let stm = Stm::default();
        let v = TVar::new(0u32);
        let mut ctx = stm.thread();
        for _ in 0..5_000 {
            ctx.atomically(|tx| tx.read(&v)).unwrap();
        }
        // Every committed reader unregisters itself and pruning removes any
        // stragglers, so the list never accumulates finished readers.
        assert!(
            v.inner().reader_count() <= 1,
            "reader list leaked: {} entries after a read-only loop",
            v.inner().reader_count()
        );
    }

    #[test]
    fn thread_ctx_reports_manager_name() {
        let stm = Stm::default();
        assert_eq!(stm.thread().manager_name(), "polite");
        let ctx = stm.thread_with(Box::new(AggressiveManager::new()));
        assert_eq!(ctx.manager_name(), "aggressive");
    }

    #[test]
    fn timestamps_increase_per_transaction() {
        let stm = Stm::default();
        let mut ctx = stm.thread();
        let t1 = ctx.atomically(|tx| Ok(tx.timestamp())).unwrap();
        let t2 = ctx.atomically(|tx| Ok(tx.timestamp())).unwrap();
        assert!(t2 > t1);
        assert!(stm.clock().issued() >= 2);
    }

    #[test]
    fn stats_track_commits_and_transactions() {
        let stm = Stm::default();
        let v = TVar::new(0u8);
        let mut ctx = stm.thread();
        for _ in 0..10 {
            ctx.atomically(|tx| tx.modify(&v, |x| x.wrapping_add(1)))
                .unwrap();
        }
        let snap = stm.stats().snapshot();
        assert_eq!(snap.transactions, 10);
        assert_eq!(snap.commits, 10);
        assert!(snap.attempts >= 10);
        assert!(snap.writes >= 10);
    }
}
