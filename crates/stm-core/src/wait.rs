//! Waiting and backoff primitives used when a contention manager decides
//! that the current transaction should wait for an enemy.

use std::time::Duration;

/// How long, and under which conditions, a transaction should wait for the
/// enemy transaction it conflicts with.
///
/// Regardless of the spec, the runtime always stops waiting as soon as the
/// enemy is no longer active (it committed or aborted), as soon as the enemy
/// itself starts waiting (the condition the greedy manager's Rule 2 watches
/// for), or as soon as the waiting transaction is itself aborted by a third
/// party.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitSpec {
    /// Upper bound on the wait. `None` means "wait until the enemy commits,
    /// aborts, or starts waiting" (the greedy manager's unbounded wait, which
    /// is nonetheless finite when transaction delays are finite).
    pub max: Option<Duration>,
}

impl WaitSpec {
    /// Wait until the enemy commits, aborts, or starts waiting.
    pub const fn until_enemy_quiesces() -> Self {
        WaitSpec { max: None }
    }

    /// Wait at most `max`, then give control back to the contention manager.
    pub const fn bounded(max: Duration) -> Self {
        WaitSpec { max: Some(max) }
    }

    /// Convenience constructor for a bounded wait expressed in microseconds.
    pub const fn micros(us: u64) -> Self {
        WaitSpec {
            max: Some(Duration::from_micros(us)),
        }
    }
}

/// A small spin/yield backoff used inside wait loops.
///
/// The first few iterations spin with `core::hint::spin_loop`, after which
/// the waiter yields to the OS scheduler, and eventually sleeps for short,
/// exponentially growing intervals (capped). This mirrors the adaptive
/// backoff used by the DSTM/SXM runtimes the paper experiments with.
#[derive(Debug)]
pub struct SpinWait {
    step: u32,
}

impl Default for SpinWait {
    fn default() -> Self {
        Self::new()
    }
}

impl SpinWait {
    const SPIN_LIMIT: u32 = 6;
    const YIELD_LIMIT: u32 = 10;
    const MAX_SLEEP_US: u64 = 100;

    /// Creates a fresh backoff state.
    pub fn new() -> Self {
        SpinWait { step: 0 }
    }

    /// Performs one backoff step: spin, yield, or sleep depending on how many
    /// steps have already been taken.
    pub fn snooze(&mut self) {
        if self.step < Self::SPIN_LIMIT {
            for _ in 0..(1u32 << self.step) {
                core::hint::spin_loop();
            }
        } else if self.step < Self::YIELD_LIMIT {
            std::thread::yield_now();
        } else {
            let exp = (self.step - Self::YIELD_LIMIT).min(6);
            let us = (1u64 << exp).min(Self::MAX_SLEEP_US);
            std::thread::sleep(Duration::from_micros(us));
        }
        self.step = self.step.saturating_add(1);
    }

    /// Resets the backoff to its initial (pure spin) state.
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Number of steps taken since creation or the last [`SpinWait::reset`].
    pub fn steps(&self) -> u32 {
        self.step
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn wait_spec_constructors() {
        assert_eq!(WaitSpec::until_enemy_quiesces().max, None);
        assert_eq!(
            WaitSpec::bounded(Duration::from_millis(5)).max,
            Some(Duration::from_millis(5))
        );
        assert_eq!(WaitSpec::micros(20).max, Some(Duration::from_micros(20)));
    }

    #[test]
    fn spin_wait_progresses_through_phases() {
        let mut w = SpinWait::new();
        for _ in 0..20 {
            w.snooze();
        }
        assert_eq!(w.steps(), 20);
        w.reset();
        assert_eq!(w.steps(), 0);
    }

    #[test]
    fn spin_wait_does_not_sleep_excessively() {
        let mut w = SpinWait::new();
        let start = Instant::now();
        for _ in 0..40 {
            w.snooze();
        }
        // 40 steps with a 100us cap must finish well under a second.
        assert!(start.elapsed() < Duration::from_secs(1));
    }
}
