//! The greedy contention manager — the paper's central contribution.
//!
//! Every transaction is assigned a timestamp when it *first* begins and keeps
//! it across aborts and restarts; an earlier timestamp means higher priority.
//! When transaction `A` is about to perform an access that conflicts with
//! transaction `B`, the greedy manager applies two rules (Section 3):
//!
//! 1. If `B` is lower priority than `A`, **or** `B` is waiting for another
//!    transaction, then `A` aborts `B`.
//! 2. If `B` is higher priority than `A` and is not waiting, then `A` waits
//!    until `B` commits, aborts, or starts waiting (in which case Rule 1
//!    applies).
//!
//! Because the highest-priority running transaction never waits and is never
//! aborted, the greedy manager satisfies the *pending-commit property* — at
//! any time some running transaction will run uninterrupted until it commits
//! — which by Theorem 9 bounds the makespan of `n` concurrent transactions
//! sharing `s` objects to within a factor of `s(s+1)+2` of an optimal
//! off-line list schedule, and by Theorem 1 guarantees that every transaction
//! commits within a bounded delay.
//!
//! [`GreedyTimeoutManager`] adds the Section 6 extension for transactions
//! that may halt undetectably: waits are bounded by a per-enemy time-out that
//! doubles every time a wait on that enemy expires and the enemy has to be
//! killed.

use std::collections::HashMap;
use std::time::Duration;

use stm_core::manager::{factory, ManagerFactory};
use stm_core::{ConflictKind, ContentionManager, Resolution, TxView, WaitSpec};

/// Returns `true` when `other` has strictly lower priority than `me`
/// (i.e. a strictly later timestamp; ties are broken by transaction id so two
/// distinct transactions are never considered equal).
fn lower_priority(me: TxView<'_>, other: TxView<'_>) -> bool {
    match other.timestamp().cmp(&me.timestamp()) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Less => false,
        std::cmp::Ordering::Equal => other.id() > me.id(),
    }
}

/// The greedy contention manager (paper, Section 3).
///
/// Stateless: decisions depend only on the two transactions' timestamps and
/// the enemy's `waiting` flag, so the manager is trivially decentralised.
#[derive(Debug, Default, Clone, Copy)]
pub struct GreedyManager;

impl GreedyManager {
    /// Creates a greedy manager.
    pub fn new() -> Self {
        GreedyManager
    }

    /// A per-thread factory for use with [`stm_core::StmBuilder::manager`].
    pub fn factory() -> ManagerFactory {
        factory(GreedyManager::new)
    }
}

impl ContentionManager for GreedyManager {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn resolve(&mut self, me: TxView<'_>, other: TxView<'_>, _kind: ConflictKind) -> Resolution {
        // Rule 1: abort enemies that are lower priority or themselves waiting.
        if lower_priority(me, other) || other.is_waiting() {
            Resolution::AbortOther
        } else {
            // Rule 2: wait until the higher-priority enemy commits, aborts,
            // or starts waiting. The runtime's wait loop wakes on exactly
            // those three events.
            Resolution::wait_for_enemy()
        }
    }
}

/// Default initial wait time-out of [`GreedyTimeoutManager`].
pub const DEFAULT_GREEDY_TIMEOUT: Duration = Duration::from_micros(50);

/// The greedy manager extended with doubling time-outs (paper, Section 6).
///
/// Whenever a transaction waits for a higher-priority enemy, the wait is
/// bounded by a time-out associated with that enemy. If the time-out expires
/// and the enemy is still active (it may have crashed or been swapped out),
/// the enemy is aborted and its time-out is doubled for the next encounter —
/// "choose the time-out period to be proportional to the number of times A
/// had to wait for B and then aborted B ... simply performed by doubling the
/// time for each such new discovery."
#[derive(Debug, Clone)]
pub struct GreedyTimeoutManager {
    base: Duration,
    /// Per-enemy state: (current time-out exponent, whether the last
    /// resolution against this enemy was a wait that has now come back to us
    /// unresolved).
    enemies: HashMap<u64, (u32, bool)>,
}

impl Default for GreedyTimeoutManager {
    fn default() -> Self {
        GreedyTimeoutManager::new(DEFAULT_GREEDY_TIMEOUT)
    }
}

impl GreedyTimeoutManager {
    /// Creates a greedy-with-time-out manager with the given initial wait
    /// time-out.
    pub fn new(base: Duration) -> Self {
        GreedyTimeoutManager {
            base,
            enemies: HashMap::new(),
        }
    }

    /// A per-thread factory using [`DEFAULT_GREEDY_TIMEOUT`].
    pub fn factory() -> ManagerFactory {
        factory(GreedyTimeoutManager::default)
    }

    fn timeout_for(&self, exponent: u32) -> Duration {
        self.base * (1u32 << exponent.min(16))
    }
}

impl ContentionManager for GreedyTimeoutManager {
    fn name(&self) -> &'static str {
        "greedy-timeout"
    }

    fn committed(&mut self, _me: TxView<'_>) {
        self.enemies.clear();
    }

    fn resolve(&mut self, me: TxView<'_>, other: TxView<'_>, _kind: ConflictKind) -> Resolution {
        if lower_priority(me, other) || other.is_waiting() {
            return Resolution::AbortOther;
        }
        let (exponent, already_waited) = *self.enemies.entry(other.id()).or_insert((0, false));
        if already_waited {
            // We already waited for this enemy once and it is still in the
            // way: presume it halted, abort it, and double the time-out we
            // will grant it next time.
            self.enemies
                .insert(other.id(), (exponent.saturating_add(1), false));
            return Resolution::AbortOther;
        }
        self.enemies.insert(other.id(), (exponent, true));
        let timeout = self.timeout_for(exponent);
        Resolution::Wait(WaitSpec::bounded(timeout))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{tx, view};

    #[test]
    fn rule_one_aborts_lower_priority_enemy() {
        let me = tx(1, 10);
        let other = tx(2, 20); // later timestamp -> lower priority
        let mut greedy = GreedyManager::new();
        assert_eq!(
            greedy.resolve(view(&me), view(&other), ConflictKind::WriteWrite),
            Resolution::AbortOther
        );
    }

    #[test]
    fn rule_one_aborts_waiting_enemy_even_if_higher_priority() {
        let me = tx(1, 20);
        let other = tx(2, 10); // earlier timestamp -> higher priority
        other.set_waiting(true);
        let mut greedy = GreedyManager::new();
        assert_eq!(
            greedy.resolve(view(&me), view(&other), ConflictKind::WriteWrite),
            Resolution::AbortOther
        );
    }

    #[test]
    fn rule_two_waits_for_higher_priority_enemy() {
        let me = tx(1, 20);
        let other = tx(2, 10);
        let mut greedy = GreedyManager::new();
        assert_eq!(
            greedy.resolve(view(&me), view(&other), ConflictKind::ReadWrite),
            Resolution::wait_for_enemy()
        );
    }

    #[test]
    fn ties_are_broken_deterministically_and_asymmetrically() {
        let a = tx(1, 10);
        let b = tx(2, 10);
        let mut greedy = GreedyManager::new();
        let ab = greedy.resolve(view(&a), view(&b), ConflictKind::WriteWrite);
        let ba = greedy.resolve(view(&b), view(&a), ConflictKind::WriteWrite);
        // Exactly one direction aborts, the other waits: no mutual abort, no
        // mutual wait.
        assert_ne!(ab == Resolution::AbortOther, ba == Resolution::AbortOther);
    }

    #[test]
    fn highest_priority_transaction_never_waits_nor_aborts_itself() {
        let oldest = tx(1, 0);
        let mut greedy = GreedyManager::new();
        for ts in 1..50u64 {
            let enemy = tx(ts + 1, ts);
            let r = greedy.resolve(view(&oldest), view(&enemy), ConflictKind::WriteWrite);
            assert_eq!(r, Resolution::AbortOther);
        }
    }

    #[test]
    fn greedy_timeout_waits_then_kills_then_doubles() {
        let me = tx(1, 20);
        let other = tx(2, 10);
        let mut mgr = GreedyTimeoutManager::new(Duration::from_micros(10));
        // First encounter: bounded wait with the base time-out.
        let r1 = mgr.resolve(view(&me), view(&other), ConflictKind::WriteWrite);
        match r1 {
            Resolution::Wait(spec) => assert_eq!(spec.max, Some(Duration::from_micros(10))),
            other => panic!("expected wait, got {other:?}"),
        }
        // Second encounter with the same live enemy: presume halted, kill it.
        let r2 = mgr.resolve(view(&me), view(&other), ConflictKind::WriteWrite);
        assert_eq!(r2, Resolution::AbortOther);
        // Third encounter: wait again, but with the doubled time-out.
        let r3 = mgr.resolve(view(&me), view(&other), ConflictKind::WriteWrite);
        match r3 {
            Resolution::Wait(spec) => assert_eq!(spec.max, Some(Duration::from_micros(20))),
            other => panic!("expected wait, got {other:?}"),
        }
    }

    #[test]
    fn greedy_timeout_still_applies_rule_one() {
        let me = tx(1, 10);
        let other = tx(2, 20);
        let mut mgr = GreedyTimeoutManager::default();
        assert_eq!(
            mgr.resolve(view(&me), view(&other), ConflictKind::WriteWrite),
            Resolution::AbortOther
        );
        assert_eq!(mgr.name(), "greedy-timeout");
    }

    #[test]
    fn factories_produce_named_managers() {
        assert_eq!(GreedyManager::factory()().name(), "greedy");
        assert_eq!(GreedyTimeoutManager::factory()().name(), "greedy-timeout");
    }
}

