//! The Polka contention manager (Scherer & Scott, "Advanced contention
//! management for dynamic software transactional memory", PODC 2005).
//!
//! Polka is the marriage of **Pol**ite and **Ka**rma: priorities are the
//! Karma work estimates (objects opened, retained across aborts), but instead
//! of fixed-size backoff rounds a conflicting transaction performs a number
//! of *exponentially growing* backoffs equal to the difference between the
//! enemy's priority and its own, and only then aborts the enemy. The paper's
//! figures show Polka (together with Karma) leading in contention-intensive
//! scenarios.

use std::time::Duration;

use stm_core::manager::{factory, ManagerFactory};
use stm_core::{ConflictKind, ContentionManager, Resolution, TxView, WaitSpec};

/// Default initial backoff interval.
pub const DEFAULT_POLKA_BASE: Duration = Duration::from_micros(2);
/// Default maximum backoff interval.
pub const DEFAULT_POLKA_CAP: Duration = Duration::from_millis(1);
/// Default hard cap on backoff rounds regardless of the karma gap.
pub const DEFAULT_POLKA_MAX_ROUNDS: u32 = 16;

/// Polite + Karma: karma-difference many exponential backoffs, then abort.
#[derive(Debug, Clone)]
pub struct PolkaManager {
    base: Duration,
    cap: Duration,
    /// Hard upper bound on backoff rounds regardless of the karma gap (keeps
    /// the tail bounded when the enemy is vastly richer).
    max_rounds: u32,
    /// Karma earned per object opened.
    increment: u64,
    round: u32,
    conflict_with: Option<u64>,
}

impl Default for PolkaManager {
    fn default() -> Self {
        PolkaManager::new(DEFAULT_POLKA_BASE, DEFAULT_POLKA_CAP, DEFAULT_POLKA_MAX_ROUNDS)
    }
}

impl PolkaManager {
    /// Creates a Polka manager earning one karma per object opened.
    pub fn new(base: Duration, cap: Duration, max_rounds: u32) -> Self {
        PolkaManager::with_params(base, cap, max_rounds, 1)
    }

    /// Creates a Polka manager with an explicit per-open karma increment.
    pub fn with_params(base: Duration, cap: Duration, max_rounds: u32, increment: u64) -> Self {
        PolkaManager {
            base,
            cap,
            max_rounds,
            increment,
            round: 0,
            conflict_with: None,
        }
    }

    /// A per-thread factory with the default parameters.
    pub fn factory() -> ManagerFactory {
        factory(PolkaManager::default)
    }

    fn interval(&self) -> Duration {
        let factor = 1u32 << self.round.min(20);
        self.base.saturating_mul(factor).min(self.cap)
    }
}

impl ContentionManager for PolkaManager {
    fn name(&self) -> &'static str {
        "polka"
    }

    fn opened(&mut self, me: TxView<'_>, _object_id: u64) {
        me.add_karma(self.increment);
    }

    fn committed(&mut self, me: TxView<'_>) {
        me.reset_karma();
        self.round = 0;
        self.conflict_with = None;
    }

    fn resolve(&mut self, me: TxView<'_>, other: TxView<'_>, _kind: ConflictKind) -> Resolution {
        if self.conflict_with != Some(other.id()) {
            self.conflict_with = Some(other.id());
            self.round = 0;
        }
        let gap = other.karma().saturating_sub(me.karma());
        let rounds_allowed = (gap.min(self.max_rounds as u64)) as u32;
        if u64::from(self.round) >= u64::from(rounds_allowed) {
            self.round = 0;
            self.conflict_with = None;
            return Resolution::AbortOther;
        }
        let wait = self.interval();
        self.round += 1;
        Resolution::Wait(WaitSpec::bounded(wait))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{tx, view};

    #[test]
    fn richer_me_aborts_immediately() {
        let me = tx(1, 1);
        let other = tx(2, 2);
        view(&me).add_karma(5);
        view(&other).add_karma(2);
        let mut m = PolkaManager::default();
        assert_eq!(
            m.resolve(view(&me), view(&other), ConflictKind::WriteWrite),
            Resolution::AbortOther
        );
    }

    #[test]
    fn backoff_rounds_equal_karma_gap() {
        let me = tx(1, 1);
        let other = tx(2, 2);
        view(&other).add_karma(3);
        let mut m = PolkaManager::new(Duration::from_micros(1), Duration::from_millis(1), 16);
        let mut waits = 0;
        loop {
            match m.resolve(view(&me), view(&other), ConflictKind::WriteWrite) {
                Resolution::Wait(_) => waits += 1,
                Resolution::AbortOther => break,
                Resolution::AbortSelf => panic!("polka never aborts itself"),
            }
            assert!(waits < 50);
        }
        assert_eq!(waits, 3, "gap of 3 karma means 3 backoff rounds");
    }

    #[test]
    fn rounds_are_capped() {
        let me = tx(1, 1);
        let other = tx(2, 2);
        view(&other).add_karma(1_000);
        let mut m = PolkaManager::new(Duration::from_micros(1), Duration::from_micros(16), 4);
        let mut waits = 0;
        loop {
            match m.resolve(view(&me), view(&other), ConflictKind::WriteWrite) {
                Resolution::Wait(spec) => {
                    assert!(spec.max.unwrap() <= Duration::from_micros(16));
                    waits += 1;
                }
                Resolution::AbortOther => break,
                Resolution::AbortSelf => unreachable!(),
            }
        }
        assert_eq!(waits, 4);
    }

    #[test]
    fn hooks_and_names() {
        let me = tx(1, 1);
        let mut m = PolkaManager::default();
        m.opened(view(&me), 1);
        assert_eq!(view(&me).karma(), 1);
        m.committed(view(&me));
        assert_eq!(view(&me).karma(), 0);
        assert_eq!(m.name(), "polka");
        assert_eq!(PolkaManager::factory()().name(), "polka");
    }
}
