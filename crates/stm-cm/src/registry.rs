//! A registry of every contention manager in the crate, addressable by name.
//!
//! The benchmark harness and the examples sweep over managers by name; the
//! registry is the single source of truth for which managers exist, what
//! they are called, and how to build a per-thread factory for each.

use std::fmt;
use std::str::FromStr;
use std::time::Duration;

use stm_core::manager::{factory, ManagerFactory};
use stm_core::manager::{AggressiveManager, PoliteManager};

use crate::{
    BackoffManager, EruptionManager, GreedyManager, GreedyTimeoutManager, KarmaManager,
    KindergartenManager, KillBlockedManager, PolkaManager, QueueOnBlockManager, RandomizedManager,
    TimestampManager,
};

/// Every tunable parameter of the manager family, with defaults equal to the
/// values that used to be hard-coded in each manager's `Default` impl.
///
/// The Section 6 discussion predicts crossovers as these knobs move (e.g.
/// greedy-timeout's initial time-out trading robustness against spurious
/// kills); `ManagerKind::factory_with` threads a `ManagerParams` through to
/// every per-thread manager instance so ablation sweeps can vary one knob at
/// a time. `ManagerParams::default()` reproduces the registry's historical
/// behaviour exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ManagerParams {
    /// Initial wait time-out of greedy-timeout (doubles per presumed-halt).
    pub greedy_timeout: Duration,
    /// Polite: backoff rounds before aborting the enemy.
    pub polite_max_rounds: u32,
    /// Polite: base backoff interval (doubles per round).
    pub polite_base: Duration,
    /// Backoff: initial backoff interval.
    pub backoff_base: Duration,
    /// Backoff: maximum backoff interval.
    pub backoff_cap: Duration,
    /// Backoff: rounds against one enemy before the enemy is aborted.
    pub backoff_max_rounds: u32,
    /// Randomized: probability of aborting the enemy instead of waiting.
    pub randomized_abort_probability: f64,
    /// Randomized: upper bound of the random wait.
    pub randomized_max_backoff: Duration,
    /// Timestamp: length of one bounded wait quantum.
    pub timestamp_quantum: Duration,
    /// Timestamp: expired quanta before an older enemy is presumed defunct.
    pub timestamp_patience: u32,
    /// Karma: inter-round backoff while the karma gap is open.
    pub karma_backoff: Duration,
    /// Karma/Eruption/Polka: karma earned per object opened.
    pub karma_increment: u64,
    /// Eruption: inter-round backoff while blocked.
    pub eruption_backoff: Duration,
    /// Kindergarten: pause before re-examining a conflict.
    pub kindergarten_pause: Duration,
    /// Kindergarten: times we give way to one enemy before insisting.
    pub kindergarten_max_yields: u32,
    /// KillBlocked: length of one bounded wait slice.
    pub killblocked_quantum: Duration,
    /// KillBlocked: wait slices granted to a running (non-blocked) enemy.
    pub killblocked_patience: u32,
    /// QueueOnBlock: safety time-out bounding each wait on the enemy.
    pub queueonblock_safety_timeout: Duration,
    /// QueueOnBlock: expired safety time-outs before the enemy is killed.
    pub queueonblock_max_expiries: u32,
    /// Polka: initial backoff interval.
    pub polka_base: Duration,
    /// Polka: maximum backoff interval.
    pub polka_cap: Duration,
    /// Polka: hard cap on backoff rounds regardless of the karma gap.
    pub polka_max_rounds: u32,
}

impl Default for ManagerParams {
    fn default() -> Self {
        // Every value references the same constant the manager's own
        // `Default` impl is built from, so the registry cannot drift from
        // the managers.
        ManagerParams {
            greedy_timeout: crate::greedy::DEFAULT_GREEDY_TIMEOUT,
            polite_max_rounds: stm_core::manager::DEFAULT_POLITE_MAX_ROUNDS,
            polite_base: stm_core::manager::DEFAULT_POLITE_BASE,
            backoff_base: crate::backoff::DEFAULT_BACKOFF_BASE,
            backoff_cap: crate::backoff::DEFAULT_BACKOFF_CAP,
            backoff_max_rounds: crate::backoff::DEFAULT_BACKOFF_MAX_ROUNDS,
            randomized_abort_probability: crate::randomized::DEFAULT_RANDOMIZED_ABORT_PROBABILITY,
            randomized_max_backoff: crate::randomized::DEFAULT_RANDOMIZED_MAX_BACKOFF,
            timestamp_quantum: crate::timestamp::DEFAULT_TIMESTAMP_QUANTUM,
            timestamp_patience: crate::timestamp::DEFAULT_TIMESTAMP_PATIENCE,
            karma_backoff: crate::karma::DEFAULT_KARMA_BACKOFF,
            karma_increment: crate::karma::DEFAULT_KARMA_INCREMENT,
            eruption_backoff: crate::eruption::DEFAULT_ERUPTION_BACKOFF,
            kindergarten_pause: crate::kindergarten::DEFAULT_KINDERGARTEN_PAUSE,
            kindergarten_max_yields: crate::kindergarten::DEFAULT_KINDERGARTEN_MAX_YIELDS,
            killblocked_quantum: crate::killblocked::DEFAULT_KILLBLOCKED_QUANTUM,
            killblocked_patience: crate::killblocked::DEFAULT_KILLBLOCKED_PATIENCE,
            queueonblock_safety_timeout: crate::queueonblock::DEFAULT_QUEUEONBLOCK_SAFETY_TIMEOUT,
            queueonblock_max_expiries: crate::queueonblock::DEFAULT_QUEUEONBLOCK_MAX_EXPIRIES,
            polka_base: crate::polka::DEFAULT_POLKA_BASE,
            polka_cap: crate::polka::DEFAULT_POLKA_CAP,
            polka_max_rounds: crate::polka::DEFAULT_POLKA_MAX_ROUNDS,
        }
    }
}

/// Every contention manager known to this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum ManagerKind {
    Greedy,
    GreedyTimeout,
    Aggressive,
    Polite,
    Backoff,
    Randomized,
    Timestamp,
    Karma,
    Eruption,
    Kindergarten,
    KillBlocked,
    QueueOnBlock,
    Polka,
}

impl ManagerKind {
    /// All manager kinds, in a stable reporting order.
    pub const ALL: [ManagerKind; 13] = [
        ManagerKind::Greedy,
        ManagerKind::GreedyTimeout,
        ManagerKind::Aggressive,
        ManagerKind::Polite,
        ManagerKind::Backoff,
        ManagerKind::Randomized,
        ManagerKind::Timestamp,
        ManagerKind::Karma,
        ManagerKind::Eruption,
        ManagerKind::Kindergarten,
        ManagerKind::KillBlocked,
        ManagerKind::QueueOnBlock,
        ManagerKind::Polka,
    ];

    /// The managers shown in the paper's figures (Figures 1–4 plot Eruption,
    /// Greedy, Aggressive, Backoff and Karma).
    pub const FIGURE_SET: [ManagerKind; 5] = [
        ManagerKind::Eruption,
        ManagerKind::Greedy,
        ManagerKind::Aggressive,
        ManagerKind::Backoff,
        ManagerKind::Karma,
    ];

    /// The canonical lowercase name of the manager.
    pub fn name(self) -> &'static str {
        match self {
            ManagerKind::Greedy => "greedy",
            ManagerKind::GreedyTimeout => "greedy-timeout",
            ManagerKind::Aggressive => "aggressive",
            ManagerKind::Polite => "polite",
            ManagerKind::Backoff => "backoff",
            ManagerKind::Randomized => "randomized",
            ManagerKind::Timestamp => "timestamp",
            ManagerKind::Karma => "karma",
            ManagerKind::Eruption => "eruption",
            ManagerKind::Kindergarten => "kindergarten",
            ManagerKind::KillBlocked => "killblocked",
            ManagerKind::QueueOnBlock => "queueonblock",
            ManagerKind::Polka => "polka",
        }
    }

    /// Builds a per-thread factory for this manager with default parameters.
    pub fn factory(self) -> ManagerFactory {
        self.factory_with(ManagerParams::default())
    }

    /// Builds a per-thread factory for this manager with explicit
    /// [`ManagerParams`] — the entry point for parameter-ablation sweeps.
    /// Only the fields relevant to this kind are consulted.
    pub fn factory_with(self, params: ManagerParams) -> ManagerFactory {
        match self {
            ManagerKind::Greedy => GreedyManager::factory(),
            ManagerKind::GreedyTimeout => {
                factory(move || GreedyTimeoutManager::new(params.greedy_timeout))
            }
            ManagerKind::Aggressive => factory(AggressiveManager::new),
            ManagerKind::Polite => factory(move || {
                PoliteManager::new(params.polite_max_rounds, params.polite_base)
            }),
            ManagerKind::Backoff => factory(move || {
                BackoffManager::new(
                    params.backoff_base,
                    params.backoff_cap,
                    params.backoff_max_rounds,
                )
            }),
            ManagerKind::Randomized => factory(move || {
                RandomizedManager::new(
                    params.randomized_abort_probability,
                    params.randomized_max_backoff,
                )
            }),
            ManagerKind::Timestamp => factory(move || {
                TimestampManager::new(params.timestamp_quantum, params.timestamp_patience)
            }),
            ManagerKind::Karma => factory(move || {
                KarmaManager::with_params(params.karma_backoff, params.karma_increment)
            }),
            ManagerKind::Eruption => factory(move || {
                EruptionManager::with_params(params.eruption_backoff, params.karma_increment)
            }),
            ManagerKind::Kindergarten => factory(move || {
                KindergartenManager::new(
                    params.kindergarten_pause,
                    params.kindergarten_max_yields,
                )
            }),
            ManagerKind::KillBlocked => factory(move || {
                KillBlockedManager::new(params.killblocked_quantum, params.killblocked_patience)
            }),
            ManagerKind::QueueOnBlock => factory(move || {
                QueueOnBlockManager::new(
                    params.queueonblock_safety_timeout,
                    params.queueonblock_max_expiries,
                )
            }),
            ManagerKind::Polka => factory(move || {
                PolkaManager::with_params(
                    params.polka_base,
                    params.polka_cap,
                    params.polka_max_rounds,
                    params.karma_increment,
                )
            }),
        }
    }
}

impl fmt::Display for ManagerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown manager name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownManager(pub String);

impl fmt::Display for UnknownManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown contention manager '{}'; known managers: {}",
            self.0,
            all_manager_names().join(", ")
        )
    }
}

impl std::error::Error for UnknownManager {}

impl FromStr for ManagerKind {
    type Err = UnknownManager;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let normalized = s.trim().to_ascii_lowercase();
        ManagerKind::ALL
            .iter()
            .copied()
            .find(|k| k.name() == normalized)
            .ok_or_else(|| UnknownManager(s.to_string()))
    }
}

/// Names of every manager in the registry.
pub fn all_manager_names() -> Vec<&'static str> {
    ManagerKind::ALL.iter().map(|k| k.name()).collect()
}

/// Names of the managers plotted in the paper's figures.
pub fn default_manager_names() -> Vec<&'static str> {
    ManagerKind::FIGURE_SET.iter().map(|k| k.name()).collect()
}

/// Builds a manager factory from a manager name.
///
/// # Errors
///
/// Returns [`UnknownManager`] if the name does not match any registered
/// manager.
pub fn factory_by_name(name: &str) -> Result<ManagerFactory, UnknownManager> {
    name.parse::<ManagerKind>().map(ManagerKind::factory)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_has_a_unique_name_and_working_factory() {
        let mut names = std::collections::HashSet::new();
        for kind in ManagerKind::ALL {
            let name = kind.name();
            assert!(names.insert(name), "duplicate manager name {name}");
            let manager = kind.factory()();
            assert_eq!(manager.name(), name, "factory name mismatch for {kind}");
        }
        assert_eq!(names.len(), ManagerKind::ALL.len());
    }

    #[test]
    fn parsing_round_trips() {
        for kind in ManagerKind::ALL {
            assert_eq!(kind.name().parse::<ManagerKind>().unwrap(), kind);
            assert_eq!(
                kind.name().to_uppercase().parse::<ManagerKind>().unwrap(),
                kind
            );
        }
        assert!("no-such-manager".parse::<ManagerKind>().is_err());
        let err = "bogus".parse::<ManagerKind>().unwrap_err();
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn figure_set_matches_the_paper() {
        assert_eq!(
            default_manager_names(),
            vec!["eruption", "greedy", "aggressive", "backoff", "karma"]
        );
        assert_eq!(all_manager_names().len(), 13);
    }

    #[test]
    fn factory_with_params_builds_every_kind() {
        // Non-default knobs across the whole family; every factory must still
        // produce a manager with the right name.
        let params = ManagerParams {
            greedy_timeout: Duration::from_micros(5),
            polite_max_rounds: 3,
            backoff_max_rounds: 2,
            timestamp_patience: 1,
            karma_increment: 7,
            polka_max_rounds: 2,
            queueonblock_max_expiries: 2,
            ..ManagerParams::default()
        };
        for kind in ManagerKind::ALL {
            let manager = kind.factory_with(params)();
            assert_eq!(manager.name(), kind.name(), "factory_with mismatch for {kind}");
        }
    }

    #[test]
    fn default_params_match_historical_defaults() {
        let p = ManagerParams::default();
        assert_eq!(p.greedy_timeout, crate::greedy::DEFAULT_GREEDY_TIMEOUT);
        assert_eq!(p.backoff_max_rounds, 12);
        assert_eq!(p.polka_max_rounds, 16);
        assert_eq!(p.karma_increment, 1);
        assert_eq!(p.timestamp_patience, 8);
        assert_eq!(p.queueonblock_max_expiries, 64);
    }

    #[test]
    fn karma_increment_scales_earned_priority() {
        let params = ManagerParams {
            karma_increment: 5,
            ..ManagerParams::default()
        };
        let me = crate::test_util::tx(1, 1);
        let mut manager = ManagerKind::Karma.factory_with(params)();
        manager.opened(crate::test_util::view(&me), 42);
        manager.opened(crate::test_util::view(&me), 43);
        assert_eq!(crate::test_util::view(&me).karma(), 10);
    }

    #[test]
    fn factory_by_name_builds_managers() {
        assert_eq!(factory_by_name("greedy").unwrap()().name(), "greedy");
        assert_eq!(factory_by_name("Karma").unwrap()().name(), "karma");
        assert!(factory_by_name("nope").is_err());
    }
}
