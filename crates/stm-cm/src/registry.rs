//! A registry of every contention manager in the crate, addressable by name.
//!
//! The benchmark harness and the examples sweep over managers by name; the
//! registry is the single source of truth for which managers exist, what
//! they are called, and how to build a per-thread factory for each.

use std::fmt;
use std::str::FromStr;

use stm_core::manager::{factory, ManagerFactory};
use stm_core::manager::{AggressiveManager, PoliteManager};

use crate::{
    BackoffManager, EruptionManager, GreedyManager, GreedyTimeoutManager, KarmaManager,
    KindergartenManager, KillBlockedManager, PolkaManager, QueueOnBlockManager, RandomizedManager,
    TimestampManager,
};

/// Every contention manager known to this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum ManagerKind {
    Greedy,
    GreedyTimeout,
    Aggressive,
    Polite,
    Backoff,
    Randomized,
    Timestamp,
    Karma,
    Eruption,
    Kindergarten,
    KillBlocked,
    QueueOnBlock,
    Polka,
}

impl ManagerKind {
    /// All manager kinds, in a stable reporting order.
    pub const ALL: [ManagerKind; 13] = [
        ManagerKind::Greedy,
        ManagerKind::GreedyTimeout,
        ManagerKind::Aggressive,
        ManagerKind::Polite,
        ManagerKind::Backoff,
        ManagerKind::Randomized,
        ManagerKind::Timestamp,
        ManagerKind::Karma,
        ManagerKind::Eruption,
        ManagerKind::Kindergarten,
        ManagerKind::KillBlocked,
        ManagerKind::QueueOnBlock,
        ManagerKind::Polka,
    ];

    /// The managers shown in the paper's figures (Figures 1–4 plot Eruption,
    /// Greedy, Aggressive, Backoff and Karma).
    pub const FIGURE_SET: [ManagerKind; 5] = [
        ManagerKind::Eruption,
        ManagerKind::Greedy,
        ManagerKind::Aggressive,
        ManagerKind::Backoff,
        ManagerKind::Karma,
    ];

    /// The canonical lowercase name of the manager.
    pub fn name(self) -> &'static str {
        match self {
            ManagerKind::Greedy => "greedy",
            ManagerKind::GreedyTimeout => "greedy-timeout",
            ManagerKind::Aggressive => "aggressive",
            ManagerKind::Polite => "polite",
            ManagerKind::Backoff => "backoff",
            ManagerKind::Randomized => "randomized",
            ManagerKind::Timestamp => "timestamp",
            ManagerKind::Karma => "karma",
            ManagerKind::Eruption => "eruption",
            ManagerKind::Kindergarten => "kindergarten",
            ManagerKind::KillBlocked => "killblocked",
            ManagerKind::QueueOnBlock => "queueonblock",
            ManagerKind::Polka => "polka",
        }
    }

    /// Builds a per-thread factory for this manager with default parameters.
    pub fn factory(self) -> ManagerFactory {
        match self {
            ManagerKind::Greedy => GreedyManager::factory(),
            ManagerKind::GreedyTimeout => GreedyTimeoutManager::factory(),
            ManagerKind::Aggressive => factory(AggressiveManager::new),
            ManagerKind::Polite => factory(PoliteManager::default),
            ManagerKind::Backoff => BackoffManager::factory(),
            ManagerKind::Randomized => RandomizedManager::factory(),
            ManagerKind::Timestamp => TimestampManager::factory(),
            ManagerKind::Karma => KarmaManager::factory(),
            ManagerKind::Eruption => EruptionManager::factory(),
            ManagerKind::Kindergarten => KindergartenManager::factory(),
            ManagerKind::KillBlocked => KillBlockedManager::factory(),
            ManagerKind::QueueOnBlock => QueueOnBlockManager::factory(),
            ManagerKind::Polka => PolkaManager::factory(),
        }
    }
}

impl fmt::Display for ManagerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown manager name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownManager(pub String);

impl fmt::Display for UnknownManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown contention manager '{}'; known managers: {}",
            self.0,
            all_manager_names().join(", ")
        )
    }
}

impl std::error::Error for UnknownManager {}

impl FromStr for ManagerKind {
    type Err = UnknownManager;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let normalized = s.trim().to_ascii_lowercase();
        ManagerKind::ALL
            .iter()
            .copied()
            .find(|k| k.name() == normalized)
            .ok_or_else(|| UnknownManager(s.to_string()))
    }
}

/// Names of every manager in the registry.
pub fn all_manager_names() -> Vec<&'static str> {
    ManagerKind::ALL.iter().map(|k| k.name()).collect()
}

/// Names of the managers plotted in the paper's figures.
pub fn default_manager_names() -> Vec<&'static str> {
    ManagerKind::FIGURE_SET.iter().map(|k| k.name()).collect()
}

/// Builds a manager factory from a manager name.
///
/// # Errors
///
/// Returns [`UnknownManager`] if the name does not match any registered
/// manager.
pub fn factory_by_name(name: &str) -> Result<ManagerFactory, UnknownManager> {
    name.parse::<ManagerKind>().map(ManagerKind::factory)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_has_a_unique_name_and_working_factory() {
        let mut names = std::collections::HashSet::new();
        for kind in ManagerKind::ALL {
            let name = kind.name();
            assert!(names.insert(name), "duplicate manager name {name}");
            let manager = kind.factory()();
            assert_eq!(manager.name(), name, "factory name mismatch for {kind}");
        }
        assert_eq!(names.len(), ManagerKind::ALL.len());
    }

    #[test]
    fn parsing_round_trips() {
        for kind in ManagerKind::ALL {
            assert_eq!(kind.name().parse::<ManagerKind>().unwrap(), kind);
            assert_eq!(
                kind.name().to_uppercase().parse::<ManagerKind>().unwrap(),
                kind
            );
        }
        assert!("no-such-manager".parse::<ManagerKind>().is_err());
        let err = "bogus".parse::<ManagerKind>().unwrap_err();
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn figure_set_matches_the_paper() {
        assert_eq!(
            default_manager_names(),
            vec!["eruption", "greedy", "aggressive", "backoff", "karma"]
        );
        assert_eq!(all_manager_names().len(), 13);
    }

    #[test]
    fn factory_by_name_builds_managers() {
        assert_eq!(factory_by_name("greedy").unwrap()().name(), "greedy");
        assert_eq!(factory_by_name("Karma").unwrap()().name(), "karma");
        assert!(factory_by_name("nope").is_err());
    }
}
