//! The KillBlocked contention manager (Scherer & Scott).
//!
//! The core heuristic is the one McWherter et al. observed for OLTP systems
//! and the paper cites approvingly: *waiting transactions should not obstruct
//! active transactions*. If the enemy is itself blocked (its public `waiting`
//! flag is set) it is killed immediately; otherwise we wait, but only up to a
//! patience bound, after which the enemy is killed anyway. "Aborting enemies
//! after a time-out, as in the killBlocked, kindergarten, and timestamp
//! managers, diminishes the probability of livelocks without however
//! canceling it."

use std::collections::HashMap;
use std::time::Duration;

use stm_core::manager::{factory, ManagerFactory};
use stm_core::{ConflictKind, ContentionManager, Resolution, TxView, WaitSpec};

/// Kill enemies that are blocked; otherwise wait with bounded patience.
#[derive(Debug, Clone)]
pub struct KillBlockedManager {
    quantum: Duration,
    patience: u32,
    waits: HashMap<u64, u32>,
}

/// Default length of one bounded wait slice.
pub const DEFAULT_KILLBLOCKED_QUANTUM: Duration = Duration::from_micros(10);
/// Default wait slices granted to a running (non-blocked) enemy.
pub const DEFAULT_KILLBLOCKED_PATIENCE: u32 = 4;

impl Default for KillBlockedManager {
    fn default() -> Self {
        KillBlockedManager::new(DEFAULT_KILLBLOCKED_QUANTUM, DEFAULT_KILLBLOCKED_PATIENCE)
    }
}

impl KillBlockedManager {
    /// Creates a KillBlocked manager that waits in `quantum` slices and kills
    /// a (non-blocked) enemy after `patience` slices.
    pub fn new(quantum: Duration, patience: u32) -> Self {
        KillBlockedManager {
            quantum,
            patience,
            waits: HashMap::new(),
        }
    }

    /// A per-thread factory with the default parameters.
    pub fn factory() -> ManagerFactory {
        factory(KillBlockedManager::default)
    }
}

impl ContentionManager for KillBlockedManager {
    fn name(&self) -> &'static str {
        "killblocked"
    }

    fn begin(&mut self, _me: TxView<'_>) {
        self.waits.clear();
    }

    fn resolve(&mut self, _me: TxView<'_>, other: TxView<'_>, _kind: ConflictKind) -> Resolution {
        if other.is_waiting() {
            // A blocked transaction must not obstruct an active one.
            return Resolution::AbortOther;
        }
        let count = self.waits.entry(other.id()).or_insert(0);
        if *count >= self.patience {
            *count = 0;
            return Resolution::AbortOther;
        }
        *count += 1;
        Resolution::Wait(WaitSpec::bounded(self.quantum))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{tx, view};

    #[test]
    fn blocked_enemy_is_killed_immediately() {
        let me = tx(1, 1);
        let other = tx(2, 2);
        other.set_waiting(true);
        let mut m = KillBlockedManager::default();
        assert_eq!(
            m.resolve(view(&me), view(&other), ConflictKind::WriteWrite),
            Resolution::AbortOther
        );
    }

    #[test]
    fn running_enemy_gets_patience_then_is_killed() {
        let me = tx(1, 1);
        let other = tx(2, 2);
        let mut m = KillBlockedManager::new(Duration::from_micros(1), 2);
        assert!(matches!(
            m.resolve(view(&me), view(&other), ConflictKind::WriteWrite),
            Resolution::Wait(_)
        ));
        assert!(matches!(
            m.resolve(view(&me), view(&other), ConflictKind::WriteWrite),
            Resolution::Wait(_)
        ));
        assert_eq!(
            m.resolve(view(&me), view(&other), ConflictKind::WriteWrite),
            Resolution::AbortOther
        );
    }

    #[test]
    fn patience_is_per_enemy_and_begin_resets() {
        let me = tx(1, 1);
        let a = tx(2, 2);
        let b = tx(3, 3);
        let mut m = KillBlockedManager::new(Duration::from_micros(1), 1);
        let _ = m.resolve(view(&me), view(&a), ConflictKind::WriteWrite);
        assert!(matches!(
            m.resolve(view(&me), view(&b), ConflictKind::WriteWrite),
            Resolution::Wait(_)
        ));
        assert_eq!(
            m.resolve(view(&me), view(&a), ConflictKind::WriteWrite),
            Resolution::AbortOther
        );
        m.begin(view(&me));
        assert!(matches!(
            m.resolve(view(&me), view(&a), ConflictKind::WriteWrite),
            Resolution::Wait(_)
        ));
        assert_eq!(m.name(), "killblocked");
        assert_eq!(KillBlockedManager::factory()().name(), "killblocked");
    }
}
