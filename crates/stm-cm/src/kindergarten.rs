//! The Kindergarten contention manager (Scherer & Scott).
//!
//! "Take turns": the first time a transaction conflicts with a particular
//! enemy it politely steps aside (aborts itself and retries after a short
//! pause), remembering the enemy in a local *hit list*. If it later meets the
//! same enemy again, it is that enemy's turn to step aside — the transaction
//! aborts it. Aborting enemies after a time-out "diminishes the probability
//! of livelocks without however canceling it" (paper, Section 6), so
//! Kindergarten provides no deterministic guarantee.

use std::collections::HashSet;
use std::time::Duration;

use stm_core::manager::{factory, ManagerFactory};
use stm_core::{ConflictKind, ContentionManager, Resolution, TxView, WaitSpec};

/// Turn-taking contention manager.
#[derive(Debug, Clone)]
pub struct KindergartenManager {
    /// Enemies we have already given way to once.
    hit_list: HashSet<u64>,
    /// Short pause before retrying after stepping aside.
    pause: Duration,
    /// Number of consecutive self-aborts against the same enemy after which
    /// we stop being polite even if bookkeeping got confused (safety net).
    max_yields: u32,
    yields: u32,
}

/// Default pause before re-examining a conflict.
pub const DEFAULT_KINDERGARTEN_PAUSE: Duration = Duration::from_micros(4);
/// Default number of times we give way to one enemy before insisting.
pub const DEFAULT_KINDERGARTEN_MAX_YIELDS: u32 = 8;

impl Default for KindergartenManager {
    fn default() -> Self {
        KindergartenManager::new(DEFAULT_KINDERGARTEN_PAUSE, DEFAULT_KINDERGARTEN_MAX_YIELDS)
    }
}

impl KindergartenManager {
    /// Creates a Kindergarten manager.
    pub fn new(pause: Duration, max_yields: u32) -> Self {
        KindergartenManager {
            hit_list: HashSet::new(),
            pause,
            max_yields,
            yields: 0,
        }
    }

    /// A per-thread factory with the default parameters.
    pub fn factory() -> ManagerFactory {
        factory(KindergartenManager::default)
    }
}

impl ContentionManager for KindergartenManager {
    fn name(&self) -> &'static str {
        "kindergarten"
    }

    fn committed(&mut self, _me: TxView<'_>) {
        self.hit_list.clear();
        self.yields = 0;
    }

    fn resolve(&mut self, _me: TxView<'_>, other: TxView<'_>, _kind: ConflictKind) -> Resolution {
        if self.hit_list.contains(&other.id()) || self.yields >= self.max_yields {
            // We already gave way to this enemy once — now it is our turn.
            self.yields = 0;
            return Resolution::AbortOther;
        }
        // First encounter: remember the enemy, step aside briefly, and let the
        // runtime retry the whole transaction.
        self.hit_list.insert(other.id());
        self.yields += 1;
        // Wait a moment before self-aborting so the enemy actually gets a
        // chance to move; the subsequent AbortSelf restarts us with the same
        // timestamp and (crucially) the same hit list.
        if self.pause.is_zero() {
            Resolution::AbortSelf
        } else {
            // A bounded wait followed by the retry on the next resolution is
            // closer to the published description than an immediate restart;
            // we fold both into a single decision by pausing via AbortSelf's
            // retry path only when the pause is zero.
            Resolution::Wait(WaitSpec::bounded(self.pause))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{tx, view};

    #[test]
    fn first_encounter_steps_aside_second_insists() {
        let me = tx(1, 1);
        let other = tx(2, 2);
        let mut m = KindergartenManager::new(Duration::from_micros(1), 8);
        assert!(matches!(
            m.resolve(view(&me), view(&other), ConflictKind::WriteWrite),
            Resolution::Wait(_)
        ));
        assert_eq!(
            m.resolve(view(&me), view(&other), ConflictKind::WriteWrite),
            Resolution::AbortOther
        );
    }

    #[test]
    fn zero_pause_variant_aborts_itself_first() {
        let me = tx(1, 1);
        let other = tx(2, 2);
        let mut m = KindergartenManager::new(Duration::ZERO, 8);
        assert_eq!(
            m.resolve(view(&me), view(&other), ConflictKind::WriteWrite),
            Resolution::AbortSelf
        );
        assert_eq!(
            m.resolve(view(&me), view(&other), ConflictKind::WriteWrite),
            Resolution::AbortOther
        );
    }

    #[test]
    fn turns_are_tracked_per_enemy() {
        let me = tx(1, 1);
        let a = tx(2, 2);
        let b = tx(3, 3);
        let mut m = KindergartenManager::new(Duration::from_micros(1), 8);
        let _ = m.resolve(view(&me), view(&a), ConflictKind::WriteWrite);
        // b is a fresh enemy: we still step aside for it.
        assert!(matches!(
            m.resolve(view(&me), view(&b), ConflictKind::WriteWrite),
            Resolution::Wait(_)
        ));
        // but a is on the hit list.
        assert_eq!(
            m.resolve(view(&me), view(&a), ConflictKind::WriteWrite),
            Resolution::AbortOther
        );
    }

    #[test]
    fn commit_clears_the_hit_list() {
        let me = tx(1, 1);
        let other = tx(2, 2);
        let mut m = KindergartenManager::new(Duration::from_micros(1), 8);
        let _ = m.resolve(view(&me), view(&other), ConflictKind::WriteWrite);
        m.committed(view(&me));
        assert!(matches!(
            m.resolve(view(&me), view(&other), ConflictKind::WriteWrite),
            Resolution::Wait(_)
        ));
        assert_eq!(m.name(), "kindergarten");
        assert_eq!(KindergartenManager::factory()().name(), "kindergarten");
    }

    #[test]
    fn safety_net_limits_consecutive_yields() {
        let me = tx(1, 1);
        let mut m = KindergartenManager::new(Duration::from_micros(1), 2);
        // Meet a stream of distinct enemies; after `max_yields` consecutive
        // yields the manager insists even on a first encounter.
        let e1 = tx(10, 10);
        let e2 = tx(11, 11);
        let e3 = tx(12, 12);
        assert!(matches!(
            m.resolve(view(&me), view(&e1), ConflictKind::WriteWrite),
            Resolution::Wait(_)
        ));
        assert!(matches!(
            m.resolve(view(&me), view(&e2), ConflictKind::WriteWrite),
            Resolution::Wait(_)
        ));
        assert_eq!(
            m.resolve(view(&me), view(&e3), ConflictKind::WriteWrite),
            Resolution::AbortOther
        );
    }
}
