//! The QueueOnBlock contention manager (Scherer & Scott).
//!
//! The conflicting transaction simply queues up behind its enemy and waits
//! for it to finish. As the paper notes, "the queueOnBlock manager is prone
//! to dependency cycles": if two transactions wait for each other nothing
//! guarantees progress. The implementation here bounds each wait with a
//! (long) safety time-out so that experiments terminate; the runtime also
//! wakes a waiter whose enemy starts waiting itself, which converts would-be
//! deadlocks into livelocks — still no progress guarantee, faithfully.

use std::time::Duration;

use stm_core::manager::{factory, ManagerFactory};
use stm_core::{ConflictKind, ContentionManager, Resolution, TxView, WaitSpec};

/// Always wait for the enemy to finish.
#[derive(Debug, Clone)]
pub struct QueueOnBlockManager {
    /// Safety bound on a single wait so that experiments cannot hang forever.
    safety_timeout: Duration,
    /// Number of expired safety time-outs against the same enemy after which
    /// the enemy is killed (pure safety net; effectively never reached in the
    /// benchmarks).
    max_expiries: u32,
    expiries: u32,
    conflict_with: Option<u64>,
}

/// Default safety time-out bounding each wait on the enemy.
pub const DEFAULT_QUEUEONBLOCK_SAFETY_TIMEOUT: Duration = Duration::from_millis(2);
/// Default expired safety time-outs before the enemy is killed.
pub const DEFAULT_QUEUEONBLOCK_MAX_EXPIRIES: u32 = 64;

impl Default for QueueOnBlockManager {
    fn default() -> Self {
        QueueOnBlockManager::new(
            DEFAULT_QUEUEONBLOCK_SAFETY_TIMEOUT,
            DEFAULT_QUEUEONBLOCK_MAX_EXPIRIES,
        )
    }
}

impl QueueOnBlockManager {
    /// Creates a QueueOnBlock manager with the given safety time-out.
    pub fn new(safety_timeout: Duration, max_expiries: u32) -> Self {
        QueueOnBlockManager {
            safety_timeout,
            max_expiries,
            expiries: 0,
            conflict_with: None,
        }
    }

    /// A per-thread factory with the default parameters.
    pub fn factory() -> ManagerFactory {
        factory(QueueOnBlockManager::default)
    }
}

impl ContentionManager for QueueOnBlockManager {
    fn name(&self) -> &'static str {
        "queueonblock"
    }

    fn begin(&mut self, _me: TxView<'_>) {
        self.expiries = 0;
        self.conflict_with = None;
    }

    fn resolve(&mut self, _me: TxView<'_>, other: TxView<'_>, _kind: ConflictKind) -> Resolution {
        if self.conflict_with != Some(other.id()) {
            self.conflict_with = Some(other.id());
            self.expiries = 0;
        }
        if self.expiries >= self.max_expiries {
            self.expiries = 0;
            return Resolution::AbortOther;
        }
        self.expiries += 1;
        Resolution::Wait(WaitSpec::bounded(self.safety_timeout))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{tx, view};

    #[test]
    fn always_waits_under_the_safety_bound() {
        let me = tx(1, 1);
        let other = tx(2, 2);
        let mut m = QueueOnBlockManager::new(Duration::from_millis(1), 10);
        for _ in 0..10 {
            match m.resolve(view(&me), view(&other), ConflictKind::WriteWrite) {
                Resolution::Wait(spec) => assert_eq!(spec.max, Some(Duration::from_millis(1))),
                r => panic!("expected wait, got {r:?}"),
            }
        }
        // Only after exhausting the safety net does it ever abort the enemy.
        assert_eq!(
            m.resolve(view(&me), view(&other), ConflictKind::WriteWrite),
            Resolution::AbortOther
        );
    }

    #[test]
    fn expiries_reset_per_enemy_and_on_begin() {
        let me = tx(1, 1);
        let a = tx(2, 2);
        let b = tx(3, 3);
        let mut m = QueueOnBlockManager::new(Duration::from_millis(1), 1);
        let _ = m.resolve(view(&me), view(&a), ConflictKind::WriteWrite);
        assert!(matches!(
            m.resolve(view(&me), view(&b), ConflictKind::WriteWrite),
            Resolution::Wait(_)
        ));
        m.begin(view(&me));
        assert!(matches!(
            m.resolve(view(&me), view(&a), ConflictKind::WriteWrite),
            Resolution::Wait(_)
        ));
        assert_eq!(m.name(), "queueonblock");
        assert_eq!(QueueOnBlockManager::factory()().name(), "queueonblock");
    }
}
