//! The Karma contention manager (Scherer & Scott).
//!
//! Karma estimates how much work a transaction has already invested by
//! counting the objects it has opened; the count — its *karma* — is retained
//! across aborts, so a transaction that keeps getting knocked down
//! accumulates seniority. On conflict a transaction aborts the enemy only if
//! its own karma plus the number of times it has already retried this
//! conflict exceeds the enemy's karma; otherwise it backs off briefly and
//! tries again.
//!
//! The paper reports Karma doing particularly well in contention-intensive
//! workloads, but also points out its theoretical weakness: "any transaction
//! A might get repeatedly aborted due to newcomer transactions that, between
//! two aborts of A, get aborted more often and access more objects" — it has
//! no deterministic progress guarantee.

use std::time::Duration;

use stm_core::manager::{factory, ManagerFactory};
use stm_core::{ConflictKind, ContentionManager, Resolution, TxView, WaitSpec};

/// Default inter-round backoff while the karma gap is open.
pub const DEFAULT_KARMA_BACKOFF: Duration = Duration::from_micros(4);
/// Default karma earned per object opened.
pub const DEFAULT_KARMA_INCREMENT: u64 = 1;

/// Work-based priority contention manager.
#[derive(Debug, Clone)]
pub struct KarmaManager {
    backoff: Duration,
    /// Karma earned per object opened (1 in Scherer & Scott's formulation).
    increment: u64,
    /// Retry counter for the conflict currently being fought.
    attempts: u64,
    conflict_with: Option<u64>,
}

impl Default for KarmaManager {
    fn default() -> Self {
        KarmaManager::new(DEFAULT_KARMA_BACKOFF)
    }
}

impl KarmaManager {
    /// Creates a Karma manager that backs off for `backoff` between
    /// unsuccessful conflict rounds, earning one karma per object opened.
    pub fn new(backoff: Duration) -> Self {
        KarmaManager::with_params(backoff, DEFAULT_KARMA_INCREMENT)
    }

    /// Creates a Karma manager with an explicit per-open karma increment
    /// (the ablation knob: larger increments weigh invested work more
    /// heavily against retry seniority).
    pub fn with_params(backoff: Duration, increment: u64) -> Self {
        KarmaManager {
            backoff,
            increment,
            attempts: 0,
            conflict_with: None,
        }
    }

    /// A per-thread factory with the default parameters.
    pub fn factory() -> ManagerFactory {
        factory(KarmaManager::default)
    }
}

impl ContentionManager for KarmaManager {
    fn name(&self) -> &'static str {
        "karma"
    }

    fn opened(&mut self, me: TxView<'_>, _object_id: u64) {
        // `increment` units of karma per object opened; accumulated in the
        // lineage so it survives aborts.
        me.add_karma(self.increment);
    }

    fn committed(&mut self, me: TxView<'_>) {
        // Karma is spent once the transaction finally commits.
        me.reset_karma();
        self.attempts = 0;
        self.conflict_with = None;
    }

    fn resolve(&mut self, me: TxView<'_>, other: TxView<'_>, _kind: ConflictKind) -> Resolution {
        if self.conflict_with != Some(other.id()) {
            self.conflict_with = Some(other.id());
            self.attempts = 0;
        }
        let my_priority = me.karma() + self.attempts;
        if my_priority > other.karma() {
            self.attempts = 0;
            self.conflict_with = None;
            Resolution::AbortOther
        } else {
            self.attempts += 1;
            Resolution::Wait(WaitSpec::bounded(self.backoff))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{tx, view};

    #[test]
    fn opened_accumulates_karma_and_commit_resets_it() {
        let me = tx(1, 1);
        let mut m = KarmaManager::default();
        m.opened(view(&me), 10);
        m.opened(view(&me), 11);
        m.opened(view(&me), 12);
        assert_eq!(view(&me).karma(), 3);
        m.committed(view(&me));
        assert_eq!(view(&me).karma(), 0);
    }

    #[test]
    fn richer_transaction_aborts_poorer_enemy() {
        let me = tx(1, 1);
        let other = tx(2, 2);
        view(&me).add_karma(10);
        view(&other).add_karma(3);
        let mut m = KarmaManager::default();
        assert_eq!(
            m.resolve(view(&me), view(&other), ConflictKind::WriteWrite),
            Resolution::AbortOther
        );
    }

    #[test]
    fn poorer_transaction_waits_until_attempts_close_the_gap() {
        let me = tx(1, 1);
        let other = tx(2, 2);
        view(&other).add_karma(3);
        let mut m = KarmaManager::new(Duration::from_micros(1));
        // gap of 3 karma, so the first rounds wait; after enough retries the
        // attempt counter closes the gap and the enemy is aborted.
        let mut waits = 0;
        loop {
            match m.resolve(view(&me), view(&other), ConflictKind::WriteWrite) {
                Resolution::Wait(spec) => {
                    assert_eq!(spec.max, Some(Duration::from_micros(1)));
                    waits += 1;
                    assert!(waits < 100, "karma never closed the gap");
                }
                Resolution::AbortOther => break,
                Resolution::AbortSelf => panic!("karma never aborts itself"),
            }
        }
        assert_eq!(waits, 4, "needs karma+attempts > enemy karma");
    }

    #[test]
    fn attempt_counter_resets_for_new_enemy() {
        let me = tx(1, 1);
        let a = tx(2, 2);
        let b = tx(3, 3);
        view(&a).add_karma(2);
        view(&b).add_karma(2);
        let mut m = KarmaManager::new(Duration::from_micros(1));
        let _ = m.resolve(view(&me), view(&a), ConflictKind::WriteWrite);
        let _ = m.resolve(view(&me), view(&a), ConflictKind::WriteWrite);
        // Switching enemies restarts the attempt counter, so b still wins.
        assert!(matches!(
            m.resolve(view(&me), view(&b), ConflictKind::WriteWrite),
            Resolution::Wait(_)
        ));
        assert_eq!(m.name(), "karma");
        assert_eq!(KarmaManager::factory()().name(), "karma");
    }
}
