//! The Eruption contention manager (Scherer & Scott).
//!
//! Eruption is Karma with *pressure transfer*: a transaction that decides to
//! wait behind a higher-karma enemy adds its own karma (its "momentum") to
//! that enemy, so a transaction that blocks many others quickly accumulates
//! enough priority to erupt through whatever is blocking *it*. Like Karma it
//! accounts for the work a conflicting transaction has performed and for how
//! often it has already been aborted — and like Karma it offers no
//! deterministic progress guarantee.

use std::time::Duration;

use stm_core::manager::{factory, ManagerFactory};
use stm_core::{ConflictKind, ContentionManager, Resolution, TxView, WaitSpec};

/// Default inter-round backoff while blocked.
pub const DEFAULT_ERUPTION_BACKOFF: Duration = Duration::from_micros(4);

/// Karma with pressure transfer onto the blocking transaction.
#[derive(Debug, Clone)]
pub struct EruptionManager {
    backoff: Duration,
    /// Karma earned per object opened.
    increment: u64,
    attempts: u64,
    conflict_with: Option<u64>,
    /// Whether we already pushed our momentum onto the current enemy (we only
    /// push once per conflict episode to avoid unbounded self-inflation in a
    /// tight retry loop).
    pushed: bool,
}

impl Default for EruptionManager {
    fn default() -> Self {
        EruptionManager::new(DEFAULT_ERUPTION_BACKOFF)
    }
}

impl EruptionManager {
    /// Creates an Eruption manager with the given inter-round backoff,
    /// earning one karma per object opened.
    pub fn new(backoff: Duration) -> Self {
        EruptionManager::with_params(backoff, 1)
    }

    /// Creates an Eruption manager with an explicit per-open karma increment.
    pub fn with_params(backoff: Duration, increment: u64) -> Self {
        EruptionManager {
            backoff,
            increment,
            attempts: 0,
            conflict_with: None,
            pushed: false,
        }
    }

    /// A per-thread factory with the default parameters.
    pub fn factory() -> ManagerFactory {
        factory(EruptionManager::default)
    }
}

impl ContentionManager for EruptionManager {
    fn name(&self) -> &'static str {
        "eruption"
    }

    fn opened(&mut self, me: TxView<'_>, _object_id: u64) {
        me.add_karma(self.increment);
    }

    fn committed(&mut self, me: TxView<'_>) {
        me.reset_karma();
        self.attempts = 0;
        self.conflict_with = None;
        self.pushed = false;
    }

    fn resolve(&mut self, me: TxView<'_>, other: TxView<'_>, _kind: ConflictKind) -> Resolution {
        if self.conflict_with != Some(other.id()) {
            self.conflict_with = Some(other.id());
            self.attempts = 0;
            self.pushed = false;
        }
        let my_priority = me.karma() + self.attempts;
        if my_priority > other.karma() {
            self.attempts = 0;
            self.conflict_with = None;
            self.pushed = false;
            Resolution::AbortOther
        } else {
            if !self.pushed {
                // Transfer our momentum to the transaction blocking us.
                other.add_karma(me.karma() + 1);
                self.pushed = true;
            }
            self.attempts += 1;
            Resolution::Wait(WaitSpec::bounded(self.backoff))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{tx, view};

    #[test]
    fn blocked_transaction_pushes_momentum_onto_blocker() {
        let me = tx(1, 1);
        let other = tx(2, 2);
        view(&me).add_karma(2);
        view(&other).add_karma(10);
        let mut m = EruptionManager::new(Duration::from_micros(1));
        let before = view(&other).karma();
        let r = m.resolve(view(&me), view(&other), ConflictKind::WriteWrite);
        assert!(matches!(r, Resolution::Wait(_)));
        assert_eq!(view(&other).karma(), before + 3, "blocker gains my karma + 1");
        // Momentum is pushed only once per conflict episode.
        let _ = m.resolve(view(&me), view(&other), ConflictKind::WriteWrite);
        assert_eq!(view(&other).karma(), before + 3);
    }

    #[test]
    fn richer_transaction_erupts_through() {
        let me = tx(1, 1);
        let other = tx(2, 2);
        view(&me).add_karma(20);
        view(&other).add_karma(1);
        let mut m = EruptionManager::default();
        assert_eq!(
            m.resolve(view(&me), view(&other), ConflictKind::WriteWrite),
            Resolution::AbortOther
        );
    }

    #[test]
    fn attempts_eventually_close_the_gap() {
        let me = tx(1, 1);
        let other = tx(2, 2);
        view(&other).add_karma(3);
        let mut m = EruptionManager::new(Duration::from_micros(1));
        let mut rounds = 0;
        loop {
            match m.resolve(view(&me), view(&other), ConflictKind::WriteWrite) {
                Resolution::AbortOther => break,
                Resolution::Wait(_) => {
                    rounds += 1;
                    assert!(rounds < 100);
                }
                Resolution::AbortSelf => panic!("eruption never aborts itself"),
            }
        }
        assert!(rounds > 0);
    }

    #[test]
    fn commit_resets_state_and_hooks_accumulate() {
        let me = tx(1, 1);
        let mut m = EruptionManager::default();
        m.opened(view(&me), 1);
        m.opened(view(&me), 2);
        assert_eq!(view(&me).karma(), 2);
        m.committed(view(&me));
        assert_eq!(view(&me).karma(), 0);
        assert_eq!(m.name(), "eruption");
        assert_eq!(EruptionManager::factory()().name(), "eruption");
    }
}
