//! Adaptive exponential backoff ("Backoff" in the paper's figures).
//!
//! On conflict the transaction simply backs off for an exponentially growing
//! interval and retries the access; after a bounded number of rounds against
//! the same enemy it gives up being nice and aborts the enemy. Works well
//! when transactions have roughly the same size, but — as the paper's
//! introduction notes — is "less effective if long transactions must compete
//! with shorter transactions", and it provides no deterministic progress
//! guarantee.

use std::time::Duration;

use stm_core::manager::{factory, ManagerFactory};
use stm_core::{ConflictKind, ContentionManager, Resolution, TxView, WaitSpec};

/// Default initial backoff interval.
pub const DEFAULT_BACKOFF_BASE: Duration = Duration::from_micros(2);
/// Default maximum backoff interval.
pub const DEFAULT_BACKOFF_CAP: Duration = Duration::from_millis(1);
/// Default backoff rounds against one enemy before the enemy is aborted.
pub const DEFAULT_BACKOFF_MAX_ROUNDS: u32 = 12;

/// Exponential-backoff contention manager.
#[derive(Debug, Clone)]
pub struct BackoffManager {
    base: Duration,
    cap: Duration,
    max_rounds: u32,
    round: u32,
    conflict_with: Option<u64>,
}

impl Default for BackoffManager {
    fn default() -> Self {
        BackoffManager::new(
            DEFAULT_BACKOFF_BASE,
            DEFAULT_BACKOFF_CAP,
            DEFAULT_BACKOFF_MAX_ROUNDS,
        )
    }
}

impl BackoffManager {
    /// Creates a backoff manager.
    ///
    /// * `base` — initial backoff interval;
    /// * `cap` — maximum backoff interval;
    /// * `max_rounds` — number of backoff rounds against one enemy before
    ///   the enemy is aborted.
    pub fn new(base: Duration, cap: Duration, max_rounds: u32) -> Self {
        BackoffManager {
            base,
            cap,
            max_rounds,
            round: 0,
            conflict_with: None,
        }
    }

    /// A per-thread factory with the default parameters.
    pub fn factory() -> ManagerFactory {
        factory(BackoffManager::default)
    }

    fn interval(&self) -> Duration {
        let factor = 1u32 << self.round.min(20);
        self.base.saturating_mul(factor).min(self.cap)
    }
}

impl ContentionManager for BackoffManager {
    fn name(&self) -> &'static str {
        "backoff"
    }

    fn begin(&mut self, _me: TxView<'_>) {
        self.round = 0;
        self.conflict_with = None;
    }

    fn resolve(&mut self, _me: TxView<'_>, other: TxView<'_>, _kind: ConflictKind) -> Resolution {
        if self.conflict_with != Some(other.id()) {
            self.conflict_with = Some(other.id());
            self.round = 0;
        }
        if self.round >= self.max_rounds {
            self.round = 0;
            return Resolution::AbortOther;
        }
        let wait = self.interval();
        self.round += 1;
        Resolution::Wait(WaitSpec::bounded(wait))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{tx, view};

    #[test]
    fn backs_off_with_growing_intervals() {
        let me = tx(1, 1);
        let other = tx(2, 2);
        let mut m = BackoffManager::new(Duration::from_micros(1), Duration::from_micros(100), 5);
        let mut last = Duration::ZERO;
        for _ in 0..5 {
            match m.resolve(view(&me), view(&other), ConflictKind::WriteWrite) {
                Resolution::Wait(spec) => {
                    let d = spec.max.unwrap();
                    assert!(d >= last);
                    last = d;
                }
                r => panic!("expected wait, got {r:?}"),
            }
        }
        assert_eq!(
            m.resolve(view(&me), view(&other), ConflictKind::WriteWrite),
            Resolution::AbortOther
        );
    }

    #[test]
    fn interval_is_capped() {
        let me = tx(1, 1);
        let other = tx(2, 2);
        let cap = Duration::from_micros(8);
        let mut m = BackoffManager::new(Duration::from_micros(4), cap, 10);
        for _ in 0..10 {
            if let Resolution::Wait(spec) = m.resolve(view(&me), view(&other), ConflictKind::WriteWrite) {
                assert!(spec.max.unwrap() <= cap);
            }
        }
    }

    #[test]
    fn new_enemy_restarts_series_and_begin_resets() {
        let me = tx(1, 1);
        let a = tx(2, 2);
        let b = tx(3, 3);
        let mut m = BackoffManager::new(Duration::from_micros(1), Duration::from_millis(1), 2);
        let _ = m.resolve(view(&me), view(&a), ConflictKind::WriteWrite);
        let _ = m.resolve(view(&me), view(&a), ConflictKind::WriteWrite);
        // Next against `a` would abort; against `b` the series restarts.
        assert!(matches!(
            m.resolve(view(&me), view(&b), ConflictKind::WriteWrite),
            Resolution::Wait(_)
        ));
        m.begin(view(&me));
        assert!(matches!(
            m.resolve(view(&me), view(&a), ConflictKind::WriteWrite),
            Resolution::Wait(_)
        ));
        assert_eq!(m.name(), "backoff");
        assert_eq!(BackoffManager::factory()().name(), "backoff");
    }
}
