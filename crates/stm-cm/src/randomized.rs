//! The randomized contention manager.
//!
//! On each conflict it flips a (biased) coin: abort the enemy, or back off
//! for a small random interval and try again. The paper notes that "none of
//! the polite or randomized managers provide any deterministic guarantee";
//! the randomized manager is included as the simplest probabilistic
//! symmetry-breaker.

use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use stm_core::manager::{factory, ManagerFactory};
use stm_core::{ConflictKind, ContentionManager, Resolution, TxView, WaitSpec};

/// Coin-flipping contention manager.
#[derive(Debug, Clone)]
pub struct RandomizedManager {
    /// Probability of aborting the enemy on any given conflict.
    abort_probability: f64,
    /// Maximum random backoff when choosing to wait.
    max_backoff: Duration,
    rng: SmallRng,
}

/// Default probability of aborting the enemy instead of waiting.
pub const DEFAULT_RANDOMIZED_ABORT_PROBABILITY: f64 = 0.5;
/// Default upper bound of the random wait.
pub const DEFAULT_RANDOMIZED_MAX_BACKOFF: Duration = Duration::from_micros(64);

impl Default for RandomizedManager {
    fn default() -> Self {
        RandomizedManager::new(
            DEFAULT_RANDOMIZED_ABORT_PROBABILITY,
            DEFAULT_RANDOMIZED_MAX_BACKOFF,
        )
    }
}

impl RandomizedManager {
    /// Creates a randomized manager that aborts the enemy with probability
    /// `abort_probability` and otherwise waits for a uniformly random
    /// duration up to `max_backoff`.
    pub fn new(abort_probability: f64, max_backoff: Duration) -> Self {
        RandomizedManager {
            abort_probability: abort_probability.clamp(0.0, 1.0),
            max_backoff,
            rng: SmallRng::from_entropy(),
        }
    }

    /// Creates a randomized manager with a deterministic seed (used by tests
    /// and reproducible benchmark runs).
    pub fn with_seed(abort_probability: f64, max_backoff: Duration, seed: u64) -> Self {
        RandomizedManager {
            abort_probability: abort_probability.clamp(0.0, 1.0),
            max_backoff,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// A per-thread factory with the default parameters.
    pub fn factory() -> ManagerFactory {
        factory(RandomizedManager::default)
    }
}

impl ContentionManager for RandomizedManager {
    fn name(&self) -> &'static str {
        "randomized"
    }

    fn resolve(&mut self, _me: TxView<'_>, _other: TxView<'_>, _kind: ConflictKind) -> Resolution {
        if self.rng.gen_bool(self.abort_probability) {
            Resolution::AbortOther
        } else {
            let nanos = self.rng.gen_range(0..=self.max_backoff.as_nanos() as u64);
            Resolution::Wait(WaitSpec::bounded(Duration::from_nanos(nanos.max(1))))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{tx, view};

    #[test]
    fn always_abort_when_probability_is_one() {
        let me = tx(1, 1);
        let other = tx(2, 2);
        let mut m = RandomizedManager::with_seed(1.0, Duration::from_micros(10), 42);
        for _ in 0..32 {
            assert_eq!(
                m.resolve(view(&me), view(&other), ConflictKind::WriteWrite),
                Resolution::AbortOther
            );
        }
    }

    #[test]
    fn never_abort_when_probability_is_zero() {
        let me = tx(1, 1);
        let other = tx(2, 2);
        let mut m = RandomizedManager::with_seed(0.0, Duration::from_micros(10), 42);
        for _ in 0..32 {
            match m.resolve(view(&me), view(&other), ConflictKind::WriteWrite) {
                Resolution::Wait(spec) => {
                    assert!(spec.max.unwrap() <= Duration::from_micros(10));
                }
                r => panic!("expected wait, got {r:?}"),
            }
        }
    }

    #[test]
    fn mixed_probability_produces_both_outcomes() {
        let me = tx(1, 1);
        let other = tx(2, 2);
        let mut m = RandomizedManager::with_seed(0.5, Duration::from_micros(10), 7);
        let mut aborts = 0;
        let mut waits = 0;
        for _ in 0..200 {
            match m.resolve(view(&me), view(&other), ConflictKind::WriteWrite) {
                Resolution::AbortOther => aborts += 1,
                Resolution::Wait(_) => waits += 1,
                Resolution::AbortSelf => panic!("randomized never aborts itself"),
            }
        }
        assert!(aborts > 20, "expected a fair share of aborts, got {aborts}");
        assert!(waits > 20, "expected a fair share of waits, got {waits}");
    }

    #[test]
    fn probability_is_clamped() {
        let m = RandomizedManager::new(7.0, Duration::from_micros(1));
        assert!((m.abort_probability - 1.0).abs() < f64::EPSILON);
        assert_eq!(m.name(), "randomized");
        assert_eq!(RandomizedManager::factory()().name(), "randomized");
    }
}
