//! # stm-cm
//!
//! Contention managers for the `stm-core` software transactional memory.
//!
//! The centrepiece is the [`GreedyManager`] from *"Toward a Theory of
//! Transactional Contention Managers"* (Guerraoui, Herlihy, Pochon — PODC
//! 2005): the first contention manager combining non-trivial provable
//! properties (every transaction commits within a bounded delay; the
//! makespan of `n` concurrent transactions over `s` shared objects is within
//! a factor of `s(s+1)+2` of an optimal off-line list schedule) with good
//! practical performance.
//!
//! The crate also re-implements the contention managers from the literature
//! that the paper benchmarks against (Scherer & Scott's suite, ported to C#
//! for SXM in the paper and re-implemented in Rust here from their published
//! descriptions):
//!
//! | Manager | Strategy | Provable progress |
//! |---------|----------|-------------------|
//! | [`GreedyManager`] | timestamp priority + `waiting` flag (Rules 1–2) | pending-commit property, bounded commit delay |
//! | [`GreedyTimeoutManager`] | greedy + doubling wait time-outs (Section 6 extension) | tolerates transactions that halt undetectably |
//! | [`AggressiveManager`] | always abort the enemy | livelock-prone |
//! | [`PoliteManager`] | bounded exponential backoff, then abort enemy | livelock possible |
//! | [`BackoffManager`] | adaptive exponential backoff keyed on the enemy | none |
//! | [`RandomizedManager`] | flip a coin: abort enemy or briefly wait | probabilistic only |
//! | [`TimestampManager`] | abort younger enemies; suspect-and-kill older ones after repeated waits | starvation-free if delays finite |
//! | [`KarmaManager`] | priority = objects opened (accumulated across aborts) | none (newcomers can repeatedly win) |
//! | [`EruptionManager`] | karma + blocked transactions push priority onto the blocker | none |
//! | [`KindergartenManager`] | take turns: give way once per enemy, then insist | none |
//! | [`KillBlockedManager`] | abort enemies that are themselves blocked, or after a patience bound | none |
//! | [`QueueOnBlockManager`] | always wait for the enemy (bounded only by a safety time-out) | dependency cycles possible |
//! | [`PolkaManager`] | Polite + Karma: karma-difference many exponential backoffs, then abort | none |
//!
//! All managers implement [`stm_core::ContentionManager`] and are constructed
//! per thread via [`stm_core::manager::ManagerFactory`]; the [`registry`]
//! module exposes the whole family by name so benchmarks and examples can
//! sweep over them.
//!
//! ```
//! use stm_core::{Stm, TVar};
//! use stm_cm::GreedyManager;
//!
//! let stm = Stm::builder().manager(GreedyManager::factory()).build();
//! let cell = TVar::new(0u32);
//! let mut ctx = stm.thread();
//! ctx.atomically(|tx| tx.modify(&cell, |v| v + 1)).unwrap();
//! assert_eq!(stm.read_atomic(&cell), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backoff;
pub mod eruption;
pub mod greedy;
pub mod karma;
pub mod kindergarten;
pub mod killblocked;
pub mod polka;
pub mod queueonblock;
pub mod randomized;
pub mod registry;
pub mod timestamp;

pub use backoff::BackoffManager;
pub use eruption::EruptionManager;
pub use greedy::{GreedyManager, GreedyTimeoutManager};
pub use karma::KarmaManager;
pub use kindergarten::KindergartenManager;
pub use killblocked::KillBlockedManager;
pub use polka::PolkaManager;
pub use queueonblock::QueueOnBlockManager;
pub use randomized::RandomizedManager;
pub use registry::{
    all_manager_names, default_manager_names, factory_by_name, ManagerKind, ManagerParams,
};
pub use timestamp::TimestampManager;

// Re-export the two managers that live in stm-core so users have one place to
// look for the whole family.
pub use stm_core::manager::{AggressiveManager, PoliteManager};

#[cfg(test)]
pub(crate) mod test_util {
    //! Helpers shared by the manager unit tests.
    use std::sync::Arc;
    use stm_core::{TxLineage, TxShared, TxView};

    /// Builds a shared descriptor with the given id/timestamp, wrapped so a
    /// `TxView` can be taken.
    pub(crate) fn tx(id: u64, timestamp: u64) -> Arc<TxShared> {
        Arc::new(TxShared::new(Arc::new(TxLineage::new(id, timestamp)), 1))
    }

    /// Shorthand for taking a view.
    pub(crate) fn view(shared: &Arc<TxShared>) -> TxView<'_> {
        TxView::new(shared)
    }
}
