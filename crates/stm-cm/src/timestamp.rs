//! The timestamp contention manager (Scherer & Scott).
//!
//! Like greedy, priority is the transaction's start timestamp (older wins).
//! Unlike greedy, a transaction that finds an *older* enemy in its way does
//! not wait indefinitely: it waits in bounded quanta and keeps a per-enemy
//! suspicion counter; once the counter exceeds a patience bound the enemy is
//! presumed defunct (crashed, preempted, swapped out) and killed. The paper
//! credits this manager as the only one from the literature that ensures
//! progress if transactions can stop prematurely, and models its greedy
//! timeout extension (Section 6) on it.

use std::collections::HashMap;
use std::time::Duration;

use stm_core::manager::{factory, ManagerFactory};
use stm_core::{ConflictKind, ContentionManager, Resolution, TxView, WaitSpec};

/// Default length of one bounded wait quantum.
pub const DEFAULT_TIMESTAMP_QUANTUM: Duration = Duration::from_micros(20);
/// Default expired quanta before an older enemy is presumed defunct.
pub const DEFAULT_TIMESTAMP_PATIENCE: u32 = 8;

/// Timestamp-priority contention manager with suspect-and-kill patience.
#[derive(Debug, Clone)]
pub struct TimestampManager {
    quantum: Duration,
    patience: u32,
    suspicion: HashMap<u64, u32>,
}

impl Default for TimestampManager {
    fn default() -> Self {
        TimestampManager::new(DEFAULT_TIMESTAMP_QUANTUM, DEFAULT_TIMESTAMP_PATIENCE)
    }
}

impl TimestampManager {
    /// Creates a timestamp manager that waits in `quantum`-sized slices and
    /// kills an older enemy after `patience` consecutive expired waits.
    pub fn new(quantum: Duration, patience: u32) -> Self {
        TimestampManager {
            quantum,
            patience,
            suspicion: HashMap::new(),
        }
    }

    /// A per-thread factory with the default parameters.
    pub fn factory() -> ManagerFactory {
        factory(TimestampManager::default)
    }
}

impl ContentionManager for TimestampManager {
    fn name(&self) -> &'static str {
        "timestamp"
    }

    fn begin(&mut self, _me: TxView<'_>) {
        self.suspicion.clear();
    }

    fn resolve(&mut self, me: TxView<'_>, other: TxView<'_>, _kind: ConflictKind) -> Resolution {
        let other_is_younger = match other.timestamp().cmp(&me.timestamp()) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => other.id() > me.id(),
        };
        if other_is_younger {
            // Older transactions simply kill younger ones in their way.
            return Resolution::AbortOther;
        }
        let count = self.suspicion.entry(other.id()).or_insert(0);
        if *count >= self.patience {
            // The older enemy has been in our way for `patience` quanta:
            // presume it is defunct and kill it.
            *count = 0;
            return Resolution::AbortOther;
        }
        *count += 1;
        Resolution::Wait(WaitSpec::bounded(self.quantum))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{tx, view};

    #[test]
    fn younger_enemy_is_aborted() {
        let me = tx(1, 5);
        let younger = tx(2, 9);
        let mut m = TimestampManager::default();
        assert_eq!(
            m.resolve(view(&me), view(&younger), ConflictKind::WriteWrite),
            Resolution::AbortOther
        );
    }

    #[test]
    fn older_enemy_gets_patience_then_is_killed() {
        let me = tx(2, 9);
        let older = tx(1, 5);
        let patience = 3;
        let mut m = TimestampManager::new(Duration::from_micros(1), patience);
        for _ in 0..patience {
            assert!(matches!(
                m.resolve(view(&me), view(&older), ConflictKind::WriteWrite),
                Resolution::Wait(_)
            ));
        }
        assert_eq!(
            m.resolve(view(&me), view(&older), ConflictKind::WriteWrite),
            Resolution::AbortOther
        );
        // After the kill the suspicion counter restarts.
        assert!(matches!(
            m.resolve(view(&me), view(&older), ConflictKind::WriteWrite),
            Resolution::Wait(_)
        ));
    }

    #[test]
    fn suspicion_is_tracked_per_enemy() {
        let me = tx(3, 9);
        let older_a = tx(1, 1);
        let older_b = tx(2, 2);
        let mut m = TimestampManager::new(Duration::from_micros(1), 1);
        assert!(matches!(
            m.resolve(view(&me), view(&older_a), ConflictKind::WriteWrite),
            Resolution::Wait(_)
        ));
        // A different enemy has its own counter.
        assert!(matches!(
            m.resolve(view(&me), view(&older_b), ConflictKind::WriteWrite),
            Resolution::Wait(_)
        ));
        assert_eq!(
            m.resolve(view(&me), view(&older_a), ConflictKind::WriteWrite),
            Resolution::AbortOther
        );
    }

    #[test]
    fn begin_clears_suspicion() {
        let me = tx(2, 9);
        let older = tx(1, 5);
        let mut m = TimestampManager::new(Duration::from_micros(1), 1);
        let _ = m.resolve(view(&me), view(&older), ConflictKind::WriteWrite);
        m.begin(view(&me));
        assert!(matches!(
            m.resolve(view(&me), view(&older), ConflictKind::WriteWrite),
            Resolution::Wait(_)
        ));
        assert_eq!(m.name(), "timestamp");
        assert_eq!(TimestampManager::factory()().name(), "timestamp");
    }
}
