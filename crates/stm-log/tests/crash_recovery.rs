//! Crash-recovery property test: kill the log mid-batch — truncate or
//! corrupt the tail at an arbitrary byte — recover, and prove the recovered
//! store equals the application of the **committed prefix** of everything
//! that was ever logged. Seeded PRNG, deterministic replay. The op streams
//! draw typed values (ints, strings with embedded newlines/NULs, byte
//! blobs), so the v2 record and snapshot formats are exercised end to end.

use std::collections::BTreeMap;
use std::fs::{self, OpenOptions};
use std::path::PathBuf;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use stm_core::{CommitOp, CommitValue};
use stm_log::{recover, FsyncPolicy, Wal, WalConfig};

fn temp_dir(tag: &str, seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "stm-log-crash-{tag}-{seed}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Applies one logged write-set to a model store.
fn apply(model: &mut BTreeMap<i64, CommitValue>, ops: &[CommitOp]) {
    for op in ops {
        match op {
            CommitOp::Put { id, value } => {
                model.insert(*id, value.clone());
            }
            CommitOp::Del { id } => {
                model.remove(id);
            }
        }
    }
}

/// Draws a random typed value: mostly ints, with strings (embedded
/// newlines, NULs, multi-byte UTF-8) and byte blobs mixed in.
fn draw_value(rng: &mut SmallRng) -> CommitValue {
    match rng.gen_range(0..10u32) {
        0..=5 => CommitValue::Int(rng.gen_range(-1000..1000i64)),
        6..=7 => {
            let len = rng.gen_range(0..24usize);
            let s: String = (0..len)
                .map(|_| match rng.gen_range(0..6u32) {
                    0 => '\n',
                    1 => '\0',
                    2 => '✓',
                    _ => char::from(rng.gen_range(b'a'..=b'z')),
                })
                .collect();
            CommitValue::Str(s)
        }
        _ => {
            let len = rng.gen_range(0..24usize);
            CommitValue::Bytes((0..len).map(|_| rng.gen_range(0..=255u32) as u8).collect())
        }
    }
}

/// Draws a random write-set (1..=4 ops over a small key range).
fn draw_ops(rng: &mut SmallRng) -> Vec<CommitOp> {
    let count = rng.gen_range(1..=4usize);
    (0..count)
        .map(|_| {
            let id = rng.gen_range(0..32i64);
            if rng.gen_bool(0.25) {
                CommitOp::Del { id }
            } else {
                CommitOp::Put {
                    id,
                    value: draw_value(rng),
                }
            }
        })
        .collect()
}

/// Runs one seeded scenario: log `transactions` write-sets (optionally
/// snapshotting part-way), then damage the newest segment at a random point
/// (truncate, or flip a byte), recover, and check the committed-prefix
/// property.
fn run_scenario(seed: u64, with_snapshot: bool, flip_instead_of_truncate: bool) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let dir = temp_dir("prop", seed);
    let mut cfg = WalConfig::new(&dir);
    cfg.segment_bytes = 4096; // small segments so rotation participates
    cfg.fsync = FsyncPolicy::EveryN(8);
    let (wal, _) = Wal::open(cfg).unwrap();
    let hook = wal.commit_hook();

    // `golden[k]` is the write-set committed with sequence number k + 1.
    let mut golden: Vec<Vec<CommitOp>> = Vec::new();
    let transactions = rng.gen_range(20..120usize);
    let snapshot_at = with_snapshot.then(|| rng.gen_range(1..=transactions as u64));
    let mut last_seq = 0;
    for _ in 0..transactions {
        let ops = draw_ops(&mut rng);
        let seq = hook.on_commit(&ops, &mut || true).unwrap();
        assert_eq!(seq, last_seq + 1, "sequence numbers must be gapless");
        last_seq = seq;
        golden.push(ops);
        if snapshot_at == Some(seq) {
            // Snapshot the model state at this cut, as the server would.
            let mut at_cut = BTreeMap::new();
            for ops in &golden {
                apply(&mut at_cut, ops);
            }
            assert!(wal.begin_snapshot());
            let pairs: Vec<(i64, CommitValue)> = at_cut.into_iter().collect();
            wal.write_snapshot(seq, &pairs).unwrap();
        }
    }
    // Graceful close so every record reaches disk, then damage the tail —
    // the equivalent of a crash that tore or corrupted the final write.
    drop(wal);

    let mut segments = stm_log::recovery::list_segments(&dir).unwrap();
    segments.sort_by_key(|(_, first)| *first);
    if let Some((path, _)) = segments.last() {
        let len = fs::metadata(path).unwrap().len();
        if flip_instead_of_truncate {
            use std::io::{Read, Seek, SeekFrom, Write};
            let mut file = OpenOptions::new().read(true).write(true).open(path).unwrap();
            let at = rng.gen_range(0..len);
            file.seek(SeekFrom::Start(at)).unwrap();
            let mut byte = [0u8; 1];
            file.read_exact(&mut byte).unwrap();
            byte[0] ^= 1 << rng.gen_range(0..8u32);
            file.seek(SeekFrom::Start(at)).unwrap();
            file.write_all(&byte).unwrap();
        } else {
            let cut = rng.gen_range(0..=len);
            OpenOptions::new().write(true).open(path).unwrap().set_len(cut).unwrap();
        }
    }

    let recovered = recover(&dir).unwrap();

    // Rebuild the store exactly as the server would: snapshot, then tail.
    let mut rebuilt = BTreeMap::new();
    let snapshot_seq = recovered.snapshot.as_ref().map(|s| s.seq).unwrap_or(0);
    if let Some(snapshot) = &recovered.snapshot {
        rebuilt.extend(snapshot.pairs.iter().cloned());
    }
    let mut expected_next = snapshot_seq + 1;
    for (seq, ops) in &recovered.tail {
        assert_eq!(
            *seq, expected_next,
            "seed {seed}: replay tail must be the contiguous continuation of the snapshot"
        );
        expected_next += 1;
        apply(&mut rebuilt, ops);
    }
    let prefix_len = (expected_next - 1) as usize;
    assert!(
        prefix_len <= golden.len(),
        "seed {seed}: recovery invented commits ({prefix_len} > {})",
        golden.len()
    );
    let mut expected = BTreeMap::new();
    for ops in &golden[..prefix_len] {
        apply(&mut expected, ops);
    }
    assert_eq!(
        rebuilt, expected,
        "seed {seed}: recovered store must equal the committed prefix (len {prefix_len})"
    );

    // Recovery is idempotent: a second pass finds a clean log with the same
    // contents.
    let again = recover(&dir).unwrap();
    assert_eq!(again.tail, recovered.tail, "seed {seed}");
    assert_eq!(again.truncated_bytes, 0, "seed {seed}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncated_tail_recovers_the_committed_prefix() {
    for seed in 0..8u64 {
        run_scenario(0x7A11 + seed, false, false);
    }
}

#[test]
fn corrupted_byte_recovers_the_committed_prefix() {
    for seed in 0..8u64 {
        run_scenario(0xC0DE + seed, false, true);
    }
}

#[test]
fn snapshot_plus_damaged_tail_recovers_the_committed_prefix() {
    for seed in 0..8u64 {
        run_scenario(0x5A9A + seed, true, seed % 2 == 0);
    }
}

/// A directory written entirely in the v1 format (magic-less segments with
/// integer-only records, a v1 snapshot) must recover losslessly — the
/// compatibility contract for logs written before typed values existed.
#[test]
fn v1_log_directory_recovers_losslessly() {
    use std::io::Write;
    for seed in 0..6u64 {
        let mut rng = SmallRng::seed_from_u64(0x1DF0 + seed);
        let dir = temp_dir("v1compat", seed);
        fs::create_dir_all(&dir).unwrap();

        // Build a golden integer-only history split over two v1 segments,
        // with an optional v1 snapshot covering a prefix.
        let transactions = rng.gen_range(10..60usize);
        let mut golden: Vec<Vec<CommitOp>> = Vec::new();
        for _ in 0..transactions {
            let count = rng.gen_range(1..=3usize);
            golden.push(
                (0..count)
                    .map(|_| {
                        let id = rng.gen_range(0..24i64);
                        if rng.gen_bool(0.2) {
                            CommitOp::del(id)
                        } else {
                            CommitOp::put(id, rng.gen_range(-500..500i64))
                        }
                    })
                    .collect(),
            );
        }
        let split = rng.gen_range(1..=transactions);
        let mut seg1 = Vec::new();
        for (i, ops) in golden[..split].iter().enumerate() {
            stm_log::record::encode_v1_into(&mut seg1, (i + 1) as u64, ops);
        }
        fs::File::create(dir.join(format!("wal-{:020}.log", 1)))
            .unwrap()
            .write_all(&seg1)
            .unwrap();
        if split < transactions {
            let mut seg2 = Vec::new();
            for (i, ops) in golden[split..].iter().enumerate() {
                stm_log::record::encode_v1_into(&mut seg2, (split + i + 1) as u64, ops);
            }
            fs::File::create(dir.join(format!("wal-{:020}.log", split + 1)))
                .unwrap()
                .write_all(&seg2)
                .unwrap();
        }
        if rng.gen_bool(0.5) {
            let snap_at = rng.gen_range(1..=split as u64);
            let mut at_cut = BTreeMap::new();
            for ops in &golden[..snap_at as usize] {
                apply(&mut at_cut, ops);
            }
            let pairs: Vec<(i64, CommitValue)> = at_cut.into_iter().collect();
            let bytes = stm_log::snapshot::encode_v1(snap_at, &pairs);
            fs::File::create(dir.join(stm_log::snapshot::snapshot_file_name(snap_at)))
                .unwrap()
                .write_all(&bytes)
                .unwrap();
        }

        // Recover and rebuild; must equal the full golden history.
        let recovered = recover(&dir).unwrap();
        assert_eq!(recovered.truncated_bytes, 0, "seed {seed}: clean v1 log");
        assert_eq!(recovered.next_seq, transactions as u64 + 1, "seed {seed}");
        let mut rebuilt = BTreeMap::new();
        if let Some(snapshot) = &recovered.snapshot {
            rebuilt.extend(snapshot.pairs.iter().cloned());
        }
        for (_seq, ops) in &recovered.tail {
            apply(&mut rebuilt, ops);
        }
        let mut expected = BTreeMap::new();
        for ops in &golden {
            apply(&mut expected, ops);
        }
        assert_eq!(rebuilt, expected, "seed {seed}: v1 history must replay losslessly");

        // A v2 writer now appends on top; both generations must survive the
        // next recovery.
        let (wal, recovered) = Wal::open(WalConfig::new(&dir)).unwrap();
        assert_eq!(recovered.next_seq, transactions as u64 + 1);
        let hook = wal.commit_hook();
        let seq = hook
            .on_commit(&[CommitOp::put(1000, "typed\nvalue")], &mut || true)
            .unwrap();
        assert_eq!(seq, transactions as u64 + 1);
        assert!(wal.wait_durable(seq));
        drop(wal);
        let recovered = recover(&dir).unwrap();
        let mut rebuilt = BTreeMap::new();
        if let Some(snapshot) = &recovered.snapshot {
            rebuilt.extend(snapshot.pairs.iter().cloned());
        }
        for (_seq, ops) in &recovered.tail {
            apply(&mut rebuilt, ops);
        }
        expected.insert(1000, CommitValue::Str("typed\nvalue".to_string()));
        assert_eq!(
            rebuilt, expected,
            "seed {seed}: mixed v1+v2 directory must replay both generations"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn durable_watermark_survives_the_crash() {
    // Stronger than the prefix property: everything `wait_durable` ever
    // acknowledged must still be there after a torn tail — provided the
    // damage hits the *unsynced* tail, which is what a real crash does
    // (fsynced bytes do not vanish).
    let dir = temp_dir("watermark", 1);
    let mut cfg = WalConfig::new(&dir);
    cfg.fsync = FsyncPolicy::EveryCommit;
    let (wal, _) = Wal::open(cfg).unwrap();
    let hook = wal.commit_hook();
    let mut durable_upto = 0;
    for i in 0..50i64 {
        let seq = hook.on_commit(&[CommitOp::put(i, i)], &mut || true).unwrap();
        if i < 40 {
            assert!(wal.wait_durable(seq));
            durable_upto = seq;
        }
    }
    let durable_len_lower_bound: u64 = {
        // The segment magic, then 40 acknowledged v2 records: each is
        // 8 (header) + 13 (ver+seq+count) + 17 (one int Put).
        stm_log::SEGMENT_MAGIC.len() as u64 + 40 * (8 + 13 + 17)
    };
    drop(wal);
    let mut segments = stm_log::recovery::list_segments(&dir).unwrap();
    segments.sort_by_key(|(_, first)| *first);
    let (path, _) = segments.last().unwrap();
    // Tear mid-way through the unacknowledged tail.
    let len = fs::metadata(path).unwrap().len();
    let cut = durable_len_lower_bound + (len - durable_len_lower_bound) / 2;
    OpenOptions::new().write(true).open(path).unwrap().set_len(cut).unwrap();
    let recovered = recover(&dir).unwrap();
    assert!(
        recovered.next_seq > durable_upto,
        "acknowledged commits lost: recovered up to {}, acknowledged {durable_upto}",
        recovered.next_seq - 1
    );
    let _ = fs::remove_dir_all(&dir);
}
