//! CRC-32 (IEEE 802.3, the polynomial used by zip/gzip/ethernet), computed
//! with the classic 256-entry lookup table. Implemented here because the
//! build environment has no crates.io access; the record and snapshot
//! formats both checksum their payloads with it.

/// The reflected polynomial of CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry table, built once on first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        table
    })
}

/// CRC-32 of `bytes` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = table();
    let mut crc = u32::MAX;
    for &byte in bytes {
        crc = (crc >> 8) ^ table[((crc ^ byte as u32) & 0xFF) as usize];
    }
    crc ^ u32::MAX
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn single_bit_flip_changes_the_checksum() {
        let base = b"hello, durable world".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() * 8 {
            let mut flipped = base.clone();
            flipped[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&flipped), reference, "bit {i} not detected");
        }
    }
}
