//! The producer/consumer slot ring between commit threads and the
//! group-commit writer.
//!
//! Extracted from `wal.rs` so the hand-off protocol — sequence reservation,
//! slot publication, the Dekker-style parked/ready wakeup, and the
//! backpressure wait — is one self-contained unit that the bounded
//! concurrency models in [`crate::models`] can drive directly (capacity and
//! first sequence number are parameters; the WAL uses 1024 and the
//! recovered tip).
//!
//! All synchronization goes through [`stm_core::sync`], so under
//! `--features model-check` the ring runs on loomlite modeled primitives
//! and its interleavings are explored exhaustively.
//!
//! Protocol summary (see the method docs for the ordering arguments):
//!
//! * A producer [`reserve`](SlotRing::reserve)s a sequence number with one
//!   `fetch_add`, waits for its slot to be free
//!   ([`wait_for_slot`](SlotRing::wait_for_slot) — cold path, only when the
//!   reservation is a whole ring ahead of the consumer), and publishes with
//!   [`fill`](SlotRing::fill).
//! * The single consumer takes contiguous ready slots in sequence order
//!   with [`consume`](SlotRing::consume) and parks in
//!   [`park_until_ready`](SlotRing::park_until_ready) when the next slot is
//!   pending.

use std::time::Duration;

use stm_core::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use stm_core::sync::{Condvar, Mutex};

/// One ring slot. `ready` holds `seq + 1` once the slot at
/// `seq % capacity` is filled for sequence `seq` (0 = empty); the `+ 1`
/// bias disambiguates the empty state from a filled seq-0 slot and lets the
/// consumer verify it is consuming exactly the generation it expects. The
/// per-slot mutex is touched by exactly one producer (the reservation
/// holder) and the consumer, so it is uncontended in steady state —
/// nothing process-wide.
struct Slot {
    ready: AtomicU64,
    data: Mutex<SlotData>,
}

#[derive(Default)]
struct SlotData {
    bytes: Vec<u8>,
    /// `false` marks an abandoned ticket: the reservation's commit CAS
    /// failed, so the consumer skips its bytes but still advances past it.
    committed: bool,
}

/// The hand-off ring. See the [module docs](self).
pub(crate) struct SlotRing {
    capacity: u64,
    /// Next sequence number to reserve. `fetch_add` here — inside the
    /// commit window, before the commit CAS — is the whole of sequence
    /// assignment.
    next_seq: AtomicU64,
    /// Highest sequence number the consumer has taken from the ring.
    consumed: AtomicU64,
    slots: Vec<Slot>,
    /// Pairs with `work`: the consumer re-checks the ring under this lock
    /// before sleeping, so a producer that fills a slot and then finds
    /// `parked` set cannot lose its wakeup.
    work_lock: Mutex<()>,
    work: Condvar,
    /// Set by the consumer around its condvar wait; producers skip the
    /// `work_lock` round-trip entirely while the consumer is busy draining.
    parked: AtomicBool,
    /// Pairs with `space_cv`: reservations a whole ring ahead of the
    /// consumer wait here; `space_waiters` lets the consumer skip
    /// notification entirely in the common case of an empty wait queue.
    space_lock: Mutex<()>,
    space_cv: Condvar,
    space_waiters: AtomicU64,
}

impl SlotRing {
    /// A ring of `capacity` slots whose next reservation is `next_seq`
    /// (everything below it counts as already consumed).
    pub(crate) fn new(capacity: usize, next_seq: u64) -> SlotRing {
        assert!(capacity > 0, "ring capacity must be positive");
        SlotRing {
            capacity: capacity as u64,
            next_seq: AtomicU64::new(next_seq),
            consumed: AtomicU64::new(next_seq.saturating_sub(1)),
            slots: (0..capacity)
                .map(|_| Slot {
                    ready: AtomicU64::new(0),
                    data: Mutex::new(SlotData::default()),
                })
                .collect(),
            work_lock: Mutex::new(()),
            work: Condvar::new(),
            parked: AtomicBool::new(false),
            space_lock: Mutex::new(()),
            space_cv: Condvar::new(),
            space_waiters: AtomicU64::new(0),
        }
    }

    /// Reserves the next sequence number.
    pub(crate) fn reserve(&self) -> u64 {
        // ordering: the reservation must be ordered against the commit CAS
        // that follows it inside the commit window (log order extends
        // serialization order); SeqCst also keeps `next_seq` reads in
        // `occupancy`/shutdown draining exact.
        self.next_seq.fetch_add(1, Ordering::SeqCst)
    }

    /// The next sequence number that would be reserved.
    pub(crate) fn next_seq(&self) -> u64 {
        // ordering: see `reserve`.
        self.next_seq.load(Ordering::SeqCst)
    }

    /// Highest sequence number the consumer has taken.
    pub(crate) fn consumed(&self) -> u64 {
        // ordering: pairs with the consumer's `consumed` store — the
        // backpressure check in `wait_for_slot` must not miss progress.
        self.consumed.load(Ordering::SeqCst)
    }

    /// Reserved-but-unconsumed sequence numbers as of this call, given the
    /// consumer's next expected sequence (occupancy telemetry).
    pub(crate) fn occupancy(&self, next: u64) -> u64 {
        self.next_seq().saturating_sub(next)
    }

    /// Whether the slot for `seq` is published at the expected generation.
    pub(crate) fn slot_ready(&self, seq: u64) -> bool {
        // ordering: acquire side of `fill`'s release store, and part of the
        // Dekker pairing with `parked` (see `park_until_ready`); the
        // matching SeqCst load also orders the producer's `data` write
        // before the consumer's read without contending on the slot mutex.
        self.slots[(seq % self.capacity) as usize]
            .ready
            .load(Ordering::SeqCst)
            == seq + 1
    }

    /// Blocks until the ring slot for `seq` is free — its previous occupant
    /// (`seq - capacity`) consumed — which in-order consumption reduces to
    /// `seq <= consumed + capacity`. Returns `false` when `abort` reports
    /// the consumer is gone (failed or stopping log), so a reservation
    /// never deadlocks against a consumer that will never drain again.
    pub(crate) fn wait_for_slot(&self, seq: u64, abort: impl Fn() -> bool) -> bool {
        loop {
            if abort() {
                return false;
            }
            if seq <= self.consumed() + self.capacity {
                return true;
            }
            // ordering: the waiter count must be raised before the re-check
            // under the lock; the consumer checks it after storing
            // `consumed` — SeqCst makes one side see the other, so the
            // notification cannot be skipped while we commit to waiting.
            self.space_waiters.fetch_add(1, Ordering::SeqCst);
            {
                let mut guard = self.space_lock.lock();
                if seq > self.consumed() + self.capacity && !abort() {
                    let _ = self.space_cv.wait_for(&mut guard, Duration::from_millis(10));
                }
            }
            // ordering: see the fetch_add above.
            self.space_waiters.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Publishes the filled (or abandoned) slot for `seq` and wakes the
    /// consumer if it is parked.
    pub(crate) fn fill(&self, seq: u64, bytes: Vec<u8>, committed: bool) {
        let slot = &self.slots[(seq % self.capacity) as usize];
        {
            let mut data = slot.data.lock();
            data.bytes = bytes;
            data.committed = committed;
        }
        // ordering: the release point of the publication — and one half of
        // the Dekker pairing with the consumer's park sequence. The
        // consumer stores `parked`, then re-checks `ready` under
        // `work_lock`; we store `ready`, then check `parked`. SeqCst makes
        // at least one side observe the other (proven by
        // `models::ring_parked_consumer_never_misses_a_fill`), and taking
        // `work_lock` before notifying serializes against the
        // check-then-wait so the wakeup cannot fall between them.
        slot.ready.store(seq + 1, Ordering::SeqCst);
        if self.parked.load(Ordering::SeqCst) {
            drop(self.work_lock.lock());
            self.work.notify_one();
        }
    }

    /// Takes the slot for `seq` if it is published, marking it consumed.
    /// Consumers call this with strictly increasing `seq`; a pending slot
    /// returns `None` and ends the contiguous run even if later slots are
    /// ready.
    pub(crate) fn consume(&self, seq: u64) -> Option<(Vec<u8>, bool)> {
        if !self.slot_ready(seq) {
            return None;
        }
        let slot = &self.slots[(seq % self.capacity) as usize];
        let (bytes, committed) = {
            let mut data = slot.data.lock();
            (std::mem::take(&mut data.bytes), data.committed)
        };
        // ordering: the empty-marker store must be ordered before the
        // `consumed` bump — a producer admitted by `wait_for_slot` may
        // immediately reuse this slot for `seq + capacity`.
        slot.ready.store(0, Ordering::SeqCst);
        // ordering: pairs with `wait_for_slot`'s backpressure check.
        self.consumed.store(seq, Ordering::SeqCst);
        Some((bytes, committed))
    }

    /// Wakes backpressure waiters if there are any (consumer side, after a
    /// drain made progress).
    pub(crate) fn notify_space(&self) {
        // ordering: counterpart of the waiter-count handshake in
        // `wait_for_slot`.
        if self.space_waiters.load(Ordering::SeqCst) > 0 {
            drop(self.space_lock.lock());
            self.space_cv.notify_all();
        }
    }

    /// Parks the consumer until the slot for `seq` is published, `tick`
    /// elapses (timer-based fsync policies need the wakeup even when idle),
    /// or `cancel` reports shutdown. The `parked` flag plus the re-check
    /// under `work_lock` pairs with `fill`'s publish-then-notify so the
    /// wakeup cannot be lost.
    pub(crate) fn park_until_ready(&self, seq: u64, tick: Duration, cancel: impl Fn() -> bool) {
        if self.slot_ready(seq) {
            return;
        }
        // ordering: Dekker pairing with `fill` — see the note there.
        self.parked.store(true, Ordering::SeqCst);
        {
            let mut guard = self.work_lock.lock();
            if !self.slot_ready(seq) && !cancel() {
                let _ = self.work.wait_for(&mut guard, tick);
            }
        }
        // ordering: see above.
        self.parked.store(false, Ordering::SeqCst);
    }

    /// Wakes everything (consumer park and backpressure waiters) — shutdown
    /// and failure paths. Takes both pairing locks first so the wakeup
    /// cannot fall between anyone's check and wait.
    pub(crate) fn wake_all(&self) {
        drop(self.work_lock.lock());
        self.work.notify_all();
        drop(self.space_lock.lock());
        self.space_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_fill_consume_roundtrip_in_order() {
        let ring = SlotRing::new(4, 1);
        assert_eq!(ring.reserve(), 1);
        assert_eq!(ring.reserve(), 2);
        assert!(ring.consume(1).is_none(), "nothing published yet");
        ring.fill(2, vec![2], true);
        assert!(ring.consume(1).is_none(), "in-order: seq 1 still pending");
        ring.fill(1, vec![1], true);
        assert_eq!(ring.consume(1), Some((vec![1], true)));
        assert_eq!(ring.consume(2), Some((vec![2], true)));
        assert_eq!(ring.consumed(), 2);
        assert_eq!(ring.occupancy(3), 0);
    }

    #[test]
    fn abandoned_tickets_flow_through() {
        let ring = SlotRing::new(2, 7);
        assert_eq!(ring.reserve(), 7);
        ring.fill(7, Vec::new(), false);
        assert_eq!(ring.consume(7), Some((Vec::new(), false)));
    }

    #[test]
    fn wait_for_slot_applies_backpressure_and_abort() {
        let ring = SlotRing::new(2, 1);
        // Within capacity: no wait at all.
        assert!(ring.wait_for_slot(1, || false));
        assert!(ring.wait_for_slot(2, || false));
        // seq 3 is a full ring ahead of consumed == 0: only abort frees it.
        assert!(!ring.wait_for_slot(3, || true));
        // Consuming seq 1 admits seq 3.
        ring.fill(1, vec![1], true);
        assert_eq!(ring.consume(1), Some((vec![1], true)));
        assert!(ring.wait_for_slot(3, || false));
    }

    #[test]
    fn generation_bias_distinguishes_wrapped_slots() {
        let ring = SlotRing::new(2, 1);
        ring.fill(1, vec![1], true);
        // Slot index of seq 3 == slot index of seq 1, but the generation
        // check must not confuse them.
        assert!(ring.slot_ready(1));
        assert!(!ring.slot_ready(3));
        assert_eq!(ring.consume(1), Some((vec![1], true)));
        ring.fill(3, vec![3], true);
        assert!(ring.slot_ready(3));
        assert!(!ring.slot_ready(1));
    }
}
