//! # stm-log
//!
//! Durability for the greedy-STM stack: a write-ahead commit log with group
//! commit, point-in-time snapshots, and crash recovery.
//!
//! The `stm-kv` server keeps its keyspace in transactional memory; without
//! this crate a restart loses every committed transaction. `stm-log` closes
//! that gap with the classic logging-and-recovery construction (the
//! append-only, replayable log as the recovery substrate):
//!
//! * **Commit capture** — the [`Wal::commit_hook`] implements
//!   [`stm_core::CommitHook`]: a transaction *reserves* its sequence number
//!   with one atomic `fetch_add` inside the commit window (before the
//!   commit CAS), so the sequence order of the log extends the
//!   serialization order of the committed transactions — without any
//!   process-wide lock on the commit path. Replay in sequence order
//!   therefore reconstructs a state some serial execution produced — the
//!   whole correctness of recovery rests on that ordering. A reservation
//!   whose commit CAS loses leaves a (harmless, recovery-tolerated) gap.
//! * **Group commit** ([`wal`]) — commit-path threads only publish encoded
//!   records into a slot ring; a single writer thread consumes the ring in
//!   sequence order and drains batches into
//!   length-prefixed, CRC-checked records ([`record`]) in rotating segment
//!   files, fsyncing per the configured [`FsyncPolicy`] (every commit /
//!   every N records / every T milliseconds). [`Wal::wait_durable`] turns
//!   the `every` policy into synchronous durability; the lazier policies
//!   trade a bounded loss window for throughput — the trade-off the E11
//!   experiment measures across contention managers.
//! * **Snapshots** ([`snapshot`]) — a consistent cut of the whole keyspace
//!   (obtained with `ThreadCtx::atomically_logged`, whose sequence number
//!   marks the cut) written atomically; old segments the snapshot covers are
//!   pruned.
//! * **Recovery** ([`recovery`]) — newest valid snapshot + replay of the
//!   record tail, truncating a torn or corrupt final record (and discarding
//!   anything beyond it) so the committed prefix, and only the committed
//!   prefix, survives a crash.
//!
//! ```
//! use stm_core::{CommitOp, Stm};
//! use stm_log::{Wal, WalConfig};
//!
//! let dir = std::env::temp_dir().join(format!("stm-log-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let (wal, recovered) = Wal::open(WalConfig::new(&dir)).unwrap();
//! assert!(recovered.tail.is_empty());
//!
//! let stm = Stm::builder().commit_hook(wal.commit_hook()).build();
//! let cell = stm_core::TVar::new(0i64);
//! let mut ctx = stm.thread();
//! let (result, report) = ctx.atomically_traced(|tx| {
//!     tx.write(&cell, 42)?;
//!     tx.publish(CommitOp::put(7, 42));
//!     Ok(())
//! });
//! result.unwrap();
//! let seq = report.commit_seq.unwrap();
//! assert!(wal.wait_durable(seq)); // the record is on disk
//!
//! drop(wal);
//! let (_wal, recovered) = Wal::open(WalConfig::new(&dir)).unwrap();
//! assert_eq!(recovered.tail, vec![(seq, vec![CommitOp::put(7, 42)])]);
//! # drop(_wal);
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod crc;
#[cfg(feature = "model-check")]
pub mod models;
pub mod record;
pub mod recovery;
mod ring;
pub mod snapshot;
pub mod wal;

pub use record::{Format, SEGMENT_MAGIC};
pub use recovery::{recover, Recovered};
pub use snapshot::Snapshot;
pub use wal::{FsyncPolicy, Wal, WalConfig, WalStats};
