//! The write-ahead log: an append-only record stream with group commit.
//!
//! A [`Wal`] owns a directory of segment files (`wal-<first_seq>.log`) and a
//! background **group-commit writer thread**. Commit-path threads never
//! touch the filesystem — and never a process-wide lock either: the
//! [`Wal::commit_hook`] *reserves* a sequence number with one `fetch_add`
//! before running the transaction's commit CAS, encodes the record into a
//! private buffer, and publishes it into the slot ring at its reserved
//! position (see `stm_core::hook` for why reservation-inside-the-commit-
//! window makes log order equal serialization order). A reservation whose
//! commit CAS loses is published as an *abandoned* ticket, so the on-disk
//! stream may contain sequence gaps — recovery is gap-tolerant and the
//! durability watermark counts abandoned tickets as trivially durable.
//! The writer consumes ring slots strictly in sequence order and drains
//! whole batches — every record that accumulated while the previous write
//! was in flight goes out in one `write_all` — and applies the configured
//! [`FsyncPolicy`]:
//!
//! * [`FsyncPolicy::EveryCommit`] — fsync after every drained batch. A
//!   caller that then blocks on [`Wal::wait_durable`] gets synchronous
//!   durability, and the batching means one fsync covers every commit that
//!   arrived during the previous fsync (classic group commit).
//! * [`FsyncPolicy::EveryN`] — fsync once at least `n` records are unsynced.
//!   Bounded loss window of `n` commits.
//! * [`FsyncPolicy::EveryMs`] — fsync when the oldest unsynced record is
//!   older than `t` milliseconds. Bounded loss window of `t` ms.
//!
//! [`Wal::wait_durable`] blocks until a given sequence number is covered by
//! an fsync; [`Wal::write_snapshot`] persists a point-in-time snapshot and
//! prunes segments the snapshot covers. Dropping the [`Wal`] flushes and
//! fsyncs everything outstanding before joining the writer, so a graceful
//! shutdown never loses a commit regardless of policy.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use stm_core::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use stm_core::sync::{Condvar, Mutex};
use stm_core::{CommitHook, CommitOp, CommitValue};

use crate::record;
use crate::ring::SlotRing;
use crate::recovery::{self, Recovered};
use crate::snapshot;

/// When the group-commit writer calls `fsync`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// After every drained batch — synchronous durability for callers that
    /// wait on [`Wal::wait_durable`].
    EveryCommit,
    /// Once at least this many records are unsynced.
    EveryN(u64),
    /// Once the oldest unsynced record is at least this many ms old.
    EveryMs(u64),
}

impl FsyncPolicy {
    /// Stable label used in experiment cells and `WALSTATS`.
    pub fn label(&self) -> String {
        match self {
            FsyncPolicy::EveryCommit => "every".to_string(),
            FsyncPolicy::EveryN(n) => format!("n={n}"),
            FsyncPolicy::EveryMs(ms) => format!("ms={ms}"),
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

impl FromStr for FsyncPolicy {
    type Err = String;

    /// Parses `every`, `n=<count>` or `ms=<millis>` (the `--fsync` flag).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.eq_ignore_ascii_case("every") {
            return Ok(FsyncPolicy::EveryCommit);
        }
        if let Some(n) = s.strip_prefix("n=") {
            return match n.parse::<u64>() {
                Ok(n) if n > 0 => Ok(FsyncPolicy::EveryN(n)),
                _ => Err(format!("fsync policy 'n=' needs a positive count, got '{n}'")),
            };
        }
        if let Some(ms) = s.strip_prefix("ms=") {
            return match ms.parse::<u64>() {
                Ok(ms) if ms > 0 => Ok(FsyncPolicy::EveryMs(ms)),
                _ => Err(format!("fsync policy 'ms=' needs positive millis, got '{ms}'")),
            };
        }
        Err(format!(
            "unknown fsync policy '{s}' (expected every, n=<count> or ms=<millis>)"
        ))
    }
}

/// Configuration of a [`Wal`].
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding segments and snapshots (created if absent).
    pub dir: PathBuf,
    /// When the writer fsyncs.
    pub fsync: FsyncPolicy,
    /// Rotate to a new segment once the current one exceeds this size.
    pub segment_bytes: u64,
}

impl WalConfig {
    /// A config with the default fsync policy (every commit) and 8 MiB
    /// segments.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        WalConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::EveryCommit,
            segment_bytes: 8 << 20,
        }
    }
}

/// A consistent snapshot of the WAL's counters (the `WALSTATS` payload).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Next sequence number to be assigned.
    pub next_seq: u64,
    /// Highest sequence number covered by an fsync.
    pub durable_seq: u64,
    /// Records appended since this `Wal` was opened.
    pub records: u64,
    /// Bytes written to segment files since open.
    pub bytes: u64,
    /// fsync calls issued since open.
    pub fsyncs: u64,
    /// Segment files currently on disk.
    pub segments: u64,
    /// Snapshots written since open.
    pub snapshots: u64,
    /// Sequence number of the latest snapshot (0 = none).
    pub last_snapshot_seq: u64,
    /// Records appended since the latest snapshot.
    pub records_since_snapshot: u64,
    /// Whether the writer stopped on an unrecoverable filesystem error
    /// (see [`Wal::is_failed`]).
    pub failed: bool,
}

/// The WAL's internal latency/occupancy instruments. The writer thread is
/// the only recorder, so the histograms' striping is idle — they are here
/// for the uniform exposition, folded into the serving layer's `METRICS`
/// payload via [`Wal::metrics_text`].
struct WalTelemetry {
    registry: metrics::Registry,
    /// Committed records per drained group-commit batch.
    batch_records: Arc<metrics::Histogram>,
    /// `sync_data` wall time, microseconds (rotation fsyncs included).
    fsync_us: Arc<metrics::Histogram>,
    /// Reserved-but-unconsumed sequence numbers, sampled once per writer
    /// iteration — how full the slot ring runs (RING = backpressure).
    ring_occupancy: Arc<metrics::Histogram>,
}

impl WalTelemetry {
    fn new() -> WalTelemetry {
        let registry = metrics::Registry::new();
        let batch_records = registry.histogram("stm_wal_batch_records", &[]);
        let fsync_us = registry.histogram("stm_wal_fsync_us", &[]);
        let ring_occupancy = registry.histogram("stm_wal_ring_occupancy", &[]);
        WalTelemetry {
            registry,
            batch_records,
            fsync_us,
            ring_occupancy,
        }
    }
}

/// Slots in the hand-off ring between commit threads and the writer. Also
/// the backpressure bound: a reservation stalls (cold path) only when it is
/// this many sequence numbers ahead of the writer.
const RING: usize = 1024;

struct Shared {
    dir: PathBuf,
    policy: FsyncPolicy,
    segment_bytes: u64,
    /// The producer/consumer hand-off between commit threads and the writer
    /// — sequence reservation, slot publication, parked/ready wakeup and
    /// backpressure all live in [`crate::ring`], where the bounded
    /// concurrency models can drive them directly.
    ring: SlotRing,
    durable: Mutex<u64>,
    durable_cv: Condvar,
    stop: AtomicBool,
    records: AtomicU64,
    bytes: AtomicU64,
    fsyncs: AtomicU64,
    segments: AtomicU64,
    snapshots: AtomicU64,
    last_snapshot_seq: AtomicU64,
    since_snapshot: AtomicU64,
    snapshot_in_progress: AtomicBool,
    /// Set when the writer hit a filesystem error it cannot recover from
    /// (failed segment open/write, failed fsync). A failed log stops
    /// buffering, never advances the durable watermark again, and makes
    /// [`Wal::wait_durable`] return `false` immediately — an acknowledged
    /// durability promise is never built on a record that may not be on
    /// disk, and nothing is appended after a possibly-torn write (so the
    /// on-disk prefix stays exactly the committed prefix).
    failed: AtomicBool,
    telemetry: WalTelemetry,
}

impl Shared {
    fn fail(&self, context: &str, err: &io::Error) {
        // ordering: first-failure latch; SeqCst orders the flag ahead of the
        // wakeups below so woken waiters observe it and bail.
        if !self.failed.swap(true, Ordering::SeqCst) {
            eprintln!(
                "stm-log: {context}: {err} — log writer stopped; durability is disabled from \
                 this point (commits continue in memory, wait_durable now reports failure)"
            );
        }
        self.durable_cv.notify_all();
        // Reservations blocked on ring space must observe the failure and
        // bail rather than wait on a writer that will never drain again.
        self.ring.wake_all();
    }

    /// `true` while commits should skip logging: the writer is gone (failed
    /// log) or going (shutdown). Passed to the ring's backpressure wait so
    /// a reservation never deadlocks against a writer that will never drain.
    fn log_dead(&self) -> bool {
        self.failed.load(Ordering::Relaxed) || self.stop.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.dir)
            .field("policy", &self.policy)
            .finish()
    }
}

impl CommitHook for Shared {
    fn on_commit(&self, ops: &[CommitOp], commit: &mut dyn FnMut() -> bool) -> Option<u64> {
        // Reserve the sequence number *before* the commit CAS. The
        // reservation is inside the commit window, so if transaction B
        // depends on A (B's read saw A's write), B's window opened after
        // A's CAS — hence after A's reservation — and seq(A) < seq(B):
        // log order extends serialization order without any global lock.
        let seq = self.ring.reserve();
        // Backpressure (cold path): the slot is only busy when this
        // reservation is RING sequence numbers ahead of the writer. A dead
        // writer (failed or stopping log) means skip logging entirely —
        // commits proceed in memory and their non-durability is reported
        // through `wait_durable`.
        let log_alive = self.ring.wait_for_slot(seq, || self.log_dead());
        if !commit() {
            // The reservation is already in the sequence stream; publish it
            // as abandoned so the writer's in-order consumption never
            // stalls on a ticket nobody will fill.
            if log_alive {
                self.ring.fill(seq, Vec::new(), false);
            }
            return None;
        }
        if log_alive {
            let mut buf = Vec::with_capacity(32 + ops.len() * 24);
            record::encode_into(&mut buf, seq, ops);
            self.records.fetch_add(1, Ordering::Relaxed);
            self.since_snapshot.fetch_add(1, Ordering::Relaxed);
            self.ring.fill(seq, buf, true);
        }
        Some(seq)
    }
}

/// One contiguous run of committed records drained from the ring.
struct Batch {
    bytes: Vec<u8>,
    records: u64,
    first_seq: u64,
}

/// The durable commit log. See the [module documentation](self).
pub struct Wal {
    shared: Arc<Shared>,
    writer: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.shared.fmt(f)
    }
}

impl Wal {
    /// Opens (or creates) the log in `config.dir`: runs recovery, truncates
    /// a torn tail, and starts the group-commit writer at the next unused
    /// sequence number. Returns the running log and what recovery found.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from recovery or directory creation.
    pub fn open(config: WalConfig) -> io::Result<(Wal, Recovered)> {
        fs::create_dir_all(&config.dir)?;
        let recovered = recovery::recover(&config.dir)?;
        let segments = recovery::list_segments(&config.dir)?.len() as u64;
        let shared = Arc::new(Shared {
            dir: config.dir,
            policy: config.fsync,
            segment_bytes: config.segment_bytes.max(4096),
            failed: AtomicBool::new(false),
            // Every sequence below the recovered tip was consumed by a
            // previous process life; the ring starts empty.
            ring: SlotRing::new(RING, recovered.next_seq),
            durable: Mutex::new(recovered.next_seq.saturating_sub(1)),
            durable_cv: Condvar::new(),
            stop: AtomicBool::new(false),
            records: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            segments: AtomicU64::new(segments),
            snapshots: AtomicU64::new(0),
            last_snapshot_seq: AtomicU64::new(
                recovered.snapshot.as_ref().map(|s| s.seq).unwrap_or(0),
            ),
            since_snapshot: AtomicU64::new(recovered.tail.len() as u64),
            snapshot_in_progress: AtomicBool::new(false),
            telemetry: WalTelemetry::new(),
        });
        let writer = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("stm-log-writer".to_string())
                .spawn(move || writer_loop(&shared))
                .expect("spawn wal writer thread")
        };
        Ok((
            Wal {
                shared,
                writer: Some(writer),
            },
            recovered,
        ))
    }

    /// The [`CommitHook`] to install on the [`stm_core::Stm`] serving this
    /// log (`Stm::builder().commit_hook(wal.commit_hook())`).
    pub fn commit_hook(&self) -> Arc<dyn CommitHook> {
        Arc::clone(&self.shared) as Arc<dyn CommitHook>
    }

    /// The fsync policy this log runs under.
    pub fn policy(&self) -> FsyncPolicy {
        self.shared.policy
    }

    /// The directory holding segments and snapshots.
    pub fn dir(&self) -> &Path {
        &self.shared.dir
    }

    /// Highest sequence number currently covered by an fsync.
    pub fn durable_seq(&self) -> u64 {
        *self.shared.durable.lock()
    }

    /// Whether the log hit an unrecoverable filesystem error: the writer
    /// has stopped, nothing appended after the failure point is (or will
    /// become) durable, and [`Wal::wait_durable`] reports `false` for it.
    pub fn is_failed(&self) -> bool {
        self.shared.failed.load(Ordering::Relaxed)
    }

    /// Blocks until `seq` is durable (covered by an fsync). Returns `false`
    /// when the log shut down or [failed](Wal::is_failed) before that
    /// happened — never blocking on a watermark that cannot advance.
    pub fn wait_durable(&self, seq: u64) -> bool {
        let mut durable = self.shared.durable.lock();
        loop {
            if *durable >= seq {
                return true;
            }
            if self.shared.stop.load(Ordering::Relaxed)
                || self.shared.failed.load(Ordering::Relaxed)
            {
                return false;
            }
            let _ = self
                .shared
                .durable_cv
                .wait_for(&mut durable, Duration::from_millis(50));
        }
    }

    /// Records appended since the latest snapshot — the trigger the server's
    /// `--snapshot-every` policy polls.
    pub fn records_since_snapshot(&self) -> u64 {
        self.shared.since_snapshot.load(Ordering::Relaxed)
    }

    /// Claims the snapshot slot (at most one snapshot runs at a time).
    /// Returns `false` when another thread holds it; the claimer must call
    /// [`Wal::write_snapshot`] (which releases it) or [`Wal::abandon_snapshot`].
    pub fn begin_snapshot(&self) -> bool {
        // ordering: acquire pairs with the Release releases below so the
        // next claimer sees the previous snapshot's counter updates; release
        // publishes the claim itself.
        !self.shared.snapshot_in_progress.swap(true, Ordering::AcqRel)
    }

    /// Releases the snapshot slot without writing (the cut transaction
    /// failed).
    pub fn abandon_snapshot(&self) {
        // ordering: release — pairs with the AcqRel claim in `begin_snapshot`.
        self.shared.snapshot_in_progress.store(false, Ordering::Release);
    }

    /// Durably writes the snapshot of `pairs` at cut `seq`, releases the
    /// snapshot slot, and prunes snapshots and closed segments the new
    /// snapshot covers.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (the slot is released either way).
    pub fn write_snapshot(&self, seq: u64, pairs: &[(i64, CommitValue)]) -> io::Result<PathBuf> {
        let result = snapshot::write(&self.shared.dir, seq, pairs);
        if result.is_ok() {
            self.shared.snapshots.fetch_add(1, Ordering::Relaxed);
            self.shared.last_snapshot_seq.store(seq, Ordering::Relaxed);
            self.shared.since_snapshot.store(0, Ordering::Relaxed);
            self.prune(seq);
        }
        // ordering: release — the snapshot counters above must be visible
        // to whoever claims the slot next (pairs with `begin_snapshot`).
        self.shared.snapshot_in_progress.store(false, Ordering::Release);
        result
    }

    /// Deletes snapshots older than the one at `upto` and segment files all
    /// of whose records are covered by it (a segment is covered when the
    /// *next* segment starts at or below `upto + 1`). The newest snapshot
    /// and the open segment are never touched.
    fn prune(&self, upto: u64) {
        let Ok(mut segments) = recovery::list_segments(&self.shared.dir) else {
            return;
        };
        segments.sort();
        for pair in segments.windows(2) {
            let (_, successor_first) = pair[1];
            if successor_first <= upto + 1 {
                let _ = fs::remove_file(&pair[0].0);
                self.shared.segments.fetch_sub(1, Ordering::Relaxed);
            }
        }
        if let Ok(snapshots) = recovery::list_snapshots(&self.shared.dir) {
            for (path, seq) in snapshots {
                if seq < upto {
                    let _ = fs::remove_file(&path);
                }
            }
        }
    }

    /// A snapshot of the log's counters.
    pub fn stats(&self) -> WalStats {
        WalStats {
            next_seq: self.shared.ring.next_seq(),
            durable_seq: self.durable_seq(),
            records: self.shared.records.load(Ordering::Relaxed),
            bytes: self.shared.bytes.load(Ordering::Relaxed),
            fsyncs: self.shared.fsyncs.load(Ordering::Relaxed),
            segments: self.shared.segments.load(Ordering::Relaxed),
            snapshots: self.shared.snapshots.load(Ordering::Relaxed),
            last_snapshot_seq: self.shared.last_snapshot_seq.load(Ordering::Relaxed),
            records_since_snapshot: self.shared.since_snapshot.load(Ordering::Relaxed),
            failed: self.is_failed(),
        }
    }

    /// Prometheus-style text exposition of the writer's internal
    /// histograms (`stm_wal_batch_records`, `stm_wal_fsync_us`,
    /// `stm_wal_ring_occupancy`) — the serving layer folds this block into
    /// its `METRICS` payload. Counter-style series (records, bytes,
    /// fsyncs) stay in [`Wal::stats`].
    pub fn metrics_text(&self) -> String {
        self.shared.telemetry.registry.render()
    }

    /// Flushes and fsyncs everything outstanding, then stops the writer.
    /// Idempotent; also invoked by `Drop`, so a graceful shutdown never
    /// loses a commit regardless of the fsync policy.
    pub fn shutdown(&mut self) {
        // ordering: the stop latch must be visible before the wakeups below
        // — a woken waiter re-checks it and must see it set.
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // `wake_all` takes the pairing locks before notifying so the wakeup
        // cannot fall between anyone's stop-check and their condvar wait.
        self.shared.ring.wake_all();
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
        self.shared.durable_cv.notify_all();
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn segment_file_name(first_seq: u64) -> String {
    format!("wal-{first_seq:020}.log")
}

/// The writer's view of the currently open segment.
struct OpenSegment {
    file: File,
    written: u64,
}

fn open_segment(dir: &Path, first_seq: u64) -> io::Result<OpenSegment> {
    let path = dir.join(segment_file_name(first_seq));
    let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
    let mut written = file.metadata()?.len();
    // A fresh segment leads with the v2 format magic so recovery knows its
    // records carry typed values (magic-less segments decode as v1).
    if written == 0 {
        file.write_all(record::SEGMENT_MAGIC)?;
        written = record::SEGMENT_MAGIC.len() as u64;
    }
    // Persist the directory entry: fsyncing file *data* does not persist the
    // dirent, and acknowledged records in a segment whose name vanishes on
    // power loss would be acknowledged-then-lost.
    File::open(dir)?.sync_all()?;
    Ok(OpenSegment { file, written })
}

fn writer_loop(shared: &Shared) {
    let tick = match shared.policy {
        FsyncPolicy::EveryMs(ms) => Duration::from_millis(ms.clamp(1, 50)),
        _ => Duration::from_millis(50),
    };
    let mut segment: Option<OpenSegment> = None;
    let mut unsynced_records = 0u64;
    let mut unsynced_since = Instant::now();
    // Highest sequence number published to the durable watermark; tracked
    // locally so iterations that make no progress skip the lock entirely.
    let mut published_durable = shared.ring.consumed();
    let mut next = published_durable + 1;
    let mut last_progress = Instant::now();
    loop {
        // Drain every contiguous ready slot. Strictly in-order consumption
        // is what turns per-commit seq reservations back into a totally
        // ordered on-disk stream; a not-yet-filled slot ends the run even
        // if later slots are ready.
        let mut batch: Option<Batch> = None;
        while let Some((bytes, committed)) = shared.ring.consume(next) {
            if committed {
                match &mut batch {
                    None => {
                        batch = Some(Batch {
                            bytes,
                            records: 1,
                            first_seq: next,
                        })
                    }
                    Some(batch) => {
                        batch.bytes.extend_from_slice(&bytes);
                        batch.records += 1;
                    }
                }
            }
            next += 1;
            last_progress = Instant::now();
        }
        let consumed_tip = next - 1;
        shared.telemetry.ring_occupancy.record(shared.ring.occupancy(next));
        shared.ring.notify_space();
        let stopping = shared.stop.load(Ordering::Relaxed);
        if let Some(batch) = batch {
            let rotate = segment
                .as_ref()
                .is_some_and(|open| open.written >= shared.segment_bytes);
            shared.telemetry.batch_records.record(batch.records);
            if rotate {
                if let Some(open) = segment.take() {
                    let sync_started = Instant::now();
                    if let Err(err) = open.file.sync_data() {
                        // Unsynced records may live in this segment; a later
                        // fsync of the *next* segment would advance the
                        // watermark over them. Same fail-stop as below.
                        shared.fail("segment rotation fsync failed", &err);
                        return;
                    }
                    shared
                        .telemetry
                        .fsync_us
                        .record(sync_started.elapsed().as_micros() as u64);
                }
            }
            if segment.is_none() {
                match open_segment(&shared.dir, batch.first_seq) {
                    Ok(open) => {
                        shared.segments.fetch_add(1, Ordering::Relaxed);
                        segment = Some(open);
                    }
                    Err(err) => {
                        // A lost batch may never be leapfrogged: a later
                        // batch fsyncing would advance the seq-based
                        // durability watermark over records that are not on
                        // disk. Fail the whole log instead and stop.
                        shared.fail("cannot open segment", &err);
                        return;
                    }
                }
            }
            let open = segment.as_mut().expect("segment opened above");
            if let Err(err) = open.file.write_all(&batch.bytes) {
                // The write may have torn mid-record; anything appended
                // after it would sit beyond a Corrupt cut and be discarded
                // by recovery even if fsynced. Stop writing entirely.
                shared.fail("segment write failed", &err);
                return;
            }
            open.written += batch.bytes.len() as u64;
            shared.bytes.fetch_add(batch.bytes.len() as u64, Ordering::Relaxed);
            if unsynced_records == 0 {
                unsynced_since = Instant::now();
            }
            unsynced_records += batch.records;
        }
        let sync_due = unsynced_records > 0
            && (stopping
                || match shared.policy {
                    FsyncPolicy::EveryCommit => true,
                    FsyncPolicy::EveryN(n) => unsynced_records >= n,
                    FsyncPolicy::EveryMs(ms) => {
                        unsynced_since.elapsed() >= Duration::from_millis(ms)
                    }
                });
        if sync_due {
            if let Some(open) = segment.as_mut() {
                let sync_started = Instant::now();
                match open.file.sync_data() {
                    Ok(()) => {
                        shared
                            .telemetry
                            .fsync_us
                            .record(sync_started.elapsed().as_micros() as u64);
                        shared.fsyncs.fetch_add(1, Ordering::Relaxed);
                        unsynced_records = 0;
                        // Every consumed committed record was written before
                        // this fsync (consumption and write happen in the
                        // same iteration), so the whole consumed prefix is
                        // durable — abandoned tickets trivially so.
                        let mut durable = shared.durable.lock();
                        if consumed_tip > *durable {
                            *durable = consumed_tip;
                        }
                        drop(durable);
                        published_durable = consumed_tip;
                        shared.durable_cv.notify_all();
                    }
                    Err(err) => {
                        // After a failed fsync the kernel may have dropped
                        // the dirty pages and cleared the error — a later
                        // "successful" fsync proves nothing about these
                        // records. Fail the log rather than ever advancing
                        // the watermark over them.
                        shared.fail("fsync failed", &err);
                        return;
                    }
                }
            }
        } else if unsynced_records == 0 && consumed_tip > published_durable {
            // Progress made of abandoned tickets alone, with nothing
            // written-but-unsynced beneath it: the watermark can follow
            // without touching the disk.
            let mut durable = shared.durable.lock();
            if consumed_tip > *durable {
                *durable = consumed_tip;
            }
            drop(durable);
            published_durable = consumed_tip;
            shared.durable_cv.notify_all();
        }
        if stopping {
            // Drained once every reservation handed out so far has been
            // consumed. `sync_due` above included `stopping`, so whenever
            // we return here the final fsync has been attempted; exit even
            // if it failed rather than spin on a broken filesystem. A
            // reservation that never fills its slot (its thread bailed or
            // died mid-commit) is abandoned after a grace period so
            // shutdown cannot hang.
            if next == shared.ring.next_seq() {
                return;
            }
            if last_progress.elapsed() > Duration::from_millis(250) {
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        // Park until a producer fills the next slot (or the tick expires —
        // timer-based fsync policies need the wakeup even when idle). The
        // parked/ready Dekker pairing with `SlotRing::fill` is documented
        // (and model-checked) in `crate::ring`.
        shared.ring.park_until_ready(next, tick, || shared.stop.load(Ordering::Relaxed));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "stm-log-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn log_through_hook(wal: &Wal, ops: &[CommitOp]) -> u64 {
        wal.commit_hook()
            .on_commit(ops, &mut || true)
            .expect("commit closure returned true")
    }

    #[test]
    fn fsync_policy_parses_and_labels() {
        assert_eq!("every".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::EveryCommit);
        assert_eq!("EVERY".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::EveryCommit);
        assert_eq!("n=64".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::EveryN(64));
        assert_eq!("ms=5".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::EveryMs(5));
        for bad in ["", "n=0", "ms=0", "n=x", "sometimes"] {
            assert!(bad.parse::<FsyncPolicy>().is_err(), "'{bad}' accepted");
        }
        assert_eq!(FsyncPolicy::EveryN(8).label(), "n=8");
        assert_eq!(FsyncPolicy::EveryMs(2).to_string(), "ms=2");
    }

    #[test]
    fn append_wait_durable_and_reopen_replays_everything() {
        let dir = temp_dir("roundtrip");
        let (wal, recovered) = Wal::open(WalConfig::new(&dir)).unwrap();
        assert!(recovered.snapshot.is_none());
        assert!(recovered.tail.is_empty());
        assert_eq!(recovered.next_seq, 1);
        let mut last = 0;
        for i in 0..10i64 {
            last = log_through_hook(&wal, &[CommitOp::put(i, i * 10)]);
        }
        assert!(wal.wait_durable(last));
        assert!(wal.durable_seq() >= last);
        let stats = wal.stats();
        assert_eq!(stats.records, 10);
        assert!(stats.fsyncs >= 1);
        drop(wal);

        let (wal2, recovered) = Wal::open(WalConfig::new(&dir)).unwrap();
        assert_eq!(recovered.tail.len(), 10);
        assert_eq!(recovered.next_seq, 11);
        assert_eq!(
            recovered.tail[3],
            (4, vec![CommitOp::put(3, 30)])
        );
        drop(wal2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn graceful_shutdown_flushes_under_lazy_policies() {
        let dir = temp_dir("lazy");
        let mut cfg = WalConfig::new(&dir);
        cfg.fsync = FsyncPolicy::EveryN(1_000_000); // would never sync on its own
        let (mut wal, _) = Wal::open(cfg).unwrap();
        for i in 0..25i64 {
            log_through_hook(&wal, &[CommitOp::del(i)]);
        }
        wal.shutdown();
        let (wal2, recovered) = Wal::open(WalConfig::new(&dir)).unwrap();
        assert_eq!(recovered.tail.len(), 25, "graceful shutdown must lose nothing");
        drop(wal2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_rotate_and_snapshot_prunes_them() {
        let dir = temp_dir("rotate");
        let mut cfg = WalConfig::new(&dir);
        cfg.segment_bytes = 4096; // minimum — forces rotation quickly
        let (wal, _) = Wal::open(cfg).unwrap();
        let mut last = 0;
        for i in 0..2_000i64 {
            last = log_through_hook(&wal, &[CommitOp::put(i, i)]);
            // Give the writer batches small enough to rotate between.
            if i % 256 == 0 {
                wal.wait_durable(last);
            }
        }
        wal.wait_durable(last);
        assert!(
            wal.stats().segments >= 2,
            "4 KiB segments must have rotated: {:?}",
            wal.stats()
        );
        // Snapshot at the very tip: every closed segment becomes prunable.
        assert!(wal.begin_snapshot());
        assert!(!wal.begin_snapshot(), "slot must be exclusive");
        let pairs: Vec<(i64, CommitValue)> =
            (0..2_000i64).map(|i| (i, CommitValue::Int(i))).collect();
        wal.write_snapshot(last, &pairs).unwrap();
        assert!(wal.begin_snapshot(), "slot released after write");
        wal.abandon_snapshot();
        let stats = wal.stats();
        assert_eq!(stats.last_snapshot_seq, last);
        assert_eq!(stats.records_since_snapshot, 0);
        assert_eq!(stats.segments, 1, "only the open segment survives pruning");
        drop(wal);
        // Recovery now starts from the snapshot and replays nothing.
        let (wal2, recovered) = Wal::open(WalConfig::new(&dir)).unwrap();
        let snapshot = recovered.snapshot.expect("snapshot must be found");
        assert_eq!(snapshot.seq, last);
        assert_eq!(snapshot.pairs.len(), 2_000);
        assert!(recovered.tail.is_empty());
        assert_eq!(recovered.next_seq, last + 1);
        drop(wal2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_hook_commits_are_logged_in_seq_order() {
        let dir = temp_dir("concurrent");
        let (wal, _) = Wal::open(WalConfig::new(&dir)).unwrap();
        let hook = wal.commit_hook();
        std::thread::scope(|scope| {
            for t in 0..4i64 {
                let hook = &hook;
                scope.spawn(move || {
                    for i in 0..200i64 {
                        hook.on_commit(&[CommitOp::put(t, i)], &mut || true)
                            .unwrap();
                    }
                });
            }
        });
        let stats = wal.stats();
        assert_eq!(stats.records, 800);
        wal.wait_durable(800);
        drop(wal);
        let (_wal2, recovered) = Wal::open(WalConfig::new(&dir)).unwrap();
        let seqs: Vec<u64> = recovered.tail.iter().map(|(seq, _)| *seq).collect();
        assert_eq!(seqs, (1..=800).collect::<Vec<_>>(), "gapless and ordered");
        let _ = fs::remove_dir_all(&dir);
    }
}
