//! Crash recovery: latest valid snapshot + replay of the log tail.
//!
//! Recovery walks the log directory and reconstructs the committed prefix:
//!
//! 1. Load the newest snapshot whose checksum verifies (older and invalid
//!    snapshots are skipped — a crash mid-snapshot leaves a `.tmp` that is
//!    ignored entirely).
//! 2. Read every segment in first-sequence order, decoding records until the
//!    first torn or corrupt one. Everything from that point on — the rest of
//!    that segment *and any later segment* — is beyond the torn commit and
//!    is discarded: the bad record is where the durable prefix ends.
//! 3. Truncate the bad tail on disk so the writer appends after a clean
//!    prefix, and delete the discarded later segments.
//! 4. Return the snapshot, the replay tail (records with `seq` greater than
//!    the snapshot's cut), and the next sequence number to assign.
//!
//! Step 3 makes recovery idempotent: recovering twice in a row yields the
//! same state, and the second pass finds nothing to truncate.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read};
use std::path::{Path, PathBuf};

use stm_core::{CommitOp, CommitValue};

use crate::record;
use crate::snapshot::{self, Snapshot};

/// What [`recover`] found in a log directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovered {
    /// The newest valid snapshot, if any.
    pub snapshot: Option<Snapshot>,
    /// Log records to replay on top of the snapshot, ascending by sequence
    /// number (records the snapshot already covers are filtered out).
    pub tail: Vec<(u64, Vec<CommitOp>)>,
    /// Bytes of torn/corrupt tail that were truncated away (0 on a clean
    /// shutdown).
    pub truncated_bytes: u64,
    /// The next sequence number the log should assign.
    pub next_seq: u64,
}

impl Recovered {
    /// Folds the snapshot and tail down to the final live keyspace: the
    /// `(key, value)` pairs that survive after every logged op has been
    /// applied, last writer wins, ascending by key.
    ///
    /// Replaying this — instead of the raw op stream — means a key whose
    /// final logged op is a `Del` never materialises a value cell in the
    /// rebuilt store: tombstoned keys stay reclaimed across restarts rather
    /// than being resurrected by an intermediate `Put` and deleted again.
    #[must_use]
    pub fn live_pairs(&self) -> Vec<(i64, CommitValue)> {
        let mut live: BTreeMap<i64, Option<&CommitValue>> = BTreeMap::new();
        if let Some(snapshot) = &self.snapshot {
            for (key, value) in &snapshot.pairs {
                live.insert(*key, Some(value));
            }
        }
        for (_seq, ops) in &self.tail {
            for op in ops {
                match op {
                    CommitOp::Put { id, value } => {
                        live.insert(*id, Some(value));
                    }
                    CommitOp::Del { id } => {
                        live.insert(*id, None);
                    }
                }
            }
        }
        live.into_iter()
            .filter_map(|(key, value)| value.map(|v| (key, v.clone())))
            .collect()
    }
}

/// Lists segment files as `(path, first_seq)`, unsorted.
///
/// # Errors
///
/// Propagates directory-read errors; an absent directory yields an empty
/// list.
pub fn list_segments(dir: &Path) -> io::Result<Vec<(PathBuf, u64)>> {
    list_dir(dir, parse_segment_file_name)
}

/// Lists snapshot files as `(path, seq)`, unsorted.
///
/// # Errors
///
/// Propagates directory-read errors; an absent directory yields an empty
/// list.
pub fn list_snapshots(dir: &Path) -> io::Result<Vec<(PathBuf, u64)>> {
    list_dir(dir, snapshot::parse_snapshot_file_name)
}

fn list_dir(
    dir: &Path,
    parse: impl Fn(&str) -> Option<u64>,
) -> io::Result<Vec<(PathBuf, u64)>> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(err) => return Err(err),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = parse(name) {
            out.push((entry.path(), seq));
        }
    }
    Ok(out)
}

fn parse_segment_file_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?.strip_suffix(".log")?.parse().ok()
}

/// Recovers the committed prefix from `dir`, truncating any torn tail (see
/// the [module documentation](self)).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn recover(dir: &Path) -> io::Result<Recovered> {
    // Newest valid snapshot wins; invalid ones are skipped, not fatal.
    let mut snapshots = list_snapshots(dir)?;
    snapshots.sort_by_key(|(_, seq)| *seq);
    let mut best_snapshot: Option<Snapshot> = None;
    for (path, _) in snapshots.iter().rev() {
        if let Some(loaded) = snapshot::read(path) {
            best_snapshot = Some(loaded);
            break;
        }
    }
    let snapshot_seq = best_snapshot.as_ref().map(|s| s.seq).unwrap_or(0);

    let mut segments = list_segments(dir)?;
    segments.sort_by_key(|(_, first_seq)| *first_seq);

    let mut tail: Vec<(u64, Vec<CommitOp>)> = Vec::new();
    let mut truncated_bytes = 0u64;
    let mut max_seq = snapshot_seq;
    let mut dirty_from: Option<usize> = None; // segment index where the prefix ended
    for (index, (path, _)) in segments.iter().enumerate() {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        // Segments written by the typed-value writer lead with the v2
        // magic; segments without it (including files torn mid-magic) are
        // decoded in the integer-only v1 format, so pre-v2 logs replay.
        let (format, header_len) = if bytes.starts_with(record::SEGMENT_MAGIC) {
            (record::Format::V2, record::SEGMENT_MAGIC.len())
        } else {
            (record::Format::V1, 0)
        };
        let (records, body_end, clean) = record::decode_all(&bytes[header_len..], format);
        let clean_end = header_len + body_end;
        for rec in records {
            max_seq = max_seq.max(rec.seq);
            if rec.seq > snapshot_seq {
                tail.push((rec.seq, rec.ops));
            }
        }
        if !clean {
            truncated_bytes += (bytes.len() - clean_end) as u64;
            if body_end == 0 {
                // No surviving record in this segment — a bare (possibly
                // torn) header carries nothing worth keeping.
                fs::remove_file(path)?;
            } else {
                let file = OpenOptions::new().write(true).open(path)?;
                file.set_len(clean_end as u64)?;
                // Persist the truncation now: if it only lived in the page
                // cache, a later crash would resurrect the torn record and
                // the *next* recovery would cut away everything logged (and
                // possibly acknowledged) after this point.
                file.sync_all()?;
            }
            dirty_from = Some(index + 1);
            break;
        }
    }
    // Segments after a torn record hold commits beyond the truncation point;
    // replaying them over the gap would reorder history, so they go too.
    if let Some(from) = dirty_from {
        for (path, _) in &segments[from..] {
            if let Ok(meta) = fs::metadata(path) {
                truncated_bytes += meta.len();
            }
            fs::remove_file(path)?;
        }
    }
    // Stray temp files from a crashed snapshot writer.
    for entry in fs::read_dir(dir)?.flatten() {
        if entry.path().extension().is_some_and(|ext| ext == "tmp") {
            let _ = fs::remove_file(entry.path());
        }
    }
    // Make the removals and truncation durable before the caller starts
    // appending on top of them.
    if truncated_bytes > 0 {
        File::open(dir)?.sync_all()?;
    }
    tail.sort_by_key(|(seq, _)| *seq);
    Ok(Recovered {
        snapshot: best_snapshot,
        tail,
        truncated_bytes,
        next_seq: max_seq + 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "stm-log-rec-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_segment(dir: &Path, first_seq: u64, records: &[(u64, Vec<CommitOp>)]) -> PathBuf {
        let mut bytes = record::SEGMENT_MAGIC.to_vec();
        for (seq, ops) in records {
            record::encode_into(&mut bytes, *seq, ops);
        }
        let path = dir.join(format!("wal-{first_seq:020}.log"));
        File::create(&path).unwrap().write_all(&bytes).unwrap();
        path
    }

    /// Writes a magic-less v1 segment, as a pre-typed-values server would.
    fn write_v1_segment(dir: &Path, first_seq: u64, records: &[(u64, Vec<CommitOp>)]) -> PathBuf {
        let mut bytes = Vec::new();
        for (seq, ops) in records {
            record::encode_v1_into(&mut bytes, *seq, ops);
        }
        let path = dir.join(format!("wal-{first_seq:020}.log"));
        File::create(&path).unwrap().write_all(&bytes).unwrap();
        path
    }

    fn put(id: i64, value: i64) -> Vec<CommitOp> {
        vec![CommitOp::put(id, value)]
    }

    #[test]
    fn empty_directory_recovers_to_nothing() {
        let dir = temp_dir("empty");
        let recovered = recover(&dir).unwrap();
        assert_eq!(
            recovered,
            Recovered {
                snapshot: None,
                tail: Vec::new(),
                truncated_bytes: 0,
                next_seq: 1
            }
        );
        let missing = dir.join("definitely-not-here");
        assert!(list_segments(&missing).unwrap().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_filters_covered_records_and_orders_the_tail() {
        let dir = temp_dir("filter");
        write_segment(&dir, 1, &[(1, put(1, 10)), (2, put(2, 20)), (3, put(3, 30))]);
        write_segment(&dir, 4, &[(4, put(4, 40)), (5, put(5, 50))]);
        let pairs: Vec<_> = [(1, 10), (2, 20), (3, 30)]
            .map(|(k, v)| (k, stm_core::CommitValue::Int(v)))
            .to_vec();
        snapshot::write(&dir, 3, &pairs).unwrap();
        let recovered = recover(&dir).unwrap();
        assert_eq!(recovered.snapshot.unwrap().seq, 3);
        assert_eq!(recovered.tail, vec![(4, put(4, 40)), (5, put(5, 50))]);
        assert_eq!(recovered.next_seq, 6);
        assert_eq!(recovered.truncated_bytes, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn live_pairs_folds_deletes_last_writer_wins() {
        let recovered = Recovered {
            snapshot: Some(Snapshot {
                seq: 2,
                pairs: vec![
                    (1, CommitValue::Int(10)),
                    (2, CommitValue::Str("keep".into())),
                    (3, CommitValue::Int(30)),
                ],
            }),
            tail: vec![
                // Key 3 dies; key 1 is overwritten; key 9 lives and dies in
                // the tail; key 4 is born in the tail.
                (3, vec![CommitOp::Del { id: 3 }, CommitOp::put(4, 40)]),
                (4, put(9, 90)),
                (5, vec![CommitOp::put(1, 11), CommitOp::Del { id: 9 }]),
            ],
            truncated_bytes: 0,
            next_seq: 6,
        };
        assert_eq!(
            recovered.live_pairs(),
            vec![
                (1, CommitValue::Int(11)),
                (2, CommitValue::Str("keep".into())),
                (4, CommitValue::Int(40)),
            ],
            "tombstoned keys must not survive the fold"
        );
    }

    #[test]
    fn live_pairs_resurrects_a_key_deleted_then_rewritten() {
        let recovered = Recovered {
            snapshot: None,
            tail: vec![
                (1, put(7, 70)),
                (2, vec![CommitOp::Del { id: 7 }]),
                (3, put(7, 71)),
            ],
            truncated_bytes: 0,
            next_seq: 4,
        };
        assert_eq!(recovered.live_pairs(), vec![(7, CommitValue::Int(71))]);
    }

    #[test]
    fn torn_tail_is_truncated_and_recovery_is_idempotent() {
        let dir = temp_dir("torn");
        let path = write_segment(&dir, 1, &[(1, put(1, 1)), (2, put(2, 2)), (3, put(3, 3))]);
        // Tear the last record: drop its final 5 bytes.
        let len = fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 5)
            .unwrap();
        let first = recover(&dir).unwrap();
        assert_eq!(first.tail.len(), 2, "committed prefix is records 1..=2");
        assert!(first.truncated_bytes > 0);
        assert_eq!(first.next_seq, 3);
        let second = recover(&dir).unwrap();
        assert_eq!(second.tail, first.tail);
        assert_eq!(second.truncated_bytes, 0, "second pass finds a clean log");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_cuts_the_log_and_drops_later_segments() {
        let dir = temp_dir("corrupt");
        let path = write_segment(&dir, 1, &[(1, put(1, 1)), (2, put(2, 2))]);
        let later = write_segment(&dir, 3, &[(3, put(3, 3))]);
        // Corrupt a byte inside record 2's payload.
        let mut bytes = Vec::new();
        File::open(&path).unwrap().read_to_end(&mut bytes).unwrap();
        let record1 = record::encode(1, &put(1, 1));
        bytes[record::SEGMENT_MAGIC.len() + record1.len() + 10] ^= 0xFF;
        File::create(&path).unwrap().write_all(&bytes).unwrap();
        let recovered = recover(&dir).unwrap();
        assert_eq!(recovered.tail, vec![(1, put(1, 1))]);
        assert_eq!(recovered.next_seq, 2);
        assert!(!later.exists(), "segments beyond the cut must be deleted");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_snapshot_falls_back_to_an_older_valid_one() {
        let dir = temp_dir("badsnap");
        write_segment(&dir, 1, &[(1, put(1, 1)), (2, put(2, 2)), (3, put(3, 3))]);
        let pairs: Vec<_> = [(1, 1), (2, 2)]
            .map(|(k, v)| (k, stm_core::CommitValue::Int(v)))
            .to_vec();
        snapshot::write(&dir, 2, &pairs).unwrap();
        // A newer snapshot that is garbage on disk.
        let bad = dir.join(snapshot::snapshot_file_name(3));
        File::create(&bad).unwrap().write_all(b"not a snapshot").unwrap();
        // And a stray tmp from a crashed snapshotter.
        File::create(dir.join("snap-x.tmp")).unwrap().write_all(b"junk").unwrap();
        let recovered = recover(&dir).unwrap();
        assert_eq!(recovered.snapshot.unwrap().seq, 2, "falls back past the bad one");
        assert_eq!(recovered.tail, vec![(3, put(3, 3))]);
        assert!(!dir.join("snap-x.tmp").exists(), "tmp files are swept");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mixed_v1_and_v2_segments_replay_as_one_history() {
        // A server upgraded in place: its old segments are magic-less v1,
        // everything after the upgrade is v2 — one contiguous history.
        let dir = temp_dir("mixed");
        write_v1_segment(&dir, 1, &[(1, put(1, 10)), (2, put(2, 20))]);
        write_segment(
            &dir,
            3,
            &[(3, vec![CommitOp::put(3, "typed\nstring")]), (4, put(1, 11))],
        );
        let recovered = recover(&dir).unwrap();
        assert_eq!(recovered.truncated_bytes, 0);
        assert_eq!(recovered.next_seq, 5);
        assert_eq!(
            recovered.tail,
            vec![
                (1, put(1, 10)),
                (2, put(2, 20)),
                (3, vec![CommitOp::put(3, "typed\nstring")]),
                (4, put(1, 11)),
            ]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fully_torn_first_record_removes_the_segment() {
        let dir = temp_dir("allgone");
        let path = write_segment(&dir, 1, &[(1, put(1, 1))]);
        OpenOptions::new().write(true).open(&path).unwrap().set_len(3).unwrap();
        let recovered = recover(&dir).unwrap();
        assert!(recovered.tail.is_empty());
        assert_eq!(recovered.next_seq, 1);
        assert!(!path.exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
