//! Point-in-time snapshots of the keyspace.
//!
//! A snapshot file freezes the whole key → value map as observed by one
//! consistent-cut transaction (sequence number `seq`): recovery loads the
//! latest valid snapshot and then replays only the log records with
//! `seq > snapshot.seq`, which bounds recovery time and lets old log
//! segments be pruned.
//!
//! Format (all integers little-endian):
//!
//! ```text
//! magic:   u32  = 0x534E_4150 ("SNAP")
//! version: u32  = 1
//! payload: seq: u64 | count: u64 | count × (key: i64, value: i64)
//! crc:     u32  over the payload
//! ```
//!
//! Snapshots are written to a temporary file, fsynced, and renamed into
//! place, so a crash mid-snapshot leaves the previous snapshot intact; a
//! snapshot whose checksum does not verify is ignored at recovery.

use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use crate::crc::crc32;

const MAGIC: u32 = 0x534E_4150;
const VERSION: u32 = 1;

/// A decoded snapshot: the consistent-cut sequence number and the pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Log records with `seq <= this` are covered by the snapshot.
    pub seq: u64,
    /// The full key → value map at the cut, ascending by key.
    pub pairs: Vec<(i64, i64)>,
}

/// The file name of the snapshot at `seq` (zero-padded so lexicographic
/// order is numeric order).
pub fn snapshot_file_name(seq: u64) -> String {
    format!("snap-{seq:020}.snap")
}

/// Parses a snapshot file name back to its sequence number.
pub fn parse_snapshot_file_name(name: &str) -> Option<u64> {
    name.strip_prefix("snap-")?
        .strip_suffix(".snap")?
        .parse()
        .ok()
}

/// Serializes a snapshot to bytes.
pub fn encode(seq: u64, pairs: &[(i64, i64)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(28 + pairs.len() * 16);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&VERSION.to_le_bytes());
    let payload_start = out.len();
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(pairs.len() as u64).to_le_bytes());
    for (key, value) in pairs {
        out.extend_from_slice(&key.to_le_bytes());
        out.extend_from_slice(&value.to_le_bytes());
    }
    let crc = crc32(&out[payload_start..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decodes a snapshot, returning `None` when the bytes are malformed or the
/// checksum fails (recovery then falls back to the previous snapshot or to
/// a full log replay).
pub fn decode(bytes: &[u8]) -> Option<Snapshot> {
    if bytes.len() < 28 {
        return None;
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().ok()?);
    let version = u32::from_le_bytes(bytes[4..8].try_into().ok()?);
    if magic != MAGIC || version != VERSION {
        return None;
    }
    let payload = &bytes[8..bytes.len() - 4];
    let expected_crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().ok()?);
    if crc32(payload) != expected_crc {
        return None;
    }
    let seq = u64::from_le_bytes(payload[0..8].try_into().ok()?);
    let count = u64::from_le_bytes(payload[8..16].try_into().ok()?) as usize;
    if payload.len() != 16 + count * 16 {
        return None;
    }
    let mut pairs = Vec::with_capacity(count);
    for i in 0..count {
        let at = 16 + i * 16;
        pairs.push((
            i64::from_le_bytes(payload[at..at + 8].try_into().ok()?),
            i64::from_le_bytes(payload[at + 8..at + 16].try_into().ok()?),
        ));
    }
    Some(Snapshot { seq, pairs })
}

/// Writes the snapshot durably into `dir` (temp file → fsync → rename) and
/// returns its final path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write(dir: &Path, seq: u64, pairs: &[(i64, i64)]) -> io::Result<PathBuf> {
    let bytes = encode(seq, pairs);
    let tmp = dir.join(format!("snap-{seq:020}.tmp"));
    let final_path = dir.join(snapshot_file_name(seq));
    {
        let mut file = File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_data()?;
    }
    fs::rename(&tmp, &final_path)?;
    // The rename must itself be durable before the caller may prune the
    // log segments this snapshot covers — otherwise a crash could leave
    // neither the snapshot's directory entry nor the pruned segments.
    File::open(dir)?.sync_all()?;
    Ok(final_path)
}

/// Reads and validates one snapshot file.
pub fn read(path: &Path) -> Option<Snapshot> {
    let mut bytes = Vec::new();
    File::open(path).ok()?.read_to_end(&mut bytes).ok()?;
    decode(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let pairs = vec![(-3i64, 30i64), (0, 0), (7, -700)];
        let snapshot = decode(&encode(42, &pairs)).unwrap();
        assert_eq!(snapshot.seq, 42);
        assert_eq!(snapshot.pairs, pairs);
        let empty = decode(&encode(1, &[])).unwrap();
        assert!(empty.pairs.is_empty());
    }

    #[test]
    fn corruption_and_truncation_invalidate() {
        let bytes = encode(9, &[(1, 10), (2, 20)]);
        for i in 8..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(decode(&bad).is_none(), "flip at {i} accepted");
        }
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_none(), "truncation at {cut} accepted");
        }
    }

    #[test]
    fn file_names_round_trip_and_sort_numerically() {
        assert_eq!(parse_snapshot_file_name(&snapshot_file_name(17)), Some(17));
        assert_eq!(parse_snapshot_file_name("snap-x.snap"), None);
        assert_eq!(parse_snapshot_file_name("wal-00000000000000000001.log"), None);
        assert!(snapshot_file_name(9) < snapshot_file_name(10));
        assert!(snapshot_file_name(99) < snapshot_file_name(100));
    }

    #[test]
    fn write_and_read_through_the_filesystem() {
        let dir = std::env::temp_dir().join(format!("stm-log-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let pairs = vec![(5i64, 55i64), (6, 66)];
        let path = write(&dir, 3, &pairs).unwrap();
        let loaded = read(&path).unwrap();
        assert_eq!(loaded, Snapshot { seq: 3, pairs });
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
