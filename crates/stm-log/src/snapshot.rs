//! Point-in-time snapshots of the keyspace.
//!
//! A snapshot file freezes the whole key → value map as observed by one
//! consistent-cut transaction (sequence number `seq`): recovery loads the
//! latest valid snapshot and then replays only the log records with
//! `seq > snapshot.seq`, which bounds recovery time and lets old log
//! segments be pruned.
//!
//! Two formats exist (all integers little-endian):
//!
//! ```text
//! magic:   u32  = 0x534E_4150 ("SNAP")
//! version: u32  = 1 | 2
//! payload: seq: u64 | count: u64 | count × pair
//! crc:     u32  over the payload
//!
//! v1 pair = key: i64 | value: i64
//! v2 pair = key: i64 | tag: u8 | body
//! body    = 0x00 (int)   | value: i64
//!         | 0x02 (str)   | len: u32 | len bytes (UTF-8)
//!         | 0x03 (bytes) | len: u32 | len bytes
//! ```
//!
//! The writer emits version 2; the reader accepts both, decoding v1 pairs
//! as [`CommitValue::Int`], so a snapshot taken before typed values existed
//! still recovers.
//!
//! Snapshots are written to a temporary file, fsynced, and renamed into
//! place, so a crash mid-snapshot leaves the previous snapshot intact; a
//! snapshot whose checksum does not verify is ignored at recovery.

use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use stm_core::CommitValue;

use crate::crc::crc32;

const MAGIC: u32 = 0x534E_4150;
const VERSION_V1: u32 = 1;
const VERSION_V2: u32 = 2;

const TAG_INT: u8 = 0x00;
const TAG_STR: u8 = 0x02;
const TAG_BYTES: u8 = 0x03;

/// A decoded snapshot: the consistent-cut sequence number and the pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Log records with `seq <= this` are covered by the snapshot.
    pub seq: u64,
    /// The full key → value map at the cut, ascending by key.
    pub pairs: Vec<(i64, CommitValue)>,
}

/// The file name of the snapshot at `seq` (zero-padded so lexicographic
/// order is numeric order).
pub fn snapshot_file_name(seq: u64) -> String {
    format!("snap-{seq:020}.snap")
}

/// Parses a snapshot file name back to its sequence number.
pub fn parse_snapshot_file_name(name: &str) -> Option<u64> {
    name.strip_prefix("snap-")?
        .strip_suffix(".snap")?
        .parse()
        .ok()
}

/// Serializes a snapshot to bytes (version 2, typed values).
pub fn encode(seq: u64, pairs: &[(i64, CommitValue)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(28 + pairs.len() * 17);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&VERSION_V2.to_le_bytes());
    let payload_start = out.len();
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(pairs.len() as u64).to_le_bytes());
    for (key, value) in pairs {
        out.extend_from_slice(&key.to_le_bytes());
        match value {
            CommitValue::Int(v) => {
                out.push(TAG_INT);
                out.extend_from_slice(&v.to_le_bytes());
            }
            CommitValue::Str(s) => {
                out.push(TAG_STR);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            CommitValue::Bytes(b) => {
                out.push(TAG_BYTES);
                out.extend_from_slice(&(b.len() as u32).to_le_bytes());
                out.extend_from_slice(b);
            }
        }
    }
    let crc = crc32(&out[payload_start..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Serializes a snapshot in the **v1** integer-only format — a fixture
/// generator for compatibility tests.
///
/// # Panics
///
/// Panics when a pair carries a non-integer value.
pub fn encode_v1(seq: u64, pairs: &[(i64, CommitValue)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(28 + pairs.len() * 16);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&VERSION_V1.to_le_bytes());
    let payload_start = out.len();
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(pairs.len() as u64).to_le_bytes());
    for (key, value) in pairs {
        let v = value
            .as_int()
            .expect("v1 snapshot format cannot carry a non-integer value");
        out.extend_from_slice(&key.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
    let crc = crc32(&out[payload_start..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn decode_v1_pairs(payload: &[u8], count: usize) -> Option<Vec<(i64, CommitValue)>> {
    if payload.len() != 16 + count * 16 {
        return None;
    }
    let mut pairs = Vec::with_capacity(count);
    for i in 0..count {
        let at = 16 + i * 16;
        pairs.push((
            i64::from_le_bytes(payload[at..at + 8].try_into().ok()?),
            CommitValue::Int(i64::from_le_bytes(payload[at + 8..at + 16].try_into().ok()?)),
        ));
    }
    Some(pairs)
}

fn decode_v2_pairs(payload: &[u8], count: usize) -> Option<Vec<(i64, CommitValue)>> {
    let mut pairs = Vec::with_capacity(count.min(1 << 20));
    let mut at = 16usize;
    for _ in 0..count {
        let key = i64::from_le_bytes(payload.get(at..at + 8)?.try_into().ok()?);
        let tag = *payload.get(at + 8)?;
        at += 9;
        let value = match tag {
            TAG_INT => {
                let v = i64::from_le_bytes(payload.get(at..at + 8)?.try_into().ok()?);
                at += 8;
                CommitValue::Int(v)
            }
            TAG_STR | TAG_BYTES => {
                let len =
                    u32::from_le_bytes(payload.get(at..at + 4)?.try_into().ok()?) as usize;
                at += 4;
                let raw = payload.get(at..at + len)?;
                at += len;
                if tag == TAG_STR {
                    CommitValue::Str(std::str::from_utf8(raw).ok()?.to_string())
                } else {
                    CommitValue::Bytes(raw.to_vec())
                }
            }
            _ => return None,
        };
        pairs.push((key, value));
    }
    (at == payload.len()).then_some(pairs)
}

/// Decodes a snapshot (either format version), returning `None` when the
/// bytes are malformed or the checksum fails (recovery then falls back to
/// the previous snapshot or to a full log replay).
pub fn decode(bytes: &[u8]) -> Option<Snapshot> {
    if bytes.len() < 28 {
        return None;
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().ok()?);
    let version = u32::from_le_bytes(bytes[4..8].try_into().ok()?);
    if magic != MAGIC || !(version == VERSION_V1 || version == VERSION_V2) {
        return None;
    }
    let payload = &bytes[8..bytes.len() - 4];
    let expected_crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().ok()?);
    if crc32(payload) != expected_crc {
        return None;
    }
    let seq = u64::from_le_bytes(payload[0..8].try_into().ok()?);
    let count = u64::from_le_bytes(payload[8..16].try_into().ok()?) as usize;
    let pairs = match version {
        VERSION_V1 => decode_v1_pairs(payload, count)?,
        _ => decode_v2_pairs(payload, count)?,
    };
    Some(Snapshot { seq, pairs })
}

/// Writes the snapshot durably into `dir` (temp file → fsync → rename) and
/// returns its final path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write(dir: &Path, seq: u64, pairs: &[(i64, CommitValue)]) -> io::Result<PathBuf> {
    let bytes = encode(seq, pairs);
    let tmp = dir.join(format!("snap-{seq:020}.tmp"));
    let final_path = dir.join(snapshot_file_name(seq));
    {
        let mut file = File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_data()?;
    }
    fs::rename(&tmp, &final_path)?;
    // The rename must itself be durable before the caller may prune the
    // log segments this snapshot covers — otherwise a crash could leave
    // neither the snapshot's directory entry nor the pruned segments.
    File::open(dir)?.sync_all()?;
    Ok(final_path)
}

/// Reads and validates one snapshot file.
pub fn read(path: &Path) -> Option<Snapshot> {
    let mut bytes = Vec::new();
    File::open(path).ok()?.read_to_end(&mut bytes).ok()?;
    decode(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn typed_pairs() -> Vec<(i64, CommitValue)> {
        vec![
            (-3, CommitValue::Int(30)),
            (0, CommitValue::Str("line\nbreak \0 NUL — ✓".to_string())),
            (7, CommitValue::Bytes(vec![0, 255, 10, 0])),
            (9, CommitValue::Int(-700)),
        ]
    }

    #[test]
    fn encode_decode_round_trip() {
        let pairs = typed_pairs();
        let snapshot = decode(&encode(42, &pairs)).unwrap();
        assert_eq!(snapshot.seq, 42);
        assert_eq!(snapshot.pairs, pairs);
        let empty = decode(&encode(1, &[])).unwrap();
        assert!(empty.pairs.is_empty());
    }

    #[test]
    fn v1_snapshots_decode_as_integer_values() {
        let pairs = vec![
            (1, CommitValue::Int(10)),
            (2, CommitValue::Int(-20)),
        ];
        let decoded = decode(&encode_v1(9, &pairs)).unwrap();
        assert_eq!(decoded.seq, 9);
        assert_eq!(decoded.pairs, pairs);
    }

    #[test]
    fn corruption_and_truncation_invalidate() {
        let bytes = encode(9, &typed_pairs());
        for i in 8..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(decode(&bad).is_none(), "flip at {i} accepted");
        }
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_none(), "truncation at {cut} accepted");
        }
    }

    #[test]
    fn file_names_round_trip_and_sort_numerically() {
        assert_eq!(parse_snapshot_file_name(&snapshot_file_name(17)), Some(17));
        assert_eq!(parse_snapshot_file_name("snap-x.snap"), None);
        assert_eq!(parse_snapshot_file_name("wal-00000000000000000001.log"), None);
        assert!(snapshot_file_name(9) < snapshot_file_name(10));
        assert!(snapshot_file_name(99) < snapshot_file_name(100));
    }

    #[test]
    fn write_and_read_through_the_filesystem() {
        let dir = std::env::temp_dir().join(format!("stm-log-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let pairs = typed_pairs();
        let path = write(&dir, 3, &pairs).unwrap();
        let loaded = read(&path).unwrap();
        assert_eq!(loaded, Snapshot { seq: 3, pairs });
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
