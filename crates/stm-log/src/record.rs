//! The binary log-record format: length-prefixed, checksummed, versioned,
//! replayable.
//!
//! One record carries the published write-set of one committed transaction.
//! Two payload formats exist:
//!
//! ```text
//! ┌────────────┬────────────┬──────────────────────────────────────────┐
//! │ len: u32 LE│ crc: u32 LE│ payload (len bytes)                      │
//! └────────────┴────────────┴──────────────────────────────────────────┘
//!
//! v1 payload = seq: u64 LE | count: u32 LE | count × op
//! v1 op      = 0x00 (Put) | id: i64 LE | value: i64 LE
//!            | 0x01 (Del) | id: i64 LE
//!
//! v2 payload = ver: u8 = 0x02 | seq: u64 LE | count: u32 LE | count × op
//! v2 op      = 0x00 (Put int)   | id: i64 LE | value: i64 LE
//!            | 0x01 (Del)       | id: i64 LE
//!            | 0x02 (Put str)   | id: i64 LE | len: u32 LE | len bytes
//!            | 0x03 (Put bytes) | id: i64 LE | len: u32 LE | len bytes
//! ```
//!
//! v1 (the integer-only format every log written before protocol v2 uses)
//! has no version byte — which format a record is in is decided **per
//! segment**: segments written by the v2 writer begin with
//! [`SEGMENT_MAGIC`], segments without the magic are v1. Recovery reads
//! both, so a WAL written by a v1 server replays losslessly into a v2
//! store ([`CommitValue::Int`] values).
//!
//! `crc` is the CRC-32 of the payload. The length prefix frames the record;
//! the checksum distinguishes a *torn* tail (the process died mid-write, the
//! bytes simply stop) from a *corrupt* one (the bytes are there but wrong) —
//! recovery treats both as the end of the committed prefix and truncates.

use stm_core::{CommitOp, CommitValue};

use crate::crc::crc32;

/// Upper bound on a record payload — a framing sanity check so a corrupted
/// length prefix cannot make recovery try to allocate gigabytes.
pub const MAX_PAYLOAD_BYTES: u32 = 64 << 20;

/// First bytes of every segment file written in the v2 format. Segments
/// without it (from servers predating typed values) decode as v1.
pub const SEGMENT_MAGIC: &[u8; 8] = b"STMWAL2\n";

/// The v2 payload version byte.
const PAYLOAD_VERSION_V2: u8 = 0x02;

const TAG_PUT_INT: u8 = 0x00;
const TAG_DEL: u8 = 0x01;
const TAG_PUT_STR: u8 = 0x02;
const TAG_PUT_BYTES: u8 = 0x03;

/// Which record format a segment's bytes are in (see [`SEGMENT_MAGIC`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Integer-only records, no payload version byte (pre-typed-values logs).
    V1,
    /// Typed-value records with a payload version byte.
    V2,
}

/// One decoded log record: the commit sequence number and the write-set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// The hook-assigned commit sequence number.
    pub seq: u64,
    /// The published write-set, in publish order.
    pub ops: Vec<CommitOp>,
}

/// Outcome of decoding one record from the head of a byte slice.
#[derive(Debug, PartialEq, Eq)]
pub enum Decoded {
    /// A valid record followed by the number of bytes it occupied.
    Ok(Record, usize),
    /// The buffer ends mid-record (a torn tail write).
    Torn,
    /// The bytes are malformed: checksum mismatch, impossible length, or an
    /// unknown op tag.
    Corrupt,
}

/// Appends the v2-encoded record for `(seq, ops)` to `out` and returns the
/// number of bytes appended.
pub fn encode_into(out: &mut Vec<u8>, seq: u64, ops: &[CommitOp]) -> usize {
    let start = out.len();
    // Reserve the header, then come back and patch it.
    out.extend_from_slice(&[0u8; 8]);
    let payload_start = out.len();
    out.push(PAYLOAD_VERSION_V2);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for op in ops {
        match op {
            CommitOp::Put { id, value } => match value {
                CommitValue::Int(v) => {
                    out.push(TAG_PUT_INT);
                    out.extend_from_slice(&id.to_le_bytes());
                    out.extend_from_slice(&v.to_le_bytes());
                }
                CommitValue::Str(s) => {
                    out.push(TAG_PUT_STR);
                    out.extend_from_slice(&id.to_le_bytes());
                    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                    out.extend_from_slice(s.as_bytes());
                }
                CommitValue::Bytes(b) => {
                    out.push(TAG_PUT_BYTES);
                    out.extend_from_slice(&id.to_le_bytes());
                    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
                    out.extend_from_slice(b);
                }
            },
            CommitOp::Del { id } => {
                out.push(TAG_DEL);
                out.extend_from_slice(&id.to_le_bytes());
            }
        }
    }
    patch_header(out, start, payload_start);
    out.len() - start
}

/// Appends the **v1**-encoded record for `(seq, ops)` to `out` — the format
/// servers wrote before typed values existed. Kept as a fixture generator
/// for compatibility tests (a v1 WAL must replay losslessly).
///
/// # Panics
///
/// Panics when an op carries a non-integer value: the v1 format cannot
/// represent one, so a caller asking for it has a logic error.
pub fn encode_v1_into(out: &mut Vec<u8>, seq: u64, ops: &[CommitOp]) -> usize {
    let start = out.len();
    out.extend_from_slice(&[0u8; 8]);
    let payload_start = out.len();
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for op in ops {
        match op {
            CommitOp::Put { id, value } => {
                let v = value
                    .as_int()
                    .expect("v1 record format cannot carry a non-integer value");
                out.push(TAG_PUT_INT);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&v.to_le_bytes());
            }
            CommitOp::Del { id } => {
                out.push(TAG_DEL);
                out.extend_from_slice(&id.to_le_bytes());
            }
        }
    }
    patch_header(out, start, payload_start);
    out.len() - start
}

fn patch_header(out: &mut [u8], start: usize, payload_start: usize) {
    let payload_len = (out.len() - payload_start) as u32;
    let crc = crc32(&out[payload_start..]);
    out[start..start + 4].copy_from_slice(&payload_len.to_le_bytes());
    out[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
}

/// Encodes one record as a standalone v2 byte vector.
pub fn encode(seq: u64, ops: &[CommitOp]) -> Vec<u8> {
    let mut out = Vec::new();
    encode_into(&mut out, seq, ops);
    out
}

fn read_u32(bytes: &[u8]) -> u32 {
    u32::from_le_bytes(bytes[..4].try_into().expect("checked length"))
}

fn read_u64(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes[..8].try_into().expect("checked length"))
}

fn read_i64(bytes: &[u8]) -> i64 {
    i64::from_le_bytes(bytes[..8].try_into().expect("checked length"))
}

/// Decodes the record at the head of `bytes` in the given segment format.
pub fn decode(bytes: &[u8], format: Format) -> Decoded {
    if bytes.len() < 8 {
        return Decoded::Torn;
    }
    let payload_len = read_u32(bytes) as usize;
    // Even an empty write-set needs seq (8) + count (4) bytes — plus the
    // version byte in v2 — so a shorter claim is not a torn write; it is
    // garbage.
    let min_payload = match format {
        Format::V1 => 12,
        Format::V2 => 13,
    };
    if payload_len > MAX_PAYLOAD_BYTES as usize || payload_len < min_payload {
        return Decoded::Corrupt;
    }
    let expected_crc = read_u32(&bytes[4..]);
    let Some(payload) = bytes.get(8..8 + payload_len) else {
        return Decoded::Torn;
    };
    if crc32(payload) != expected_crc {
        return Decoded::Corrupt;
    }
    let body = match format {
        Format::V1 => payload,
        Format::V2 => {
            if payload[0] != PAYLOAD_VERSION_V2 {
                return Decoded::Corrupt;
            }
            &payload[1..]
        }
    };
    let seq = read_u64(body);
    let count = read_u32(&body[8..]) as usize;
    let mut ops = Vec::with_capacity(count.min(1024));
    let mut at = 12usize;
    for _ in 0..count {
        let Some(&tag) = body.get(at) else {
            return Decoded::Corrupt;
        };
        at += 1;
        match tag {
            TAG_PUT_INT => {
                if body.len() < at + 16 {
                    return Decoded::Corrupt;
                }
                ops.push(CommitOp::put(read_i64(&body[at..]), read_i64(&body[at + 8..])));
                at += 16;
            }
            TAG_DEL => {
                if body.len() < at + 8 {
                    return Decoded::Corrupt;
                }
                ops.push(CommitOp::del(read_i64(&body[at..])));
                at += 8;
            }
            TAG_PUT_STR | TAG_PUT_BYTES if format == Format::V2 => {
                if body.len() < at + 12 {
                    return Decoded::Corrupt;
                }
                let id = read_i64(&body[at..]);
                let len = read_u32(&body[at + 8..]) as usize;
                at += 12;
                let Some(raw) = body.get(at..at + len) else {
                    return Decoded::Corrupt;
                };
                at += len;
                let value = if tag == TAG_PUT_STR {
                    match std::str::from_utf8(raw) {
                        Ok(s) => CommitValue::Str(s.to_string()),
                        Err(_) => return Decoded::Corrupt,
                    }
                } else {
                    CommitValue::Bytes(raw.to_vec())
                };
                ops.push(CommitOp::Put { id, value });
            }
            _ => return Decoded::Corrupt,
        }
    }
    if at != body.len() {
        return Decoded::Corrupt;
    }
    Decoded::Ok(Record { seq, ops }, 8 + payload_len)
}

/// Decodes every record in `bytes` (all in `format`), returning the
/// committed prefix and the byte offset where it ends (the truncation point
/// when the tail is torn or corrupt). The last element is `true` when
/// decoding consumed the whole buffer cleanly.
pub fn decode_all(bytes: &[u8], format: Format) -> (Vec<Record>, usize, bool) {
    let mut records = Vec::new();
    let mut at = 0usize;
    while at < bytes.len() {
        match decode(&bytes[at..], format) {
            Decoded::Ok(record, used) => {
                records.push(record);
                at += used;
            }
            Decoded::Torn | Decoded::Corrupt => return (records, at, false),
        }
    }
    (records, at, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<CommitOp> {
        vec![
            CommitOp::put(3, 42),
            CommitOp::del(-9),
            CommitOp::put(i64::MAX, i64::MIN),
            CommitOp::put(7, "a line\nwith NUL \0 and UTF-8 — ✓"),
            CommitOp::put(8, vec![0u8, 255, 10, 13, 0]),
        ]
    }

    fn int_ops() -> Vec<CommitOp> {
        vec![
            CommitOp::put(3, 42),
            CommitOp::del(-9),
            CommitOp::put(i64::MAX, i64::MIN),
        ]
    }

    #[test]
    fn round_trip_including_empty_write_set() {
        for ops in [sample_ops(), Vec::new()] {
            let bytes = encode(77, &ops);
            match decode(&bytes, Format::V2) {
                Decoded::Ok(record, used) => {
                    assert_eq!(used, bytes.len());
                    assert_eq!(record.seq, 77);
                    assert_eq!(record.ops, ops);
                }
                other => panic!("expected Ok, got {other:?}"),
            }
        }
    }

    #[test]
    fn v1_records_decode_as_integer_values() {
        let ops = int_ops();
        let mut bytes = Vec::new();
        encode_v1_into(&mut bytes, 5, &ops);
        match decode(&bytes, Format::V1) {
            Decoded::Ok(record, used) => {
                assert_eq!(used, bytes.len());
                assert_eq!(record.seq, 5);
                assert_eq!(record.ops, ops);
            }
            other => panic!("expected Ok, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "v1 record format cannot carry")]
    fn v1_encoder_refuses_typed_values() {
        let mut bytes = Vec::new();
        encode_v1_into(&mut bytes, 1, &[CommitOp::put(1, "nope")]);
    }

    #[test]
    fn concatenated_records_decode_in_order() {
        let mut bytes = Vec::new();
        for seq in 1..=5u64 {
            encode_into(&mut bytes, seq, &[CommitOp::put(seq as i64, 1)]);
        }
        let (records, end, clean) = decode_all(&bytes, Format::V2);
        assert!(clean);
        assert_eq!(end, bytes.len());
        assert_eq!(records.len(), 5);
        assert_eq!(records.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn every_truncation_point_is_torn_not_corrupt_or_ok() {
        let bytes = encode(9, &sample_ops());
        for cut in 0..bytes.len() {
            match decode(&bytes[..cut], Format::V2) {
                Decoded::Torn => {}
                other => panic!("cut at {cut}: expected Torn, got {other:?}"),
            }
        }
    }

    #[test]
    fn payload_corruption_is_detected() {
        let bytes = encode(11, &sample_ops());
        for i in 8..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert_eq!(
                decode(&bad, Format::V2),
                Decoded::Corrupt,
                "flip at byte {i} undetected"
            );
        }
    }

    #[test]
    fn absurd_length_prefix_is_corrupt_not_an_allocation() {
        let mut bytes = encode(1, &sample_ops());
        bytes[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode(&bytes, Format::V2), Decoded::Corrupt);
        bytes[0..4].copy_from_slice(&2u32.to_le_bytes());
        assert_eq!(
            decode(&bytes, Format::V2),
            Decoded::Corrupt,
            "shorter-than-header claim"
        );
    }

    #[test]
    fn typed_tags_are_corrupt_in_a_v1_segment() {
        // A v2 record (with its version byte and typed tags) planted in a
        // v1 segment must be rejected, not misread as integer ops.
        let bytes = encode(1, &[CommitOp::put(1, "text")]);
        assert_eq!(decode(&bytes, Format::V1), Decoded::Corrupt);
    }

    #[test]
    fn decode_all_returns_the_committed_prefix_on_a_torn_tail() {
        let mut bytes = Vec::new();
        for seq in 1..=4u64 {
            encode_into(&mut bytes, seq, &[CommitOp::del(seq as i64)]);
        }
        let keep = bytes.len();
        encode_into(&mut bytes, 5, &sample_ops());
        let torn = &bytes[..bytes.len() - 3];
        let (records, end, clean) = decode_all(torn, Format::V2);
        assert!(!clean);
        assert_eq!(end, keep, "truncation point is the end of record 4");
        assert_eq!(records.len(), 4);
    }

    #[test]
    fn invalid_utf8_in_a_str_op_is_corrupt() {
        // Hand-build a v2 record claiming a Str op with non-UTF-8 bytes.
        let mut payload = vec![PAYLOAD_VERSION_V2];
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.push(TAG_PUT_STR);
        payload.extend_from_slice(&7i64.to_le_bytes());
        payload.extend_from_slice(&2u32.to_le_bytes());
        payload.extend_from_slice(&[0xFF, 0xFE]);
        let mut bytes = (payload.len() as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert_eq!(decode(&bytes, Format::V2), Decoded::Corrupt);
    }
}
